"""Degrees-of-separation queries on a social network.

On power-law graphs there are no coordinates, so the A* family does not
apply — the paper's point that ET and BiDS are the tools there, and
that their advantage over SSSP depends strongly on how far apart the
endpoints are.  This example measures exactly that: the same s-t query
at increasing distance percentiles, with the work of SSSP / ET / BiDS
side by side, plus a subset-APSP batch (clique query graph) among a
group of users.

Run: ``python examples/social_separation.py``
"""

import numpy as np

import repro
from repro.analysis.percentiles import target_at_percentile
from repro.core.query_graph import QueryGraph
from repro.graphs import social_graph
from repro.graphs.connectivity import largest_component


def main() -> None:
    graph = social_graph(12_000, avg_degree=16, seed=9, name="social-demo")
    print(f"graph: {graph}\n")

    rng = np.random.default_rng(2)
    lcc = largest_component(graph)
    s = int(rng.choice(lcc))

    print("work (edge relaxations) by distance percentile of the target:")
    print(f"{'pct':>6} {'SSSP':>10} {'ET':>10} {'BiDS':>10}   winner")
    for pct in (1, 10, 50, 90, 99):
        t = target_at_percentile(graph, s, pct)
        work = {}
        for method in ("sssp", "et", "bids"):
            ans = repro.ppsp(graph, s, t, method=method)
            work[method] = ans.run.relaxations
        winner = min(work, key=work.get)
        print(f"{pct:>5}% {work['sssp']:>10} {work['et']:>10} {work['bids']:>10}   {winner}")

    # Subset APSP: pairwise separation inside a friend group — a clique
    # query graph, the best case for Multi-BiDS sharing.
    group = [int(v) for v in rng.choice(lcc, size=5, replace=False)]
    qg = QueryGraph.clique(group)
    res = repro.batch_ppsp(graph, qg, method="multi")
    print(f"\npairwise distances within group {group}:")
    for (a, b), d in sorted(res.distances.items()):
        print(f"  d({a}, {b}) = {d:.0f}")


if __name__ == "__main__":
    main()
