"""Quickstart: point-to-point shortest paths with every Orionet method.

Builds a synthetic road network with spherical coordinates, asks for one
s-t route with each algorithm (SSSP / ET / BiDS / A* / BiD-A*), checks
they agree, and shows how much of the graph each one had to touch —
the paper's Fig. 1 in numbers.

Run: ``python examples/quickstart.py``
"""

import repro
from repro.graphs import road_graph

def main() -> None:
    # A 120x120 jittered-grid road network (~14k vertices) over a lon/lat
    # box; edge weights are great-circle road lengths in km.
    graph = road_graph(120, 120, seed=7, name="demo-road")
    s, t = 50, graph.num_vertices - 77
    print(f"graph: {graph}")
    print(f"query: {s} -> {t}\n")

    answers = {}
    for method in repro.PPSP_METHODS:
        ans = repro.ppsp(graph, s, t, method=method)
        answers[method] = ans
        touched = ans.run.relaxations
        print(
            f"{method:>9}: distance = {ans.distance:10.3f} km   "
            f"edge relaxations = {touched:8d}   steps = {ans.run.steps}"
        )

    dists = {round(a.distance, 6) for a in answers.values()}
    assert len(dists) == 1, f"methods disagree: {dists}"

    path = answers["bidastar"].path()
    print(f"\nall methods agree; BiD-A* path has {len(path)} vertices")
    print(f"path head: {path[:8]} ... tail: {path[-8:]}")

    # The work saving is the paper's whole story: bidirectional + A*
    # pruning touches a fraction of what plain SSSP does.
    full = answers["sssp"].run.relaxations
    best = answers["bidastar"].run.relaxations
    print(f"\nBiD-A* touched {100.0 * best / full:.1f}% of the edges SSSP relaxed")


if __name__ == "__main__":
    main()
