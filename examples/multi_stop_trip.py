"""Multi-stop trip planning with batch PPSP (the paper's chain query).

A courier has to visit a list of stops in order.  The legs form a
*chain* query graph; Orionet answers the whole batch at once.  This
example compares the strategies the paper studies:

* Multi-BiDS — all stops searched at once with shared pruning radii;
* Plain BiDS — one bidirectional query per leg;
* vertex-cover SSSP — the paper's neat observation that for a chain the
  minimum vertex cover is *every other stop*, so half the SSSPs suffice.

Run: ``python examples/multi_stop_trip.py``
"""

import numpy as np

import repro
from repro.core.query_graph import QueryGraph, vertex_cover
from repro.graphs import road_graph
from repro.graphs.connectivity import largest_component


def main() -> None:
    graph = road_graph(110, 110, seed=21, name="courier-map")
    rng = np.random.default_rng(3)
    lcc = largest_component(graph)
    stops = [int(v) for v in rng.choice(lcc, size=7, replace=False)]
    print(f"graph: {graph}")
    print(f"stops in visit order: {stops}\n")

    qg = QueryGraph.chain(stops)
    cover = vertex_cover(qg)
    cover_stops = [int(qg.vertices[i]) for i in cover]
    print(f"query graph: {qg}")
    print(f"vertex cover (SSSP sources needed): {cover_stops} "
          f"({len(cover_stops)} SSSPs instead of {qg.num_edges} queries)\n")

    results = {}
    for method in ("multi", "plain-bids", "sssp-vc", "sssp-plain"):
        res = repro.batch_ppsp(graph, qg, method=method)
        results[method] = res
        total = sum(res.distance(a, b) for a, b in zip(stops[:-1], stops[1:]))
        print(
            f"{method:>12}: trip length = {total:10.3f} km   "
            f"searches = {res.num_searches:2d}   work = {int(res.meter.work):9d}"
        )

    # Every strategy must compute identical leg distances.
    legs = list(zip(stops[:-1], stops[1:]))
    for a, b in legs:
        vals = {round(res.distance(a, b), 6) for res in results.values()}
        assert len(vals) == 1, f"leg {(a, b)} disagrees: {vals}"
    print("\nall strategies agree on every leg")

    print("\nper-leg routes (km):")
    for a, b in legs:
        leg_path = results["multi"].path(a, b)
        print(f"  {a:6d} -> {b:6d}: {results['multi'].distance(a, b):10.3f} "
              f"via {len(leg_path)} intersections")


if __name__ == "__main__":
    main()
