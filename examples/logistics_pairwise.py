"""Warehouse-to-store pairwise distances (the paper's bipartite batch).

A logistics planner needs the distance from every warehouse to every
store — the paper's motivating "all Walmarts and all their warehouses"
pairwise query, whose query graph is a complete bipartite graph.  On a
k-NN graph of delivery points we compare Multi-BiDS against SSSP from
the smaller side (which *is* a vertex cover of K_{a,b}).

Run: ``python examples/logistics_pairwise.py``
"""

import numpy as np

import repro
from repro.core.query_graph import QueryGraph
from repro.graphs import knn_graph
from repro.graphs.connectivity import largest_component
from repro.graphs.knn import clustered_points


def main() -> None:
    # Delivery points cluster around towns: a clustered point cloud,
    # connected as a 5-NN graph with Euclidean edge lengths.
    points = clustered_points(12_000, dim=2, clusters=15, seed=5)
    graph = knn_graph(points, k=5, name="delivery-knn")
    print(f"graph: {graph}")

    rng = np.random.default_rng(8)
    lcc = largest_component(graph)
    chosen = rng.choice(lcc, size=7, replace=False)
    warehouses = [int(v) for v in chosen[:3]]
    stores = [int(v) for v in chosen[3:]]
    print(f"warehouses: {warehouses}")
    print(f"stores:     {stores}\n")

    qg = QueryGraph.bipartite(warehouses, stores)
    cover = [int(qg.vertices[i]) for i in qg.vertex_cover()]
    print(f"{qg}; vertex cover = {cover} (the smaller side)\n")

    multi = repro.batch_ppsp(graph, qg, method="multi")
    vc = repro.batch_ppsp(graph, qg, method="sssp-vc")
    print(f"Multi-BiDS: {multi.num_searches} searches, work = {int(multi.meter.work)}")
    print(f"VC-SSSP:    {vc.num_searches} SSSPs,    work = {int(vc.meter.work)}\n")

    print("warehouse -> store distance matrix:")
    header = "".join(f"{s:>12d}" for s in stores)
    print(" " * 10 + header)
    for w in warehouses:
        row = "".join(f"{multi.distance(w, s):12.2f}" for s in stores)
        print(f"{w:>10d}{row}")
        for s in stores:
            assert abs(multi.distance(w, s) - vc.distance(w, s)) < 1e-6

    # Assign each store to its closest warehouse — the downstream use.
    print("\nstore assignments:")
    for s in stores:
        best = min(warehouses, key=lambda w: multi.distance(w, s))
        print(f"  store {s:6d} <- warehouse {best:6d} ({multi.distance(best, s):.2f})")


if __name__ == "__main__":
    main()
