"""Directed routing: one-way streets and directed batch queries.

The paper's techniques "also apply to directed graphs" (Sec. 1, 4.4):
backward searches traverse the reverse graph, and batch query points
split into source/target copies forming a bipartite query graph whose
*optimal* vertex cover comes from König's theorem.  This example builds
a downtown grid where many streets are one-way, runs directed BiDS both
ways (asymmetric distances!), and dispatches a directed batch.

Run: ``python examples/one_way_streets.py``
"""

import numpy as np

import repro
from repro.core.query_graph import QueryGraph, vertex_cover
from repro.graphs import from_edges
from repro.heuristics.geometric import euclidean_distance


def build_downtown(blocks: int = 24, seed: int = 12):
    """A blocks x blocks street grid; alternating rows/columns one-way."""
    rng = np.random.default_rng(seed)
    n = blocks * blocks
    vid = np.arange(n).reshape(blocks, blocks)
    coords = np.stack(np.meshgrid(np.arange(blocks), np.arange(blocks), indexing="ij"),
                      axis=-1).reshape(n, 2).astype(float) * 100.0
    src, dst = [], []
    for r in range(blocks):
        for c in range(blocks - 1):
            a, b = vid[r, c], vid[r, c + 1]
            if r % 2 == 0:
                src.append(a), dst.append(b)       # eastbound one-way
            else:
                src.append(b), dst.append(a)       # westbound one-way
            if rng.random() < 0.3:                 # some two-way avenues
                src.append(b if r % 2 == 0 else a)
                dst.append(a if r % 2 == 0 else b)
    for c in range(blocks):
        for r in range(blocks - 1):
            a, b = vid[r, c], vid[r + 1, c]
            if c % 2 == 0:
                src.append(a), dst.append(b)
            else:
                src.append(b), dst.append(a)
            if rng.random() < 0.3:
                src.append(b if c % 2 == 0 else a)
                dst.append(a if c % 2 == 0 else b)
    src, dst = np.array(src), np.array(dst)
    w = euclidean_distance(coords[src], coords[dst]) * rng.uniform(1.0, 1.2, len(src))
    return from_edges(src, dst, w, num_vertices=n, directed=True,
                      coords=coords, coord_system="euclidean", name="downtown")


def main() -> None:
    graph = build_downtown()
    print(f"graph: {graph} (one-way streets)\n")

    depot, mall = 5, graph.num_vertices - 9
    there = repro.ppsp(graph, depot, mall, method="bids")
    back = repro.ppsp(graph, mall, depot, method="bids")
    print(f"depot -> mall: {there.distance:9.1f} m  ({len(there.path())} intersections)")
    print(f"mall -> depot: {back.distance:9.1f} m  ({len(back.path())} intersections)")
    print(f"one-way detour asymmetry: {abs(there.distance - back.distance):.1f} m\n")

    # A dispatch batch: three couriers, two drop-off points; the same
    # vertex appears as both a source and a target, which is exactly the
    # case needing separate source/target copies on directed graphs.
    rng = np.random.default_rng(3)
    a, b, c, d = (int(v) for v in rng.choice(graph.num_vertices, size=4, replace=False))
    pairs = [(a, c), (b, c), (c, d), (a, d)]
    qg = QueryGraph(pairs, directed=True)
    cover = vertex_cover(qg)
    print(f"batch {pairs}")
    print(f"query graph: {qg.num_vertices} copies "
          f"({(qg.direction == 1).sum()} source-side, {(qg.direction == -1).sum()} target-side)")
    print("optimal SSSP cover (König):",
          [(int(qg.vertices[i]), "fwd" if qg.direction[i] > 0 else "bwd") for i in cover])

    multi = repro.batch_ppsp(graph, qg, method="multi")
    vc = repro.batch_ppsp(graph, qg, method="sssp-vc")
    print(f"\nMulti-BiDS ({multi.num_searches} searches) vs VC-SSSP ({vc.num_searches} SSSPs):")
    for s, t in pairs:
        dm, dv = multi.distances[(s, t)], vc.distances[(s, t)]
        assert abs(dm - dv) < 1e-6
        print(f"  {s:5d} -> {t:5d}: {dm:9.1f} m")
    print("\nboth strategies agree on every directed query")


if __name__ == "__main__":
    main()
