"""ALT landmarks: goal-directed search without coordinates.

Social networks have no geometry, so the paper's A* family sits out
there (its Tab. 4 shows "-" cells).  This example shows the extension
that fills the gap: preprocess a handful of landmark SSSPs, derive
triangle-inequality lower bounds, and suddenly BiD-A* runs — and
prunes — on a power-law graph.

It also shows the preprocessing trade-off the paper discusses in
Sec. 7: landmarks pay k SSSPs up front to make every later query
cheaper, which wins only if you ask enough queries.

Run: ``python examples/alt_navigation.py``
"""

import time

import numpy as np

import repro
from repro.core.engine import run_policy
from repro.core.policies import BiDAStar, BiDS, EarlyTermination
from repro.graphs import social_graph
from repro.graphs.connectivity import largest_component
from repro.heuristics.landmarks import LandmarkSet


def main() -> None:
    graph = social_graph(15_000, avg_degree=14, seed=31, name="social-alt")
    print(f"graph: {graph} (no coordinates)\n")

    t0 = time.perf_counter()
    landmarks = LandmarkSet(graph, k=8)
    prep = time.perf_counter() - t0
    print(f"preprocessed {landmarks.k} landmarks in {prep:.2f}s "
          f"({landmarks.k} SSSP runs)\n")

    rng = np.random.default_rng(6)
    lcc = largest_component(graph)
    queries = [tuple(int(v) for v in rng.choice(lcc, size=2, replace=False))
               for _ in range(5)]

    print(f"{'query':>16} {'ET work':>10} {'BiDS work':>10} {'ALT BiD-A* work':>16}")
    totals = {"et": 0, "bids": 0, "alt": 0}
    for s, t in queries:
        et = run_policy(graph, EarlyTermination(s, t))
        bids = run_policy(graph, BiDS(s, t))
        alt = run_policy(
            graph,
            BiDAStar(
                s, t,
                heuristic_to_source=landmarks.heuristic_to(s),
                heuristic_to_target=landmarks.heuristic_to(t),
            ),
        )
        assert abs(alt.answer - et.answer) < 1e-6 * max(et.answer, 1.0)
        assert abs(bids.answer - et.answer) < 1e-6 * max(et.answer, 1.0)
        totals["et"] += et.relaxations
        totals["bids"] += bids.relaxations
        totals["alt"] += alt.relaxations
        print(f"{f'{s}->{t}':>16} {et.relaxations:>10} {bids.relaxations:>10} "
              f"{alt.relaxations:>16}")

    print(f"\ntotal relaxations: ET={totals['et']}  BiDS={totals['bids']}  "
          f"ALT-BiD-A*={totals['alt']}")
    print(f"ALT-BiD-A* does {100.0 * totals['alt'] / totals['et']:.0f}% "
          f"of ET's work (after paying {landmarks.k} SSSPs of preprocessing)")


if __name__ == "__main__":
    main()
