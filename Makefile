# Convenience targets for the Orionet reproduction.

PYTHON ?= python

.PHONY: install test test-slow test-pool test-service test-hedge test-kernels soak chaos verify-chaos serve bench stats reproduce reproduce-tiny report examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Deterministic fault-injection suite: every corruption class must be
# detected by checked mode or recovered by the fallback chain.
chaos:
	$(PYTHON) -m pytest tests/robustness/ -q

# Certificate chaos sweep: every bit-flip corruption class (distances,
# cache payloads, checkpoint sidecars) x every serve method x seeds,
# checked end-to-end against ground truth — zero silent wrong answers.
verify-chaos:
	$(PYTHON) -m pytest tests/verify/ -q -m ''

# Serve-pipeline suite: checkpoint/resume determinism, deadlines,
# circuit breakers, load shedding (docs/robustness.md).
serve:
	$(PYTHON) -m pytest tests/serve/ -q

# Nightly-only stress/invariant suites excluded from the default run.
test-slow:
	$(PYTHON) -m pytest tests/ -m slow

# Multi-process backend suites: differential serial-vs-pool determinism,
# worker-kill chaos, and shared-memory leak checks (fork-heavy, not
# tier-1; POOL_SMOKE=1 trims the matrix to the CI slice).
test-pool:
	$(PYTHON) -m pytest tests/parallel/test_pool_differential.py \
		tests/parallel/test_pool_chaos.py tests/graphs/test_shm.py -q -m ''

# Query-service process-pool suites: the differential invariant (service
# answers bit-identical to serial replays of its own coalesced batches)
# re-checked with execution on a persistent warm pool at 1 and 2 workers.
test-service:
	$(PYTHON) -m pytest tests/serve/test_service_differential.py -q -m ''

# Straggler chaos: a pool worker stalls mid-shard (never killed) across
# every batch method x 1/2/4 workers — hedged runs beat the stall with
# bit-identical answers, deadline-only runs time out and recover via
# the breaker/resilient chain (docs/robustness.md).
test-hedge:
	$(PYTHON) -m pytest tests/parallel/test_pool_stall_chaos.py -q -m hedge

# Scatter-min kernel suites: property/bit-identity checks for every
# implementation plus the cross-kernel differential slice (all methods,
# all batch solvers, answers byte-equal to the ufunc_at reference).
test-kernels:
	$(PYTHON) -m pytest tests/kernels/ -q

# Deterministic soak harness: N seeded clients, a 2-worker pool,
# injected worker SIGKILLs, and clock-driven deadline expiry.  Zero
# silent wrong answers, zero stuck futures, zero shm leaks.
soak:
	$(PYTHON) -m pytest tests/serve/test_service_soak.py -q -m soak

# Nightly benchmark pass: the seeded regression workload (gated against
# the newest BENCH_*.json) plus the pytest-benchmark micro suites.
bench:
	$(PYTHON) -m repro bench --scale small --check
	$(PYTHON) -m pytest benchmarks/ -m bench --benchmark-only

# Seeded observability workload: text exposition of every metric family
# (see docs/observability.md for the catalogue).
stats:
	$(PYTHON) -m repro stats

# Regenerate every paper artifact (Tab. 3/4, Fig. 1/4-7) + extensions.
reproduce:
	$(PYTHON) -m repro.experiments.run_all --scale small
	$(PYTHON) -m repro.experiments.report --scale small

reproduce-tiny:
	$(PYTHON) -m repro.experiments.run_all --scale tiny
	$(PYTHON) -m repro.experiments.report --scale tiny

report:
	$(PYTHON) -m repro.experiments.report --scale small

examples:
	for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf .pytest_cache .benchmarks .hypothesis build src/*.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
