"""Overload-control unit tests: backoff, budgets, AIMD, CoDel, ladder.

The controllers are exercised directly under :class:`SimClock`, then
end-to-end through an inline :class:`QueryService` (door shedding,
degraded flushes, adaptive pressure).  Everything here is simulated
time — tier-1 fast and deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.robustness import SimClock
from repro.serve import (
    SHED,
    AIMDLimiter,
    CoDelShedder,
    OverloadController,
    QueryService,
    RetryBudget,
    next_backoff,
)


class TestNextBackoff:
    def test_zero_base_disables_backoff(self):
        rng = np.random.default_rng(0)
        assert next_backoff(1.0, base=0.0, cap=10.0, rng=rng) == 0.0

    def test_seeded_sequence_is_reproducible(self):
        def seq(seed):
            rng = np.random.default_rng(seed)
            delays, prev = [], 0.1
            for _ in range(6):
                prev = next_backoff(prev, base=0.1, cap=5.0, rng=rng)
                delays.append(prev)
            return delays

        assert seq(7) == seq(7)
        assert seq(7) != seq(8)

    def test_bounds(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            d = next_backoff(100.0, base=1.0, cap=2.0, rng=rng)
            assert 1.0 <= d <= 2.0

    def test_decorrelated_growth_from_previous(self):
        # the upper end of the draw tracks 3x the previous delay
        rng = np.random.default_rng(1)
        draws = [next_backoff(10.0, base=0.1, cap=1e9, rng=rng)
                 for _ in range(50)]
        assert max(draws) > 10.0  # reaches beyond the previous delay
        assert all(d <= 30.0 for d in draws)


class TestRetryBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(capacity=-1.0)
        with pytest.raises(ValueError):
            RetryBudget(refill_per_s=-0.1)

    def test_drains_then_denies_per_kind(self):
        clock = SimClock()
        budget = RetryBudget(capacity=2.0, refill_per_s=0.0, clock=clock)
        assert budget.try_acquire(kind="hedge")
        assert budget.try_acquire(kind="retry")
        assert not budget.try_acquire(kind="hedge")
        assert not budget.try_acquire(kind="retry")
        assert budget.denied == {"hedge": 1, "retry": 1}
        assert budget.granted == 2

    def test_refills_over_simulated_time(self):
        clock = SimClock()
        budget = RetryBudget(capacity=2.0, refill_per_s=1.0, clock=clock)
        assert budget.try_acquire() and budget.try_acquire()
        assert not budget.try_acquire()
        clock.advance(1.5)
        assert budget.available() == pytest.approx(1.5)
        assert budget.try_acquire()
        assert not budget.try_acquire()

    def test_refill_caps_at_capacity(self):
        clock = SimClock()
        budget = RetryBudget(capacity=3.0, refill_per_s=10.0, clock=clock)
        clock.advance(100.0)
        assert budget.available() == pytest.approx(3.0)


class TestAIMD:
    def test_validation(self):
        with pytest.raises(ValueError):
            AIMDLimiter(initial=0.5, min_limit=1.0)
        with pytest.raises(ValueError):
            AIMDLimiter(decrease=1.0)
        with pytest.raises(ValueError):
            AIMDLimiter(decrease=0.0)

    def test_max_limit_defaults_to_initial(self):
        aimd = AIMDLimiter(initial=4.0)
        aimd.on_success()
        assert aimd.limit == 4.0  # healthy never exceeds the ceiling

    def test_halves_on_overload_and_recovers_additively(self):
        aimd = AIMDLimiter(initial=4.0, increase=0.5, decrease=0.5)
        aimd.on_overload()
        assert aimd.limit == 2.0
        aimd.on_success()
        assert aimd.limit == 2.5
        for _ in range(10):
            aimd.on_success()
        assert aimd.limit == 4.0

    def test_floor_at_min_limit(self):
        aimd = AIMDLimiter(initial=4.0, min_limit=1.0)
        for _ in range(10):
            aimd.on_overload()
        assert aimd.limit == 1.0
        assert aimd.overloads == 10


class TestCoDel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoDelShedder(target_s=0.0)
        with pytest.raises(ValueError):
            CoDelShedder(interval_s=0.0)

    def test_transient_burst_does_not_trip(self):
        clock = SimClock()
        codel = CoDelShedder(target_s=0.1, interval_s=1.0, clock=clock)
        assert not codel.observe(0.5)  # above target, timer starts
        clock.advance(0.5)
        assert not codel.observe(0.5)  # still inside the interval
        assert not codel.observe(0.01)  # drained: resets the timer
        clock.advance(2.0)
        assert not codel.observe(0.5)  # fresh excursion, not overloaded

    def test_persistent_delay_trips_after_interval(self):
        clock = SimClock()
        codel = CoDelShedder(target_s=0.1, interval_s=1.0, clock=clock)
        assert not codel.observe(0.2)
        clock.advance(1.0)
        assert codel.observe(0.2)
        assert codel.overloaded
        assert not codel.observe(0.05)  # one good batch clears it


class TestController:
    def _ctl(self, clock, **kwargs):
        kwargs.setdefault("target_ms", 100.0)
        kwargs.setdefault("interval_ms", 1000.0)
        return OverloadController(clock=clock, **kwargs)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._ctl(SimClock(), shed_multiple=0.0)
        with pytest.raises(ValueError):
            self._ctl(SimClock(), degrade_budget_ms=0.0)

    def test_door_shed_threshold(self):
        ctl = self._ctl(SimClock(), shed_multiple=8.0)
        assert not ctl.should_shed(oldest_sojourn_s=0.8)
        assert ctl.should_shed(oldest_sojourn_s=0.81)
        assert ctl.counts["shed"] == 1

    def test_ladder_is_exact_to_shed_without_degrade_budget(self):
        clock = SimClock()
        ctl = self._ctl(clock)  # no degrade_budget_ms
        ctl.flush_mode(0.5)
        clock.advance(2.0)
        assert ctl.flush_mode(0.5) == "exact"  # overloaded, but no budget
        assert ctl.codel.overloaded

    def test_ladder_degrades_with_budget_configured(self):
        clock = SimClock()
        ctl = self._ctl(clock, degrade_budget_ms=250.0)
        assert ctl.flush_mode(0.5) == "exact"
        clock.advance(2.0)
        assert ctl.flush_mode(0.5) == "inexact"
        assert ctl.counts == {"exact": 1, "inexact": 1, "shed": 0}

    def test_pressure_limit_tracks_aimd(self):
        ctl = self._ctl(SimClock(), aimd=AIMDLimiter(initial=4.0))
        assert ctl.pressure_limit(8) == 32
        ctl.on_batch_done({"timeout": 1})
        assert ctl.pressure_limit(8) == 16
        ctl.on_batch_done({"ok": 5})
        assert ctl.pressure_limit(8) == 20
        # never below one full batch
        for _ in range(10):
            ctl.on_batch_done({"failed": 1})
        assert ctl.pressure_limit(8) == 8


def _service(graph, **kwargs):
    clock = kwargs.pop("clock", None) or SimClock()
    kwargs.setdefault("method", "multi")
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("max_wait_ms", 100.0)
    return QueryService(graph, clock=clock, **kwargs), clock


class TestServiceIntegration:
    def test_healthy_service_never_sheds_or_degrades(self, serve_graph,
                                                     serve_pairs):
        svc, clock = _service(serve_graph)
        futs = [svc.submit(s, t) for s, t in serve_pairs[:4]]
        svc.close()
        assert all(f.result().outcome == "ok" for f in futs)
        stats = svc.stats()
        assert stats["shed"] == 0
        assert stats["degraded"] == 0
        assert stats["overload"]["decisions"]["inexact"] == 0

    def test_stuck_queue_sheds_new_queries_at_the_door(self, serve_graph,
                                                       serve_pairs):
        svc, clock = _service(serve_graph)
        first = svc.submit(*serve_pairs[0])
        clock.advance(1.0)  # oldest sojourn past 8 x 100 ms
        shed = svc.submit(*serve_pairs[1])
        assert shed.done()  # refused synchronously
        res = shed.result()
        assert res.outcome == SHED
        assert res.batch_index == -1
        assert res.distance == float("inf")
        # duplicates of a queued query still coalesce instead of shedding
        dup = svc.submit(*serve_pairs[0])
        assert not dup.done()
        svc.close()
        assert first.result().outcome == "ok"
        assert dup.result().outcome == "ok"
        assert svc.stats()["shed"] == 1

    def test_persistent_delay_degrades_flushes(self, serve_graph,
                                               serve_pairs):
        svc, clock = _service(serve_graph, degrade_budget_ms=500.0)
        svc.submit(*serve_pairs[0])
        clock.advance(0.3)
        svc.flush()  # above target: starts the CoDel timer, still exact
        svc.submit(*serve_pairs[1])
        clock.advance(1.2)
        svc.flush()  # persistently above target for > interval: inexact
        stats = svc.stats()
        assert stats["degraded"] == 1
        assert stats["overload"]["decisions"]["inexact"] == 1
        svc.close()

    def test_overload_false_restores_static_behaviour(self, serve_graph,
                                                      serve_pairs):
        svc, clock = _service(serve_graph, overload=False)
        svc.submit(*serve_pairs[0])
        clock.advance(5.0)
        late = svc.submit(*serve_pairs[1])
        assert not late.done()  # no door shedding without the controller
        svc.close()
        assert "overload" not in svc.stats()
        assert late.result().outcome == "ok"

    def test_pressure_limit_adapts_then_recovers(self, serve_graph):
        svc, _ = _service(serve_graph, max_batch=4)  # pressure 16
        assert svc.stats()["overload"]["pressure_limit"] == 16
        svc.overload.on_batch_done({"timeout": 1})
        assert svc.stats()["overload"]["pressure_limit"] == 8
        for _ in range(10):
            svc.overload.on_batch_done({"ok": 4})
        assert svc.stats()["overload"]["pressure_limit"] == 16
        svc.close()

    def test_shared_controller_backfills_observer(self, serve_graph):
        from repro.obs import Observer

        obs = Observer()
        ctl = OverloadController(clock=SimClock())
        svc, _ = _service(serve_graph, overload=ctl, observer=obs)
        assert ctl.observer is obs
        svc.close()
