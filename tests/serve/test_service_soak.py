"""Deterministic soak/load harness for the query service.

Marked ``soak`` (excluded from tier-1; run via ``make soak``).  N seeded
clients stream queries at a 2-worker persistent pool while a
:class:`FaultInjector` SIGKILLs workers mid-shard and the shared
:class:`SimClock` expires deadlines — the compound-failure regime a
serving host actually lives in.  The harness asserts the three
invariants that define "survived":

* **zero silent wrong answers** — every answer served with an exact
  outcome equals ground-truth Dijkstra; every inexact answer is a
  sound upper bound; everything else is an *explicit* non-answer
  (``shed``/``timeout``/``failed``), never a wrong distance;
* **zero stuck futures** — every submission resolves by close();
* **zero shm leaks** — ``/dev/shm`` is byte-for-byte back to its
  pre-test population after the pool closes, worker kills included.
"""

from __future__ import annotations

import glob
import math
import os

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra
from repro.graphs import road_graph
from repro.graphs.connectivity import largest_component
from repro.robustness import FaultInjector, SimClock
from repro.serve import OUTCOMES, QueryService

pytestmark = pytest.mark.soak


def _shm_segments() -> set[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - exotic host
        pytest.skip("no /dev/shm on this platform")
    return set(glob.glob("/dev/shm/psm_*"))


def _truth(graph, cache, s: int, t: int) -> float:
    if s not in cache:
        cache[s] = dijkstra(graph, s)
    return float(cache[s][t])


def _assert_no_silent_wrong_answers(graph, futures):
    cache: dict[int, object] = {}
    outcomes: dict[str, int] = {}
    for fut in futures:
        assert fut.done(), f"stuck future {fut.key}"
        res = fut.result()
        outcomes[res.outcome] = outcomes.get(res.outcome, 0) + 1
        assert res.outcome in OUTCOMES
        s, t = fut.key
        if res.outcome in ("ok", "repaired"):
            truth = _truth(graph, cache, s, t)
            if math.isfinite(truth):
                assert res.distance == pytest.approx(truth, rel=1e-9), (
                    f"silent wrong answer for {fut.key}: "
                    f"served {res.distance}, truth {truth}"
                )
            else:
                assert math.isinf(res.distance)
        elif res.outcome == "inexact":
            truth = _truth(graph, cache, s, t)
            assert res.distance >= truth - 1e-9 * max(1.0, abs(truth)), (
                f"inexact answer below truth for {fut.key}"
            )
        elif res.outcome == "timeout":
            assert math.isinf(res.distance)
    return outcomes


def _client_schedules(graph, *, clients: int, queries: int, seed: int):
    """One seeded arrival schedule per client: (dt, s, t, deadline_dt)."""
    lcc = [int(v) for v in largest_component(graph)]
    schedules = []
    for c in range(clients):
        rng = np.random.default_rng(seed + 101 * c)
        events = []
        for _ in range(queries):
            s = int(rng.choice(lcc))
            t = int(rng.choice(lcc))
            dt = float(rng.uniform(0.0, 0.02))
            # A fifth of the traffic carries a deadline tight enough
            # that clock jitter expires some of it while queued.
            deadline_dt = float(rng.uniform(0.01, 0.06)) if rng.random() < 0.2 else None
            events.append((dt, s, t, deadline_dt))
        schedules.append(events)
    return schedules


def _run_soak(graph, svc, clock, schedules):
    """Interleave the clients round-robin on the shared clock."""
    futures = []
    cursors = [0] * len(schedules)
    remaining = sum(len(s) for s in schedules)
    while remaining:
        for ci, events in enumerate(schedules):
            if cursors[ci] >= len(events):
                continue
            dt, s, t, deadline_dt = events[cursors[ci]]
            cursors[ci] += 1
            remaining -= 1
            clock.advance(dt)
            svc.tick()
            deadline = None if deadline_dt is None else clock() + deadline_dt
            futures.append(svc.submit(s, t, deadline=deadline))
    clock.advance(1.0)
    svc.tick()
    return futures


def test_soak_multi_client_with_worker_kills_and_deadlines():
    before = _shm_segments()
    graph = road_graph(10, 10, seed=17, name="soak-road")
    clock = SimClock()
    # Two mid-shard SIGKILLs, spread across the run: each poisons the
    # executor, fails that batch over to the per-query chain, and the
    # next dispatch respawns workers transparently.
    injector = FaultInjector(seed=5, kill_worker_at=0, max_fires=2)
    svc = QueryService(
        graph, method="multi", max_batch=8, max_wait_ms=30.0,
        backend="process", workers=2, clock=clock,
        fault_injector=injector,
        breaker_threshold=3, breaker_cooldown=5.0,
    )
    try:
        svc.warm()
        schedules = _client_schedules(graph, clients=6, queries=25, seed=23)
        futures = _run_soak(graph, svc, clock, schedules)
    finally:
        svc.close()

    assert len(futures) == 6 * 25
    outcomes = _assert_no_silent_wrong_answers(graph, futures)
    stats = svc.stats()
    assert stats["pending"] == 0
    assert stats["submitted"] == len(futures)
    assert outcomes.get("ok", 0) > 0
    # The injected kills actually fired and the pool repaired itself.
    assert len(injector.fired) == 2
    assert stats["respawns"] >= 1
    assert _shm_segments() == before, "leaked /dev/shm segments"


def test_mini_soak_one_worker_kill():
    """The CI service-smoke variant: seconds, one injected kill."""
    before = _shm_segments()
    graph = road_graph(8, 8, seed=17, name="soak-mini")
    clock = SimClock()
    injector = FaultInjector(seed=9, kill_worker_at=0, max_fires=1)
    svc = QueryService(
        graph, method="multi", max_batch=6, max_wait_ms=25.0,
        backend="process", workers=2, clock=clock,
        fault_injector=injector,
    )
    try:
        svc.warm()
        schedules = _client_schedules(graph, clients=3, queries=10, seed=41)
        futures = _run_soak(graph, svc, clock, schedules)
    finally:
        svc.close()
    assert len(futures) == 30
    _assert_no_silent_wrong_answers(graph, futures)
    assert len(injector.fired) == 1
    assert svc.stats()["pending"] == 0
    assert _shm_segments() == before


def test_soak_serial_backend_control():
    """Same harness, serial backend: isolates service-layer bugs from
    pool-layer ones when the process variants fail."""
    graph = road_graph(8, 8, seed=17, name="soak-serial")
    clock = SimClock()
    svc = QueryService(graph, method="multi", max_batch=8, max_wait_ms=30.0,
                       clock=clock)
    try:
        schedules = _client_schedules(graph, clients=4, queries=15, seed=31)
        futures = _run_soak(graph, svc, clock, schedules)
    finally:
        svc.close()
    assert len(futures) == 60
    _assert_no_silent_wrong_answers(graph, futures)
    assert svc.stats()["pending"] == 0
