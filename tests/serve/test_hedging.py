"""Shard supervision unit tests: deadlines, hedge races, budgets.

Every scenario runs on :class:`SimShardTransport` over a
:class:`SimClock`, so timeout and hedge decisions are exact simulated
events — no sleeping, no flaky races.  The real process pool gets its
own fork-heavy suite (``tests/parallel/test_pool_stall_chaos.py``,
marker ``hedge``).
"""

from __future__ import annotations

import pytest

from repro.obs import Observer
from repro.robustness import SimClock
from repro.serve import (
    HedgePolicy,
    LatencyEstimator,
    RetryBudget,
    ShardTimeout,
    SimShardTransport,
    supervise_shards,
)
from repro.serve.hedging import FAULT_TASK_KEYS


def run_supervised(latency, tasks, **kwargs):
    clock = kwargs.pop("clock", None) or SimClock()
    transport = SimShardTransport(clock, latency, run=kwargs.pop("run", None))
    results, report = supervise_shards(transport, tasks, clock=clock, **kwargs)
    return results, report, transport, clock


class TestPolicyAndEstimator:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(factor=0.0)
        with pytest.raises(ValueError):
            HedgePolicy(min_delay_s=-1.0)
        with pytest.raises(ValueError):
            HedgePolicy(min_delay_s=2.0, max_delay_s=1.0)
        with pytest.raises(ValueError):
            HedgePolicy(jitter=-0.1)

    def test_estimator_cold_start_uses_initial_delay(self):
        est = LatencyEstimator(seed=0)
        policy = HedgePolicy(initial_delay_s=0.25, jitter=0.0)
        assert est.median() is None
        assert est.hedge_delay(policy) == pytest.approx(0.25)

    def test_estimator_median_drives_delay(self):
        est = LatencyEstimator(seed=0)
        for lat in (0.1, 0.2, 0.3):
            est.observe(lat)
        assert est.median() == pytest.approx(0.2)
        policy = HedgePolicy(factor=3.0, jitter=0.0)
        assert est.hedge_delay(policy) == pytest.approx(0.6)

    def test_estimator_window_trims_oldest(self):
        est = LatencyEstimator(window=2, seed=0)
        for lat in (10.0, 1.0, 2.0):
            est.observe(lat)
        assert len(est) == 2
        assert est.median() == pytest.approx(1.5)

    def test_estimator_window_validation(self):
        with pytest.raises(ValueError):
            LatencyEstimator(window=0)

    def test_delay_clamped_to_policy_bounds(self):
        est = LatencyEstimator(seed=0)
        est.observe(1e-6)
        policy = HedgePolicy(min_delay_s=0.05, max_delay_s=30.0, jitter=0.0)
        assert est.hedge_delay(policy) == pytest.approx(0.05)
        est2 = LatencyEstimator(seed=0)
        est2.observe(1e6)
        assert est2.hedge_delay(policy) == pytest.approx(30.0)

    def test_seeded_jitter_is_reproducible(self):
        policy = HedgePolicy(jitter=0.5)
        a = LatencyEstimator(seed=42)
        b = LatencyEstimator(seed=42)
        assert [a.hedge_delay(policy) for _ in range(5)] == [
            b.hedge_delay(policy) for _ in range(5)
        ]


class TestSupervise:
    def test_healthy_shards_never_hedge(self):
        results, report, transport, _ = run_supervised(
            lambda task, lane: 0.05,
            [{"shard": i} for i in range(4)],
            policy=HedgePolicy(),
        )
        assert [r["shard"] for r in results] == [0, 1, 2, 3]
        assert report.hedges == 0
        assert report.hedge_wins == 0
        assert transport.cancelled == []

    def test_hedge_outraces_wedged_primary(self):
        def latency(task, lane):
            if lane == "hedge":
                return 0.02
            return 60.0 if task["shard"] == 1 else 0.05

        results, report, transport, clock = run_supervised(
            latency, [{"shard": i} for i in range(3)],
            policy=HedgePolicy(),
        )
        assert [r["shard"] for r in results] == [0, 1, 2]
        assert report.hedges == 1
        assert report.hedge_wins == 1
        assert report.primary_wins_hedged == 0
        # the wedged primary was cancelled, and no 60 s was "slept"
        assert len(transport.cancelled) == 1
        assert clock() < 1.0

    def test_primary_wins_its_own_hedge_race(self):
        def latency(task, lane):
            # primary finishes at 0.4 s, after the ~0.25-0.3 s cold
            # hedge delay but well before the 5 s hedge copy.
            return 5.0 if lane == "hedge" else 0.4

        results, report, transport, _ = run_supervised(
            latency, [{"shard": 0}], policy=HedgePolicy(),
        )
        assert results[0] == {"shard": 0}
        assert report.hedges == 1
        assert report.primary_wins_hedged == 1
        assert report.hedge_wins == 0
        assert len(transport.cancelled) == 1  # the losing hedge

    def test_deadline_raises_shard_timeout_and_cancels(self):
        clock = SimClock()
        transport = SimShardTransport(clock, lambda task, lane: 60.0)
        with pytest.raises(ShardTimeout) as err:
            supervise_shards(
                transport, [{"shard": 0}, {"shard": 1}],
                clock=clock, deadline=0.5,
            )
        assert err.value.shard in (0, 1)
        assert err.value.deadline_s == pytest.approx(0.5)
        # nothing is left running: both primaries were cancelled
        assert sorted(transport.cancelled) == [0, 1]
        assert clock() == pytest.approx(0.5)

    def test_deadline_validation(self):
        clock = SimClock()
        transport = SimShardTransport(clock, lambda task, lane: 0.01)
        with pytest.raises(ValueError):
            supervise_shards(transport, [{}], clock=clock, deadline=0.0)

    def test_fast_shards_beat_their_deadline(self):
        results, report, _, _ = run_supervised(
            lambda task, lane: 0.05,
            [{"shard": i} for i in range(3)],
            deadline=1.0,
        )
        assert len(results) == 3
        assert report.hedges == 0

    def test_budget_denial_skips_hedge_but_shard_completes(self):
        clock = SimClock()
        budget = RetryBudget(capacity=0.0, refill_per_s=0.0, clock=clock)
        results, report, transport, _ = run_supervised(
            lambda task, lane: 0.6 if lane == "primary" else 0.02,
            [{"shard": 0}],
            clock=clock, policy=HedgePolicy(), retry_budget=budget,
        )
        assert results[0] == {"shard": 0}  # primary still answered
        assert report.hedges == 0
        assert report.hedges_denied == 1
        assert budget.denied == {"hedge": 1}

    def test_budget_funds_first_hedge_then_denies_second(self):
        clock = SimClock()
        budget = RetryBudget(capacity=1.0, refill_per_s=0.0, clock=clock)
        results, report, _, _ = run_supervised(
            lambda task, lane: 0.02 if lane == "hedge" else 60.0,
            [{"shard": 0}, {"shard": 1}],
            clock=clock, deadline=90.0,
            policy=HedgePolicy(), retry_budget=budget,
        )
        assert report.hedges == 1
        assert report.hedges_denied == 1
        assert report.hedge_wins == 1
        # the denied shard's primary eventually finished on its own
        assert [r["shard"] for r in results] == [0, 1]

    def test_hedge_copy_strips_fault_keys(self):
        seen = []

        def run(task, lane):
            seen.append((lane, dict(task)))
            return task

        run_supervised(
            lambda task, lane: 0.02 if lane == "hedge" else 60.0,
            [{"shard": 0, "kill": True, "stall": 2.0}],
            policy=HedgePolicy(), run=run,
        )
        hedge_tasks = [t for lane, t in seen if lane == "hedge"]
        assert hedge_tasks, "hedge never ran"
        for key in FAULT_TASK_KEYS:
            assert key not in hedge_tasks[0]

    def test_winning_attempt_exception_propagates(self):
        boom = RuntimeError("shard exploded")
        clock = SimClock()
        transport = SimShardTransport(
            clock, lambda task, lane: 0.05, run=lambda task, lane: boom
        )
        with pytest.raises(RuntimeError, match="shard exploded"):
            supervise_shards(transport, [{"shard": 0}], clock=clock)

    def test_simultaneous_finish_resolves_once(self):
        # primary and hedge complete in the same wait slice; the shard
        # must resolve exactly once and the run must terminate.
        def latency(task, lane):
            return 0.1 if lane == "hedge" else 0.4

        clock = SimClock()
        est = LatencyEstimator(seed=0)
        policy = HedgePolicy(
            initial_delay_s=0.3, jitter=0.0, min_delay_s=0.05
        )
        transport = SimShardTransport(clock, latency)
        results, report = supervise_shards(
            transport, [{"shard": 0}],
            clock=clock, policy=policy, estimator=est,
        )
        assert results == [{"shard": 0}]
        assert report.hedges == 1
        assert report.hedge_wins + report.primary_wins_hedged == 1

    def test_estimator_learns_from_supervised_run(self):
        est = LatencyEstimator(seed=0)
        run_supervised(
            lambda task, lane: 0.2,
            [{"shard": i} for i in range(5)],
            estimator=est,
        )
        assert len(est) == 5
        assert est.median() == pytest.approx(0.2)

    def test_observer_counters_cover_the_race(self):
        obs = Observer()

        def latency(task, lane):
            if lane == "hedge":
                return 0.02
            return 60.0 if task["shard"] == 0 else 0.05

        run_supervised(
            latency, [{"shard": 0}, {"shard": 1}],
            policy=HedgePolicy(), observer=obs,
        )
        reg = obs.registry
        assert reg.get("repro_hedge_launched_total").value() == 1
        assert reg.get("repro_hedge_races_total").value(winner="hedge") == 1

    def test_observer_counts_timeout_and_denial(self):
        obs = Observer()
        clock = SimClock()
        transport = SimShardTransport(clock, lambda task, lane: 60.0)
        with pytest.raises(ShardTimeout):
            supervise_shards(
                transport, [{"shard": 0}],
                clock=clock, deadline=0.5, observer=obs,
            )
        clock2 = SimClock()
        budget = RetryBudget(
            capacity=0.0, refill_per_s=0.0, clock=clock2, observer=obs
        )
        transport2 = SimShardTransport(
            clock2, lambda task, lane: 0.6 if lane == "primary" else 0.02
        )
        supervise_shards(
            transport2, [{"shard": 0}],
            clock=clock2, policy=HedgePolicy(), retry_budget=budget,
            observer=obs,
        )
        reg = obs.registry
        assert reg.get("repro_pool_shard_timeouts_total").value() == 1
        assert reg.get("repro_hedge_denied_total").value() == 1
        assert (
            reg.get("repro_overload_retry_denials_total").value(kind="hedge")
            == 1
        )
