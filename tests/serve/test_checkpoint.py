"""Checkpoint store: atomicity, fingerprints, corruption detection."""

import json
import os

import numpy as np
import pytest

from repro.serve import CheckpointStore, ServeQuery, batch_fingerprint
from repro.serve.checkpoint import CHECKPOINT_KIND

pytestmark = pytest.mark.serve


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path / "job.json")


def _queries(n=4):
    return [ServeQuery(i, i + 10, priority=i % 2) for i in range(n)]


def _save_minimal(store, fingerprint=None):
    store.save(
        {"fingerprint": fingerprint or {}, "completed_shards": [0]},
        s=[0, 1], t=[10, 11], dist=[1.5, 2.5], exact=[True, False],
    )


class TestRoundTrip:
    def test_save_load_preserves_distances_bitwise(self, store):
        dist = [np.nextafter(1.0, 2.0), float("inf"), 2.0 / 3.0]
        store.save({"completed_shards": [0]},
                   s=[0, 1, 2], t=[3, 4, 5], dist=dist, exact=[True, True, False])
        manifest, arrays = store.load()
        assert manifest["kind"] == CHECKPOINT_KIND
        assert arrays["dist"].dtype == np.float64
        # bit-identical: no JSON decimal round-trip of the float64 values
        assert [float(d) for d in arrays["dist"]] == dist
        assert list(arrays["exact"]) == [True, True, False]

    def test_load_absent_returns_none(self, store):
        assert store.load() is None

    def test_clear_removes_both_files(self, store):
        _save_minimal(store)
        assert store.exists()
        store.clear()
        assert not store.exists() and store.load() is None
        store.clear()  # idempotent

    def test_manifest_path_must_not_collide_with_sidecar(self, tmp_path):
        with pytest.raises(ValueError, match="npz"):
            CheckpointStore(tmp_path / "job.npz")

    def test_no_tmp_files_left_behind(self, store, tmp_path):
        _save_minimal(store)
        assert not [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]


class TestValidation:
    def test_rejects_foreign_json(self, store):
        _save_minimal(store)
        with open(store.path, "w") as fh:
            json.dump({"kind": "something-else"}, fh)
        with pytest.raises(ValueError, match="not a serve checkpoint"):
            store.load()

    def test_rejects_future_version(self, store):
        _save_minimal(store)
        with open(store.path) as fh:
            manifest = json.load(fh)
        manifest["version"] = 99
        with open(store.path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(ValueError, match="version"):
            store.load()

    def test_rejects_corrupt_sidecar_lengths(self, store):
        from repro.serve import CheckpointCorrupt
        from repro.serve.checkpoint import _sha256_file

        _save_minimal(store)
        np.savez(store.sidecar, s=np.array([0]), t=np.array([10, 11]),
                 dist=np.array([1.0, 2.0]), exact=np.array([True, False]))
        # keep the manifest checksum in agreement so the torn-array
        # length check itself is what fires
        manifest = json.load(open(store.path))
        manifest["sidecar_sha256"] = _sha256_file(store.sidecar)
        json.dump(manifest, open(store.path, "w"))
        with pytest.raises(CheckpointCorrupt, match="length"):
            store.load()


class TestFingerprint:
    def test_same_job_matches(self, serve_graph, store):
        fp = batch_fingerprint(serve_graph, _queries(), "multi", 2)
        _save_minimal(store, fp)
        manifest, _ = store.load()
        store.verify_fingerprint(manifest, fp)  # no raise

    @pytest.mark.parametrize(
        "mutate, named_field",
        [
            (lambda g, qs: (g, qs[:-1]), "num_queries"),
            (lambda g, qs: (g, list(reversed(qs))), "queries_sha256"),
        ],
    )
    def test_changed_queries_detected(self, serve_graph, store, mutate, named_field):
        fp = batch_fingerprint(serve_graph, _queries(), "multi", 2)
        _save_minimal(store, fp)
        manifest, _ = store.load()
        g2, q2 = mutate(serve_graph, _queries())
        fp2 = batch_fingerprint(g2, q2, "multi", 2)
        with pytest.raises(ValueError, match=named_field):
            store.verify_fingerprint(manifest, fp2)

    def test_changed_method_and_shard_size_detected(self, serve_graph, store):
        fp = batch_fingerprint(serve_graph, _queries(), "multi", 2)
        _save_minimal(store, fp)
        manifest, _ = store.load()
        with pytest.raises(ValueError, match="method"):
            store.verify_fingerprint(
                manifest, batch_fingerprint(serve_graph, _queries(), "sssp-vc", 2))
        with pytest.raises(ValueError, match="checkpoint_every"):
            store.verify_fingerprint(
                manifest, batch_fingerprint(serve_graph, _queries(), "multi", 3))

    def test_changed_graph_detected(self, serve_graph, store):
        from repro.graphs import road_graph

        fp = batch_fingerprint(serve_graph, _queries(), "multi", 2)
        _save_minimal(store, fp)
        manifest, _ = store.load()
        other = road_graph(8, 8, seed=99, name="serve-road")  # same name, other weights
        fp2 = batch_fingerprint(other, _queries(), "multi", 2)
        with pytest.raises(ValueError, match="graph"):
            store.verify_fingerprint(manifest, fp2)

    def test_priorities_are_part_of_identity(self, serve_graph):
        a = batch_fingerprint(serve_graph, _queries(), "multi", 2)
        bumped = _queries()
        bumped[0].priority += 1
        b = batch_fingerprint(serve_graph, bumped, "multi", 2)
        assert a["queries_sha256"] != b["queries_sha256"]

    def test_deadlines_are_not_part_of_identity(self, serve_graph):
        a = batch_fingerprint(serve_graph, _queries(), "multi", 2)
        dated = _queries()
        for q in dated:
            q.deadline = 123.0
        b = batch_fingerprint(serve_graph, dated, "multi", 2)
        assert a["queries_sha256"] == b["queries_sha256"]
