"""QueryService unit tests: coalescing rules, lifecycle, outcomes.

These drive the micro-batcher **inline** with a :class:`SimClock`
(``submit``/``tick``/``drain``), so every flush decision is
deterministic; the threaded dispatcher and the process pool get their
own suites (``test_service_differential.py``, ``test_service_soak.py``).
"""

from __future__ import annotations

import math

import pytest

from repro import solve_batch
from repro.robustness import SimClock
from repro.serve import (
    FLUSH_REASONS,
    OUTCOMES,
    QueryService,
    ServiceClosed,
)


def _service(graph, **kwargs):
    clock = kwargs.pop("clock", None) or SimClock()
    kwargs.setdefault("method", "multi")
    kwargs.setdefault("max_batch", 4)
    kwargs.setdefault("max_wait_ms", 100.0)
    return QueryService(graph, clock=clock, **kwargs), clock


class TestCoalescingEdges:
    def test_empty_flush_on_shutdown_executes_nothing(self, serve_graph):
        svc, _ = _service(serve_graph)
        svc.close()
        assert svc.stats()["batches"] == 0
        assert svc.stats()["executed"] == 0
        assert list(svc.batches) == []

    def test_close_is_idempotent_and_rejects_submissions(self, serve_graph, serve_pairs):
        svc, _ = _service(serve_graph)
        fut = svc.submit(*serve_pairs[0])
        svc.close()
        svc.close()
        assert fut.done()
        with pytest.raises(ServiceClosed):
            svc.submit(*serve_pairs[1])

    def test_single_query_waits_until_max_wait(self, serve_graph, serve_pairs):
        svc, clock = _service(serve_graph, max_wait_ms=50.0)
        fut = svc.submit(*serve_pairs[0])
        assert not fut.done()
        assert svc.tick() == 0          # under max-wait: still queued
        assert not fut.done()
        clock.advance(0.049)
        assert svc.tick() == 0
        clock.advance(0.002)            # now past 50ms
        assert svc.tick() == 1
        assert fut.done()
        assert svc.batches[-1].reason == "wait"
        assert svc.batches[-1].size == 1
        svc.close()

    def test_max_batch_exactly_hit_flushes_inline(self, serve_graph, serve_pairs):
        svc, _ = _service(serve_graph, max_batch=4)
        futs = [svc.submit(*p) for p in serve_pairs[:3]]
        assert not any(f.done() for f in futs)
        futs.append(svc.submit(*serve_pairs[3]))   # the 4th: exactly max_batch
        assert all(f.done() for f in futs)
        assert svc.batches[-1].reason == "size"
        assert svc.batches[-1].size == 4
        assert svc.queue_depth() == 0
        svc.close()

    def test_duplicates_dedupe_into_one_execution_and_fan_out(
        self, serve_graph, serve_pairs
    ):
        svc, _ = _service(serve_graph, max_batch=8)
        s, t = serve_pairs[0]
        dup_futs = [svc.submit(s, t) for _ in range(5)]
        other = svc.submit(*serve_pairs[1])
        assert svc.queue_depth() == 2   # 6 submissions, 2 distinct queries
        assert svc.drain() == 2
        assert all(f.done() for f in dup_futs)
        results = [f.result() for f in dup_futs]
        assert len({id(r) for r in results}) == 1   # one shared answer object
        assert results[0].key == (s, t)
        stats = svc.stats()
        assert stats["deduped"] == 4
        assert stats["submitted"] == 6
        assert stats["executed"] == 2
        assert other.result().key == serve_pairs[1]
        svc.close()

    def test_dedup_merges_priority_and_deadline(self, serve_graph, serve_pairs):
        svc, _ = _service(serve_graph, max_batch=8)
        s, t = serve_pairs[0]
        svc.submit(s, t, priority=1, deadline=90.0)
        svc.submit(s, t, priority=5, deadline=50.0)
        svc.submit(s, t, priority=3)
        entry = svc._pending[(s, t)]
        assert entry.query.priority == 5       # highest wins
        assert entry.query.deadline == 50.0    # earliest wins
        svc.close()

    def test_pressure_triggers_before_max_wait(self, serve_graph):
        svc, _ = _service(serve_graph, max_batch=2, pressure=4)
        # A burst beyond pressure: submit_many drains in max_batch chunks
        # immediately, never waiting for the clock.
        pairs = [(0, 63), (1, 62), (2, 61), (3, 60), (4, 59)]
        futs = svc.submit_many(pairs)
        assert sum(f.done() for f in futs) >= 4
        reasons = [b.reason for b in svc.batches]
        assert "pressure" in reasons or "size" in reasons
        svc.close()
        assert all(f.done() for f in futs)

    def test_pressure_must_cover_max_batch(self, serve_graph):
        with pytest.raises(ValueError):
            QueryService(serve_graph, max_batch=8, pressure=4)

    def test_invalid_query_raises_at_submit_not_in_future(self, serve_graph):
        svc, _ = _service(serve_graph)
        with pytest.raises(ValueError):
            svc.submit(0, serve_graph.num_vertices + 5)
        assert svc.queue_depth() == 0
        svc.close()


class TestOutcomesAndResults:
    def test_answers_match_serial_solve_batch_per_composition(
        self, serve_graph, serve_pairs
    ):
        svc, clock = _service(serve_graph, max_batch=3, certify=True,
                              collect_paths=True)
        futs = [svc.submit(*p) for p in serve_pairs]
        clock.advance(1.0)
        svc.tick()
        svc.close()
        assert all(f.done() for f in futs)
        reference = {}
        for record in svc.batches:
            ref = solve_batch(serve_graph, list(record.keys), method="multi",
                              certify=True)
            for key in record.keys:
                reference[key] = ref
        for fut in futs:
            res = fut.result()
            ref = reference[fut.key]
            assert res.distance == ref.distance(*fut.key)
            assert res.outcome in OUTCOMES
            if math.isfinite(res.distance):
                assert res.certificate is not None
                assert res.path is not None
                assert res.path[0] == fut.key[0]
                assert res.path[-1] == fut.key[1]

    def test_expired_deadline_resolves_as_timeout(self, serve_graph, serve_pairs):
        svc, clock = _service(serve_graph, max_batch=8)
        fut = svc.submit(*serve_pairs[0], deadline=clock() + 0.01)
        clock.advance(10.0)              # deadline long gone before any flush
        svc.tick()
        assert fut.done()
        res = fut.result()
        assert res.outcome == "timeout"
        assert math.isinf(res.distance)
        svc.close()

    def test_shed_resolves_with_explicit_outcome(self, serve_graph, serve_pairs):
        svc, _ = _service(serve_graph, max_batch=8, max_queue=2)
        futs = [
            svc.submit(s, t, priority=len(serve_pairs) - i)
            for i, (s, t) in enumerate(serve_pairs[:5])
        ]
        svc.drain()
        outcomes = [f.result().outcome for f in futs]
        assert outcomes.count("shed") == 3
        # Lowest-priority queries (submitted last) are the ones shed.
        assert [o == "shed" for o in outcomes] == [False, False, True, True, True]
        svc.close()

    def test_batch_record_metadata(self, serve_graph, serve_pairs):
        svc, clock = _service(serve_graph, max_batch=2)
        svc.submit(*serve_pairs[0])
        clock.advance(0.02)
        svc.submit(*serve_pairs[1])     # size trigger fires here
        record = svc.batches[-1]
        assert record.reason in FLUSH_REASONS
        assert record.size == 2
        assert record.keys == (serve_pairs[0], serve_pairs[1])
        assert record.waited_s == pytest.approx(0.02)
        svc.close()

    def test_flush_and_drain_reasons_recorded(self, serve_graph, serve_pairs):
        svc, _ = _service(serve_graph, max_batch=8)
        svc.submit(*serve_pairs[0])
        assert svc.flush() == 1
        svc.submit(*serve_pairs[1])
        svc.submit(*serve_pairs[2])
        assert svc.drain() == 2
        svc.submit(*serve_pairs[3])
        svc.close()                     # shutdown flush
        reasons = [b.reason for b in svc.batches]
        assert reasons == ["manual", "drain", "shutdown"]

    def test_service_metrics_families_emitted(self, serve_graph, serve_pairs):
        from repro.obs import Observer

        obs = Observer()
        svc, _ = _service(serve_graph, max_batch=2, observer=obs)
        svc.submit(*serve_pairs[0])
        svc.submit(*serve_pairs[0])     # dedup
        svc.submit(*serve_pairs[1])     # size flush
        svc.close()
        text = obs.export_text()
        assert 'repro_service_batches_total{reason="size"} 1' in text
        assert "repro_service_dedup_total 1" in text
        assert "repro_service_coalesce_size_count 1" in text
        assert "repro_service_queue_depth 0" in text


class TestLifecycle:
    def test_context_manager_flushes_pending_on_exit(self, serve_graph, serve_pairs):
        with QueryService(serve_graph, max_batch=8, max_wait_ms=100.0,
                          clock=SimClock()) as svc:
            futs = [svc.submit(*p) for p in serve_pairs[:3]]
            assert not any(f.done() for f in futs)
        assert all(f.done() for f in futs)
        assert svc.batches[-1].reason == "shutdown"

    def test_future_result_timeout_while_queued(self, serve_graph, serve_pairs):
        svc, _ = _service(serve_graph, max_batch=8)
        fut = svc.submit(*serve_pairs[0])
        with pytest.raises(TimeoutError):
            fut.result(timeout=0.01)
        svc.close()
        assert fut.result().outcome in OUTCOMES

    def test_serial_service_ping_is_trivially_healthy(self, serve_graph):
        svc, _ = _service(serve_graph)
        assert svc.ping()
        assert svc.pool is None
        svc.close()

    def test_breakers_persist_across_batches(self, serve_graph, serve_pairs):
        svc, _ = _service(serve_graph, max_batch=2)
        board = svc.pipeline.breakers
        svc.submit(*serve_pairs[0])
        svc.submit(*serve_pairs[1])
        assert svc.pipeline.breakers is board
        svc.close()
