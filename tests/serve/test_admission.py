"""Admission control: priority ordering, shedding, query normalization."""

import pytest

from repro.serve import ServePipeline, ServeQuery
from repro.serve.admission import OUTCOMES, SHED, AdmissionController

pytestmark = pytest.mark.serve


class TestServeQuery:
    def test_coerces_types(self):
        q = ServeQuery("3", "7", priority="2", deadline="1.5")
        assert q.key == (3, 7)
        assert q.priority == 2 and q.deadline == 1.5

    def test_defaults(self):
        q = ServeQuery(0, 1)
        assert q.priority == 0 and q.deadline is None


class TestAdmissionController:
    def test_unbounded_admits_all_in_priority_order(self):
        qs = [ServeQuery(0, 1, priority=0), ServeQuery(2, 3, priority=5),
              ServeQuery(4, 5, priority=5)]
        admitted, shed = AdmissionController(None).admit(qs)
        assert [q.key for q in admitted] == [(2, 3), (4, 5), (0, 1)]
        assert shed == []

    def test_sheds_lowest_priority_latest_submitted(self):
        qs = [ServeQuery(0, 1, priority=1), ServeQuery(2, 3, priority=0),
              ServeQuery(4, 5, priority=0), ServeQuery(6, 7, priority=2)]
        admitted, shed = AdmissionController(2).admit(qs)
        assert [q.key for q in admitted] == [(6, 7), (0, 1)]
        # ties broken by submission order; the later 0-priority sheds last
        assert [q.key for q in shed] == [(2, 3), (4, 5)]

    def test_deterministic(self):
        qs = [ServeQuery(i, i + 1, priority=i % 3) for i in range(9)]
        first = AdmissionController(4).admit(qs)
        second = AdmissionController(4).admit(qs)
        assert [q.key for q in first[0]] == [q.key for q in second[0]]
        assert [q.key for q in first[1]] == [q.key for q in second[1]]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="max_queue"):
            AdmissionController(0)

    def test_outcome_vocabulary_is_closed(self):
        assert set(OUTCOMES) == {
            "ok", "inexact", "shed", "timeout", "failed", "repaired",
        }


class TestPipelineAdmission:
    def test_shed_outcome_recorded(self, serve_graph, serve_pairs):
        pipe = ServePipeline(serve_graph, max_queue=3)
        res = pipe.run([(s, t, i) for i, (s, t) in enumerate(serve_pairs[:5])])
        assert res.counts() == {"ok": 3, "shed": 2}
        # lowest-priority submissions shed; they carry no distance
        assert set(res.shed) == {serve_pairs[0], serve_pairs[1]}
        for key in res.shed:
            assert res.outcomes[key] == SHED
            assert key not in res.distances
            assert res.distance(*key) == float("inf")

    def test_duplicate_keys_collapse_keeping_max_priority(self, serve_graph, serve_pairs):
        s, t = serve_pairs[0]
        pipe = ServePipeline(serve_graph)
        res = pipe.run([(s, t, 0), (s, t, 9), serve_pairs[1]])
        assert len(res.distances) == 2
        assert res.counts() == {"ok": 2}

    def test_invalid_vertex_rejected_at_admission(self, serve_graph):
        with pytest.raises(ValueError):
            ServePipeline(serve_graph).run([(0, serve_graph.num_vertices + 5)])

    def test_unknown_method_rejected(self, serve_graph):
        with pytest.raises(ValueError, match="unknown serve method"):
            ServePipeline(serve_graph, method="magic")

    def test_empty_batch(self, serve_graph):
        res = ServePipeline(serve_graph).run([])
        assert res.distances == {} and res.counts() == {}
