"""Circuit breakers: the state machine, the board, and the metrics mirror."""

import pytest

from repro.obs import Observer
from repro.robustness import SimClock
from repro.serve import BreakerBoard, CircuitBreaker
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, STATE_VALUES

pytestmark = pytest.mark.serve


class TestCircuitBreaker:
    def test_trips_after_k_consecutive_failures(self):
        b = CircuitBreaker("m", failure_threshold=3, clock=SimClock())
        for _ in range(2):
            b.record_failure()
        assert b.state == CLOSED and b.allow()
        b.record_failure()
        assert b.state == OPEN and not b.allow()

    def test_success_resets_consecutive_count(self):
        b = CircuitBreaker("m", failure_threshold=2, clock=SimClock())
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == CLOSED  # never two *consecutive* failures

    def test_half_open_probe_recovers(self):
        sim = SimClock()
        b = CircuitBreaker("m", failure_threshold=1, cooldown=10.0, clock=sim)
        b.record_failure()
        assert not b.allow()
        sim.advance(10.0)
        assert b.allow()  # the probe is admitted...
        assert b.state == HALF_OPEN
        b.record_success()
        assert b.state == CLOSED and b.allow()

    def test_half_open_probe_failure_reopens(self):
        sim = SimClock()
        b = CircuitBreaker("m", failure_threshold=3, cooldown=5.0, clock=sim)
        for _ in range(3):
            b.record_failure()
        sim.advance(5.0)
        assert b.allow() and b.state == HALF_OPEN
        b.record_failure()  # one probe failure suffices, not K
        assert b.state == OPEN and not b.allow()
        sim.advance(4.9)
        assert not b.allow()  # cooldown restarted from the reopen

    def test_transition_log_is_chronological(self):
        sim = SimClock()
        b = CircuitBreaker("m", failure_threshold=1, cooldown=2.0, clock=sim)
        b.record_failure()
        sim.advance(2.0)
        b.allow()
        b.record_success()
        assert [s for _, s in b.transitions] == [OPEN, HALF_OPEN, CLOSED]
        assert [t for t, _ in b.transitions] == [0.0, 2.0, 2.0]

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker("m", failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker("m", cooldown=-1.0)


class TestBreakerBoard:
    def test_lazy_per_method_isolation(self):
        board = BreakerBoard(failure_threshold=1, clock=SimClock())
        board.record_failure("bidastar")
        assert board.state("bidastar") == OPEN
        assert board.state("bids") == CLOSED
        assert board.allow("bids") and not board.allow("bidastar")
        assert board.states() == {"bidastar": OPEN, "bids": CLOSED}

    def test_observer_sees_gauge_and_transitions(self):
        obs = Observer()
        sim = SimClock()
        board = BreakerBoard(failure_threshold=1, cooldown=3.0, clock=sim, observer=obs)
        board.allow("multi")  # creation: gauge set, no transition counted
        text = obs.export_text()
        assert 'repro_breaker_state{method="multi"} 0' in text
        assert 'repro_breaker_transitions_total{method="multi"' not in text

        board.record_failure("multi")
        sim.advance(3.0)
        board.allow("multi")
        board.record_success("multi")
        text = obs.export_text()
        assert 'repro_breaker_state{method="multi"} 0' in text  # closed again
        assert 'repro_breaker_transitions_total{method="multi",to="open"} 1' in text
        assert 'repro_breaker_transitions_total{method="multi",to="half-open"} 1' in text
        assert 'repro_breaker_transitions_total{method="multi",to="closed"} 1' in text

    def test_gauge_encoding_matches_state_values(self):
        obs = Observer()
        board = BreakerBoard(failure_threshold=1, clock=SimClock(), observer=obs)
        board.record_failure("et")
        assert STATE_VALUES[OPEN] == 2
        assert 'repro_breaker_state{method="et"} 2' in obs.export_text()
