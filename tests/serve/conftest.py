"""Shared fixtures for the serve-pipeline suites."""

from __future__ import annotations

import pytest

from repro.graphs import road_graph
from repro.graphs.connectivity import largest_component


@pytest.fixture(scope="module")
def serve_graph():
    """An 8x8 road grid — small enough that chaos suites stay fast."""
    return road_graph(8, 8, seed=7, name="serve-road")


@pytest.fixture(scope="module")
def serve_pairs(serve_graph):
    """Eight deterministic (s, t) pairs inside the largest component."""
    lcc = [int(v) for v in largest_component(serve_graph)]
    return [(lcc[i], lcc[len(lcc) - 1 - i]) for i in range(8)]
