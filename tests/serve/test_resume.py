"""Crash/resume determinism: the pipeline's central guarantee.

A batch job killed at any checkpoint boundary and resumed must produce
``distances`` and ``exact`` flags **bit-identical** to the uninterrupted
run — resumed answers come off disk (float64 sidecar, no decimal
round-trip) and re-executed shards rerun under identical shard
boundaries, so equality here is ``==`` on floats, not approx.
"""

import hashlib

import numpy as np
import pytest

from repro.core.batch import BATCH_METHODS
from repro.serve import CheckpointStore, ServePipeline

pytestmark = pytest.mark.serve


class Killed(RuntimeError):
    """The simulated mid-run crash."""


def kill_after(n_checkpoints):
    """A checkpoint_hook that crashes after the n-th durable write."""
    seen = []

    def hook(manifest):
        seen.append(manifest)
        if len(seen) == n_checkpoints:
            raise Killed(f"killed after checkpoint {n_checkpoints}")

    return hook


def run_interrupted(graph, pairs, method, path, kill_at, *, checkpoint_every=2):
    """Run, crash after ``kill_at`` checkpoints, resume; the resumed result."""
    pipe = ServePipeline(
        graph, method=method, checkpoint_path=path,
        checkpoint_every=checkpoint_every, checkpoint_hook=kill_after(kill_at),
    )
    with pytest.raises(Killed):
        pipe.run(pairs)
    fresh = ServePipeline(
        graph, method=method, checkpoint_path=path, checkpoint_every=checkpoint_every,
    )
    return fresh.run(pairs, resume=True)


class TestResumeBitIdentical:
    @pytest.mark.parametrize("method", BATCH_METHODS)
    def test_kill_at_seeded_random_checkpoint(self, method, serve_graph, serve_pairs,
                                              tmp_path):
        """The property pinned by the issue: kill anywhere, resume, equal."""
        reference = ServePipeline(
            serve_graph, method=method, checkpoint_every=2,
        ).run(serve_pairs)
        num_checkpoints = reference.details["num_shards"]
        seed = int.from_bytes(hashlib.sha256(method.encode()).digest()[:4], "big")
        rng = np.random.default_rng(seed)
        kill_at = int(rng.integers(1, num_checkpoints))  # never the final write
        resumed = run_interrupted(
            serve_graph, serve_pairs, method, tmp_path / "job.json", kill_at)
        assert resumed.distances == reference.distances  # bitwise float ==
        assert resumed.exact == reference.exact
        assert resumed.outcomes == reference.outcomes
        assert resumed.resumed_queries == kill_at * 2

    def test_kill_at_every_boundary(self, serve_graph, serve_pairs, tmp_path):
        """Exhaustive over kill points for the default method."""
        reference = ServePipeline(
            serve_graph, method="multi", checkpoint_every=3,
        ).run(serve_pairs)
        for kill_at in range(1, reference.details["num_shards"]):
            path = tmp_path / f"kill{kill_at}.json"
            resumed = run_interrupted(
                serve_graph, serve_pairs, "multi", path, kill_at, checkpoint_every=3)
            assert resumed.distances == reference.distances, kill_at
            assert resumed.exact == reference.exact, kill_at

    def test_resume_preserves_shed_set(self, serve_graph, serve_pairs, tmp_path):
        """Shedding is part of the deterministic contract across a crash."""
        kwargs = dict(method="multi", checkpoint_every=2, max_queue=6)
        submitted = [(s, t, i) for i, (s, t) in enumerate(serve_pairs)]
        reference = ServePipeline(serve_graph, **kwargs).run(submitted)
        path = tmp_path / "job.json"
        pipe = ServePipeline(serve_graph, checkpoint_path=path,
                             checkpoint_hook=kill_after(1), **kwargs)
        with pytest.raises(Killed):
            pipe.run(submitted)
        resumed = ServePipeline(serve_graph, checkpoint_path=path, **kwargs).run(
            submitted, resume=True)
        assert sorted(resumed.shed) == sorted(reference.shed)
        assert resumed.distances == reference.distances
        assert resumed.counts() == reference.counts()


class TestResumeSafety:
    def test_resume_without_checkpoint_path_rejected(self, serve_graph, serve_pairs):
        with pytest.raises(ValueError, match="checkpoint_path"):
            ServePipeline(serve_graph).run(serve_pairs, resume=True)

    def test_resume_with_no_checkpoint_runs_fresh(self, serve_graph, serve_pairs,
                                                  tmp_path):
        res = ServePipeline(
            serve_graph, checkpoint_path=tmp_path / "absent.json",
        ).run(serve_pairs[:2], resume=True)
        assert res.resumed_queries == 0 and res.counts() == {"ok": 2}

    def test_foreign_checkpoint_rejected_by_fingerprint(self, serve_graph, serve_pairs,
                                                        tmp_path):
        path = tmp_path / "job.json"
        pipe = ServePipeline(serve_graph, method="multi", checkpoint_path=path,
                             checkpoint_every=2, checkpoint_hook=kill_after(1))
        with pytest.raises(Killed):
            pipe.run(serve_pairs)
        other = ServePipeline(serve_graph, method="sssp-vc", checkpoint_path=path,
                              checkpoint_every=2)
        with pytest.raises(ValueError, match="method"):
            other.run(serve_pairs, resume=True)

    def test_without_resume_flag_checkpoint_is_overwritten(self, serve_graph,
                                                           serve_pairs, tmp_path):
        path = tmp_path / "job.json"
        pipe = ServePipeline(serve_graph, checkpoint_path=path, checkpoint_every=2,
                             checkpoint_hook=kill_after(1))
        with pytest.raises(Killed):
            pipe.run(serve_pairs)
        res = ServePipeline(serve_graph, checkpoint_path=path,
                            checkpoint_every=2).run(serve_pairs)  # resume=False
        assert res.resumed_queries == 0 and res.counts() == {"ok": len(serve_pairs)}
        manifest, _ = CheckpointStore(path).load()
        assert len(manifest["completed_shards"]) == res.details["num_shards"]
