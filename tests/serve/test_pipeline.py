"""ServePipeline behavior: outcomes, deadlines, breakers, chaos routing."""

import numpy as np
import pytest

from repro.baselines import dijkstra
from repro.obs import Observer
from repro.robustness import Budget, FaultInjector, SimClock
from repro.serve import SERVE_METHODS, ServePipeline, ServeQuery, serve_batch
from repro.serve.breaker import CLOSED, OPEN

pytestmark = pytest.mark.serve


def oracle(graph, pairs):
    return {(s, t): float(dijkstra(graph, s)[t]) for s, t in pairs}


class TestOutcomes:
    @pytest.mark.parametrize("method", SERVE_METHODS)
    def test_every_method_matches_oracle(self, method, serve_graph, serve_pairs):
        res = serve_batch(serve_graph, serve_pairs, method=method)
        ref = oracle(serve_graph, serve_pairs)
        assert res.counts() == {"ok": len(serve_pairs)}
        for key, want in ref.items():
            assert res.distances[key] == pytest.approx(want), key
            assert res.exact[key] is True

    def test_batch_result_facade(self, serve_graph, serve_pairs):
        res = serve_batch(serve_graph, serve_pairs[:3])
        bres = res.to_batch_result()
        s, t = serve_pairs[0]
        assert bres.distance(s, t) == bres.distance(t, s) == res.distances[(s, t)]
        assert bres.method == "serve:multi" and bres.exact
        with pytest.raises(ValueError, match="never part of this batch"):
            res.distance(serve_pairs[5][0], serve_pairs[5][1])

    def test_work_metered_across_shards(self, serve_graph, serve_pairs):
        res = serve_batch(serve_graph, serve_pairs, checkpoint_every=2)
        assert res.meter.work > 0 and res.details["num_shards"] == 4
        assert res.details["num_searches"] > 0


class TestDeadlines:
    def test_expired_deadline_times_out_without_execution(self, serve_graph, serve_pairs):
        sim = SimClock(start=100.0)
        obs = Observer()
        qs = [ServeQuery(*serve_pairs[0], deadline=99.0),
              ServeQuery(*serve_pairs[1], deadline=101.0)]
        res = ServePipeline(serve_graph, clock=sim, observer=obs).run(qs)
        assert res.outcomes[serve_pairs[0]] == "timeout"
        assert res.distances[serve_pairs[0]] == float("inf")
        assert res.exact[serve_pairs[0]] is False
        assert res.timeouts == [serve_pairs[0]]
        assert res.outcomes[serve_pairs[1]] == "ok"
        assert "repro_serve_deadline_misses_total 1" in obs.export_text()

    def test_stalled_run_degrades_to_inexact_not_missed(self, serve_graph, serve_pairs):
        # A straggler in fast-forward: every step injects 50ms of
        # simulated latency, so the 200ms deadline trips the wall budget
        # mid-search and the answer degrades to an upper bound.
        sim = SimClock()
        inj = FaultInjector(stall_at=0, stall_seconds=0.05, clock=sim, max_fires=1000)
        res = ServePipeline(
            serve_graph, method="multi", deadline_ms=200.0,
            clock=sim, fault_injector=inj,
        ).run(serve_pairs[:4])
        assert any(kind == "stall" for _, kind in inj.fired)
        assert set(res.outcomes.values()) <= {"inexact", "timeout"}
        assert not all(res.exact.values())
        # inexact answers are upper bounds on the true distance
        ref = oracle(serve_graph, serve_pairs[:4])
        for key, d in res.distances.items():
            if res.outcomes[key] == "inexact" and np.isfinite(d):
                assert d >= ref[key] - 1e-9

    def test_stall_is_deterministic(self, serve_graph, serve_pairs):
        def run():
            sim = SimClock()
            inj = FaultInjector(stall_at=0, stall_seconds=0.05, clock=sim, max_fires=1000)
            res = ServePipeline(
                serve_graph, method="multi", deadline_ms=200.0,
                clock=sim, fault_injector=inj,
            ).run(serve_pairs[:4])
            return res.distances, res.exact, res.outcomes, list(inj.fired)

        assert run() == run()

    def test_per_query_deadline_beats_default(self, serve_graph, serve_pairs):
        sim = SimClock(start=10.0)
        pipe = ServePipeline(serve_graph, deadline_ms=60_000.0, clock=sim)
        qs = pipe._normalize([ServeQuery(*serve_pairs[0], deadline=12.0), serve_pairs[1]])
        assert qs[0].deadline == 12.0
        assert qs[1].deadline == pytest.approx(70.0)


class TestStallFaultClass:
    def test_stall_trips_wall_budget_deterministically(self, serve_graph, serve_pairs):
        from repro import ppsp

        s, t = serve_pairs[0]
        sim = SimClock()
        ans = ppsp(
            serve_graph, s, t, method="bids",
            budget=Budget(wall_time=0.1, clock=sim),
            fault_injector=FaultInjector(
                stall_at=0, stall_seconds=0.06, clock=sim, max_fires=1000),
        )
        assert ans.exact is False  # two stalled steps exceed the budget
        assert sim.now() > 0.1

    def test_stall_inert_without_clock(self, serve_graph, serve_pairs):
        from repro import ppsp

        s, t = serve_pairs[0]
        inj = FaultInjector(stall_at=0, stall_seconds=0.05, max_fires=1000)
        ans = ppsp(serve_graph, s, t, method="bids", fault_injector=inj)
        assert ans.exact is True and inj.fired == []


class TestBreakerRouting:
    def test_failing_batch_trips_breaker_and_reroutes(self, serve_graph, serve_pairs):
        # The injector kills the first two engine runs permanently: the
        # batch rung trips open, then the chain's bidastar rung trips,
        # and bids answers everything exactly.
        sim = SimClock()
        obs = Observer()
        pipe = ServePipeline(
            serve_graph, method="multi", breaker_threshold=1,
            breaker_cooldown=30.0, clock=sim, observer=obs,
            fault_injector=FaultInjector(raise_at=0, transient=False, max_fires=2),
        )
        res = pipe.run(serve_pairs[:4])
        assert res.counts() == {"ok": 4}
        ref = oracle(serve_graph, serve_pairs[:4])
        for key, want in ref.items():
            assert res.distances[key] == pytest.approx(want)
        assert res.breaker_states["multi"] == OPEN
        assert res.breaker_states["bidastar"] == OPEN
        assert res.breaker_states["bids"] == CLOSED
        text = obs.export_text()
        assert 'repro_breaker_transitions_total{method="multi",to="open"} 1' in text
        assert 'repro_breaker_state{method="multi"} 2' in text

    def test_half_open_probe_recovers_batch_method(self, serve_graph, serve_pairs):
        sim = SimClock()
        obs = Observer()
        pipe = ServePipeline(
            serve_graph, method="multi", breaker_threshold=1,
            breaker_cooldown=5.0, clock=sim, observer=obs,
            fault_injector=FaultInjector(raise_at=0, transient=False, max_fires=1),
        )
        first = pipe.run(serve_pairs[:2])
        assert first.breaker_states["multi"] == OPEN
        sim.advance(5.0)  # cooldown elapses; the injector is spent
        second = pipe.run(serve_pairs[:2])
        assert second.breaker_states["multi"] == CLOSED
        assert second.counts() == {"ok": 2}
        text = obs.export_text()
        assert 'repro_breaker_transitions_total{method="multi",to="half-open"} 1' in text
        assert 'repro_breaker_transitions_total{method="multi",to="closed"} 1' in text
        assert 'repro_breaker_state{method="multi"} 0' in text

    def test_open_rung_skipped_in_chain(self, serve_graph, serve_pairs):
        from repro.robustness import resilient_ppsp
        from repro.serve import BreakerBoard

        board = BreakerBoard(failure_threshold=1, clock=SimClock())
        board.record_failure("bidastar")
        s, t = serve_pairs[0]
        ans = resilient_ppsp(serve_graph, s, t, breakers=board)
        assert ans.exact and ans.method == "bids"
        assert [(a.method, a.outcome) for a in ans.attempts][:2] == [
            ("bidastar", "open"), ("bids", "ok")]


class TestObserverIntegration:
    def test_serve_counters_and_spans(self, serve_graph, serve_pairs, tmp_path):
        obs = Observer()
        res = serve_batch(
            serve_graph, [(s, t, i) for i, (s, t) in enumerate(serve_pairs[:5])],
            method="multi", max_queue=4, checkpoint_every=2,
            checkpoint_path=tmp_path / "job.json", observer=obs,
        )
        assert res.counts() == {"ok": 4, "shed": 1}
        assert res.checkpoints_written == 2
        text = obs.export_text()
        assert 'repro_serve_queries_total{outcome="ok"} 4' in text
        assert 'repro_serve_queries_total{outcome="shed"} 1' in text
        assert 'repro_serve_checkpoints_total{event="write"} 2' in text
        assert sum(1 for sp in obs.spans if sp.method == "serve-shard") == 2

    def test_stats_workload_tells_the_breaker_story(self):
        from repro.obs.workload import stats_workload

        obs = stats_workload(num_pairs=3)
        text = obs.export_text()
        # the chaos segment must leave the full trip->probe->close trail
        assert 'repro_breaker_transitions_total{method="multi",to="open"} 1' in text
        assert 'repro_breaker_transitions_total{method="multi",to="half-open"} 1' in text
        assert 'repro_breaker_transitions_total{method="multi",to="closed"} 1' in text
        assert 'repro_serve_queries_total{outcome="shed"} 2' in text
