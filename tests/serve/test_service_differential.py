"""Property-based differential suite for the micro-batching service.

The invariant under test: however queries *arrive* — bursts, trickles,
adversarial same-pair floods — the answers the service hands back are
**bit-identical** to serial ``solve_batch`` executed on the very batch
compositions the coalescer formed, certificates and paths included, and
value-identical to ground-truth Dijkstra regardless of composition.

(The per-composition reference is the strongest one that exists:
Multi-BiDS certificates embed sampled relaxation facts that depend on
which queries share a batch, so two different coalescings of the same
multiset are value-equal but not bit-equal — the service's contract is
that coalescing itself adds *zero* divergence.)

Arrival schedules are seeded and replayed deterministically on a
:class:`SimClock` through the inline flush API; the process-backend
cases (marked ``service``, run by the CI ``service-smoke`` job at 1 and
2 workers) re-check the same invariant with execution on a persistent
warm pool.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import solve_batch
from repro.baselines.dijkstra import dijkstra
from repro.core.batch import BATCH_METHODS
from repro.graphs.connectivity import largest_component
from repro.robustness import SimClock
from repro.serve import QueryService

MAX_WAIT_MS = 40.0
MAX_BATCH = 6

SCHEDULES = ("bursty", "trickle", "flood")


def _pair_pool(graph, rng, size=24):
    lcc = [int(v) for v in largest_component(graph)]
    return [
        (int(rng.choice(lcc)), int(rng.choice(lcc)))
        for _ in range(size)
    ]


def _schedule(kind: str, rng, pairs):
    """One seeded arrival schedule: a list of (dt_seconds, submissions)."""
    events = []
    if kind == "bursty":
        for _ in range(4):
            burst = [pairs[rng.integers(0, len(pairs))]
                     for _ in range(int(rng.integers(5, 13)))]
            events.append((float(rng.uniform(0.0, 0.01)), burst))
    elif kind == "trickle":
        for _ in range(10):
            # Gaps straddle max-wait, so some flushes are time-driven
            # partials and some queries coalesce with the next arrival.
            dt = float(rng.uniform(0.005, 0.08))
            events.append((dt, [pairs[rng.integers(0, len(pairs))]]))
    elif kind == "flood":
        hot = pairs[0]
        for _ in range(6):
            burst = [hot] * int(rng.integers(3, 8))
            if rng.random() < 0.5:
                burst.append(pairs[rng.integers(0, len(pairs))])
            events.append((float(rng.uniform(0.0, 0.05)), burst))
    else:  # pragma: no cover - guarded by parametrize
        raise ValueError(kind)
    return events


def _drive(svc: QueryService, clock: SimClock, events):
    """Replay one schedule through the inline flush API; all futures."""
    futures = []
    for dt, submissions in events:
        clock.advance(dt)
        svc.tick()
        futures.extend(svc.submit_many(submissions))
    clock.advance(10 * MAX_WAIT_MS / 1000.0)
    svc.tick()
    return futures


def _cert_fingerprint(cert):
    return None if cert is None else cert.to_json()


def _check_differential(graph, svc, futures):
    """The invariant: service output == serial replay of its batches."""
    assert all(f.done() for f in futures), "stuck futures"
    executed = {k for b in svc.batches for k in b.keys}
    assert {f.key for f in futures} == executed

    # A pair resubmitted in a later window executes again in a different
    # composition, so the reference is per (batch, pair) — each future
    # knows which coalesced batch answered it.
    reference = {}
    for record in svc.batches:
        ref = solve_batch(graph, list(record.keys), method=svc.pipeline.method,
                          certify=True)
        certs = ref.certificates or {}
        for s, t in record.keys:
            try:
                path = ref.path(s, t)
            except Exception:
                path = None
            reference[(record.index, (s, t))] = (
                ref.distance(s, t),
                certs.get((s, t)) or certs.get((t, s)),
                path,
            )

    truth_rows: dict[int, object] = {}
    for fut in futures:
        res = fut.result()
        want_dist, want_cert, want_path = reference[(res.batch_index, fut.key)]
        assert res.distance == want_dist, (
            f"{fut.key}: service {res.distance!r} != serial {want_dist!r}"
        )
        assert res.outcome in ("ok", "inexact")
        assert _cert_fingerprint(res.certificate) == _cert_fingerprint(want_cert)
        assert res.path == want_path
        # Composition-independent ground truth (value equality).
        s, t = fut.key
        if s not in truth_rows:
            truth_rows[s] = dijkstra(graph, s)   # full row: reused per target
        truth = float(truth_rows[s][t]) if math.isfinite(truth_rows[s][t]) else float("inf")
        if math.isfinite(truth):
            assert res.distance == pytest.approx(truth, rel=1e-9)
        else:
            assert math.isinf(res.distance)


@pytest.mark.parametrize("schedule_kind", SCHEDULES)
@pytest.mark.parametrize("method", BATCH_METHODS)
@pytest.mark.parametrize("seed", (11, 29))
def test_serial_service_matches_serial_batches(
    serve_graph, method, schedule_kind, seed
):
    rng = np.random.default_rng(seed)
    pairs = _pair_pool(serve_graph, rng)
    clock = SimClock()
    svc = QueryService(
        serve_graph, method=method, max_batch=MAX_BATCH,
        max_wait_ms=MAX_WAIT_MS, clock=clock,
        certify=True, collect_paths=True,
    )
    try:
        futures = _drive(svc, clock, _schedule(schedule_kind, rng, pairs))
    finally:
        svc.close()
    assert futures, "schedule produced no submissions"
    _check_differential(serve_graph, svc, futures)


@pytest.mark.parametrize("schedule_kind", SCHEDULES)
def test_flood_coalesces_to_single_executions(serve_graph, schedule_kind):
    """Dedup property: executed batch keys are always distinct."""
    rng = np.random.default_rng(3)
    pairs = _pair_pool(serve_graph, rng)
    clock = SimClock()
    svc = QueryService(serve_graph, method="multi", max_batch=MAX_BATCH,
                       max_wait_ms=MAX_WAIT_MS, clock=clock)
    try:
        futures = _drive(svc, clock, _schedule(schedule_kind, rng, pairs))
    finally:
        svc.close()
    for record in svc.batches:
        assert len(set(record.keys)) == len(record.keys)
    executed = sum(b.size for b in svc.batches)
    stats = svc.stats()
    assert stats["submitted"] == len(futures)
    assert stats["executed"] == executed
    assert stats["submitted"] == executed + stats["deduped"]
    if schedule_kind == "flood":
        assert stats["deduped"] > 0


@pytest.mark.service
@pytest.mark.parametrize("workers", (1, 2))
@pytest.mark.parametrize("method", BATCH_METHODS)
def test_process_service_matches_serial_batches(serve_graph, method, workers):
    """The same invariant with execution on a persistent warm pool."""
    rng = np.random.default_rng(97 + workers)
    pairs = _pair_pool(serve_graph, rng)
    clock = SimClock()
    svc = QueryService(
        serve_graph, method=method, max_batch=MAX_BATCH,
        max_wait_ms=MAX_WAIT_MS, clock=clock,
        certify=True, collect_paths=True,
        backend="process", workers=workers,
    )
    try:
        svc.warm()
        futures = _drive(svc, clock, _schedule("bursty", rng, pairs))
        futures += _drive(svc, clock, _schedule("flood", rng, pairs))
        assert svc.stats()["respawns"] == 0
    finally:
        svc.close()
    _check_differential(serve_graph, svc, futures)
