"""Geometric heuristic tests: distances, admissibility, memoization."""

import numpy as np
import pytest

from repro.graphs import knn_graph, road_graph
from repro.graphs.knn import uniform_points
from repro.heuristics.geometric import (
    EARTH_RADIUS_KM,
    MemoizedHeuristic,
    PointHeuristic,
    ZeroHeuristic,
    euclidean_distance,
    make_heuristic,
    spherical_distance,
)


class TestDistanceFunctions:
    def test_euclidean_basics(self):
        a = np.array([[0.0, 0.0], [3.0, 4.0]])
        b = np.array([[0.0, 0.0], [0.0, 0.0]])
        assert np.allclose(euclidean_distance(a, b), [0.0, 5.0])

    def test_euclidean_symmetry(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(2, 50, 3))
        assert np.allclose(euclidean_distance(a, b), euclidean_distance(b, a))

    def test_spherical_zero_for_same_point(self):
        p = np.array([[10.0, 45.0]])
        assert spherical_distance(p, p)[0] == pytest.approx(0.0, abs=1e-9)

    def test_spherical_quarter_circumference(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[90.0, 0.0]])  # 90 degrees along the equator
        want = np.pi / 2 * EARTH_RADIUS_KM
        assert spherical_distance(a, b)[0] == pytest.approx(want, rel=1e-9)

    def test_spherical_poles(self):
        a = np.array([[0.0, 90.0]])
        b = np.array([[123.0, -90.0]])
        want = np.pi * EARTH_RADIUS_KM
        assert spherical_distance(a, b)[0] == pytest.approx(want, rel=1e-9)

    def test_spherical_symmetry(self):
        rng = np.random.default_rng(1)
        a = np.column_stack([rng.uniform(-180, 180, 40), rng.uniform(-89, 89, 40)])
        b = np.column_stack([rng.uniform(-180, 180, 40), rng.uniform(-89, 89, 40)])
        assert np.allclose(spherical_distance(a, b), spherical_distance(b, a))

    def test_spherical_triangle_inequality(self):
        rng = np.random.default_rng(2)
        pts = np.column_stack([rng.uniform(-180, 180, 30), rng.uniform(-89, 89, 30)])
        a, b, c = pts[:10], pts[10:20], pts[20:]
        ab = spherical_distance(a, b)
        bc = spherical_distance(b, c)
        ac = spherical_distance(a, c)
        assert (ac <= ab + bc + 1e-6).all()


class TestPointHeuristic:
    def test_zero_at_target(self, small_road):
        h = PointHeuristic(small_road.coords, 7, "spherical")
        assert h(np.array([7]))[0] == pytest.approx(0.0, abs=1e-9)

    def test_counts_calls(self, small_road):
        h = PointHeuristic(small_road.coords, 0, "spherical")
        h(np.arange(5))
        h(np.arange(3))
        assert h.calls == 8
        assert h.evaluated == 8
        h.reset_counters()
        assert h.calls == 0

    def test_unknown_metric_rejected(self, small_road):
        with pytest.raises(ValueError):
            PointHeuristic(small_road.coords, 0, "manhattan")

    def test_admissible_on_road(self, small_road):
        """h(v) <= d(v, t): the property A* correctness rests on."""
        from repro.baselines import dijkstra

        t = 100
        h = PointHeuristic(small_road.coords, t, "spherical")
        d = dijkstra(small_road, t)  # undirected: d(v,t) == d(t,v)
        hv = h(np.arange(small_road.num_vertices))
        finite = np.isfinite(d)
        assert (hv[finite] <= d[finite] + 1e-6).all()

    def test_consistent_on_knn(self, small_knn):
        """h(u) <= w(u,v) + h(v) over every edge."""
        t = 42
        h = PointHeuristic(small_knn.coords, t, "euclidean")
        src, dst, w = small_knn.edges()
        hu = h(src)
        hv = h(dst)
        assert (hu <= w + hv + 1e-9).all()

    def test_consistent_on_road(self, small_road):
        t = 3
        h = PointHeuristic(small_road.coords, t, "spherical")
        src, dst, w = small_road.edges()
        assert (h(src) <= w + h(dst) + 1e-9).all()


class TestMemoizedHeuristic:
    def test_same_values_as_inner(self, small_knn):
        inner = PointHeuristic(small_knn.coords, 9, "euclidean")
        memo = MemoizedHeuristic(PointHeuristic(small_knn.coords, 9, "euclidean"), small_knn.num_vertices)
        v = np.arange(0, 200, 3)
        assert np.allclose(memo(v), inner(v))

    def test_evaluates_each_vertex_once(self, small_knn):
        memo = MemoizedHeuristic(
            PointHeuristic(small_knn.coords, 9, "euclidean"), small_knn.num_vertices
        )
        memo(np.array([1, 2, 3]))
        memo(np.array([2, 3, 4]))
        memo(np.array([1, 4]))
        assert memo.calls == 8
        assert memo.evaluated == 4

    def test_zero_value_cached(self):
        """A legitimate h == 0 (e.g. at the target) must not recompute."""
        coords = np.zeros((3, 2))
        inner = PointHeuristic(coords, 0, "euclidean")
        memo = MemoizedHeuristic(inner, 3)
        memo(np.array([0]))
        memo(np.array([0]))
        assert memo.evaluated == 1

    def test_repeated_ids_within_one_call(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0]])
        memo = MemoizedHeuristic(PointHeuristic(coords, 0, "euclidean"), 2)
        vals = memo(np.array([1, 1, 1]))
        assert np.allclose(vals, 1.0)


class TestMakeHeuristic:
    def test_spherical_for_road(self, small_road):
        h = make_heuristic(small_road, 5)
        assert isinstance(h, MemoizedHeuristic)
        assert h.inner.metric == "spherical"

    def test_euclidean_for_knn(self, small_knn):
        h = make_heuristic(small_knn, 5, memoize=False)
        assert isinstance(h, PointHeuristic)
        assert h.metric == "euclidean"

    def test_no_coords_raises(self, small_social):
        with pytest.raises(ValueError, match="no coordinates"):
            make_heuristic(small_social, 0)


def test_zero_heuristic():
    z = ZeroHeuristic()
    assert np.allclose(z(np.arange(4)), 0.0)
    assert z.calls == 4
