"""ALT landmark heuristic tests."""

import numpy as np
import pytest

from repro.baselines import dijkstra
from repro.core.engine import run_policy
from repro.core.policies import AStar, BiDAStar, EarlyTermination
from repro.heuristics.landmarks import LandmarkSet, select_landmarks_farthest


class TestLandmarkSet:
    def test_build_and_shape(self, small_social):
        ls = LandmarkSet(small_social, k=4)
        assert ls.k == 4
        assert ls.dist.shape == (4, small_social.num_vertices)

    def test_random_placement(self, small_social):
        ls = LandmarkSet(small_social, k=3, method="random", seed=1)
        assert ls.k == 3
        assert len(set(ls.landmarks.tolist())) == 3

    def test_k_clamped_to_n(self, line_graph):
        ls = LandmarkSet(line_graph, k=50)
        assert ls.k <= line_graph.num_vertices

    def test_directed_rejected(self):
        from repro.graphs import build_graph

        g = build_graph([(0, 1, 1.0)], directed=True)
        with pytest.raises(ValueError, match="undirected"):
            LandmarkSet(g, k=1)

    def test_invalid_params(self, line_graph):
        with pytest.raises(ValueError):
            LandmarkSet(line_graph, k=0)
        with pytest.raises(ValueError):
            LandmarkSet(line_graph, k=2, method="fancy")

    def test_lower_bound_is_valid(self, small_social):
        ls = LandmarkSet(small_social, k=4)
        d0 = dijkstra(small_social, 0)
        for v in (5, 50, 200):
            if np.isfinite(d0[v]):
                assert ls.lower_bound(0, v) <= d0[v] + 1e-6

    def test_lower_bound_exact_at_landmark(self, small_social):
        ls = LandmarkSet(small_social, k=4)
        l = int(ls.landmarks[0])
        d = dijkstra(small_social, l)
        for v in (3, 30):
            if np.isfinite(d[v]):
                assert ls.lower_bound(l, v) == pytest.approx(d[v])


class TestFarthestSelection:
    def test_landmarks_spread(self, small_road):
        marks, dist = select_landmarks_farthest(small_road, 4, seed=2)
        assert len(set(marks.tolist())) == 4
        # Pairwise landmark distances should be large relative to the
        # typical vertex distance (they sit near the periphery).
        d01 = dist[0][marks[1]]
        typical = np.median(dist[0][np.isfinite(dist[0])])
        assert d01 > typical

    def test_covers_disconnected_components(self, disconnected_graph):
        marks, dist = select_landmarks_farthest(disconnected_graph, 3, seed=0)
        # Some landmark must land in each component.
        comp_a = {0, 1, 2}
        comp_b = {3, 4}
        chosen = set(marks.tolist())
        assert chosen & comp_a and chosen & comp_b


class TestALTHeuristicProperties:
    def test_admissible_everywhere(self, small_social):
        ls = LandmarkSet(small_social, k=5)
        t = 123
        h = ls.heuristic_to(t)
        d = dijkstra(small_social, t)
        hv = h(np.arange(small_social.num_vertices))
        finite = np.isfinite(d)
        assert (hv[finite] <= d[finite] + 1e-6).all()

    def test_consistent_everywhere(self, small_social):
        ls = LandmarkSet(small_social, k=5)
        h = ls.heuristic_to(77)
        src, dst, w = small_social.edges()
        assert (h(src) <= w + h(dst) + 1e-6).all()

    def test_zero_at_target(self, small_social):
        ls = LandmarkSet(small_social, k=3)
        t = 9
        assert ls.heuristic_to(t)(np.array([t]))[0] == pytest.approx(0.0)


class TestALTWithAStar:
    """The extension's point: A* on graphs without coordinates."""

    def test_astar_exact_on_social(self, small_social):
        ls = LandmarkSet(small_social, k=6)
        rng = np.random.default_rng(3)
        for _ in range(5):
            s, t = (int(x) for x in rng.integers(0, small_social.num_vertices, 2))
            ref = dijkstra(small_social, s)[t]
            got = run_policy(small_social, AStar(s, t, heuristic=ls.heuristic_to(t))).answer
            if np.isinf(ref):
                assert np.isinf(got)
            else:
                assert got == pytest.approx(ref), (s, t)

    def test_bidastar_exact_on_social(self, small_social):
        ls = LandmarkSet(small_social, k=6)
        s, t = 10, 333
        ref = dijkstra(small_social, s)[t]
        got = run_policy(
            small_social,
            BiDAStar(
                s, t,
                heuristic_to_source=ls.heuristic_to(s),
                heuristic_to_target=ls.heuristic_to(t),
            ),
        ).answer
        assert got == pytest.approx(ref)

    def test_alt_bidastar_prunes_vs_et(self, small_social):
        """ALT guidance should cut relaxations versus plain ET."""
        ls = LandmarkSet(small_social, k=8)
        rng = np.random.default_rng(4)
        total_et, total_alt = 0, 0
        for _ in range(3):
            s, t = (int(x) for x in rng.integers(0, small_social.num_vertices, 2))
            et = run_policy(small_social, EarlyTermination(s, t))
            alt = run_policy(
                small_social,
                BiDAStar(
                    s, t,
                    heuristic_to_source=ls.heuristic_to(s),
                    heuristic_to_target=ls.heuristic_to(t),
                ),
            )
            assert (np.isinf(et.answer) and np.isinf(alt.answer)) or (
                alt.answer == pytest.approx(et.answer)
            )
            total_et += et.relaxations
            total_alt += alt.relaxations
        assert total_alt < total_et


class TestHeuristicRowCache:
    def test_same_target_returns_cached_instance(self, small_social):
        ls = LandmarkSet(small_social, k=4)
        h1 = ls.heuristic_to(7)
        h2 = ls.heuristic_to(7)
        assert h2 is h1
        assert ls.cache_hits == 1 and ls.cache_misses == 1

    def test_cache_false_builds_fresh(self, small_social):
        ls = LandmarkSet(small_social, k=4)
        h1 = ls.heuristic_to(7)
        h2 = ls.heuristic_to(7, cache=False)
        assert h2 is not h1
        assert ls.cache_hits == 0  # bypass does not touch the counters

    def test_clear_cache_forces_rebuild(self, small_social):
        ls = LandmarkSet(small_social, k=4)
        h1 = ls.heuristic_to(7)
        ls.clear_cache()
        assert ls.heuristic_to(7) is not h1

    def test_lru_bound_respected(self, small_social):
        ls = LandmarkSet(small_social, k=3, max_cached_targets=2)
        ls.heuristic_to(1)
        ls.heuristic_to(2)
        ls.heuristic_to(3)  # evicts target 1
        assert len(ls._h_cache) == 2
        before = ls.cache_misses
        ls.heuristic_to(1)
        assert ls.cache_misses == before + 1

    def test_zero_bound_disables_cache(self, small_social):
        ls = LandmarkSet(small_social, k=3, max_cached_targets=0)
        assert ls.heuristic_to(1) is not ls.heuristic_to(1)
        assert len(ls._h_cache) == 0

    def test_cached_rows_memoize_evaluations(self, small_social):
        """The cached wrapper keeps its memo table across queries."""
        ls = LandmarkSet(small_social, k=4)
        h = ls.heuristic_to(9)
        h(np.arange(50))
        evaluated = h.evaluated
        again = ls.heuristic_to(9)
        again(np.arange(50))  # same vertices: all memo hits
        assert again.evaluated == evaluated

    def test_cached_values_match_fresh(self, small_social):
        ls = LandmarkSet(small_social, k=4)
        v = np.arange(small_social.num_vertices)
        cached = ls.heuristic_to(11)(v)
        fresh = ls.heuristic_to(11, cache=False)(v)
        np.testing.assert_allclose(cached, fresh)
