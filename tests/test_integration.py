"""End-to-end integration tests across subsystems.

Each test exercises a realistic pipeline: generate a graph, pick queries
by percentile, run several algorithms, cross-check answers and the
performance invariants the paper's evaluation rests on.
"""

import numpy as np
import pytest

import repro
from repro.analysis.percentiles import sample_query_pairs, target_at_percentile
from repro.baselines import dijkstra, graphit_ppsp, mbq_ppsp
from repro.core.query_graph import PATTERNS
from repro.graphs import road_graph, social_graph
from repro.graphs.connectivity import largest_component
from repro.parallel.cost_model import speedup_curve


@pytest.fixture(scope="module")
def road():
    return road_graph(35, 35, seed=77, name="it-road")


@pytest.fixture(scope="module")
def social():
    return social_graph(1500, avg_degree=10, seed=78, name="it-social")


class TestCrossImplementationAgreement:
    """Ours, GraphIt-style, MBQ-style, and Dijkstra all agree."""

    def test_road_graph_all_nine_methods(self, road):
        pairs = sample_query_pairs(road, 50.0, num_pairs=2, seed=1)
        for s, t in pairs:
            ref = dijkstra(road, s)[t]
            for m in repro.PPSP_METHODS:
                assert repro.ppsp(road, s, t, method=m).distance == pytest.approx(ref)
            assert graphit_ppsp(road, s, t, delta=50.0) == pytest.approx(ref)
            assert graphit_ppsp(road, s, t, delta=50.0, use_astar=True) == pytest.approx(ref)
            assert mbq_ppsp(road, s, t) == pytest.approx(ref)
            assert mbq_ppsp(road, s, t, use_astar=True) == pytest.approx(ref)

    def test_social_graph_methods(self, social):
        pairs = sample_query_pairs(social, 50.0, num_pairs=2, seed=2)
        for s, t in pairs:
            ref = dijkstra(social, s)[t]
            for m in ("sssp", "et", "bids"):
                assert repro.ppsp(social, s, t, method=m).distance == pytest.approx(ref)


class TestPaperShapeInvariants:
    """Coarse versions of the evaluation's qualitative claims."""

    def test_pruning_reduces_work_at_close_percentiles(self, road):
        """Tab. 4, 1st percentile: ET and BiDS beat SSSP by a lot."""
        rng = np.random.default_rng(3)
        s = int(rng.choice(largest_component(road)))
        t = target_at_percentile(road, s, 1.0)
        sssp_work = repro.ppsp(road, s, t, method="sssp").run.relaxations
        et_work = repro.ppsp(road, s, t, method="et").run.relaxations
        bids_work = repro.ppsp(road, s, t, method="bids").run.relaxations
        assert et_work < 0.5 * sssp_work
        assert bids_work < 0.5 * sssp_work

    def test_bidastar_prunes_most_at_mid_percentile(self, road):
        rng = np.random.default_rng(4)
        s = int(rng.choice(largest_component(road)))
        t = target_at_percentile(road, s, 50.0)
        work = {
            m: repro.ppsp(road, s, t, method=m).run.relaxations
            for m in ("sssp", "et", "bids", "bidastar")
        }
        assert work["bidastar"] < work["et"] < work["sssp"]
        assert work["bids"] < work["et"]

    def test_far_queries_erode_the_advantage(self, road):
        """Fig. 4: the ET/SSSP work ratio grows toward 1 with distance."""
        rng = np.random.default_rng(5)
        s = int(rng.choice(largest_component(road)))
        ratios = []
        for p in (1.0, 50.0, 99.0):
            t = target_at_percentile(road, s, p)
            et = repro.ppsp(road, s, t, method="et").run.relaxations
            ss = repro.ppsp(road, s, t, method="sssp").run.relaxations
            ratios.append(et / ss)
        assert ratios[0] < ratios[1] < ratios[2] * 1.01

    def test_simulated_scalability_ordering(self, road):
        """Fig. 5: plain SSSP scales at least as well as pruned BiDS."""
        rng = np.random.default_rng(6)
        s = int(rng.choice(largest_component(road)))
        t = target_at_percentile(road, s, 50.0)
        sssp_curve = speedup_curve(repro.ppsp(road, s, t, method="sssp").run.meter, [96])
        bids_curve = speedup_curve(repro.ppsp(road, s, t, method="bids").run.meter, [96])
        assert sssp_curve[96] >= bids_curve[96] * 0.9

    def test_batch_multi_never_catastrophic(self, road):
        """Fig. 7: Multi-BiDS stays near the per-pattern best in work."""
        rng = np.random.default_rng(7)
        verts = rng.choice(largest_component(road), size=6, replace=False).tolist()
        for pattern, make in PATTERNS.items():
            qg = make(verts)
            works = {}
            for method in ("multi", "plain-bids", "sssp-vc", "sssp-plain"):
                works[method] = repro.batch_ppsp(road, qg, method=method).meter.work
            assert works["multi"] <= 2.5 * min(works.values()), pattern

    def test_vc_never_more_searches_than_plain(self, road):
        rng = np.random.default_rng(8)
        verts = rng.choice(largest_component(road), size=6, replace=False).tolist()
        for pattern, make in PATTERNS.items():
            qg = make(verts)
            vc = repro.batch_ppsp(road, qg, method="sssp-vc")
            plain = repro.batch_ppsp(road, qg, method="sssp-plain")
            assert vc.num_searches <= plain.num_searches, pattern


class TestRoundtrips:
    def test_save_load_query_same_answers(self, road, tmp_path):
        from repro.graphs.io import load_npz, save_npz

        p = tmp_path / "road.npz"
        save_npz(p, road)
        g2 = load_npz(p)
        assert repro.ppsp(g2, 0, 400, method="bidastar").distance == pytest.approx(
            repro.ppsp(road, 0, 400, method="bidastar").distance
        )

    def test_percentile_pipeline(self, social):
        pairs = sample_query_pairs(social, 25.0, num_pairs=3, seed=10)
        res = repro.batch_ppsp(social, pairs, method="multi")
        for (s, t), d in res.distances.items():
            assert d == pytest.approx(dijkstra(social, s)[t])
