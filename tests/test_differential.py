"""Differential tests: every PPSP method vs reference Dijkstra.

Seeded random geometric graphs — directed and undirected, sparse enough
to leave disconnected pairs, with coincident points producing genuine
zero-weight edges — checked on distance AND path validity, both cold
(:func:`repro.ppsp`) and through a shared :class:`~repro.perf.WarmEngine`.
Edge weights are Euclidean lengths scaled by a factor >= 1, so the
geometric heuristic stays admissible and consistent on every instance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ppsp
from repro.baselines import dijkstra
from repro.graphs import from_edges
from repro.perf import WarmEngine

METHODS = ("sssp", "et", "astar", "bids", "bidastar")
NUM_SEEDS = 50
PAIRS_PER_GRAPH = 4
# The acceptance floor: >= 200 distinct (graph, query) cases.
assert NUM_SEEDS * PAIRS_PER_GRAPH >= 200


def _random_geometric(seed: int):
    """A random geometric instance plus its query pairs.

    - vertices are uniform 2-D points; a handful are exact duplicates of
      earlier points, so their connecting edges have weight 0.0;
    - weight(u, v) = ||p_u - p_v|| * U(1.0, 1.5) — never below the
      Euclidean distance, keeping A*'s heuristic admissible;
    - every third seed is directed;
    - edge count is low enough that some instances are disconnected.
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(30, 80))
    pts = rng.uniform(0.0, 1.0, size=(n, 2))
    # Coincident duplicates -> zero-length (hence zero-weight) edges.
    dup = rng.integers(0, n // 2, size=max(2, n // 10))
    pts[-len(dup):] = pts[dup]

    m = int(n * rng.uniform(1.2, 2.5))
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    # Wire each duplicate to its original so weight-0 edges always exist.
    src = np.concatenate([src, np.arange(n - len(dup), n)])
    dst = np.concatenate([dst, dup])
    stretch = rng.uniform(1.0, 1.5, size=len(src))
    w = np.linalg.norm(pts[src] - pts[dst], axis=1) * stretch

    graph = from_edges(
        src, dst, w,
        num_vertices=n,
        directed=(seed % 3 == 0),
        coords=pts,
        coord_system="euclidean",
        dedupe=True,
        name=f"diff-{seed}",
    )
    pairs = [
        (int(rng.integers(0, n)), int(rng.integers(0, n)))
        for _ in range(PAIRS_PER_GRAPH)
    ]
    return graph, pairs


def _edge_weight(graph, u: int, v: int) -> float:
    """Weight of arc u -> v; fails the test if the arc does not exist."""
    nbrs = graph.neighbors(u)
    mask = nbrs == v
    assert mask.any(), f"path uses non-edge {u} -> {v}"
    return float(graph.neighbor_weights(u)[mask].min())


def _check_path(graph, path, s: int, t: int, distance: float) -> None:
    """Valid endpoints, every hop an arc, total weight == distance."""
    assert path[0] == s and path[-1] == t
    total = sum(_edge_weight(graph, u, v) for u, v in zip(path, path[1:]))
    assert total == pytest.approx(distance, rel=1e-9, abs=1e-9)


@pytest.mark.parametrize("seed", range(NUM_SEEDS))
def test_methods_agree_with_dijkstra(seed):
    graph, pairs = _random_geometric(seed)
    engine = WarmEngine(graph)
    for s, t in pairs:
        ref = float(dijkstra(graph, s)[t])
        for method in METHODS:
            cold = ppsp(graph, s, t, method=method)
            assert cold.distance == pytest.approx(ref), (
                f"seed={seed} {method} cold: {cold.distance} != {ref} "
                f"for ({s}, {t})"
            )
            hot = engine.query(s, t, method=method, path=True, use_cache=False)
            assert hot.distance == pytest.approx(ref), (
                f"seed={seed} {method} warm: {hot.distance} != {ref} "
                f"for ({s}, {t})"
            )
            if np.isfinite(ref):
                _check_path(graph, cold.path(), s, t, ref)
                _check_path(graph, hot.path(), s, t, ref)
    # Pooled buffers must all be back after the sweep.
    assert engine.arena.leased == 0


@pytest.mark.parametrize("seed", range(0, NUM_SEEDS, 7))
def test_warm_cache_hits_match_reference(seed):
    """Cached answers must be byte-identical to the first computation."""
    graph, pairs = _random_geometric(seed)
    engine = WarmEngine(graph)
    for s, t in pairs:
        first = engine.query(s, t, method="bids")
        again = engine.query(s, t, method="bids")
        assert again.cached
        assert again.distance == first.distance
        ref = float(dijkstra(graph, s)[t])
        assert first.distance == pytest.approx(ref)


def test_instance_family_covers_required_shapes():
    """The generator really produces the shapes the suite claims to cover."""
    directed = undirected = zero_w = disconnected = 0
    for seed in range(NUM_SEEDS):
        graph, pairs = _random_geometric(seed)
        directed += graph.directed
        undirected += not graph.directed
        zero_w += bool((graph.weights == 0.0).any())
        dist = dijkstra(graph, pairs[0][0])
        disconnected += bool(np.isinf(dist).any())
    assert directed > 0 and undirected > 0
    assert zero_w > NUM_SEEDS // 2
    assert disconnected > 0
