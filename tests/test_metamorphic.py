"""Metamorphic tests: distance invariants under graph transformations.

Shortest-path algorithms admit exact metamorphic relations — known ways
the *output* must move when the *input* is transformed:

* **uniform weight scaling** — multiplying every weight (and, to keep
  geometric heuristics exact, every coordinate) by ``c > 0`` scales all
  distances by exactly ``c``;
* **vertex relabeling** — permuting vertex ids changes nothing but the
  names: ``d'(π(s), π(t)) == d(s, t)``;
* **edge subdivision** — splitting an edge into two halves through a
  new midpoint vertex leaves every original-pair distance unchanged.

Each relation is checked for all five single-query methods, and the
reported shortest *path* is re-validated edge by edge on the transformed
graph.  These tests need no oracle: the original run is its own
reference, which is what makes them effective against subtle
cost-model/heuristic bugs that agree with Dijkstra on easy inputs.

The suite uses a k-NN graph because its weights equal the Euclidean
distance of its endpoints — the property that keeps A*'s geometric
heuristic admissible under coordinate scaling and makes midpoint
coordinates exact under subdivision.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ppsp
from repro.graphs import knn_graph
from repro.graphs.connectivity import largest_component
from repro.graphs.csr import from_edges
from repro.graphs.knn import uniform_points

SEED = 11
METHODS = ("sssp", "et", "astar", "bids", "bidastar")
REL_TOL = 1e-9


# ----------------------------------------------------------------------
# Fixtures and helpers
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def base_graph():
    g = knn_graph(uniform_points(150, 2, seed=SEED), k=5, name="meta-knn")
    # Guard the suite's core assumption: k-NN weights ARE the Euclidean
    # distances of their endpoints (subdivision midpoints rely on it).
    src, dst, w = g.edges()
    span = np.linalg.norm(g.coords[src] - g.coords[dst], axis=1)
    assert np.allclose(w, span, rtol=1e-12)
    return g


@pytest.fixture(scope="module")
def query_pairs(base_graph):
    lcc = largest_component(base_graph)
    rng = np.random.default_rng(SEED)
    chosen = rng.choice(lcc, size=8, replace=False)
    return [(int(chosen[2 * i]), int(chosen[2 * i + 1])) for i in range(4)]


@pytest.fixture(scope="module")
def base_distances(base_graph, query_pairs):
    return {
        (method, s, t): ppsp(base_graph, s, t, method=method).distance
        for method in METHODS
        for s, t in query_pairs
    }


def undirected_edges(graph):
    """Each undirected edge once, as (src, dst, weight) with src < dst."""
    src, dst, w = graph.edges()
    keep = src < dst
    return src[keep], dst[keep], w[keep]


def path_weight(graph, path) -> float:
    """Sum of (minimum) edge weights along a vertex path.

    Raises if a claimed hop has no corresponding edge — the path
    validation half of each metamorphic check.
    """
    total = 0.0
    for u, v in zip(path[:-1], path[1:]):
        nbrs = graph.neighbors(u)
        hits = np.flatnonzero(nbrs == v)
        if len(hits) == 0:
            raise AssertionError(f"path claims edge ({u}, {v}) which does not exist")
        total += float(graph.neighbor_weights(u)[hits].min())
    return total


def check_path(graph, s, t, method, expected_distance):
    """The reported path must exist on ``graph`` and realize the distance."""
    ans = ppsp(graph, s, t, method=method)
    path = ans.path()
    assert path[0] == s and path[-1] == t
    assert path_weight(graph, path) == pytest.approx(expected_distance, rel=REL_TOL)


# ----------------------------------------------------------------------
# Transform 1: uniform weight scaling
# ----------------------------------------------------------------------
def scaled_graph(graph, c: float):
    g = graph.with_weights(graph.weights * c)
    # Scale coordinates by the same factor so geometric heuristics stay
    # exact: h(v) = c * ||v - t|| <= c * d(v, t), still admissible.
    g.coords = graph.coords * c
    return g


@pytest.mark.metamorphic
@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("c", (3.0, 0.25))
def test_distance_scales_with_weights(base_graph, query_pairs, base_distances, method, c):
    g = scaled_graph(base_graph, c)
    for s, t in query_pairs:
        d = ppsp(g, s, t, method=method).distance
        assert d == pytest.approx(c * base_distances[(method, s, t)], rel=REL_TOL)


@pytest.mark.metamorphic
@pytest.mark.parametrize("method", METHODS)
def test_paths_valid_after_scaling(base_graph, query_pairs, base_distances, method):
    g = scaled_graph(base_graph, 3.0)
    s, t = query_pairs[0]
    check_path(g, s, t, method, 3.0 * base_distances[(method, s, t)])


# ----------------------------------------------------------------------
# Transform 2: random vertex relabeling
# ----------------------------------------------------------------------
def relabeled_graph(graph, perm: np.ndarray):
    src, dst, w = undirected_edges(graph)
    coords = np.empty_like(graph.coords)
    coords[perm] = graph.coords
    return from_edges(
        perm[src],
        perm[dst],
        w,
        num_vertices=graph.num_vertices,
        directed=False,
        coords=coords,
        coord_system=graph.coord_system,
        name=f"{graph.name}-relabeled",
    )


@pytest.mark.metamorphic
@pytest.mark.parametrize("method", METHODS)
def test_distance_invariant_under_relabeling(base_graph, query_pairs, base_distances, method):
    rng = np.random.default_rng(SEED + 1)
    perm = rng.permutation(base_graph.num_vertices)
    g = relabeled_graph(base_graph, perm)
    for s, t in query_pairs:
        d = ppsp(g, int(perm[s]), int(perm[t]), method=method).distance
        assert d == pytest.approx(base_distances[(method, s, t)], rel=REL_TOL)


@pytest.mark.metamorphic
@pytest.mark.parametrize("method", METHODS)
def test_paths_valid_after_relabeling(base_graph, query_pairs, base_distances, method):
    rng = np.random.default_rng(SEED + 1)
    perm = rng.permutation(base_graph.num_vertices)
    g = relabeled_graph(base_graph, perm)
    s, t = query_pairs[0]
    check_path(g, int(perm[s]), int(perm[t]), method, base_distances[(method, s, t)])


# ----------------------------------------------------------------------
# Transform 3: edge subdivision
# ----------------------------------------------------------------------
def subdivided_graph(graph, num_edges: int, seed: int):
    """Split ``num_edges`` randomly chosen edges at their midpoints.

    Each chosen edge (u, v, w) becomes (u, x, w/2) + (x, v, w/2) through
    a fresh vertex x placed at the Euclidean midpoint — exact because
    k-NN weights equal endpoint distances, so the two halves measure
    w/2 each and every original-pair distance is preserved.
    """
    src, dst, w = undirected_edges(graph)
    rng = np.random.default_rng(seed)
    chosen = rng.choice(len(src), size=min(num_edges, len(src)), replace=False)
    mask = np.zeros(len(src), dtype=bool)
    mask[chosen] = True

    n = graph.num_vertices
    mids = np.arange(n, n + mask.sum())
    new_src = np.concatenate([src[~mask], src[mask], mids])
    new_dst = np.concatenate([dst[~mask], mids, dst[mask]])
    half = w[mask] / 2.0
    new_w = np.concatenate([w[~mask], half, half])
    mid_coords = (graph.coords[src[mask]] + graph.coords[dst[mask]]) / 2.0
    coords = np.vstack([graph.coords, mid_coords])
    return from_edges(
        new_src,
        new_dst,
        new_w,
        num_vertices=n + mask.sum(),
        directed=False,
        coords=coords,
        coord_system=graph.coord_system,
        name=f"{graph.name}-subdivided",
    )


@pytest.mark.metamorphic
@pytest.mark.parametrize("method", METHODS)
def test_distance_invariant_under_subdivision(base_graph, query_pairs, base_distances, method):
    g = subdivided_graph(base_graph, num_edges=60, seed=SEED + 2)
    assert g.num_vertices == base_graph.num_vertices + 60
    for s, t in query_pairs:
        d = ppsp(g, s, t, method=method).distance
        assert d == pytest.approx(base_distances[(method, s, t)], rel=REL_TOL)


@pytest.mark.metamorphic
@pytest.mark.parametrize("method", METHODS)
def test_paths_valid_after_subdivision(base_graph, query_pairs, base_distances, method):
    g = subdivided_graph(base_graph, num_edges=60, seed=SEED + 2)
    s, t = query_pairs[0]
    check_path(g, s, t, method, base_distances[(method, s, t)])


# ----------------------------------------------------------------------
# Composition: all three transforms stacked
# ----------------------------------------------------------------------
@pytest.mark.metamorphic
@pytest.mark.parametrize("method", METHODS)
def test_transforms_compose(base_graph, query_pairs, base_distances, method):
    """scale ∘ relabel ∘ subdivide obeys the composed relation."""
    c = 2.0
    rng = np.random.default_rng(SEED + 3)
    g = subdivided_graph(base_graph, num_edges=40, seed=SEED + 2)
    perm = rng.permutation(g.num_vertices)
    g = relabeled_graph(g, perm)
    g = scaled_graph(g, c)
    for s, t in query_pairs:
        d = ppsp(g, int(perm[s]), int(perm[t]), method=method).distance
        assert d == pytest.approx(c * base_distances[(method, s, t)], rel=REL_TOL)
