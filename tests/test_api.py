"""Public API facade tests."""

import numpy as np
import pytest

import repro
from repro.baselines import dijkstra


class TestPpsp:
    @pytest.mark.parametrize("method", repro.PPSP_METHODS)
    def test_every_method_exact(self, method, small_road):
        s, t = 0, 100
        ref = dijkstra(small_road, s)[t]
        ans = repro.ppsp(small_road, s, t, method=method)
        assert ans.distance == pytest.approx(ref)
        assert ans.source == s and ans.target == t
        assert ans.method == method
        assert ans.reachable

    @pytest.mark.parametrize("method", repro.PPSP_METHODS)
    def test_every_method_yields_valid_path(self, method, small_road):
        s, t = 3, 99
        ans = repro.ppsp(small_road, s, t, method=method)
        p = ans.path()
        assert p[0] == s and p[-1] == t
        total = 0.0
        for u, v in zip(p[:-1], p[1:]):
            nbrs = small_road.neighbors(u)
            hit = np.flatnonzero(nbrs == v)
            assert len(hit)
            total += small_road.neighbor_weights(u)[hit].min()
        assert total == pytest.approx(ans.distance)

    def test_trivial_path(self, small_road):
        ans = repro.ppsp(small_road, 5, 5, method="bids")
        assert ans.distance == 0.0
        assert ans.path() == [5]

    def test_unreachable(self, disconnected_graph):
        ans = repro.ppsp(disconnected_graph, 0, 4, method="bids")
        assert not ans.reachable
        assert np.isinf(ans.distance)

    def test_unknown_method(self, line_graph):
        with pytest.raises(ValueError, match="unknown method"):
            repro.ppsp(line_graph, 0, 1, method="warp")

    def test_run_stats_exposed(self, small_road):
        ans = repro.ppsp(small_road, 0, 50, method="bids")
        assert ans.run.steps > 0
        assert ans.run.meter.work > 0

    def test_memoize_flag(self, small_road):
        a = repro.ppsp(small_road, 0, 100, method="astar", memoize=False)
        b = repro.ppsp(small_road, 0, 100, method="astar", memoize=True)
        assert a.distance == pytest.approx(b.distance)
        ha, hb = a.run.policy.heuristic, b.run.policy.heuristic
        assert ha.evaluated == ha.calls
        assert hb.evaluated < hb.calls

    def test_engine_kwargs_passthrough(self, small_road):
        ans = repro.ppsp(small_road, 0, 20, method="et", frontier_mode="dense", pull_relax=True)
        assert ans.distance == pytest.approx(dijkstra(small_road, 0)[20])


class TestBatchApi:
    def test_pairs_input(self, small_road):
        res = repro.batch_ppsp(small_road, [(0, 10), (10, 20)])
        ref = dijkstra(small_road, 0)[10]
        assert res.distance(0, 10) == pytest.approx(ref)

    def test_query_graph_input(self, small_road):
        qg = repro.QueryGraph.star(0, [5, 9])
        res = repro.batch_ppsp(small_road, qg, method="sssp-vc")
        assert len(res.distances) == 2

    def test_version_string(self):
        assert repro.__version__


class TestPublicSurface:
    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports(self):
        for pkg in (repro.core, repro.graphs, repro.parallel, repro.analysis, repro.baselines, repro.heuristics):
            for name in pkg.__all__:
                assert getattr(pkg, name) is not None, f"{pkg.__name__}.{name}"


class TestApiTracing:
    def test_trace_flows_through_ppsp(self, small_road):
        from repro.core.tracing import StepTrace

        tr = StepTrace()
        ans = repro.ppsp(small_road, 0, 70, method="bids", trace=tr)
        assert len(tr) == ans.run.steps
        assert tr.records[-1].mu == pytest.approx(ans.distance)

    def test_trace_flows_through_batch(self, small_road):
        # Batch solvers accept engine kwargs too.
        from repro.core.tracing import StepTrace

        tr = StepTrace()
        res = repro.batch_ppsp(small_road, [(0, 9)], method="multi", trace=tr)
        assert len(tr) > 0
        assert res.distance(0, 9) > 0
