"""Road network generator tests, including heuristic admissibility."""

import numpy as np
import pytest

from repro.graphs import road_graph
from repro.heuristics.geometric import spherical_distance


class TestRoadGraph:
    def test_shape(self):
        g = road_graph(10, 12, seed=1)
        assert g.num_vertices == 120
        assert g.coord_system == "spherical"
        assert g.coords.shape == (120, 2)

    def test_weights_at_least_spherical_distance(self):
        """Edge weight >= great-circle distance between its endpoints —
        the property that makes the spherical heuristic admissible."""
        g = road_graph(15, 15, seed=2)
        src, dst, w = g.edges()
        base = spherical_distance(g.coords[src], g.coords[dst])
        assert (w >= base - 1e-9).all()

    def test_max_detour_respected(self):
        g = road_graph(15, 15, seed=3, max_detour=1.2)
        src, dst, w = g.edges()
        base = spherical_distance(g.coords[src], g.coords[dst])
        assert (w <= base * 1.2 + 1e-9).all()

    def test_coords_within_box(self):
        g = road_graph(10, 10, seed=4, lon_range=(0.0, 5.0), lat_range=(0.0, 4.0))
        lon, lat = g.coords[:, 0], g.coords[:, 1]
        # Jitter is bounded by 30% of a cell.
        assert lon.min() > -1.0 and lon.max() < 6.0
        assert lat.min() > -1.0 and lat.max() < 5.0

    def test_grid_mostly_connected(self):
        from repro.graphs.connectivity import largest_component

        g = road_graph(20, 20, seed=5)
        assert len(largest_component(g)) > 0.9 * g.num_vertices

    def test_drop_fraction_removes_edges(self):
        dense = road_graph(20, 20, seed=6, drop_fraction=0.0, diagonal_fraction=0.0)
        sparse = road_graph(20, 20, seed=6, drop_fraction=0.3, diagonal_fraction=0.0)
        assert sparse.num_edges < dense.num_edges

    def test_diagonals_add_edges(self):
        none = road_graph(20, 20, seed=7, drop_fraction=0.0, diagonal_fraction=0.0)
        some = road_graph(20, 20, seed=7, drop_fraction=0.0, diagonal_fraction=0.5)
        assert some.num_edges > none.num_edges

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            road_graph(1, 5)
        with pytest.raises(ValueError):
            road_graph(5, 5, drop_fraction=0.9)
        with pytest.raises(ValueError):
            road_graph(5, 5, max_detour=0.5)

    def test_deterministic(self):
        a = road_graph(8, 8, seed=11)
        b = road_graph(8, 8, seed=11)
        assert np.array_equal(a.weights, b.weights)
        assert np.array_equal(a.coords, b.coords)

    def test_large_diameter(self):
        """Road graphs are the large-diameter category of the suite."""
        from repro.graphs.connectivity import approximate_diameter

        g = road_graph(25, 25, seed=12)
        assert approximate_diameter(g) >= 24
