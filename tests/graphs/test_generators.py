"""Generator tests: power-law graphs and the paper's weighting scheme."""

import numpy as np
import pytest

from repro.graphs import chung_lu_graph, social_graph, uniform_random_weights, web_graph
from repro.graphs.generators import WEIGHT_RANGE


class TestChungLu:
    def test_basic_shape(self):
        g = chung_lu_graph(500, 8.0, seed=1)
        assert g.num_vertices == 500
        assert not g.directed
        # Realized degree lands near the request (duplicates drop some).
        avg = g.num_edges / g.num_vertices
        assert 4.0 < avg <= 9.0

    def test_deterministic_by_seed(self):
        a = chung_lu_graph(200, 6.0, seed=7)
        b = chung_lu_graph(200, 6.0, seed=7)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.weights, b.weights)

    def test_different_seeds_differ(self):
        a = chung_lu_graph(200, 6.0, seed=1)
        b = chung_lu_graph(200, 6.0, seed=2)
        assert not (
            len(a.indices) == len(b.indices) and np.array_equal(a.indices, b.indices)
        )

    def test_degree_skew(self):
        """Power-law: the max degree should dwarf the median degree."""
        g = chung_lu_graph(2000, 10.0, exponent=2.1, seed=3)
        degs = np.sort(g.degree())[::-1]
        assert degs[0] > 8 * np.median(degs)

    def test_no_self_loops_or_duplicates(self):
        g = chung_lu_graph(300, 8.0, seed=4)
        src, dst, _ = g.edges()
        assert (src != dst).all()
        keys = src.astype(np.int64) * g.num_vertices + dst
        assert len(np.unique(keys)) == len(keys)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            chung_lu_graph(1, 2.0)

    def test_weights_in_paper_range(self):
        g = chung_lu_graph(300, 8.0, seed=5)
        assert g.weights.min() >= WEIGHT_RANGE[0]
        assert g.weights.max() <= WEIGHT_RANGE[1]
        # Integer-valued, per the paper's uniform [1, 2^18] scheme.
        assert np.array_equal(g.weights, np.round(g.weights))


class TestCategoryWrappers:
    def test_social_graph_named(self):
        g = social_graph(300, seed=1, name="soc")
        assert g.name == "soc"
        assert g.coords is None

    def test_web_graph_more_skewed_than_social(self):
        soc = social_graph(3000, avg_degree=12.0, seed=2)
        web = web_graph(3000, avg_degree=12.0, seed=2)
        # Lower exponent -> heavier tail -> larger max degree.
        assert web.degree().max() > soc.degree().max()


def test_uniform_random_weights_range_and_dtype():
    rng = np.random.default_rng(0)
    w = uniform_random_weights(10_000, rng)
    assert w.dtype == np.float64
    assert w.min() >= 1.0
    assert w.max() <= 2.0**18
    # Should actually use the range (probabilistically certain).
    assert w.max() > 2.0**17
