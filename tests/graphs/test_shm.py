"""Shared-memory graph export: integrity, isolation, and no leaks.

The leak tests enumerate ``/dev/shm`` before and after, so a segment
that outlives its pool — including on exception paths — fails loudly
here instead of accumulating on a serving host.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro.graphs import Graph, ShmFingerprintError, road_graph
from repro.graphs.shm import attach_graph, export_graph


@pytest.fixture()
def grid():
    return road_graph(8, 8, seed=11, name="shm-road")


def _shm_segments() -> set[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - exotic host
        pytest.skip("no /dev/shm on this platform")
    return set(glob.glob("/dev/shm/psm_*"))


class TestRoundtrip:
    def test_attach_reproduces_graph_bitwise(self, grid):
        with grid.to_shm() as shared:
            view = Graph.from_shm(shared.descriptor)
            assert view.fingerprint() == grid.fingerprint()
            np.testing.assert_array_equal(view.indptr, grid.indptr)
            np.testing.assert_array_equal(view.indices, grid.indices)
            np.testing.assert_array_equal(view.weights, grid.weights)
            np.testing.assert_array_equal(view.coords, grid.coords)
            assert view.directed == grid.directed
            assert view.name == grid.name
            # Same answers through the attached view.
            from repro import ppsp

            assert ppsp(view, 0, 63).distance == ppsp(grid, 0, 63).distance

    def test_descriptor_is_plain_picklable_data(self, grid):
        import pickle

        with grid.to_shm() as shared:
            clone = pickle.loads(pickle.dumps(shared.descriptor))
            assert clone == shared.descriptor

    def test_fingerprint_mismatch_refuses_attach(self, grid):
        with grid.to_shm() as shared:
            bad = dict(shared.descriptor)
            bad["fingerprint"] = "0" * 32
            with pytest.raises(ShmFingerprintError):
                attach_graph(bad)
            # check=False opts out of the integrity gate.
            view = attach_graph(bad, check=False)
            assert view.num_vertices == grid.num_vertices

    def test_rejects_foreign_descriptor(self):
        with pytest.raises(ValueError, match="not a shared-graph"):
            attach_graph({"kind": "something-else"})


class TestIsolation:
    def test_attached_arrays_are_read_only(self, grid):
        with grid.to_shm() as shared:
            view = Graph.from_shm(shared.descriptor)
            with pytest.raises(ValueError):
                view.weights[0] = 1e9

    def test_export_copies_rather_than_aliases(self, grid):
        """Mutating the source graph after export must not reach the
        segment: the shared bytes are a snapshot."""
        with grid.to_shm() as shared:
            original_first = float(grid.weights[0])
            grid.weights[0] = original_first + 1.0
            try:
                view = Graph.from_shm(shared.descriptor, check=False)
                assert float(view.weights[0]) == original_first
            finally:
                grid.weights[0] = original_first


class TestLifetime:
    def test_unlink_is_idempotent_and_removes_segment(self, grid):
        before = _shm_segments()
        shared = grid.to_shm()
        assert _shm_segments() - before  # the segment exists
        shared.unlink()
        shared.unlink()
        assert _shm_segments() == before

    def test_export_failure_leaves_no_segment(self, grid, monkeypatch):
        before = _shm_segments()
        fingerprint = Graph.fingerprint

        def boom(self):
            raise RuntimeError("fingerprint exploded")

        monkeypatch.setattr(Graph, "fingerprint", boom)
        with pytest.raises(RuntimeError, match="exploded"):
            export_graph(grid)
        monkeypatch.setattr(Graph, "fingerprint", fingerprint)
        assert _shm_segments() == before


@pytest.mark.pool
class TestPoolLifetime:
    """Every segment a pool shared must be gone once the pool is."""

    def test_pool_close_unlinks_all_segments(self):
        from repro.core.batch import solve_batch
        from repro.parallel.pool import ProcessPool

        before = _shm_segments()
        g1 = road_graph(8, 8, seed=1, name="shm-a")
        g2 = road_graph(6, 6, seed=2, name="shm-b")
        with ProcessPool(2) as pool:
            solve_batch(g1, [(0, 63), (1, 62)], method="multi",
                        backend="process", pool=pool)
            solve_batch(g2, [(0, 35)], method="plain-bids",
                        backend="process", pool=pool)
            assert len(_shm_segments() - before) == 2  # one per fingerprint
        assert _shm_segments() == before

    def test_segments_unlinked_when_batch_raises(self):
        from repro.core.batch import solve_batch
        from repro.parallel.pool import ProcessPool, WorkerCrashError
        from repro.robustness import FaultInjector

        before = _shm_segments()
        g = road_graph(8, 8, seed=4, name="shm-crash")
        with pytest.raises(WorkerCrashError):
            with ProcessPool(2) as pool:
                solve_batch(
                    g, [(0, 63), (1, 62), (2, 61)], method="multi",
                    backend="process", pool=pool,
                    fault_injector=FaultInjector(seed=1, kill_worker_at=0),
                )
        assert _shm_segments() == before

    def test_ephemeral_pool_cleans_up_after_itself(self):
        from repro.core.batch import solve_batch

        before = _shm_segments()
        g = road_graph(8, 8, seed=9, name="shm-eph")
        solve_batch(g, [(0, 63)], method="multi", backend="process", workers=2)
        assert _shm_segments() == before

    def test_segments_unlinked_when_executor_shutdown_raises(self):
        """A poisoned executor whose shutdown explodes must not leak.

        Regression test for the teardown ordering: ``close()`` has to
        unlink every shared segment even when the executor teardown
        itself raises (a worker died mid-batch and the pool is being
        torn down around the wreckage)."""
        from repro.parallel.pool import ProcessPool

        class _PoisonedExecutor:
            def shutdown(self, *a, **k):
                raise OSError("simulated poisoned executor teardown")

        before = _shm_segments()
        g = road_graph(8, 8, seed=13, name="shm-poison")
        pool = ProcessPool(2)
        handle_holder = []
        try:
            pool.share(g)
            handle_holder = list(pool._shared.values())
            assert _shm_segments() - before  # the segment exists
            pool._executor = _PoisonedExecutor()
            with pytest.raises(OSError, match="poisoned"):
                pool.close()
        finally:
            # Belt and braces: never leak the segment out of the test
            # even if the assertion below is what fails.
            for handle in handle_holder:
                handle.unlink()
        assert _shm_segments() == before
        assert all(handle.unlinked for handle in handle_holder)
        assert pool.closed
        pool.close()  # idempotent after the failed teardown
