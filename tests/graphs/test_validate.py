"""Graph validator tests."""

import numpy as np
import pytest

from repro.graphs import Graph, build_graph, road_graph, social_graph
from repro.graphs.validate import assert_valid, validate_graph


class TestCleanGraphs:
    def test_generated_graphs_validate(self, small_road, small_knn, small_social):
        for g in (small_road, small_knn, small_social):
            assert validate_graph(g) == [], g.name

    def test_directed_graph_validates(self):
        g = build_graph([(0, 1, 1.0)], directed=True)
        assert validate_graph(g) == []

    def test_empty_graph(self):
        assert validate_graph(build_graph([], num_vertices=3)) == []


class TestViolations:
    def _raw(self, indptr, indices, weights, **kw):
        g = build_graph([(0, 1, 1.0)], num_vertices=2, **kw)
        # Bypass constructor validation to simulate corrupt loads.
        g.indptr = np.asarray(indptr, dtype=np.int64)
        g.indices = np.asarray(indices, dtype=np.int32)
        g.weights = np.asarray(weights, dtype=np.float64)
        return g

    def test_bad_indptr_start(self):
        g = self._raw([1, 2, 2], [1, 0], [1.0, 1.0])
        assert any("indptr[0]" in p for p in validate_graph(g))

    def test_indptr_tail_mismatch(self):
        g = self._raw([0, 1, 1], [1, 0], [1.0, 1.0])
        assert any("indptr[-1]" in p for p in validate_graph(g))

    def test_negative_weight(self):
        g = self._raw([0, 1, 2], [1, 0], [1.0, -2.0])
        assert any("negative" in p for p in validate_graph(g))

    def test_nan_weight(self):
        g = self._raw([0, 1, 2], [1, 0], [np.nan, 1.0])
        assert any("non-finite edge weight" in p for p in validate_graph(g))

    def test_endpoint_out_of_range(self):
        g = self._raw([0, 1, 2], [5, 0], [1.0, 1.0])
        assert any("out of [0, n)" in p for p in validate_graph(g))

    def test_missing_reverse_arc(self):
        g = self._raw([0, 1, 1], [1], [1.0])
        g.directed = False
        assert any("missing reverse arc" in p for p in validate_graph(g))

    def test_asymmetric_weights(self):
        g = self._raw([0, 1, 2], [1, 0], [1.0, 3.0])
        assert any("asymmetric" in p for p in validate_graph(g))

    def test_symmetry_not_required_for_directed_view(self):
        g = self._raw([0, 1, 1], [1], [1.0])
        g.directed = True
        assert validate_graph(g) == []
        # ... unless explicitly demanded.
        assert validate_graph(g, require_symmetric=True) != []

    def test_bad_spherical_coords(self):
        g = build_graph(
            [(0, 1, 1.0)],
            coords=np.array([[0.0, 95.0], [0.0, 0.0]]),
            coord_system="spherical",
        )
        assert any("lon/lat" in p for p in validate_graph(g))

    def test_assert_valid_raises_with_details(self):
        g = self._raw([0, 1, 2], [1, 0], [1.0, -2.0])
        with pytest.raises(ValueError, match="negative"):
            assert_valid(g)

    def test_assert_valid_passes_clean(self, line_graph):
        assert_valid(line_graph)
