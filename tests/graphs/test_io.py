"""Graph serialization round-trip tests."""

import numpy as np
import pytest

from repro.graphs import build_graph, road_graph
from repro.graphs.io import (
    load_npz,
    read_dimacs,
    read_edge_list,
    save_npz,
    write_dimacs,
    write_edge_list,
)


@pytest.fixture
def sample():
    return build_graph([(0, 1, 1.5), (1, 2, 2.5), (0, 2, 4.0)], name="sample")


class TestNpz:
    def test_roundtrip_topology(self, sample, tmp_path):
        p = tmp_path / "g.npz"
        save_npz(p, sample)
        g = load_npz(p)
        assert g.num_vertices == sample.num_vertices
        assert np.array_equal(g.indptr, sample.indptr)
        assert np.array_equal(g.indices, sample.indices)
        assert np.array_equal(g.weights, sample.weights)
        assert g.name == "sample"
        assert g.directed == sample.directed

    def test_roundtrip_coords(self, tmp_path):
        g0 = road_graph(5, 5, seed=1)
        p = tmp_path / "road.npz"
        save_npz(p, g0)
        g = load_npz(p)
        assert g.coord_system == "spherical"
        assert np.allclose(g.coords, g0.coords)

    def test_no_coords_loads_none(self, sample, tmp_path):
        p = tmp_path / "g.npz"
        save_npz(p, sample)
        assert load_npz(p).coords is None


class TestDimacs:
    def test_roundtrip(self, sample, tmp_path):
        p = tmp_path / "g.gr"
        write_dimacs(p, sample)
        g = read_dimacs(p, directed=True)
        # Undirected sample wrote both arcs; reading directed keeps them.
        assert g.num_edges == sample.num_edges
        assert g.num_vertices == sample.num_vertices

    def test_header_and_one_indexing(self, sample, tmp_path):
        p = tmp_path / "g.gr"
        write_dimacs(p, sample)
        text = p.read_text().splitlines()
        assert text[1] == "p sp 3 6"
        assert all(line.split()[1] != "0" for line in text if line.startswith("a"))

    def test_distances_preserved(self, sample, tmp_path):
        from repro.baselines import dijkstra

        p = tmp_path / "g.gr"
        write_dimacs(p, sample)
        g = read_dimacs(p, directed=True)
        assert np.allclose(dijkstra(g, 0), dijkstra(sample, 0))


class TestEdgeList:
    def test_roundtrip(self, sample, tmp_path):
        p = tmp_path / "g.txt"
        write_edge_list(p, sample)
        g = read_edge_list(p, directed=True)
        assert g.num_edges == sample.num_edges
        src0, dst0, w0 = sample.edges()
        src1, dst1, w1 = g.edges()
        assert np.array_equal(src0, src1)
        assert np.allclose(w0, w1)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "empty.txt"
        p.write_text("")
        g = read_edge_list(p)
        assert g.num_vertices == 0
