"""Grid-based k-NN backend tests: cross-validated against the KD-tree."""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.graphs.knn import clustered_points, knn_graph, skewed_points, uniform_points
from repro.graphs.spatial import GridIndex, knn_graph_grid


class TestGridIndex:
    def test_query_matches_bruteforce(self):
        pts = uniform_points(300, 2, seed=1)
        idx = GridIndex(pts)
        for i in (0, 50, 299):
            nbrs, dists = idx.query(i, 5)
            d = np.sqrt(((pts - pts[i]) ** 2).sum(axis=1))
            d[i] = np.inf
            want = np.sort(d)[:5]
            assert np.allclose(np.sort(dists), want)

    def test_query_3d(self):
        pts = uniform_points(200, 3, seed=2)
        idx = GridIndex(pts)
        nbrs, dists = idx.query(7, 4)
        d = np.sqrt(((pts - pts[7]) ** 2).sum(axis=1))
        d[7] = np.inf
        assert np.allclose(np.sort(dists), np.sort(d)[:4])

    def test_never_returns_self(self):
        pts = uniform_points(100, 2, seed=3)
        idx = GridIndex(pts)
        for i in range(0, 100, 17):
            nbrs, _ = idx.query(i, 6)
            assert i not in nbrs

    def test_clustered_points(self):
        pts = clustered_points(400, 2, seed=4)
        idx = GridIndex(pts)
        tree = cKDTree(pts)
        for i in (3, 100, 399):
            _, dists = idx.query(i, 5)
            ref, _ = tree.query(pts[i], k=6)
            assert np.allclose(np.sort(dists), ref[1:])

    def test_high_dim_rejected(self):
        with pytest.raises(ValueError, match="4 dimensions"):
            GridIndex(np.zeros((10, 5)))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            GridIndex(np.zeros(10))


class TestKnnGraphGrid:
    @pytest.mark.parametrize("maker,dim", [
        (uniform_points, 2),
        (clustered_points, 2),
        (skewed_points, 2),
        (uniform_points, 3),
    ])
    def test_matches_kdtree_backend(self, maker, dim):
        """Both backends must produce the identical k-NN graph."""
        pts = maker(250, dim, seed=9)
        a = knn_graph_grid(pts, k=5)
        b = knn_graph(pts, k=5)
        sa = set(map(tuple, np.column_stack(a.edges()[:2]).tolist()))
        sb = set(map(tuple, np.column_stack(b.edges()[:2]).tolist()))
        # Neighbor ties at equal distance may resolve differently; compare
        # the distance multiset per vertex instead of identities.
        assert a.num_vertices == b.num_vertices
        for v in range(0, a.num_vertices, 13):
            da = np.sort(a.neighbor_weights(v))
            db = np.sort(b.neighbor_weights(v))
            m = min(len(da), len(db))
            assert np.allclose(da[:m], db[:m]), v
        # And the vast majority of edges should be identical outright.
        overlap = len(sa & sb) / max(len(sa | sb), 1)
        assert overlap > 0.95

    def test_shortest_paths_agree_across_backends(self):
        from repro.baselines import dijkstra

        pts = uniform_points(200, 2, seed=11)
        a = knn_graph_grid(pts, k=5)
        b = knn_graph(pts, k=5)
        assert np.allclose(dijkstra(a, 0), dijkstra(b, 0))

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            knn_graph_grid(uniform_points(4, 2, seed=0), k=5)

    def test_coords_attached(self):
        pts = uniform_points(60, 2, seed=12)
        g = knn_graph_grid(pts, k=3)
        assert g.coord_system == "euclidean"
        assert g.coords.shape == (60, 2)
