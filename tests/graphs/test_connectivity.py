"""Connected components and diameter tests."""

import numpy as np

from repro.graphs import build_graph
from repro.graphs.connectivity import (
    _bfs_levels,
    approximate_diameter,
    component_sizes,
    connected_components,
    largest_component,
)


class TestConnectedComponents:
    def test_single_component(self):
        g = build_graph([(0, 1, 1.0), (1, 2, 1.0)])
        labels = connected_components(g)
        assert len(set(labels.tolist())) == 1

    def test_two_components(self):
        g = build_graph([(0, 1, 1.0), (2, 3, 1.0)])
        labels = connected_components(g)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_isolated_vertices_own_components(self):
        g = build_graph([(0, 1, 1.0)], num_vertices=4)
        labels = connected_components(g)
        assert len(set(labels.tolist())) == 3

    def test_label_is_min_vertex_of_component(self):
        g = build_graph([(5, 3, 1.0), (3, 7, 1.0)], num_vertices=8)
        labels = connected_components(g)
        assert labels[5] == labels[3] == labels[7] == 3

    def test_edgeless_graph(self):
        g = build_graph([], num_vertices=4)
        assert list(connected_components(g)) == [0, 1, 2, 3]

    def test_directed_uses_weak_connectivity(self):
        g = build_graph([(0, 1, 1.0), (2, 1, 1.0)], directed=True)
        labels = connected_components(g)
        assert len(set(labels.tolist())) == 1

    def test_long_chain(self):
        """Pointer jumping must converge on a path graph (worst case)."""
        n = 200
        g = build_graph([(i, i + 1, 1.0) for i in range(n - 1)])
        labels = connected_components(g)
        assert (labels == 0).all()


class TestHelpers:
    def test_component_sizes(self):
        g = build_graph([(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
        sizes = component_sizes(connected_components(g))
        assert sorted(sizes.values()) == [2, 3]

    def test_largest_component(self):
        g = build_graph([(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
        assert list(largest_component(g)) == [2, 3, 4]

    def test_bfs_levels(self):
        g = build_graph([(0, 1, 5.0), (1, 2, 5.0), (0, 3, 5.0)])
        dist = _bfs_levels(g, 0)
        assert list(dist) == [0, 1, 2, 1]

    def test_bfs_unreachable_is_minus_one(self):
        g = build_graph([(0, 1, 1.0)], num_vertices=3)
        assert _bfs_levels(g, 0)[2] == -1

    def test_approximate_diameter_path(self):
        n = 30
        g = build_graph([(i, i + 1, 1.0) for i in range(n - 1)])
        assert approximate_diameter(g, sweeps=3) == n - 1

    def test_approximate_diameter_star(self):
        g = build_graph([(0, i, 1.0) for i in range(1, 10)])
        assert approximate_diameter(g) == 2

    def test_diameter_empty(self):
        g = build_graph([], num_vertices=0)
        assert approximate_diameter(g) == 0
