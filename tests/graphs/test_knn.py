"""k-NN graph construction tests."""

import numpy as np
import pytest

from repro.graphs import knn_graph
from repro.graphs.knn import clustered_points, skewed_points, uniform_points
from repro.heuristics.geometric import euclidean_distance


class TestKnnGraph:
    def test_every_vertex_has_at_least_k_neighbors(self):
        pts = uniform_points(200, 2, seed=1)
        g = knn_graph(pts, k=5)
        assert (g.degree() >= 5).all()

    def test_weights_are_euclidean_distances(self):
        pts = uniform_points(100, 2, seed=2)
        g = knn_graph(pts, k=3)
        src, dst, w = g.edges()
        expect = euclidean_distance(pts[src], pts[dst])
        assert np.allclose(w, expect)

    def test_symmetric(self):
        pts = uniform_points(150, 2, seed=3)
        g = knn_graph(pts, k=4)
        src, dst, _ = g.edges()
        fwd = set(zip(src.tolist(), dst.tolist()))
        assert all((b, a) in fwd for a, b in fwd)

    def test_edges_connect_actual_near_neighbors(self):
        pts = uniform_points(120, 2, seed=4)
        g = knn_graph(pts, k=5)
        # Vertex 0's neighbors must include its true nearest neighbor.
        d = euclidean_distance(pts, pts[0][None, :])
        d[0] = np.inf
        nearest = int(np.argmin(d))
        assert nearest in set(g.neighbors(0).tolist())

    def test_coords_stored_for_astar(self):
        pts = uniform_points(60, 3, seed=5)
        g = knn_graph(pts, k=2)
        assert g.coord_system == "euclidean"
        assert g.coords.shape == (60, 3)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            knn_graph(uniform_points(4, 2, seed=0), k=5)

    def test_coincident_points_allowed(self):
        pts = np.zeros((10, 2))
        pts[5:] = 1.0
        g = knn_graph(pts, k=3)
        assert g.weights.min() == 0.0  # zero-weight edges are legal


class TestPointClouds:
    def test_uniform_points_in_box(self):
        pts = uniform_points(500, 2, seed=1, scale=10.0)
        assert pts.shape == (500, 2)
        assert pts.min() >= 0.0 and pts.max() <= 10.0

    def test_clustered_points_cluster(self):
        """Mean nearest-neighbor distance much smaller than uniform's."""
        uni = uniform_points(800, 2, seed=2)
        clu = clustered_points(800, 2, seed=2)
        from scipy.spatial import cKDTree

        def mean_nn(p):
            d, _ = cKDTree(p).query(p, k=2)
            return d[:, 1].mean()

        assert mean_nn(clu) < 0.5 * mean_nn(uni)

    def test_skewed_points_heavy_tail(self):
        pts = skewed_points(2000, 2, seed=3)
        r = np.linalg.norm(pts - pts.mean(axis=0), axis=1)
        assert r.max() > 10 * np.median(r)

    def test_deterministic(self):
        assert np.array_equal(
            clustered_points(100, 2, seed=9), clustered_points(100, 2, seed=9)
        )
