"""CSR graph substrate tests."""

import numpy as np
import pytest

from repro.graphs import Graph, build_graph, from_edges, symmetrize_edges


class TestConstruction:
    def test_empty_graph(self):
        g = build_graph([], num_vertices=3)
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_single_edge_undirected_stores_both_arcs(self):
        g = build_graph([(0, 1, 2.5)])
        assert g.num_vertices == 2
        assert g.num_edges == 2
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == [0]
        assert g.neighbor_weights(0)[0] == 2.5

    def test_directed_stores_one_arc(self):
        g = build_graph([(0, 1, 2.5)], directed=True)
        assert g.num_edges == 1
        assert list(g.neighbors(0)) == [1]
        assert list(g.neighbors(1)) == []

    def test_num_vertices_inferred_from_max_id(self):
        g = build_graph([(0, 7, 1.0)])
        assert g.num_vertices == 8

    def test_explicit_num_vertices_allows_isolated(self):
        g = build_graph([(0, 1, 1.0)], num_vertices=10)
        assert g.num_vertices == 10
        assert g.degree(9) == 0

    def test_self_loop_undirected_not_duplicated(self):
        g = build_graph([(2, 2, 1.0)], num_vertices=3)
        assert g.num_edges == 1

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            build_graph([(0, 1, -1.0)])

    def test_indptr_validation(self):
        with pytest.raises(ValueError):
            Graph(
                indptr=np.array([1, 2]),
                indices=np.array([0]),
                weights=np.array([1.0]),
            )

    def test_indptr_tail_mismatch_rejected(self):
        with pytest.raises(ValueError, match="indptr"):
            Graph(
                indptr=np.array([0, 2]),
                indices=np.array([0]),
                weights=np.array([1.0]),
            )

    def test_endpoint_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(
                indptr=np.array([0, 1]),
                indices=np.array([5]),
                weights=np.array([1.0]),
            )

    def test_coords_row_count_must_match(self):
        with pytest.raises(ValueError, match="coords"):
            build_graph([(0, 1, 1.0)], coords=np.zeros((5, 2)))

    def test_dedupe_keeps_min_weight(self):
        g = from_edges([0, 0], [1, 1], [5.0, 2.0], directed=True, dedupe=True)
        assert g.num_edges == 1
        assert g.neighbor_weights(0)[0] == 2.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            from_edges([0], [1, 2], [1.0])


class TestAccessors:
    def test_degree_array(self):
        g = build_graph([(0, 1, 1.0), (0, 2, 1.0)])
        assert list(g.degree()) == [2, 1, 1]
        assert g.degree(0) == 2

    def test_edges_roundtrip(self):
        triples = [(0, 1, 1.5), (1, 2, 2.5)]
        g = build_graph(triples, directed=True)
        src, dst, w = g.edges()
        assert list(zip(src, dst, w)) == [(0, 1, 1.5), (1, 2, 2.5)]

    def test_has_coords(self):
        g = build_graph([(0, 1, 1.0)], coords=np.zeros((2, 2)), coord_system="euclidean")
        assert g.has_coords()
        assert not build_graph([(0, 1, 1.0)]).has_coords()


class TestDerived:
    def test_reverse_of_undirected_is_self(self):
        g = build_graph([(0, 1, 1.0)])
        assert g.reverse() is g

    def test_reverse_of_directed_flips_arcs(self):
        g = build_graph([(0, 1, 3.0)], directed=True)
        r = g.reverse()
        assert list(r.neighbors(1)) == [0]
        assert r.neighbor_weights(1)[0] == 3.0
        assert r.reverse() is g  # cached back-reference

    def test_with_weights_shares_topology(self):
        g = build_graph([(0, 1, 1.0)], directed=True)
        g2 = g.with_weights(np.array([9.0]))
        assert g2.neighbor_weights(0)[0] == 9.0
        assert g2.indices is g.indices

    def test_subgraph_renumbers(self):
        g = build_graph([(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
        sub, old = g.subgraph(np.array([1, 2]))
        assert sub.num_vertices == 2
        assert list(old) == [1, 2]
        # The 1-2 edge survives (as 0-1), the others are cut.
        assert sub.num_edges == 2
        assert sub.neighbor_weights(0)[0] == 2.0

    def test_subgraph_keeps_coords(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        g = build_graph([(0, 1, 1.0), (1, 2, 1.0)], coords=coords, coord_system="euclidean")
        sub, old = g.subgraph(np.array([1, 2]))
        assert np.allclose(sub.coords, coords[[1, 2]])


def test_symmetrize_edges_skips_self_loops():
    src, dst, w = symmetrize_edges(
        np.array([0, 1]), np.array([1, 1]), np.array([1.0, 2.0])
    )
    # Edge (0,1) doubled, loop (1,1) kept single.
    assert len(src) == 3


def test_weights_contiguous_float64():
    g = build_graph([(0, 1, 1)])
    assert g.weights.dtype == np.float64
    assert g.weights.flags["C_CONTIGUOUS"]
    assert g.indices.dtype == np.int32
    assert g.indptr.dtype == np.int64
