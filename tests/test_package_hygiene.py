"""Package-level hygiene: docs, exports, and import side effects."""

import importlib
import pkgutil
import subprocess
import sys

import repro


def _walk():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


class TestHygiene:
    def test_every_module_has_a_docstring(self):
        missing = [m.__name__ for m in _walk() if not (m.__doc__ or "").strip()]
        assert missing == []

    def test_every_all_export_resolves(self):
        broken = [
            f"{m.__name__}.{name}"
            for m in _walk()
            for name in getattr(m, "__all__", [])
            if not hasattr(m, name)
        ]
        assert broken == []

    def test_import_has_no_side_effects(self):
        """Importing the package must not run the CLI, print, or write."""
        proc = subprocess.run(
            [sys.executable, "-c",
             "import repro, repro.__main__, repro.cli; print('SENTINEL')"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "SENTINEL"

    def test_version_consistent_with_pyproject(self):
        import pathlib
        import tomllib

        root = pathlib.Path(repro.__file__).resolve().parents[2]
        meta = tomllib.loads((root / "pyproject.toml").read_text())
        assert meta["project"]["version"] == repro.__version__

    def test_no_wildcard_imports(self):
        import pathlib

        src = pathlib.Path(repro.__file__).resolve().parent
        offenders = [
            str(p) for p in src.rglob("*.py") if "import *" in p.read_text()
        ]
        assert offenders == []
