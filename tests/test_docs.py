"""Documentation integrity: links resolve, referenced artifacts exist."""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _md(name: str) -> str:
    return (ROOT / name).read_text()


class TestDocsExist:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "CONTRIBUTING.md",
         "CHANGELOG.md", "docs/algorithms.md", "docs/api.md",
         "docs/reproducing.md"],
    )
    def test_present_and_nonempty(self, name):
        text = _md(name)
        assert len(text) > 500, name


class TestLinksResolve:
    def test_readme_relative_links(self):
        text = _md("README.md")
        for target in re.findall(r"\]\(([^)#http][^)]*)\)", text):
            assert (ROOT / target).exists(), target

    def test_experiments_cites_existing_results(self):
        text = _md("EXPERIMENTS.md")
        for target in re.findall(r"`results/([\w.]+)`", text):
            assert (ROOT / "results" / target).exists(), target

    def test_examples_named_in_readme_exist(self):
        text = _md("README.md")
        for name in re.findall(r"`(\w+\.py)`", text):
            if name in ("setup.py",):
                continue
            assert (ROOT / "examples" / name).exists() or (
                ROOT / "src" / "repro" / name
            ).exists() or any(ROOT.rglob(name)), name


class TestCommandsInDocsAreReal:
    def test_experiment_module_commands(self):
        """Every `python -m repro.experiments.X` mentioned in docs imports."""
        import importlib

        mentioned = set()
        for doc in ("README.md", "EXPERIMENTS.md", "docs/reproducing.md"):
            mentioned.update(re.findall(r"python -m (repro(?:\.\w+)*)", _md(doc)))
        assert mentioned
        for modname in mentioned:
            if modname == "repro":
                continue  # the CLI package itself
            importlib.import_module(modname)

    def test_design_module_paths_exist(self):
        text = _md("DESIGN.md")
        for path in re.findall(r"`(repro/[\w/]+\.py)`", text):
            assert (ROOT / "src" / path).exists(), path
