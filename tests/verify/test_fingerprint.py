"""Graph content fingerprints and checkpoint integrity hardening."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph, road_graph
from repro.serve import (
    CheckpointCorrupt,
    CheckpointStore,
    ServePipeline,
    ServeQuery,
    batch_fingerprint,
)


def test_fingerprint_deterministic(grid):
    assert grid.fingerprint() == grid.fingerprint()
    again = road_graph(12, 12, seed=5, name="renamed")
    # content hash: same CSR bytes, different name -> same fingerprint
    assert again.fingerprint() == grid.fingerprint()


def test_fingerprint_sees_weight_changes(grid):
    w = grid.weights.copy()
    w[0] += 1.0
    bumped = Graph(
        indptr=grid.indptr, indices=grid.indices, weights=w,
        directed=grid.directed, coords=grid.coords,
        coord_system=grid.coord_system, name=grid.name,
    )
    assert bumped.fingerprint() != grid.fingerprint()


def test_fingerprint_sees_seed_changes():
    a = road_graph(8, 8, seed=1)
    b = road_graph(8, 8, seed=2)
    assert a.fingerprint() != b.fingerprint()


def test_batch_fingerprint_carries_graph_hash(grid):
    queries = [ServeQuery(0, 5), ServeQuery(3, 9)]
    fp = batch_fingerprint(grid, queries, "multi", 16)
    assert fp["graph"]["fingerprint"] == grid.fingerprint()


def test_resume_rejects_different_graph_content(grid, tmp_path):
    ckpt = str(tmp_path / "job.json")
    pairs = [(0, 140), (3, 97), (12, 55)]
    ServePipeline(grid, method="multi", checkpoint_path=ckpt).run(pairs)
    other = road_graph(12, 12, seed=6, name=grid.name)
    pipe = ServePipeline(other, method="multi", checkpoint_path=ckpt)
    with pytest.raises(ValueError, match="content fingerprint"):
        pipe.run(pairs, resume=True)


def test_sidecar_checksum_catches_corruption(grid, tmp_path):
    ckpt = str(tmp_path / "job.json")
    pairs = [(0, 140), (3, 97), (12, 55)]
    ServePipeline(grid, method="multi", checkpoint_path=ckpt).run(pairs)
    store = CheckpointStore(ckpt)
    blob = bytearray(open(store.sidecar, "rb").read())
    blob[len(blob) // 2] ^= 0xFF
    open(store.sidecar, "wb").write(bytes(blob))
    with pytest.raises(CheckpointCorrupt, match="checksum"):
        store.load()


def test_unreadable_sidecar_is_corrupt(grid, tmp_path):
    ckpt = str(tmp_path / "job.json")
    pairs = [(0, 140), (3, 97)]
    ServePipeline(grid, method="multi", checkpoint_path=ckpt).run(pairs)
    store = CheckpointStore(ckpt)
    # keep the manifest checksum in agreement with the garbage bytes so
    # the npz reader itself must refuse them
    import hashlib
    import json

    garbage = b"not an npz archive"
    open(store.sidecar, "wb").write(garbage)
    manifest = json.load(open(store.path))
    manifest["sidecar_sha256"] = hashlib.sha256(garbage).hexdigest()
    json.dump(manifest, open(store.path, "w"))
    with pytest.raises(CheckpointCorrupt, match="unreadable"):
        store.load()


def test_missing_checksum_tolerated_for_old_checkpoints(grid, tmp_path):
    ckpt = str(tmp_path / "job.json")
    pairs = [(0, 140), (3, 97)]
    ServePipeline(grid, method="multi", checkpoint_path=ckpt).run(pairs)
    import json

    store = CheckpointStore(ckpt)
    manifest = json.load(open(store.path))
    del manifest["sidecar_sha256"]
    json.dump(manifest, open(store.path, "w"))
    loaded = store.load()  # pre-PR-6 checkpoint: loads unchecked
    assert loaded is not None


def test_pipeline_quarantines_corrupt_checkpoint(grid, truth, pairs, tmp_path):
    ckpt = str(tmp_path / "job.json")
    ServePipeline(grid, method="multi", checkpoint_path=ckpt,
                  checkpoint_every=4).run(pairs)
    store = CheckpointStore(ckpt)
    blob = bytearray(open(store.sidecar, "rb").read())
    blob[len(blob) // 3] ^= 0xFF
    open(store.sidecar, "wb").write(bytes(blob))
    pipe = ServePipeline(grid, method="multi", checkpoint_path=ckpt,
                         checkpoint_every=4)
    res = pipe.run(pairs, resume=True)
    assert "checkpoint_quarantined" in res.details
    assert res.resumed_queries == 0  # recomputed, never resumed
    for key, expected in truth.items():
        assert abs(res.distances[key] - expected) <= 1e-6 * max(1.0, expected)


def test_fingerprint_roundtrips_through_npz(grid, tmp_path):
    from repro.graphs import io as graph_io

    path = str(tmp_path / "g.npz")
    graph_io.save_npz(path, grid)
    loaded = graph_io.load_npz(path)
    assert loaded.fingerprint() == grid.fingerprint()
