"""The end-to-end chaos sweep: zero silent wrong answers, ever.

Every :class:`FaultInjector` bit-flip corruption class (tentative
distances, warm-cache payloads, checkpoint sidecars), crossed with all
five batch methods plus the resilient chain and several seeds, runs
through serve-with-verification and is compared against ground-truth
Dijkstra.  The acceptance bar is absolute: an answer may be *repaired*
or explicitly *failed*, but an outcome of ``ok``/``inexact`` with
``exact=True`` must never carry a wrong distance.

Marked ``verify``: excluded from tier-1, run via ``make verify-chaos``.
"""

from __future__ import annotations

import pytest

from repro.robustness import FaultInjector
from repro.serve import CheckpointStore, ServePipeline, serve_batch

pytestmark = pytest.mark.verify

ALL_METHODS = (
    "multi", "plain-bids", "plain-star-bids", "sssp-plain", "sssp-vc", "resilient",
)
SEEDS = (0, 1, 2, 3)


def silent_wrong(res, truth):
    """Keys served as trustworthy yet disagreeing with ground truth."""
    out = []
    for key, expected in truth.items():
        outcome = res.outcomes[key]
        if outcome in ("shed", "timeout", "failed"):
            continue
        if not res.exact[key]:
            # degraded answers promise only an upper bound
            if res.distances[key] < expected - 1e-6 * max(1.0, expected):
                out.append(key)
            continue
        if abs(res.distances[key] - expected) > 1e-6 * max(1.0, expected):
            out.append(key)
    return out


@pytest.mark.parametrize("method", ALL_METHODS)
@pytest.mark.parametrize("seed", SEEDS)
def test_flip_dist_never_silent(grid, pairs, truth, method, seed):
    inj = FaultInjector(seed=seed, flip_dist_at=2, flip_dist_count=4, max_fires=6)
    res = serve_batch(grid, pairs, method=method, verify=True,
                      fault_injector=inj, checkpoint_every=8)
    assert inj.fired, "injector never fired; the scenario tests nothing"
    assert silent_wrong(res, truth) == []
    v = res.details["verification"]
    assert v["repaired"] == v["invalid"]


@pytest.mark.parametrize("method", ALL_METHODS)
def test_clean_control_no_false_positives(grid, pairs, truth, method):
    """Silent-completion control: without faults nothing is repaired."""
    res = serve_batch(grid, pairs, method=method, verify=True,
                      checkpoint_every=8)
    assert silent_wrong(res, truth) == []
    v = res.details["verification"]
    assert v["invalid"] == 0 and v["repaired"] == 0 and v["failed"] == 0
    assert res.counts() == {"ok": len(pairs)}


@pytest.mark.parametrize("seed", SEEDS)
def test_flip_cache_payload_never_silent(grid, pairs, truth, seed):
    from repro.perf import WarmEngine

    inj = FaultInjector(seed=seed, flip_cache_payload=True, max_fires=4)
    we = WarmEngine(grid, verify_hits=True, fault_injector=inj)
    for _ in range(3):  # cold, then hits (some corrupted in-cache)
        for s, t in pairs:
            ans = we.query(s, t, method="bids")
            expected = truth[(s, t)]
            assert abs(ans.distance - expected) <= 1e-6 * max(1.0, expected)
    assert inj.fired, "injector never fired; the scenario tests nothing"
    assert we.quarantined == len([f for f in inj.fired if f[1] == "flip-cache"])


@pytest.mark.parametrize("seed", SEEDS)
def test_flip_checkpoint_never_silent(grid, pairs, truth, tmp_path, seed):
    ckpt = str(tmp_path / f"job{seed}.json")
    inj = FaultInjector(seed=seed, flip_checkpoint=True, max_fires=16)
    ServePipeline(grid, method="multi", checkpoint_path=ckpt,
                  checkpoint_every=4, fault_injector=inj, verify=True).run(pairs)
    assert any(f[1] == "flip-checkpoint" for f in inj.fired)
    res = ServePipeline(grid, method="multi", checkpoint_path=ckpt,
                        checkpoint_every=4, verify=True).run(pairs, resume=True)
    # the corrupted checkpoint was quarantined and everything recomputed
    assert "checkpoint_quarantined" in res.details
    assert res.resumed_queries == 0
    assert silent_wrong(res, truth) == []


def test_combined_corruption_never_silent(grid, pairs, truth, tmp_path):
    """All three flip classes armed at once, across a crash/resume."""
    ckpt = str(tmp_path / "combo.json")
    inj = FaultInjector(seed=7, flip_dist_at=2, flip_dist_count=4,
                        flip_checkpoint=True, max_fires=12)
    res1 = ServePipeline(grid, method="multi", checkpoint_path=ckpt,
                         checkpoint_every=4, fault_injector=inj,
                         verify=True).run(pairs)
    assert silent_wrong(res1, truth) == []
    res2 = ServePipeline(grid, method="multi", checkpoint_path=ckpt,
                         checkpoint_every=4, verify=True).run(pairs, resume=True)
    assert silent_wrong(res2, truth) == []
