"""Certificate construction and JSON round-trip (schema strictness)."""

from __future__ import annotations

import dataclasses
import json
import math

import pytest

from repro import ppsp
from repro.verify import (
    CERTIFICATE_KIND,
    CERTIFICATE_VERSION,
    Certificate,
    CertificateChecker,
    CertificateError,
    RelaxFact,
    build_certificate,
)

METHODS = ("sssp", "et", "astar", "bids", "bidastar")


@pytest.mark.parametrize("method", METHODS)
def test_every_method_certifies_exact(grid, pairs, truth, method):
    s, t = pairs[0]
    ans = ppsp(grid, s, t, method=method, certify=True)
    cert = ans.certificate
    assert cert is not None
    assert cert.kind == "exact"
    assert cert.graph_fingerprint == grid.fingerprint()
    assert cert.path is not None and cert.path[0] == s and cert.path[-1] == t
    assert len(cert.facts) > 0
    report = CertificateChecker().check(grid, cert, expected_distance=ans.distance)
    assert report.valid and report.proven == "exact", report.failures


@pytest.mark.parametrize("method", METHODS)
def test_json_roundtrip_identity(grid, pairs, method):
    s, t = pairs[1]
    cert = ppsp(grid, s, t, method=method, certify=True).certificate
    again = Certificate.from_json(cert.to_json())
    assert again == cert
    # and the round-tripped copy still checks out
    assert CertificateChecker().check(grid, again).valid


def test_unreachable_roundtrip_preserves_inf(disconnected_graph):
    ans = ppsp(disconnected_graph, 0, 4, method="bids", certify=True)
    cert = ans.certificate
    assert math.isinf(cert.distance) and cert.path is None
    payload = json.loads(cert.to_json())
    assert payload["distance"] == "inf"  # strict JSON, no bare Infinity
    again = Certificate.from_json(cert.to_json())
    assert math.isinf(again.distance)
    report = CertificateChecker().check(disconnected_graph, cert)
    assert report.valid and report.proven == "unproven"


def test_self_query_certificate(grid):
    cert = ppsp(grid, 7, 7, method="bids", certify=True).certificate
    assert cert.distance == 0.0 and cert.path == (7,)
    assert CertificateChecker().check(grid, cert).valid


def test_budget_degraded_upper_bound(grid, pairs):
    from repro.robustness import Budget

    s, t = max(pairs, key=lambda p: abs(p[0] - p[1]))
    ans = ppsp(grid, s, t, method="sssp", budget=Budget(max_steps=2), certify=True)
    assert not ans.exact
    cert = ans.certificate
    assert cert.kind == "upper-bound"
    report = CertificateChecker().check(grid, cert)
    assert report.valid, report.failures
    assert report.proven in ("upper-bound", "unproven")


def test_from_dict_rejects_unknown_fields(grid, pairs):
    cert = ppsp(grid, *pairs[0], method="bids", certify=True).certificate
    payload = json.loads(cert.to_json())
    payload["extra"] = 1
    with pytest.raises(CertificateError, match="unknown"):
        Certificate.from_dict(payload)


def test_from_dict_rejects_wrong_kind_and_version(grid, pairs):
    cert = ppsp(grid, *pairs[0], method="bids", certify=True).certificate
    good = json.loads(cert.to_json())
    assert good["kind"] == CERTIFICATE_KIND
    assert good["version"] == CERTIFICATE_VERSION
    bad = dict(good, kind="something-else")
    with pytest.raises(CertificateError):
        Certificate.from_dict(bad)
    bad = dict(good, version=CERTIFICATE_VERSION + 1)
    with pytest.raises(CertificateError):
        Certificate.from_dict(bad)


def test_from_dict_rejects_missing_and_mistyped_fields(grid, pairs):
    cert = ppsp(grid, *pairs[0], method="bids", certify=True).certificate
    good = json.loads(cert.to_json())
    for field in ("source", "target", "method", "distance", "exact"):
        bad = dict(good)
        del bad[field]
        with pytest.raises(CertificateError):
            Certificate.from_dict(bad)
    with pytest.raises(CertificateError):
        Certificate.from_dict(dict(good, source="zero"))
    with pytest.raises(CertificateError):
        Certificate.from_dict(dict(good, exact="yes"))
    # bools are not acceptable stand-ins for numbers
    with pytest.raises(CertificateError):
        Certificate.from_dict(dict(good, distance=True))


def test_relax_fact_roundtrip_strict():
    fact = RelaxFact(u=1, v=2, w=0.5, du=1.0, dv=1.5, rev=True)
    assert RelaxFact.from_dict(fact.to_dict()) == fact
    with pytest.raises(CertificateError):
        RelaxFact.from_dict({**fact.to_dict(), "bogus": 0})


def test_build_certificate_explicit_path(line_graph):
    cert = build_certificate(
        line_graph, 0, 4, "sssp", 10.0, True,
        path=(0, 1, 2, 3, 4),
    )
    report = CertificateChecker().check(line_graph, cert)
    assert report.valid and report.proven == "exact"


def test_property_roundtrip_random_certs(grid, pairs):
    """Property-style sweep: every built cert survives dict+json cycles."""
    for s, t in pairs[:8]:
        cert = ppsp(grid, s, t, method="bidastar", certify=True).certificate
        assert Certificate.from_dict(json.loads(cert.to_json())) == cert
        assert Certificate.from_json(
            Certificate.from_dict(cert.to_dict()).to_json()
        ) == cert


def test_kind_follows_exactness(grid, pairs):
    cert = ppsp(grid, *pairs[2], method="bids", certify=True).certificate
    assert cert.kind == "exact"
    weaker = dataclasses.replace(cert, exact=False)
    assert weaker.kind == "upper-bound"
