"""The independent checker refutes every tampered certificate field."""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro import ppsp
from repro.graphs import road_graph
from repro.verify import CertificateChecker, RelaxFact


@pytest.fixture(scope="module")
def certified(grid, pairs):
    """One valid exact certificate (bidastar: path + mu + bound + facts)."""
    s, t = pairs[0]
    ans = ppsp(grid, s, t, method="bidastar", certify=True)
    return ans, ans.certificate


def refuted(grid, cert, **kwargs):
    report = CertificateChecker().check(grid, cert, **kwargs)
    assert not report.valid and report.proven == "refuted", (
        f"tamper not caught: {report}"
    )
    return report


def test_distance_too_low_refuted(grid, certified):
    _, cert = certified
    refuted(grid, dataclasses.replace(cert, distance=cert.distance * 0.5,
                                      mu=cert.mu * 0.5 if cert.mu else None))


def test_distance_too_high_refuted(grid, certified):
    _, cert = certified
    refuted(grid, dataclasses.replace(cert, distance=cert.distance * 2.0,
                                      mu=cert.mu * 2.0 if cert.mu else None))


def test_negative_distance_refuted(grid, certified):
    _, cert = certified
    refuted(grid, dataclasses.replace(cert, distance=-1.0, mu=None))


def test_nan_distance_refuted(grid, certified):
    _, cert = certified
    refuted(grid, dataclasses.replace(cert, distance=math.nan, mu=None))


def test_mu_mismatch_refuted(grid, certified):
    _, cert = certified
    refuted(grid, dataclasses.replace(cert, mu=cert.distance * 0.9))


def test_path_with_nonexistent_arc_refuted(grid, certified):
    _, cert = certified
    path = list(cert.path)
    # splice in a hop to a far-away vertex: almost surely not an arc,
    # and if it were one the re-summed length would change anyway
    path.insert(1, (path[0] + grid.num_vertices // 2) % grid.num_vertices)
    refuted(grid, dataclasses.replace(cert, path=tuple(path)))


def test_path_wrong_endpoints_refuted(grid, certified):
    _, cert = certified
    refuted(grid, dataclasses.replace(cert, path=tuple(reversed(cert.path))))


def test_missing_witness_on_exact_claim_refuted(grid, certified):
    _, cert = certified
    refuted(grid, dataclasses.replace(cert, path=None))


def test_tampered_fact_refuted(grid, certified):
    _, cert = certified
    assert cert.facts
    f = cert.facts[0]
    # claim the head distance violates the relaxation inequality
    bad = RelaxFact(u=f.u, v=f.v, w=f.w, du=f.du, dv=f.du + f.w + 1.0, rev=f.rev)
    refuted(grid, dataclasses.replace(cert, facts=(bad,) + cert.facts[1:]))


def test_fact_with_nonexistent_arc_refuted(grid, certified):
    _, cert = certified
    f = cert.facts[0]
    bad = RelaxFact(u=f.u, v=(f.u + grid.num_vertices // 2) % grid.num_vertices,
                    w=f.w, du=f.du, dv=f.dv, rev=f.rev)
    refuted(grid, dataclasses.replace(cert, facts=(bad,) + cert.facts[1:]))


def test_heuristic_bound_exceeding_distance_refuted(grid, certified):
    _, cert = certified
    assert cert.heuristic_bound is not None
    refuted(grid, dataclasses.replace(cert, heuristic_bound=cert.distance * 1.5))


def test_fingerprint_mismatch_refuted(certified):
    _, cert = certified
    other = road_graph(12, 12, seed=6, name="other-road")
    refuted(other, cert)


def test_expected_distance_crosscheck(grid, certified):
    """Post-build payload corruption: cert consistent, served value not."""
    _, cert = certified
    refuted(grid, cert, expected_distance=cert.distance * 1.01)


def test_endpoint_out_of_range_refuted(grid, certified):
    _, cert = certified
    refuted(grid, dataclasses.replace(cert, target=grid.num_vertices + 7))


def test_checks_counted(grid, certified):
    ans, cert = certified
    report = CertificateChecker().check(grid, cert, expected_distance=ans.distance)
    assert report.valid
    # path hops + facts + structural comparisons all count
    assert report.checks >= len(cert.path) - 1 + len(cert.facts)


def test_tolerance_is_relative(grid, certified):
    _, cert = certified
    nudged = dataclasses.replace(cert, distance=cert.distance * (1 + 1e-9),
                                 mu=cert.mu * (1 + 1e-9))
    assert CertificateChecker().check(grid, nudged).valid
    assert not CertificateChecker(tolerance=1e-12).check(
        grid, dataclasses.replace(cert, distance=cert.distance * (1 + 1e-7),
                                  mu=cert.mu * (1 + 1e-7))
    ).valid
