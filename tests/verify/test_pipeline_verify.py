"""ServePipeline's verification stage: detect, repair, never serve wrong."""

from __future__ import annotations

import pytest

from repro.obs import Observer
from repro.robustness import FaultInjector
from repro.serve import OUTCOMES, REPAIRED, ServePipeline, serve_batch
from tests.verify.conftest import assert_matches_truth


def test_repaired_is_a_first_class_outcome():
    assert REPAIRED == "repaired"
    assert REPAIRED in OUTCOMES


def test_clean_run_all_valid_no_repairs(grid, pairs, truth):
    res = serve_batch(grid, pairs, method="multi", verify=True)
    assert res.counts() == {"ok": len(pairs)}
    v = res.details["verification"]
    assert v["checked"] == len(pairs)
    assert v["valid"] == len(pairs)
    assert v["invalid"] == v["repaired"] == v["failed"] == 0
    assert_matches_truth(res.distances, truth)


def test_flip_dist_detected_and_repaired(grid, pairs, truth):
    inj = FaultInjector(seed=1, flip_dist_at=2, flip_dist_count=4, max_fires=4)
    res = serve_batch(grid, pairs, method="multi", verify=True,
                      fault_injector=inj, checkpoint_every=8)
    v = res.details["verification"]
    assert v["invalid"] > 0 and v["repaired"] == v["invalid"]
    assert res.counts().get("repaired", 0) == v["repaired"]
    # repaired answers are exact and match ground truth
    for key, outcome in res.outcomes.items():
        if outcome == REPAIRED:
            assert res.exact[key]
    assert_matches_truth(res.distances, truth)


def test_without_verify_corruption_is_silent(grid, pairs, truth):
    """Control: the same corruption goes unnoticed without the stage —
    exactly the wrong-answer class the certificates exist to close."""
    inj = FaultInjector(seed=1, flip_dist_at=2, flip_dist_count=4, max_fires=4)
    res = serve_batch(grid, pairs, method="multi", fault_injector=inj,
                      checkpoint_every=8)
    wrong = [
        k for k, expected in truth.items()
        if abs(res.distances[k] - expected) > 1e-6 * max(1.0, expected)
    ]
    assert wrong, "corruption should silently distort at least one answer"
    assert all(o == "ok" for o in res.outcomes.values())


def test_verify_counts_in_observer(grid, pairs):
    obs = Observer()
    inj = FaultInjector(seed=1, flip_dist_at=2, flip_dist_count=4, max_fires=4)
    res = serve_batch(grid, pairs, method="multi", verify=True,
                      fault_injector=inj, observer=obs, checkpoint_every=8)
    v = res.details["verification"]
    text = obs.export_text()
    assert f'repro_verify_checks_total{{outcome="valid"}} {v["valid"]}' in text
    assert f'repro_verify_repairs_total{{result="repaired"}} {v["repaired"]}' in text
    assert f'repro_serve_queries_total{{outcome="repaired"}} {v["repaired"]}' in text


def test_repaired_outcomes_survive_checkpoint_resume(grid, pairs, truth, tmp_path):
    ckpt = str(tmp_path / "job.json")
    inj = FaultInjector(seed=1, flip_dist_at=2, flip_dist_count=4, max_fires=2)
    killed = {"n": 0}

    def crash_once(manifest):
        killed["n"] += 1
        if killed["n"] == 2:
            raise KeyboardInterrupt

    pipe = ServePipeline(grid, method="multi", checkpoint_path=ckpt,
                         checkpoint_every=4, fault_injector=inj, verify=True,
                         checkpoint_hook=crash_once)
    with pytest.raises(KeyboardInterrupt):
        pipe.run(pairs)
    res = ServePipeline(grid, method="multi", checkpoint_path=ckpt,
                        checkpoint_every=4, verify=True).run(pairs, resume=True)
    assert res.resumed_queries == 8
    # outcomes recorded before the crash (incl. repaired) are restored
    assert_matches_truth(res.distances, truth)


def test_inexact_budget_answers_pass_with_upper_bound_certs(grid, pairs):
    from repro.robustness import Budget

    res = serve_batch(grid, pairs, method="sssp-plain", verify=True,
                      budget=Budget(max_steps=3), checkpoint_every=len(pairs))
    v = res.details["verification"]
    assert v["checked"] == len(pairs)
    # degraded answers carry one-sided certificates; none should be
    # refuted (a true upper bound is a valid weak claim)
    assert v["failed"] == 0
    for key, exact in res.exact.items():
        if not exact:
            assert res.outcomes[key] == "inexact"


def test_resilient_method_verifies(grid, pairs, truth):
    inj = FaultInjector(seed=4, flip_dist_at=1, flip_dist_count=4, max_fires=3)
    res = serve_batch(grid, pairs[:8], method="resilient", verify=True,
                      fault_injector=inj)
    v = res.details["verification"]
    assert v["checked"] == 8
    assert_matches_truth(
        {k: res.distances[k] for k in pairs[:8]},
        {k: truth[k] for k in pairs[:8]},
    )
