"""Shared fixtures for the certificate/verification suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra
from repro.graphs import road_graph


@pytest.fixture(scope="module")
def grid():
    """A 12x12 road grid with spherical coordinates (144 vertices)."""
    return road_graph(12, 12, seed=5, name="verify-road")


@pytest.fixture(scope="module")
def pairs(grid):
    """16 distinct seeded (s, t) pairs on :func:`grid`."""
    rng = np.random.default_rng(0)
    raw = rng.integers(0, grid.num_vertices, size=(24, 2))
    out = [(int(a), int(b)) for a, b in raw if a != b]
    return out[:16]


@pytest.fixture(scope="module")
def truth(grid, pairs):
    """Ground-truth distances of :func:`pairs` (reference Dijkstra)."""
    return {(s, t): float(dijkstra(grid, s, target=t)[t]) for s, t in pairs}


def assert_matches_truth(distances, truth, *, tol=1e-6):
    """Every distance equals the reference within relative ``tol``."""
    for key, expected in truth.items():
        got = distances[key]
        assert abs(got - expected) <= tol * max(1.0, abs(expected)), (
            f"{key}: got {got}, reference {expected}"
        )
