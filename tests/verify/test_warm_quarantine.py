"""WarmEngine certificate-verified cache hits and quarantine."""

from __future__ import annotations

import pytest

from repro.obs import Observer
from repro.perf import WarmEngine
from repro.robustness import FaultInjector


def test_clean_hits_serve_from_cache(grid, pairs, truth):
    we = WarmEngine(grid, verify_hits=True)
    s, t = pairs[0]
    a1 = we.query(s, t, method="bids")
    a2 = we.query(s, t, method="bids")
    assert a2.cached and a2.distance == a1.distance
    assert we.quarantined == 0
    assert abs(a1.distance - truth[(s, t)]) <= 1e-6 * max(1.0, truth[(s, t)])


def test_corrupted_hit_quarantined_not_served(grid, pairs, truth):
    inj = FaultInjector(seed=2, flip_cache_payload=True)
    we = WarmEngine(grid, verify_hits=True, fault_injector=inj)
    s, t = pairs[0]
    a1 = we.query(s, t, method="bids")
    a2 = we.query(s, t, method="bids")  # hit corrupted -> evict + recompute
    assert inj.fired and inj.fired[-1][1] == "flip-cache"
    assert we.quarantined == 1
    assert not a2.cached
    assert abs(a2.distance - truth[(s, t)]) <= 1e-6 * max(1.0, truth[(s, t)])
    # the poisoned entry was evicted: the recomputed answer re-seeds the
    # cache, so once the injector is spent the third query hits clean
    a3 = we.query(s, t, method="bids")
    assert a3.cached and a3.distance == a2.distance


def test_uncertified_entry_recomputed_without_quarantine(grid, pairs):
    plain = WarmEngine(grid)  # no certificates attached
    s, t = pairs[1]
    plain.query(s, t, method="bids")
    hit = plain.results.get(s, t, "bids")
    assert hit is not None and hit.certificate is None
    checked = WarmEngine(grid, verify_hits=True)
    checked.results.put(s, t, "bids", hit)
    a = checked.query(s, t, method="bids")
    # unproven, recomputed, but not counted as corruption
    assert checked.quarantined == 0
    assert a.certificate is not None


def test_batch_attaches_certificates(grid, pairs):
    we = WarmEngine(grid, verify_hits=True)
    res = we.batch(pairs[:6], method="multi")
    for s, t in pairs[:6]:
        # undirected batches normalize keys, so check both orientations
        hit = we.results.get(s, t, "bids") or we.results.get(t, s, "bids")
        assert hit is not None and hit.certificate is not None
    assert res.certificates


def test_quarantine_counters_and_observer(grid, pairs):
    obs = Observer()
    inj = FaultInjector(seed=3, flip_cache_payload=True)
    we = WarmEngine(grid, verify_hits=True, fault_injector=inj, observer=obs)
    s, t = pairs[2]
    we.query(s, t, method="bids")
    we.query(s, t, method="bids")
    assert we.stats()["quarantined"] == 1
    text = obs.export_text()
    assert 'repro_verify_quarantine_total{layer="result-cache"} 1' in text
    assert 'repro_verify_checks_total{outcome="invalid"} 1' in text


def test_verify_off_by_default(grid, pairs):
    we = WarmEngine(grid)
    assert "quarantined" not in we.stats()
