"""LRUCache / ResultCache: eviction order, counters, invalidation."""

from repro.perf import LRUCache, ResultCache
from repro.perf.warm import WarmAnswer


class TestLRUCache:
    def test_basic_get_put(self):
        c = LRUCache(4)
        assert c.get("a") is None
        c.put("a", 1)
        assert c.get("a") == 1
        assert c.hits == 1 and c.misses == 1

    def test_eviction_is_least_recently_used(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")  # refresh a; b becomes LRU
        c.put("c", 3)
        assert "b" not in c and "a" in c and "c" in c
        assert c.evictions == 1

    def test_put_refreshes_existing_key(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)  # refresh + overwrite
        c.put("c", 3)
        assert c.get("a") == 10 and "b" not in c

    def test_zero_maxsize_disables(self):
        c = LRUCache(0)
        c.put("a", 1)
        assert len(c) == 0 and c.get("a") is None

    def test_clear_keeps_counters(self):
        c = LRUCache(4)
        c.put("a", 1)
        c.get("a")
        c.clear()
        assert len(c) == 0 and c.hits == 1


class TestResultCache:
    def _answer(self, s, t, d=1.0):
        return WarmAnswer(source=s, target=t, method="bids", distance=d)

    def test_numpy_and_python_ints_share_keys(self):
        import numpy as np

        rc = ResultCache(8)
        rc.put(np.int64(3), np.int32(5), "bids", self._answer(3, 5))
        assert rc.get(3, 5, "bids") is not None

    def test_method_is_part_of_key(self):
        rc = ResultCache(8)
        rc.put(1, 2, "bids", self._answer(1, 2))
        assert rc.get(1, 2, "et") is None
        assert rc.get(1, 2, "bids") is not None

    def test_invalidate_empties_but_keeps_counters(self):
        rc = ResultCache(8)
        rc.put(1, 2, "bids", self._answer(1, 2))
        rc.get(1, 2, "bids")
        rc.invalidate()
        assert len(rc) == 0
        assert rc.hits == 1
        assert rc.get(1, 2, "bids") is None
