"""BufferArena: pooling, counters, scopes, and view-release semantics."""

import numpy as np
import pytest

from repro.perf import BufferArena


class TestAcquireRelease:
    def test_fresh_allocation_counts(self):
        arena = BufferArena()
        a = arena.acquire(16)
        assert a.shape == (16,) and a.dtype == np.float64
        assert arena.allocations == 1 and arena.reuses == 0
        assert arena.leased == 1 and arena.pooled == 0

    def test_release_then_reacquire_reuses_same_buffer(self):
        arena = BufferArena()
        a = arena.acquire(16)
        assert arena.release(a)
        b = arena.acquire(16)
        assert b is a
        assert arena.allocations == 1 and arena.reuses == 1

    def test_shape_and_dtype_key_separately(self):
        arena = BufferArena()
        a = arena.acquire(16, np.float64)
        b = arena.acquire(16, bool)
        c = arena.acquire((4, 4), np.float64)
        assert arena.allocations == 3
        for arr in (a, b, c):
            arena.release(arr)
        assert arena.acquire(16, bool) is b
        assert arena.acquire((4, 4)) is c

    def test_fill_resets_recycled_buffer(self):
        arena = BufferArena()
        a = arena.acquire(8, fill=np.inf)
        a[:] = 3.0
        arena.release(a)
        b = arena.acquire(8, fill=np.inf)
        assert np.isinf(b).all()

    def test_no_fill_leaves_stale_values(self):
        """Recycled buffers are np.empty-like: callers own initialization."""
        arena = BufferArena()
        a = arena.acquire(8)
        a[:] = 7.0
        arena.release(a)
        b = arena.acquire(8)
        assert (b == 7.0).all()

    def test_release_of_view_returns_base(self):
        """RunResult.dist is a (k, n) view of the flat arena buffer."""
        arena = BufferArena()
        flat = arena.acquire(12)
        view = flat.reshape(3, 4)
        assert arena.release(view)
        assert arena.pooled == 1 and arena.leased == 0
        assert arena.acquire(12) is flat

    def test_double_release_is_noop(self):
        arena = BufferArena()
        a = arena.acquire(4)
        assert arena.release(a)
        assert not arena.release(a)
        assert arena.pooled == 1 and arena.releases == 1

    def test_release_of_foreign_array_is_noop(self):
        arena = BufferArena()
        assert not arena.release(np.zeros(4))
        assert not arena.release(None)
        assert arena.pooled == 0


class TestScope:
    def test_scope_releases_everything(self):
        arena = BufferArena()
        with arena.scope():
            arena.acquire(8)
            arena.acquire(8, bool)
            assert arena.leased == 2
        assert arena.leased == 0 and arena.pooled == 2

    def test_manual_release_inside_scope_composes(self):
        arena = BufferArena()
        with arena.scope():
            a = arena.acquire(8)
            arena.release(a)
        assert arena.releases == 1  # not double-counted at scope exit
        assert arena.pooled == 1

    def test_scope_releases_on_exception(self):
        arena = BufferArena()
        with pytest.raises(RuntimeError):
            with arena.scope():
                arena.acquire(8)
                raise RuntimeError("boom")
        assert arena.leased == 0 and arena.pooled == 1

    def test_nested_scopes(self):
        arena = BufferArena()
        with arena.scope():
            arena.acquire(4)
            with arena.scope():
                arena.acquire(8)
            assert arena.leased == 1  # inner released, outer still out
        assert arena.leased == 0 and arena.pooled == 2


class TestMaintenance:
    def test_trim_drops_pooled_only(self):
        arena = BufferArena()
        kept = arena.acquire(4)
        arena.release(arena.acquire(8))
        assert arena.trim() == 1
        assert arena.pooled == 0 and arena.leased == 1
        assert arena.release(kept)  # lease unaffected by trim

    def test_stats_shape(self):
        arena = BufferArena()
        arena.release(arena.acquire(10))
        s = arena.stats()
        assert s["allocations"] == 1 and s["releases"] == 1
        assert s["pooled"] == 1 and s["leased"] == 0
        assert s["pooled_bytes"] == 80
