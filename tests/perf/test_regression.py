"""Regression harness: snapshot schema, baseline gate, file numbering."""

import copy
import json

import pytest

from repro.perf import regression
from repro.perf.regression import (
    bench_command,
    compare,
    find_baseline,
    next_bench_path,
    run_benchmark,
)


@pytest.fixture(scope="module")
def snapshot():
    """One tiny benchmark run shared by the whole module (seconds)."""
    return run_benchmark("tiny")


class TestRunBenchmark:
    def test_schema(self, snapshot):
        assert snapshot["kind"] == "repro-bench"
        assert snapshot["scale"] == "tiny"
        assert set(snapshot["single"]) == {"knn", "road"}
        for rows in snapshot["single"].values():
            assert set(rows) == set(regression.METHODS)
            for row in rows.values():
                assert row["cold_s"] > 0 and row["warm_s"] > 0
                assert row["work"] > 0 and row["relaxations"] > 0

    def test_batch_section(self, snapshot):
        for rows in snapshot["batch"].values():
            assert set(rows) == set(regression.BATCH_METHODS)
            for row in rows.values():
                assert row["num_searches"] >= 1

    def test_warm_speedup_gate_passes(self, snapshot):
        """Acceptance: warm repeated-query throughput >= 3x cold start
        for the A* family (result + heuristic caches hot)."""
        gates = snapshot["gates"]
        assert gates["warm_speedup_astar"] >= 3.0
        assert gates["warm_speedup_bidastar"] >= 3.0
        assert gates["pass"] is True

    def test_verify_overhead_section(self, snapshot):
        """Acceptance: serve-time certificate verification costs < 25%
        on a clean workload (sub-millisecond baselines stay ungated)."""
        v = snapshot["verify"]
        cfg = regression.SCALES["tiny"]
        assert v["workload"] == {
            "road_side": cfg["verify_road_side"],
            "num_pairs": cfg["verify_pairs"],
            "method": "multi",
        }
        assert v["plain_s"] > 0 and v["verified_s"] > 0
        assert v["max_allowed_overhead"] == regression.VERIFY_MAX_OVERHEAD
        assert v["pass"] is True
        assert snapshot["gates"]["max_verify_overhead"] == regression.VERIFY_MAX_OVERHEAD

    def test_warm_path_reuses_pool(self, snapshot):
        for counters in snapshot["arena"].values():
            assert counters["reuses"] > counters["allocations"]
            assert counters["result_hits"] > 0

    def test_deterministic_counters_are_stable(self, snapshot):
        """work/steps/relaxations must be reproducible run to run —
        that is what makes the tolerance gate trustworthy."""
        again = run_benchmark("tiny")
        for graph, rows in snapshot["single"].items():
            for method, row in rows.items():
                for metric in ("work", "steps", "relaxations"):
                    assert again["single"][graph][method][metric] == row[metric], (
                        graph, method, metric,
                    )


class TestCompare:
    def test_identical_is_ok(self, snapshot):
        res = compare(snapshot, copy.deepcopy(snapshot))
        assert res["status"] == "ok" and res["checked"] > 0

    def test_work_regression_detected(self, snapshot):
        worse = copy.deepcopy(snapshot)
        worse["single"]["road"]["bids"]["work"] *= 1.5
        res = compare(worse, snapshot)
        assert res["status"] == "regression"
        assert any("road.bids.work" in r["where"] for r in res["regressions"])

    def test_improvement_never_fails(self, snapshot):
        better = copy.deepcopy(snapshot)
        for rows in better["single"].values():
            for row in rows.values():
                row["work"] *= 0.5
                row["cold_s"] *= 0.5
        assert compare(better, snapshot)["status"] == "ok"

    def test_wall_noise_within_loose_tolerance(self, snapshot):
        noisy = copy.deepcopy(snapshot)
        noisy["single"]["road"]["bids"]["cold_s"] *= 1.5  # < 100% tolerance
        assert compare(noisy, snapshot)["status"] == "ok"

    def test_workload_mismatch_is_incomparable(self, snapshot):
        other = copy.deepcopy(snapshot)
        other["workload_key"] = "schema1-scale:small-seed:1729"
        assert compare(snapshot, other)["status"] == "incomparable"


class TestBenchFiles:
    def test_next_path_starts_at_2(self, tmp_path):
        assert next_bench_path(tmp_path).name == "BENCH_2.json"

    def test_next_path_increments(self, tmp_path):
        (tmp_path / "BENCH_2.json").write_text("{}")
        (tmp_path / "BENCH_7.json").write_text("{}")
        assert next_bench_path(tmp_path).name == "BENCH_8.json"

    def test_find_baseline_excludes_output(self, tmp_path):
        (tmp_path / "BENCH_2.json").write_text("{}")
        out = tmp_path / "BENCH_3.json"
        out.write_text("{}")
        assert find_baseline(tmp_path, exclude=out).name == "BENCH_2.json"
        assert find_baseline(tmp_path, exclude=None).name == "BENCH_3.json"
        assert find_baseline(tmp_path / "missing", exclude=None) is None


class TestBenchCommand:
    def test_emits_snapshot_and_compares(self, tmp_path):
        payload1, rc1 = bench_command(scale="tiny", directory=tmp_path)
        assert rc1 == 0
        first = tmp_path / "BENCH_2.json"
        assert first.exists()
        assert payload1["comparison"]["status"] == "no-baseline"

        payload2, rc2 = bench_command(scale="tiny", directory=tmp_path, check=True)
        assert (tmp_path / "BENCH_3.json").exists()
        assert payload2["comparison"]["baseline_file"] == "BENCH_2.json"
        assert payload2["comparison"]["status"] == "ok"
        assert rc2 == 0
        on_disk = json.loads((tmp_path / "BENCH_3.json").read_text())
        assert on_disk["comparison"]["status"] == "ok"

    def test_check_fails_on_injected_regression(self, tmp_path):
        payload, _ = bench_command(scale="tiny", directory=tmp_path)
        base = json.loads((tmp_path / "BENCH_2.json").read_text())
        for rows in base["single"].values():
            for row in rows.values():
                row["work"] *= 0.1  # pretend the past was 10x cheaper
        (tmp_path / "BENCH_2.json").write_text(json.dumps(base))
        _, rc = bench_command(scale="tiny", directory=tmp_path, check=True)
        assert rc == 1
