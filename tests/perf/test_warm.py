"""WarmEngine: correctness vs cold path, pooling, caching, invalidation."""

import numpy as np
import pytest

from repro import ppsp, warm
from repro.core.paths import PathError
from repro.heuristics.landmarks import LandmarkSet
from repro.perf import BufferArena, WarmEngine

METHODS = ("sssp", "et", "astar", "bids", "bidastar")


class TestCorrectness:
    @pytest.mark.parametrize("method", METHODS)
    def test_matches_cold_ppsp(self, small_road, method):
        engine = WarmEngine(small_road)
        for s, t in [(0, 100), (5, 77), (140, 3)]:
            cold = ppsp(small_road, s, t, method=method)
            hot = engine.query(s, t, method=method)
            assert hot.distance == pytest.approx(cold.distance)
            assert hot.exact and not hot.cached

    def test_path_capture(self, small_road):
        engine = WarmEngine(small_road)
        cold = ppsp(small_road, 0, 100, method="bids")
        hot = engine.query(0, 100, method="bids", path=True)
        p = hot.path()
        assert p[0] == 0 and p[-1] == 100
        assert len(p) == len(cold.path())

    def test_path_not_captured_raises(self, small_road):
        engine = WarmEngine(small_road)
        ans = engine.query(0, 100, method="bids")
        with pytest.raises(ValueError, match="path=True"):
            ans.path()

    def test_unreachable_and_self_queries(self, disconnected_graph):
        engine = WarmEngine(disconnected_graph)
        assert not engine.query(0, 4, method="bids").reachable
        with pytest.raises(PathError):
            engine.query(0, 4, method="bids", path=True).path()
        self_q = engine.query(2, 2, method="et", path=True)
        assert self_q.distance == 0.0 and self_q.path() == [2]

    def test_validates_endpoints(self, small_road):
        engine = WarmEngine(small_road)
        with pytest.raises(ValueError, match="out of range"):
            engine.query(0, 10_000)

    def test_unknown_method(self, small_road):
        with pytest.raises(ValueError, match="unknown method"):
            WarmEngine(small_road).query(0, 1, method="dfs")

    def test_astar_without_coords_or_landmarks(self, small_social):
        engine = WarmEngine(small_social)
        with pytest.raises(ValueError, match="no coordinates"):
            engine.query(0, 5, method="astar")


class TestPooling:
    def test_zero_new_allocations_once_warm(self, small_road):
        """The acceptance gate: the warm path performs zero new (k, n)
        array allocations after the first query of each shape."""
        engine = WarmEngine(small_road)
        for method in METHODS:
            engine.query(0, 100, method=method, use_cache=False)
        warmed = engine.arena.allocations
        for s, t in [(1, 99), (7, 121), (130, 2), (64, 64)]:
            for method in METHODS:
                engine.query(s, t, method=method, use_cache=False)
        assert engine.arena.allocations == warmed
        assert engine.arena.reuses > 0
        assert engine.arena.leased == 0  # every buffer returned

    def test_no_state_leak_between_pooled_queries(self, small_road):
        """Recycled buffers must not let one query's distances bleed
        into the next (fill=inf on acquire)."""
        engine = WarmEngine(small_road)
        first = engine.query(0, 100, method="et", use_cache=False)
        # A query whose search stays far from vertex 100:
        engine.query(130, 143, method="et", use_cache=False)
        again = engine.query(0, 100, method="et", use_cache=False)
        assert again.distance == pytest.approx(first.distance)

    def test_shared_arena_across_engines(self, small_road):
        arena = BufferArena()
        e1 = WarmEngine(small_road, arena=arena)
        e2 = WarmEngine(small_road, arena=arena)
        e1.query(0, 100, method="bids")
        before = arena.allocations
        e2.query(5, 77, method="bids")
        assert arena.allocations == before


class TestResultCache:
    def test_repeat_query_hits(self, small_road):
        engine = WarmEngine(small_road)
        a = engine.query(0, 100)
        b = engine.query(0, 100)
        assert not a.cached and b.cached
        assert b.distance == a.distance
        assert engine.results.hits == 1

    def test_cache_hit_does_no_engine_work(self, small_road):
        engine = WarmEngine(small_road)
        engine.query(0, 100)
        before = engine.arena.stats()["reuses"]
        engine.query(0, 100)
        assert engine.arena.stats()["reuses"] == before

    def test_path_upgrade_misses_then_stores(self, small_road):
        engine = WarmEngine(small_road)
        engine.query(0, 100)  # cached without path
        a = engine.query(0, 100, path=True)  # must recompute to get a path
        assert not a.cached and a.path()
        b = engine.query(0, 100, path=True)  # now cached with path
        assert b.cached and b.path() == a.path()

    def test_use_cache_false_bypasses(self, small_road):
        engine = WarmEngine(small_road)
        engine.query(0, 100)
        assert not engine.query(0, 100, use_cache=False).cached

    def test_invalidate_forces_recompute(self, small_road):
        engine = WarmEngine(small_road)
        engine.query(0, 100)
        engine.invalidate()
        assert not engine.query(0, 100).cached

    def test_invalidation_semantics_after_mutation(self, small_road):
        """Mutating weights in place + invalidate() yields fresh answers."""
        engine = WarmEngine(small_road)
        d_old = engine.query(0, 100, method="et").distance
        old = small_road.weights.copy()
        try:
            small_road.weights *= 2.0
            engine.invalidate()
            d_new = engine.query(0, 100, method="et").distance
            assert d_new == pytest.approx(2.0 * d_old)
        finally:
            small_road.weights[:] = old


class TestHeuristicCache:
    def test_h_rows_reused_across_queries(self, small_road):
        """Second query to the same target must not recompute h values
        the first query already evaluated (Sec. 5 memoization, lifted
        to engine scope)."""
        engine = WarmEngine(small_road)
        engine.query(0, 100, method="astar", use_cache=False)
        h = engine.heuristic_for(100)
        evaluated_after_first = h.evaluated
        engine.query(5, 100, method="astar", use_cache=False)
        # Some vertices overlap between the two searches; their h values
        # came from the memo table, so evaluations grow sublinearly.
        touched_twice = h.calls - h.evaluated
        assert touched_twice > 0
        assert h.evaluated >= evaluated_after_first

    def test_landmark_graphs_use_attached_set(self, small_social):
        ls = LandmarkSet(small_social, k=4)
        engine = WarmEngine(small_social, landmarks=ls)
        from repro.baselines import dijkstra

        ref = dijkstra(small_social, 10)[200]
        got = engine.query(10, 200, method="astar")
        if np.isinf(ref):
            assert not got.reachable
        else:
            assert got.distance == pytest.approx(ref)
        assert ls.cache_misses >= 1
        engine.query(30, 200, method="astar")
        # The engine-level LRU shadows the landmark cache: the reused
        # row hits there (same memoized instance either way).
        assert engine.stats()["heuristics"]["hits"] >= 1

    def test_invalidate_clears_landmark_cache(self, small_social):
        ls = LandmarkSet(small_social, k=3)
        engine = WarmEngine(small_social, landmarks=ls)
        engine.query(10, 200, method="astar")
        engine.invalidate()
        assert len(ls._h_cache) == 0


class TestBatch:
    def test_batch_matches_cold(self, small_road):
        from repro import batch_ppsp

        pairs = [(0, 100), (5, 77), (140, 3)]
        engine = WarmEngine(small_road)
        cold = batch_ppsp(small_road, pairs, method="multi")
        hot = engine.batch(pairs, method="multi")
        for p in pairs:
            assert hot.distance(*p) == pytest.approx(cold.distance(*p))

    def test_batch_buffers_returned(self, small_road):
        engine = WarmEngine(small_road)
        engine.batch([(0, 100), (5, 77)], method="multi")
        assert engine.arena.leased == 0

    def test_batch_paths_dropped_by_default(self, small_road):
        engine = WarmEngine(small_road)
        res = engine.batch([(0, 100)], method="multi")
        with pytest.raises(NotImplementedError):
            res.path(0, 100)

    def test_keep_paths_opts_out_of_pooling(self, small_road):
        engine = WarmEngine(small_road)
        res = engine.batch([(0, 100)], method="multi", keep_paths=True)
        p = res.path(0, 100)
        assert p[0] == 0 and p[-1] == 100

    def test_batch_seeds_result_cache(self, small_road):
        engine = WarmEngine(small_road)
        engine.batch([(0, 100)], method="multi")
        assert engine.query(0, 100, method="bids").cached


class TestStats:
    def test_stats_shape(self, small_road):
        engine = WarmEngine(small_road)
        engine.query(0, 100)
        s = engine.stats()
        assert s["queries"] == 1
        assert {"results", "heuristics", "arena"} <= set(s)

    def test_warm_factory(self, small_road):
        engine = warm(small_road, result_cache_size=2)
        assert isinstance(engine, WarmEngine)
        assert engine.results.stats()["maxsize"] == 2
