"""Command-line interface tests."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.graphs.io import load_npz, save_npz


@pytest.fixture
def road_file(small_road, tmp_path):
    p = tmp_path / "road.npz"
    save_npz(p, small_road)
    return str(p)


class TestGenerate:
    @pytest.mark.parametrize(
        "kind", ["social", "web", "road", "knn-uniform", "knn-clustered", "knn-skewed"]
    )
    def test_all_kinds(self, kind, tmp_path, capsys):
        out = tmp_path / f"{kind}.npz"
        rc = main(["generate", "--kind", kind, "--n", "300", "--output", str(out)])
        assert rc == 0
        g = load_npz(out)
        assert g.num_vertices >= 289  # road rounds to a square
        assert g.name == kind


class TestQuery:
    def test_json_output(self, road_file, capsys):
        rc = main(["query", "--graph", road_file, "--source", "0", "--target", "77"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "bids"
        assert payload["reachable"] is True
        assert payload["distance"] > 0

    def test_method_and_path(self, road_file, capsys):
        rc = main([
            "query", "--graph", road_file, "--source", "0", "--target", "50",
            "--method", "bidastar", "--path",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["path"][0] == 0 and payload["path"][-1] == 50

    def test_matches_library(self, road_file, small_road, capsys):
        from repro.baselines import dijkstra

        main(["query", "--graph", road_file, "--source", "3", "--target", "99"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["distance"] == pytest.approx(dijkstra(small_road, 3)[99])


class TestBatch:
    def test_inline_pairs(self, road_file, capsys):
        rc = main(["batch", "--graph", road_file, "0", "50", "50", "100"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["distances"]) == {"0->50", "50->100"}

    def test_pairs_file(self, road_file, tmp_path, capsys):
        pf = tmp_path / "pairs.txt"
        pf.write_text("0 10\n20 30\n")
        rc = main(["batch", "--graph", road_file, "--pairs-file", str(pf),
                   "--method", "sssp-vc"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "sssp-vc"
        assert len(payload["distances"]) == 2

    def test_odd_pairs_rejected(self, road_file):
        with pytest.raises(SystemExit):
            main(["batch", "--graph", road_file, "0", "1", "2"])


class TestInfo:
    def test_statistics(self, road_file, capsys):
        rc = main(["info", "--graph", road_file])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n"] == 144
        assert payload["coord_system"] == "spherical"
        assert payload["lcc_percent"] > 50


class TestFormats:
    def test_query_on_dimacs(self, small_road, tmp_path, capsys):
        from repro.graphs.io import write_dimacs

        p = tmp_path / "g.gr"
        write_dimacs(p, small_road)
        rc = main(["query", "--graph", str(p), "--source", "0", "--target", "10"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reachable"]


class TestInfoValidation:
    def test_clean_graph_reports_no_problems(self, road_file, capsys):
        rc = main(["info", "--graph", road_file])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["problems"] == []

    def test_corrupt_graph_flagged(self, small_road, tmp_path, capsys):
        import numpy as np

        bad = small_road.with_weights(small_road.weights.copy())
        bad.weights[0] = np.nan  # corrupt after construction
        p = tmp_path / "bad.npz"
        save_npz(p, bad)
        rc = main(["info", "--graph", str(p)])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert any("non-finite" in prob for prob in payload["problems"])


class TestQueryTrace:
    def test_trace_summary_in_json(self, road_file, capsys):
        rc = main(["query", "--graph", road_file, "--source", "0",
                   "--target", "70", "--method", "bids", "--trace"])
        assert rc == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["trace_summary"]["steps"] > 0
        # The step table goes to stderr, keeping stdout valid JSON.
        assert "theta" in captured.err


class TestTraceCommand:
    def test_json_export_parses_and_matches_steps(self, road_file, capsys):
        rc = main(["trace", "--graph", road_file, "--source", "0",
                   "--target", "70", "--method", "bids", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["query"]["distance"] > 0
        assert payload["summary"]["steps"] == len(payload["records"])
        first = payload["records"][0]
        assert {"step", "theta", "frontier_size", "mu"} <= set(first)

    def test_json_roundtrips_through_steptrace(self, road_file, capsys):
        from repro.core.tracing import StepTrace

        main(["trace", "--graph", road_file, "--source", "0",
              "--target", "70", "--method", "sssp", "--json"])
        out = capsys.readouterr().out
        trace = StepTrace.from_json(out)
        assert len(trace) == json.loads(out)["summary"]["steps"]

    def test_table_output(self, road_file, capsys):
        rc = main(["trace", "--graph", road_file, "--source", "0",
                   "--target", "70", "--method", "et", "--max-rows", "5"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "theta" in captured.out
        assert json.loads(captured.err)["steps"] > 0


class TestQueryVerbose:
    def test_verbose_reports_run_counters(self, road_file, capsys):
        rc = main(["query", "--graph", road_file, "--source", "0",
                   "--target", "70", "--method", "bids", "--verbose"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["work"] > 0
        assert payload["depth"] > 0
        assert payload["mu_settled_step"] is not None

    def test_verbose_counters_come_from_this_run(self, road_file, small_road, capsys):
        from repro import ppsp
        from repro.core.tracing import StepTrace

        main(["query", "--graph", road_file, "--source", "0",
              "--target", "70", "--method", "et", "--verbose"])
        payload = json.loads(capsys.readouterr().out)
        trace = StepTrace()
        ans = ppsp(small_road, 0, 70, method="et", trace=trace)
        assert payload["work"] == float(ans.run.meter.work)
        assert payload["depth"] == float(ans.run.meter.depth)
        assert payload["mu_settled_step"] == trace.mu_settled_step()

    def test_default_query_stays_lean(self, road_file, capsys):
        main(["query", "--graph", road_file, "--source", "0", "--target", "70"])
        payload = json.loads(capsys.readouterr().out)
        assert "work" not in payload and "trace_summary" not in payload


class TestInfoProbe:
    def test_probe_reports_executed_run(self, road_file, capsys):
        rc = main(["info", "--graph", road_file])
        assert rc == 0
        probe = json.loads(capsys.readouterr().out)["probe"]
        assert probe["method"] == "bids"
        assert probe["distance"] > 0
        assert probe["work"] > 0 and probe["depth"] > 0
        assert probe["steps"] > 0
        assert probe["mu_settled_step"] is not None


class TestStatsCommand:
    def test_text_exposition(self, road_file, capsys):
        rc = main(["stats", "--graph", road_file, "--pairs", "2"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_runs_total counter" in text
        assert 'repro_runs_total{policy="bids"}' in text

    def test_json_snapshot_validates(self, road_file, capsys):
        from repro.obs import validate_snapshot

        rc = main(["stats", "--graph", road_file, "--pairs", "2",
                   "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        validate_snapshot(payload)  # already validated in-command; re-check
        assert payload["kind"] == "repro-obs-snapshot"
        assert len(payload["spans"]) > 0

    def test_builtin_graph_and_output_file(self, tmp_path, capsys):
        out = tmp_path / "stats.json"
        rc = main(["stats", "--format", "json", "--no-spans",
                   "--output", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert "spans" not in payload  # --no-spans drops the per-query records


class TestBenchCommand:
    def test_tiny_workload_emits_snapshot(self, tmp_path, capsys):
        rc = main(["bench", "--scale", "tiny", "--dir", str(tmp_path)])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["gates"]["pass"] is True
        assert summary["comparison"]["status"] == "no-baseline"
        emitted = tmp_path / "BENCH_2.json"
        assert emitted.exists()
        payload = json.loads(emitted.read_text())
        assert payload["kind"] == "repro-bench"
        assert set(payload["single"]) == {"knn", "road"}

    def test_check_gates_against_previous_snapshot(self, tmp_path, capsys):
        assert main(["bench", "--scale", "tiny", "--dir", str(tmp_path)]) == 0
        capsys.readouterr()
        rc = main(["bench", "--scale", "tiny", "--dir", str(tmp_path), "--check"])
        summary = json.loads(capsys.readouterr().out)
        assert summary["comparison"]["baseline_file"] == "BENCH_2.json"
        assert summary["comparison"]["status"] == "ok"
        assert rc == 0


class TestServeBatch:
    def test_inline_pairs_json_payload(self, road_file, capsys):
        rc = main(["serve-batch", "--graph", road_file, "0", "50", "10", "99"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "multi"
        assert payload["counts"] == {"ok": 2}
        assert set(payload["results"]) == {"0->50", "10->99"}
        for entry in payload["results"].values():
            assert entry["exact"] is True and entry["outcome"] == "ok"

    def test_pairs_file_with_priorities_and_shedding(self, road_file, tmp_path, capsys):
        pf = tmp_path / "pairs.txt"
        pf.write_text("0 50 0\n10 99 5\n20 80 1\n")
        rc = main(["serve-batch", "--graph", road_file, "--pairs-file", str(pf),
                   "--max-queue", "2"])
        assert rc == 0  # shedding is explicit degradation, not failure
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"ok": 2, "shed": 1}
        assert payload["shed"] == ["0->50"]  # the lowest-priority submission

    def test_checkpoint_and_resume(self, road_file, tmp_path, capsys):
        ckpt = str(tmp_path / "job.json")
        argv = ["serve-batch", "--graph", road_file, "--checkpoint", ckpt,
                "--checkpoint-every", "1", "0", "50", "10", "99"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["checkpoints_written"] == 2
        assert first["checkpoint"] == ckpt
        assert main(argv + ["--resume"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["resumed_queries"] == 2
        assert second["results"] == first["results"]  # bit-identical off disk

    def test_resilient_method_reports_breakers(self, road_file, capsys):
        rc = main(["serve-batch", "--graph", road_file, "--method", "resilient",
                   "0", "50"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"ok": 1}
        assert payload["breakers"].get("bidastar") == "closed"

    def test_odd_inline_pairs_rejected(self, road_file):
        with pytest.raises(SystemExit):
            main(["serve-batch", "--graph", road_file, "0", "1", "2"])

    def test_empty_input_rejected(self, road_file):
        with pytest.raises(SystemExit, match="no queries"):
            main(["serve-batch", "--graph", road_file])
