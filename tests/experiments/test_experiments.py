"""Smoke tests for the experiment modules (tiny scale, few pairs)."""

import numpy as np
import pytest

from repro.experiments import fig4, fig5, fig6, fig7, table3, table4
from repro.experiments.suite import build_graph


class TestTable3:
    def test_collect_covers_all_graphs(self):
        stats = table3.collect("tiny")
        assert len(stats) == 14
        for row in stats.values():
            assert row["n"] > 0 and row["m"] > 0
            assert 0 < row["lcc_percent"] <= 100.0

    def test_heuristic_assignment(self):
        stats = table3.collect("tiny")
        assert stats["EU"]["heuristic"] == "Spherical"
        assert stats["COS5"]["heuristic"] == "Euclidean"
        assert stats["OK"]["heuristic"] == "-"

    def test_road_diameter_exceeds_social(self):
        stats = table3.collect("tiny")
        assert stats["EU"]["diameter"] > stats["OK"]["diameter"]


class TestTable4:
    def test_collect_small_subset(self):
        data = table4.collect(
            "tiny", percentiles=(50.0,), num_pairs=1, methods=("sssp", "et", "bids")
        )
        times = data["times"][50.0]
        assert data["mismatches"] == []
        for m in ("sssp", "et", "bids"):
            assert len(times[m]) == 14
            assert all(v > 0 for v in times[m].values())

    def test_summarize_means(self):
        data = table4.collect(
            "tiny", percentiles=(1.0,), num_pairs=1, methods=("sssp", "bids")
        )
        means = table4.summarize(data["times"])
        assert means[1.0]["sssp"]["all_mean"] > 0
        assert means[1.0]["sssp"]["heur_mean"] > 0

    def test_heuristic_methods_skip_social(self):
        data = table4.collect(
            "tiny", percentiles=(50.0,), num_pairs=1, methods=("astar",)
        )
        graphs = set(data["times"][50.0]["astar"])
        assert "OK" not in graphs and "NA" in graphs


class TestFig4:
    def test_series_monotone_percentiles(self):
        g = build_graph("AF", "tiny")
        data = fig4.collect(g, methods=("sssp", "et", "bids"))
        for m, pts in data["series"].items():
            pcts = [p for p, _ in pts]
            assert pcts == sorted(pcts)
            assert pcts[-1] == 100.0


class TestFig5:
    def test_curves_monotone(self):
        g = build_graph("AF", "tiny")
        data = fig5.collect(g, methods=("sssp", "et", "bids"))
        for m, curve in data["curves"].items():
            assert curve[1] == pytest.approx(1.0)
            vals = [curve[p] for p in sorted(curve)]
            assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))

    def test_all_methods_scale_substantially(self):
        """Every algorithm must show real parallelism on the simulated
        machine (the strict SSSP >= ET >= BiDS ordering of Fig. 5 is an
        at-scale average, not a per-tiny-graph law — see DESIGN.md)."""
        g = build_graph("NA", "tiny")
        data = fig5.collect(g, methods=("sssp", "et", "bids"))
        for m, curve in data["curves"].items():
            assert curve[96] > 4.0, m
            assert curve[96] >= curve[8] - 1e-9, m


class TestFig6:
    def test_collect_structure(self):
        """Wall-clock ratios are environment-sensitive at tiny scale, so
        assert structure here; the memoization *mechanism* (strictly
        fewer heuristic evaluations) is covered in
        benchmarks/test_fig6_memoization.py."""
        data = fig6.collect("tiny", num_pairs=1)
        assert set(data["categories"].values()) == {"road", "knn"}
        assert len(data["relative"]) == 8  # 4 road + 4 knn graphs
        means = fig6.category_means(data)
        for cat in ("road", "knn"):
            for variant, val in means[cat].items():
                assert val > 0, (cat, variant)


class TestFig7:
    def test_two_patterns_two_graphs(self, monkeypatch):
        from repro.experiments import suite as suite_mod

        # Restrict the suite to two graphs for speed.
        specs = [s for s in suite_mod.SUITE if s.name in ("AF", "OK")]
        monkeypatch.setattr(suite_mod, "SUITE", specs)
        data = fig7.collect("tiny", patterns=("chain", "star"))
        for pattern in ("chain", "star"):
            for gname, times in data["normalized"][pattern].items():
                assert min(times.values()) == pytest.approx(1.0)
        means = fig7.geomean_rows(data["normalized"])
        assert set(means) == {"chain", "star"}


class TestFig1:
    def test_search_space_nesting(self):
        """The paper's Fig. 1 ordering: each pruning technique touches a
        subset-ish of the plainer one's search space."""
        from repro.experiments import fig1
        from repro.graphs.road import road_graph

        g = road_graph(20, 20, seed=4)
        touched = fig1.touched_sets(g, 105, 294)
        counts = {k: int(v.sum()) for k, v in touched.items()}
        assert counts["sssp"] == g.num_vertices
        assert counts["et"] <= counts["sssp"]
        assert counts["bids"] <= counts["et"]
        assert counts["astar"] <= counts["et"]
        # No subset relation between BiD-A* and A* is guaranteed (the
        # Thm. 3.4 prune is deliberately looser than BiDS's on the
        # induced graph); just require real pruning vs plain SSSP.
        assert counts["bidastar"] < counts["sssp"]

    def test_render_map_marks_endpoints(self):
        import numpy as np

        from repro.experiments import fig1
        from repro.graphs.road import road_graph

        g = road_graph(10, 10, seed=1)
        art = fig1.render_map(g, np.ones(g.num_vertices, dtype=bool), 0, 99)
        assert "S" in art and "T" in art
