"""Experiment harness tests."""

import numpy as np
import pytest

from repro.baselines import dijkstra
from repro.experiments.harness import (
    render_table,
    run_single_query,
    timed,
    tune_delta,
)
from repro.experiments.suite import build_graph


# run_single_query must accept every method name the tables use.
ALL = ("sssp", "et", "bids", "astar", "bidastar", "gi-et", "gi-astar", "mbq-et", "mbq-astar")


class TestTuneDelta:
    def test_positive_and_cached(self, small_road):
        d1 = tune_delta(small_road)
        d2 = tune_delta(small_road)
        assert d1 > 0
        assert d1 == d2  # cache hit

    def test_empty_graph(self):
        from repro.graphs import build_graph as bg

        assert tune_delta(bg([], num_vertices=2)) == 1.0


class TestRunSingleQuery:
    @pytest.mark.parametrize("method", ALL)
    def test_all_methods_answer_exactly(self, method, small_road):
        s, t = 0, 90
        ref = dijkstra(small_road, s)[t]
        timing = run_single_query(small_road, method, s, t, delta=40.0)
        assert timing.answer == pytest.approx(ref)
        assert timing.seconds >= 0
        assert timing.meter is not None and timing.meter.work > 0

    def test_unknown_method(self, small_road):
        with pytest.raises(ValueError):
            run_single_query(small_road, "quantum", 0, 1)

    def test_repeats_average(self, small_road):
        t1 = run_single_query(small_road, "bids", 0, 50, delta=40.0, repeats=2)
        assert t1.seconds > 0


class TestTimed:
    def test_returns_mean_and_value(self):
        calls = []

        def fn():
            calls.append(1)
            return 42

        secs, out = timed(fn, repeats=3, warmup=2)
        assert out == 42
        assert len(calls) == 5
        assert secs >= 0


class TestRenderTable:
    def test_contains_all_cells(self):
        text = render_table(
            "T", ["r1", "r2"], ["c1", "c2"], {("r1", "c1"): 1.5, ("r2", "c2"): "x"}
        )
        assert "T" in text and "r1" in text and "c2" in text
        assert "1.5000" in text and "x" in text

    def test_missing_cells_dash(self):
        text = render_table("T", ["r"], ["c"], {})
        assert "-" in text


class TestResultsIO:
    def test_results_dir_env_override(self, tmp_path, monkeypatch):
        from repro.experiments.harness import results_dir, save_results

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "sub"))
        d = results_dir()
        assert d == str(tmp_path / "sub")
        import os

        assert os.path.isdir(d)
        path = save_results("unit", {"a": 1.5})
        import json

        assert json.load(open(path)) == {"a": 1.5}

    def test_save_results_serializes_numpy(self, tmp_path, monkeypatch):
        import json

        import numpy as np

        from repro.experiments.harness import save_results

        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        path = save_results("np", {"x": np.float64(2.5), "y": np.int64(3)})
        data = json.load(open(path))
        assert data["x"] == 2.5 and data["y"] == 3.0


class TestGeomeanOrNone:
    def test_filters_nonpositive(self):
        from repro.experiments.harness import geomean_or_none

        assert geomean_or_none([1.0, 4.0]) == pytest.approx(2.0)
        assert geomean_or_none([]) is None
        assert geomean_or_none([0.0, -1.0]) is None
