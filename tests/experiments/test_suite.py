"""Graph suite registry tests."""

import pytest

from repro.experiments.suite import SCALES, SUITE, build_graph, build_suite, graphs_with_coords


class TestSuite:
    def test_fourteen_graphs_paper_order(self):
        names = [s.name for s in SUITE]
        assert names == [
            "OK", "LJ", "TW", "FS", "IT", "SD",
            "AF", "NA", "AS", "EU", "HH5", "CH5", "GL5", "COS5",
        ]

    def test_categories(self):
        cats = {s.name: s.category for s in SUITE}
        assert cats["OK"] == "social" and cats["SD"] == "web"
        assert cats["EU"] == "road" and cats["COS5"] == "knn"

    def test_build_graph_cached(self):
        a = build_graph("AF", "tiny")
        b = build_graph("AF", "tiny")
        assert a is b

    def test_scales_ordered(self):
        assert SCALES["tiny"] < SCALES["small"] < SCALES["medium"]

    def test_tiny_scale_sizes(self):
        g = build_graph("OK", "tiny")
        assert 100 < g.num_vertices < 5000

    def test_road_and_knn_have_coords(self):
        for spec, g in graphs_with_coords("tiny"):
            assert g.has_coords(), spec.name
            assert spec.category in ("road", "knn")

    def test_social_web_have_no_coords(self):
        for spec, g in build_suite("tiny", categories=("social", "web")):
            assert not g.has_coords(), spec.name

    def test_graph_names_match_spec(self):
        for spec, g in build_suite("tiny"):
            assert g.name == spec.name

    def test_category_filter(self):
        got = [spec.name for spec, _ in build_suite("tiny", categories=("road",))]
        assert got == ["AF", "NA", "AS", "EU"]

    def test_unknown_graph_raises(self):
        with pytest.raises(KeyError):
            build_graph("NOPE", "tiny")
