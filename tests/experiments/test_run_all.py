"""run_all driver tests."""

import json
import os

import pytest

from repro.experiments import run_all


@pytest.fixture
def results_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


class TestRunAll:
    def test_only_subset_runs(self, results_env, capsys):
        durations = run_all.main(["--scale", "tiny", "--only", "table3"])
        assert set(durations) == {"table3"}
        assert (results_env / "table3_tiny.log").exists()
        assert (results_env / "table3_tiny.json").exists()
        out = capsys.readouterr().out
        assert "table3 done" in out

    def test_log_captures_module_output(self, results_env):
        run_all.main(["--scale", "tiny", "--only", "table3"])
        text = (results_env / "table3_tiny.log").read_text()
        assert "Table 3" in text
        assert "OK" in text

    def test_json_results_parse(self, results_env):
        run_all.main(["--scale", "tiny", "--only", "table3"])
        payload = json.loads((results_env / "table3_tiny.json").read_text())
        assert len(payload) == 14

    def test_artifact_registry_complete(self):
        names = [name for name, _, _ in run_all.ARTIFACTS]
        for expected in ("fig1", "table3", "table4", "fig4", "fig5", "fig6", "fig7",
                         "ext_alt", "ext_preprocessing", "ext_strategies", "ext_ssmt"):
            assert expected in names, expected

    def test_unknown_only_name_is_noop(self, results_env):
        durations = run_all.main(["--scale", "tiny", "--only", "nonexistent"])
        assert durations == {}


class TestArtifactMains:
    """Each artifact's main() must run end-to-end at reduced size."""

    def test_fig1_main(self, results_env, capsys):
        from repro.experiments import fig1

        data = fig1.main(["--size", "14", "--maps"])
        out = capsys.readouterr().out
        assert "Fig. 1" in out
        assert "[bidastar] search space" in out
        assert data["counts"]["sssp"] >= data["counts"]["bidastar"]

    def test_fig5_main_with_plot(self, results_env, capsys, monkeypatch):
        from repro.experiments import fig5, suite as suite_mod

        specs = [s for s in suite_mod.SUITE if s.name == "AF"]
        monkeypatch.setattr(suite_mod, "SUITE", specs)
        monkeypatch.setattr(fig5, "REPRESENTATIVES", ("AF",))
        fig5.main(["--scale", "tiny", "--plot"])
        out = capsys.readouterr().out
        assert "speedup vs processors" in out
        assert "o=sssp" in out  # the ASCII chart legend

    def test_fig7_main_heatmap(self, results_env, capsys, monkeypatch):
        from repro.experiments import fig7, suite as suite_mod

        specs = [s for s in suite_mod.SUITE if s.name == "AF"]
        monkeypatch.setattr(suite_mod, "SUITE", specs)
        fig7.main(["--scale", "tiny", "--plot"])
        out = capsys.readouterr().out
        assert "shading" in out  # heatmap legend line


class TestReport:
    def test_report_from_fixture_json(self, results_env):
        import json

        from repro.experiments.report import build_report

        (results_env / "table4_tiny.json").write_text(json.dumps({
            "times": {"50.0": {
                "sssp": {"AF": 0.4, "NA": 0.4},
                "bids": {"AF": 0.1, "NA": 0.1},
                "bidastar": {"AF": 0.1, "NA": 0.1},
                "et": {"AF": 0.2, "NA": 0.2},
                "mbq-et": {"AF": 1.0, "NA": 1.0},
                "gi-et": {"AF": 0.15, "NA": 0.15},
            }},
            "mismatches": [],
        }))
        report = build_report("tiny")
        assert "4.00x" in report   # SSSP/BiD-A*
        assert "2.00x" in report   # ET/BiDS
        assert "WARNING" not in report

    def test_report_flags_mismatches(self, results_env):
        import json

        (results_env / "table4_tiny.json").write_text(json.dumps({
            "times": {"1.0": {"sssp": {"AF": 1.0}, "bids": {"AF": 0.5}}},
            "mismatches": ["boom"],
        }))
        from repro.experiments.report import build_report

        assert "WARNING" in build_report("tiny")

    def test_report_empty_dir(self, results_env):
        from repro.experiments.report import build_report

        out = build_report("medium")
        assert "No artifacts found" in out
