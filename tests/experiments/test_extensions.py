"""Extension experiment module tests (ALT, preprocessing tradeoff)."""

import numpy as np
import pytest

from repro.experiments import ext_alt, ext_preprocessing


class TestExtAlt:
    def test_collect_social_web_only(self, monkeypatch):
        from repro.experiments import suite as suite_mod

        specs = [s for s in suite_mod.SUITE if s.name in ("OK", "IT")]
        monkeypatch.setattr(suite_mod, "SUITE", specs)
        data = ext_alt.collect("tiny", num_landmarks=4, num_pairs=1, percentiles=(50.0,))
        assert set(data) == {"OK", "IT"}
        for row in data.values():
            work = row["work"][50.0]
            assert set(work) == set(ext_alt.ALGOS)
            # ALT guidance should beat plain ET in relaxation work.
            assert work["alt-bidastar"] < work["et"]
            assert row["preprocess_seconds"] > 0


class TestExtPreprocessing:
    def test_collect_tradeoff_fields(self):
        data = ext_preprocessing.collect("tiny", num_pairs=3, graphs=("AF", "HH5"))
        assert set(data) == {"AF", "HH5"}
        for row in data.values():
            assert row["preprocess_seconds"] > 0
            assert row["index_entries"] > 0
            # Index queries are label merges: far cheaper than a search.
            assert row["pll_query_seconds"] < row["bids_query_seconds"]
            assert row["break_even_queries"] > 0
            # CH runs on road/k-NN graphs and stays exact.
            assert "ch_query_seconds" in row
            assert row["ch_shortcuts"] >= 0


class TestExtStrategies:
    def test_collect_agrees_across_strategies(self, monkeypatch):
        from repro.experiments import ext_strategies
        from repro.experiments import suite as suite_mod

        specs = [s for s in suite_mod.SUITE if s.name in ("AF",)]
        monkeypatch.setattr(suite_mod, "SUITE", specs)
        data = ext_strategies.collect("tiny", num_pairs=1)
        row = data["AF"]["strategies"]
        assert set(row) == set(ext_strategies.STRATEGIES)
        # Dijkstra order pays rounds to save relaxations.
        assert row["dijkstra"]["steps"] > row["bellman-ford"]["steps"]
        assert row["dijkstra"]["relaxations"] <= row["bellman-ford"]["relaxations"]


class TestExtSsmt:
    def test_ratio_grows_with_targets(self, monkeypatch):
        from repro.experiments import ext_ssmt
        from repro.experiments import suite as suite_mod

        specs = [s for s in suite_mod.SUITE if s.name in ("IT", "NA")]
        monkeypatch.setattr(suite_mod, "SUITE", specs)
        data = ext_ssmt.collect("tiny", target_counts=(1, 3, 8))
        for gname, row in data.items():
            r = row["ratios"]
            # More targets always shifts the balance toward one SSSP.
            assert r[1] < r[8], gname


class TestExtDirected:
    def test_collect_validates_and_reports(self):
        from repro.experiments import ext_directed

        data = ext_directed.collect("tiny")
        assert set(data) == {"dir-road", "dir-social"}
        for row in data.values():
            # Both roles force copies: more copies than distinct queries' ends.
            assert row["query_copies"] > 6
            assert row["koenig_cover"] <= row["methods"]["sssp-plain"]["num_searches"]
            for m, stats in row["methods"].items():
                assert stats["work"] > 0, m

    def test_directed_road_is_directed(self):
        from repro.experiments.ext_directed import directed_road

        g = directed_road(400)
        assert g.directed
        # One-way streets: some arcs must lack a reverse.
        src, dst, _ = g.edges()
        arcs = set(zip(src.tolist(), dst.tolist()))
        assert any((b, a) not in arcs for a, b in arcs)


class TestDirectedGenerators:
    def test_directed_social_power_law(self):
        from repro.experiments.ext_directed import directed_social

        g = directed_social(2000, seed=3)
        assert g.directed
        out_degs = np.sort(g.degree())[::-1]
        assert out_degs[0] > 5 * max(np.median(out_degs), 1)

    def test_directed_road_weights_positive(self):
        from repro.experiments.ext_directed import directed_road

        g = directed_road(400)
        assert (g.weights > 0).all()
        assert g.coord_system == "euclidean"
