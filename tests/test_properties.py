"""Property-based tests (hypothesis) for the core invariants.

The central invariant of the whole library: every PPSP algorithm — any
policy, any stepping strategy, any frontier mode — computes exactly the
distances sequential Dijkstra computes, on arbitrary graphs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import bidirectional_dijkstra, dijkstra
from repro.core.engine import run_policy
from repro.core.policies import AStar, BiDAStar, BiDS, EarlyTermination, MultiPPSP, SsspPolicy
from repro.core.query_graph import QueryGraph, vertex_cover
from repro.core.stepping import BellmanFord, DeltaStepping, DijkstraOrder, RhoStepping
from repro.graphs import from_edges
from repro.heuristics.geometric import PointHeuristic
from repro.parallel.primitives import expand_ranges, write_min

# ----------------------------------------------------------------------
# Graph strategies
# ----------------------------------------------------------------------

@st.composite
def weighted_graphs(draw, max_n=24, max_m=80, directed=False, integer_weights=False):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    if integer_weights:
        w = draw(st.lists(st.integers(0, 20), min_size=m, max_size=m))
    else:
        w = draw(
            st.lists(
                st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
                min_size=m,
                max_size=m,
            )
        )
    return from_edges(src, dst, np.asarray(w, dtype=float), num_vertices=n,
                      directed=directed, dedupe=True)


@st.composite
def geometric_graphs(draw, max_n=20):
    """Graphs with coordinates whose weights dominate Euclidean distance,
    so the point heuristic is consistent."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    coords = np.array(
        draw(
            st.lists(
                st.tuples(st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False)),
                min_size=n,
                max_size=n,
            )
        )
    )
    m = draw(st.integers(min_value=1, max_value=3 * n))
    src = np.array(draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)))
    dst = np.array(draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m)))
    stretch = np.array(
        draw(st.lists(st.floats(1.0, 3.0, allow_nan=False), min_size=m, max_size=m))
    )
    base = np.sqrt(((coords[src] - coords[dst]) ** 2).sum(axis=1))
    return from_edges(
        src, dst, base * stretch, num_vertices=n, dedupe=True,
        coords=coords, coord_system="euclidean",
    )


COMMON = dict(
    deadline=None,
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Exactness of every algorithm vs Dijkstra
# ----------------------------------------------------------------------

@settings(**COMMON)
@given(weighted_graphs(), st.data())
def test_sssp_matches_dijkstra(g, data):
    s = data.draw(st.integers(0, g.num_vertices - 1))
    got = run_policy(g, SsspPolicy(s)).distances_from(0)
    assert np.allclose(got, dijkstra(g, s))


@settings(**COMMON)
@given(weighted_graphs(), st.data())
def test_et_and_bids_match_dijkstra(g, data):
    s = data.draw(st.integers(0, g.num_vertices - 1))
    t = data.draw(st.integers(0, g.num_vertices - 1))
    ref = dijkstra(g, s)[t]
    for policy in (EarlyTermination(s, t), BiDS(s, t)):
        got = run_policy(g, policy).answer
        if np.isinf(ref):
            assert np.isinf(got)
        else:
            assert got == pytest.approx(ref)


@settings(**COMMON)
@given(weighted_graphs(directed=True), st.data())
def test_directed_bids_matches_dijkstra(g, data):
    s = data.draw(st.integers(0, g.num_vertices - 1))
    t = data.draw(st.integers(0, g.num_vertices - 1))
    ref = dijkstra(g, s)[t]
    got = run_policy(g, BiDS(s, t)).answer
    assert np.isinf(got) if np.isinf(ref) else got == pytest.approx(ref)


@settings(**COMMON)
@given(weighted_graphs(), st.data())
def test_any_strategy_correct(g, data):
    s = data.draw(st.integers(0, g.num_vertices - 1))
    t = data.draw(st.integers(0, g.num_vertices - 1))
    strategy = data.draw(
        st.sampled_from(
            [DeltaStepping(1.0), DeltaStepping(37.0), RhoStepping(3), BellmanFord(), DijkstraOrder()]
        )
    )
    ref = dijkstra(g, s)[t]
    got = run_policy(g, BiDS(s, t), strategy=strategy).answer
    assert np.isinf(got) if np.isinf(ref) else got == pytest.approx(ref)


@settings(**COMMON)
@given(geometric_graphs(), st.data())
def test_astar_family_matches_dijkstra(g, data):
    s = data.draw(st.integers(0, g.num_vertices - 1))
    t = data.draw(st.integers(0, g.num_vertices - 1))
    ref = dijkstra(g, s)[t]
    for policy in (AStar(s, t), BiDAStar(s, t)):
        got = run_policy(g, policy).answer
        if np.isinf(ref):
            assert np.isinf(got)
        else:
            assert got == pytest.approx(ref), type(policy).__name__


@settings(**COMMON)
@given(geometric_graphs())
def test_generated_heuristics_are_consistent(g):
    """The geometric strategy must only generate consistent instances."""
    t = 0
    h = PointHeuristic(g.coords, t, "euclidean")
    src, dst, w = g.edges()
    assert (h(src) <= w + h(dst) + 1e-6).all()


@settings(**COMMON)
@given(weighted_graphs(max_n=14), st.data())
def test_batch_multi_matches_dijkstra(g, data):
    n = g.num_vertices
    k = data.draw(st.integers(2, min(6, n)))
    verts = data.draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True))
    pairs = [(verts[i], verts[(i + 1) % k]) for i in range(k - 1)]
    qg = QueryGraph(pairs)
    res = run_policy(g, MultiPPSP(qg))
    for (s, t), got in res.answer.items():
        ref = dijkstra(g, s)[t]
        assert np.isinf(got) if np.isinf(ref) else got == pytest.approx(ref)


@settings(**COMMON)
@given(weighted_graphs(), st.data())
def test_sequential_bidirectional_dijkstra_exact(g, data):
    s = data.draw(st.integers(0, g.num_vertices - 1))
    t = data.draw(st.integers(0, g.num_vertices - 1))
    ref = dijkstra(g, s)[t]
    got = bidirectional_dijkstra(g, s, t)
    assert np.isinf(got) if np.isinf(ref) else got == pytest.approx(ref)


# ----------------------------------------------------------------------
# Structural invariants
# ----------------------------------------------------------------------

@settings(**COMMON)
@given(weighted_graphs(), st.data())
def test_triangle_inequality_of_output(g, data):
    s = data.draw(st.integers(0, g.num_vertices - 1))
    d = run_policy(g, SsspPolicy(s)).distances_from(0)
    src, dst, w = g.edges()
    finite = np.isfinite(d[src])
    assert (d[dst][finite] <= d[src][finite] + w[finite] + 1e-9).all()


@settings(**COMMON)
@given(st.lists(st.tuples(st.integers(0, 9), st.integers(0, 9)), min_size=1, max_size=25))
def test_vertex_cover_covers_every_query(pairs):
    qg = QueryGraph(pairs)
    cover = set(int(c) for c in vertex_cover(qg))
    for a, b in qg.edges:
        if a != b:
            assert a in cover or b in cover


@settings(**COMMON)
@given(
    st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=50),
    st.data(),
)
def test_write_min_invariants(values, data):
    vals = np.array(values)
    k = data.draw(st.integers(1, 30))
    idx = np.array(data.draw(st.lists(st.integers(0, len(vals) - 1), min_size=k, max_size=k)))
    cand = np.array(data.draw(st.lists(st.floats(0, 1000, allow_nan=False), min_size=k, max_size=k)))
    before = vals.copy()
    ok = write_min(vals, idx, cand)
    # Never increases, lands on the minimum proposal, success iff below old.
    assert (vals <= before).all()
    for i in np.unique(idx):
        assert vals[i] == min(before[i], cand[idx == i].min())
    assert np.array_equal(ok, cand < before[idx])


@settings(**COMMON)
@given(st.lists(st.tuples(st.integers(0, 500), st.integers(0, 6)), min_size=0, max_size=30))
def test_expand_ranges_matches_naive(ranges):
    starts = np.array([r[0] for r in ranges], dtype=np.int64)
    counts = np.array([r[1] for r in ranges], dtype=np.int64)
    want = (
        np.concatenate([np.arange(s, s + c) for s, c in ranges])
        if counts.sum()
        else np.empty(0, dtype=np.int64)
    )
    assert np.array_equal(expand_ranges(starts, counts), want)


@settings(**COMMON)
@given(weighted_graphs(max_n=12), st.data())
def test_all_batch_methods_agree(g, data):
    """Every batch strategy answers every random query graph identically."""
    from repro.core.batch import BATCH_METHODS, solve_batch

    n = g.num_vertices
    k = data.draw(st.integers(2, min(5, n)))
    verts = data.draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True))
    pairs = [(verts[i], verts[j]) for i in range(k) for j in range(i + 1, k)]
    pairs = pairs[: data.draw(st.integers(1, len(pairs)))]
    ref = {}
    for s, t in pairs:
        ref[(s, t)] = dijkstra(g, s)[t]
    for method in BATCH_METHODS:
        res = solve_batch(g, pairs, method=method)
        for key, want in ref.items():
            got = res.distance(*key)
            if np.isinf(want):
                assert np.isinf(got), (method, key)
            else:
                assert got == pytest.approx(want), (method, key)


@settings(**COMMON)
@given(weighted_graphs(max_n=12), st.data())
def test_chunked_multi_equals_unchunked(g, data):
    """max_sources chunking never changes answers."""
    from repro.core.batch import solve_batch

    n = g.num_vertices
    k = data.draw(st.integers(2, min(6, n)))
    verts = data.draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k, unique=True))
    pairs = list(zip(verts[:-1], verts[1:]))
    full = solve_batch(g, pairs, method="multi")
    cap = data.draw(st.integers(2, k))
    chunked = solve_batch(g, pairs, method="multi", max_sources=cap)
    assert chunked.distances.keys() == full.distances.keys()
    for key in full.distances:
        a, b = full.distances[key], chunked.distances[key]
        if np.isinf(a):
            assert np.isinf(b)
        else:
            assert b == pytest.approx(a)
