"""Unit tests of the dependency-free metrics registry."""

from __future__ import annotations

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.exposition import render_json, render_prometheus

pytestmark = pytest.mark.obs


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("events_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labeled_children_are_independent(self):
        c = Counter("runs_total", "", ("policy",))
        c.inc(policy="bids")
        c.inc(3, policy="astar")
        assert c.value(policy="bids") == 1
        assert c.value(policy="astar") == 3
        assert c.value(policy="sssp") == 0  # untouched child reads 0

    def test_negative_increment_rejected(self):
        c = Counter("events_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_wrong_labels_rejected(self):
        c = Counter("runs_total", "", ("policy",))
        with pytest.raises(ValueError, match="takes labels"):
            c.inc(method="bids")
        with pytest.raises(ValueError, match="takes labels"):
            c.inc()


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("inflight")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        h = Histogram("work", "", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        snap = h.snapshot()
        # cumulative counts: <=1 -> 1, <=10 -> 2, <=100 -> 3, +Inf -> 4
        assert [b["count"] for b in snap["buckets"]] == [1, 2, 3, 4]
        assert snap["buckets"][-1]["le"] == float("inf")
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(555.5)

    def test_boundary_value_falls_in_its_bucket(self):
        h = Histogram("work", "", buckets=(1.0, 10.0))
        h.observe(1.0)  # le="1" must include exactly-1 (Prometheus <=)
        assert h.snapshot()["buckets"][0]["count"] == 1

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("bad", "", buckets=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        r = MetricsRegistry()
        a = r.counter("x_total", "h", ("policy",))
        b = r.counter("x_total", "h", ("policy",))
        assert a is b

    def test_type_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("x_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            r.gauge("x_total")

    def test_labelname_mismatch_raises(self):
        r = MetricsRegistry()
        r.counter("x_total", "", ("policy",))
        with pytest.raises(ValueError, match="already registered with labels"):
            r.counter("x_total", "", ("method",))

    def test_invalid_names_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            r.counter("bad name")
        with pytest.raises(ValueError, match="invalid label name"):
            r.counter("ok_total", "", ("bad-label",))

    def test_collect_is_name_sorted(self):
        r = MetricsRegistry()
        r.counter("z_total")
        r.counter("a_total")
        assert [m.name for m in r.collect()] == ["a_total", "z_total"]


class TestExpositionDeterminism:
    def _filled(self) -> MetricsRegistry:
        r = MetricsRegistry()
        c = r.counter("repro_runs_total", "Engine runs", ("policy",))
        c.inc(2, policy="bids")
        c.inc(1, policy="astar")
        h = r.histogram("repro_run_work", "Work", ("policy",), buckets=(10.0, 100.0))
        h.observe(5, policy="bids")
        h.observe(500, policy="bids")
        return r

    def test_text_is_deterministic_and_sorted(self):
        a, b = render_prometheus(self._filled()), render_prometheus(self._filled())
        assert a == b
        # children of one family appear in sorted label order regardless
        # of insertion order (compare within the runs_total section).
        runs = a[a.index("# TYPE repro_runs_total"):]
        assert runs.index('policy="astar"') < runs.index('policy="bids"')

    def test_text_format_shape(self):
        text = render_prometheus(self._filled())
        assert "# TYPE repro_runs_total counter" in text
        assert 'repro_runs_total{policy="bids"} 2' in text  # ints print bare
        assert 'repro_run_work_bucket{policy="bids",le="+Inf"} 2' in text
        assert 'repro_run_work_count{policy="bids"} 2' in text

    def test_json_matches_text_content(self):
        payload = render_json(self._filled())
        by_name = {m["name"]: m for m in payload["metrics"]}
        runs = by_name["repro_runs_total"]["samples"]
        assert {"labels": {"policy": "bids"}, "value": 2.0} in runs
        work = by_name["repro_run_work"]["samples"][0]
        assert work["buckets"][-1] == {"le": "inf", "count": 2}
