"""The overhead contract of the observability layer, pinned.

Two halves, matching ``docs/observability.md``:

* **disabled is free** — with no observer the instrumented sites cost
  one ``is None`` test each: the warm steady state still performs zero
  new buffer allocations (the BufferArena counter *is* the proof), and
  deterministic engine counters are bit-identical to an uninstrumented
  run;
* **enabled is bounded** — with an observer attached, runs carry a
  StepTrace and update counters, which may cost real time but stays
  within a loose wall-clock multiple of the disabled path.

Marked ``bench``: the wall-clock half is timing-sensitive, so the suite
runs with the benchmark tier, not tier-1.
"""

from __future__ import annotations

import time

import pytest

from repro.graphs import road_graph
from repro.obs import Observer
from repro.perf.warm import WarmEngine

pytestmark = [pytest.mark.obs, pytest.mark.bench]

METHODS = ("sssp", "et", "astar", "bids", "bidastar")
ROUNDS = 3
#: loose bound: tracing + counter updates may cost, but never this much.
MAX_ENABLED_SLOWDOWN = 5.0
WALL_SLACK_S = 0.05


@pytest.fixture(scope="module")
def graph():
    return road_graph(12, 12, seed=5, name="overhead-road")


@pytest.fixture(scope="module")
def pairs(graph):
    n = graph.num_vertices
    return [(0, n - 1), (3, n - 4), (7, n // 2)]


def _steady_state_allocations(engine, pairs) -> tuple[int, int]:
    """(allocations added, reuses added) over ROUNDS post-priming rounds."""
    for method in METHODS:
        for s, t in pairs:
            engine.query(s, t, method=method, use_cache=False)
    before = engine.arena.stats()
    for _ in range(ROUNDS):
        for method in METHODS:
            for s, t in pairs:
                engine.query(s, t, method=method, use_cache=False)
    after = engine.arena.stats()
    return (after["allocations"] - before["allocations"],
            after["reuses"] - before["reuses"])


def test_disabled_observer_adds_zero_allocations(graph, pairs):
    """Warm steady state without an observer: allocation counter flat."""
    engine = WarmEngine(graph)
    assert engine.observer is None  # default-off
    added, reused = _steady_state_allocations(engine, pairs)
    assert added == 0, f"{added} new buffer allocations on the disabled path"
    assert reused > 0  # the rounds really did run through the pool


def test_enabled_observer_adds_zero_buffer_allocations(graph, pairs):
    """Tracing lives outside the arena: pooled buffers stay pooled."""
    engine = WarmEngine(graph, observer=Observer())
    added, _ = _steady_state_allocations(engine, pairs)
    assert added == 0, f"{added} new buffer allocations on the enabled path"


def test_disabled_observer_counters_bit_identical(graph, pairs):
    """Same warm query with and without an observer: identical counters."""
    plain = WarmEngine(graph)
    observed = WarmEngine(graph, observer=Observer())
    for method in METHODS:
        for s, t in pairs:
            a = plain.query(s, t, method=method, use_cache=False)
            b = observed.query(s, t, method=method, use_cache=False)
            assert (a.steps, a.relaxations, a.work) == (b.steps, b.relaxations, b.work)
            assert a.distance == b.distance


def test_enabled_observer_within_wall_bound(graph, pairs):
    """Enabled-path wall clock stays within a loose multiple of disabled."""
    disabled = WarmEngine(graph)
    enabled = WarmEngine(graph, observer=Observer())

    def measure(engine) -> float:
        for s, t in pairs:  # prime pools/heuristics outside the clock
            engine.query(s, t, method="bidastar", use_cache=False)
        t0 = time.perf_counter()
        for _ in range(ROUNDS):
            for method in METHODS:
                for s, t in pairs:
                    engine.query(s, t, method=method, use_cache=False)
        return time.perf_counter() - t0

    cold = measure(disabled)
    warm = measure(enabled)
    assert warm <= cold * MAX_ENABLED_SLOWDOWN + WALL_SLACK_S, (
        f"observer-enabled path took {warm:.4f}s vs {cold:.4f}s disabled"
    )
