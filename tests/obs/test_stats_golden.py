"""Golden text exposition of the seeded stats workload, pinned.

The fixture is the full Prometheus-text export of one
:func:`repro.obs.workload.stats_workload` run on the default 8x8 road
grid, with wall-clock lines (any ``_seconds`` metric) filtered out so
only the deterministic counters remain.  Any change to instrumentation
coverage, label sets, metric names, or the workload itself shows up as
a fixture diff before it shows up as a dashboard surprise.  Regenerate
deliberately with::

    UPDATE_STATS_GOLDEN=1 PYTHONPATH=src python -m pytest tests/obs/test_stats_golden.py

and review the fixture diff like any other code change.
"""

from __future__ import annotations

import difflib
import os
from pathlib import Path

import pytest

from repro.obs import validate_snapshot
from repro.obs.workload import stats_workload

pytestmark = pytest.mark.obs

FIXTURES = Path(__file__).parent / "fixtures"
UPDATE = os.environ.get("UPDATE_STATS_GOLDEN") == "1"
GOLDEN = FIXTURES / "stats_road8.prom"


def _deterministic_text(obs) -> str:
    """The text exposition minus the wall-clock (``_seconds``) families."""
    lines = [
        line for line in obs.export_text().splitlines()
        if "_seconds" not in line
    ]
    return "\n".join(lines) + "\n"


@pytest.fixture(scope="module")
def workload():
    return stats_workload()  # default graph, pairs, and seed


def test_text_exposition_matches_golden(workload):
    text = _deterministic_text(workload)
    if UPDATE:
        FIXTURES.mkdir(exist_ok=True)
        GOLDEN.write_text(text)
        pytest.skip(f"regenerated {GOLDEN.name}")
    assert GOLDEN.exists(), (
        f"missing fixture {GOLDEN.name}; run with UPDATE_STATS_GOLDEN=1"
    )
    want = GOLDEN.read_text()
    if text != want:
        diff = "\n".join(difflib.unified_diff(
            want.splitlines(), text.splitlines(),
            fromfile="golden", tofile="current", lineterm="",
        ))
        pytest.fail(f"stats exposition drifted from golden:\n{diff}")


def test_workload_repeats_byte_identical(workload):
    """Two runs from the same seed expose identical deterministic text."""
    assert _deterministic_text(stats_workload()) == _deterministic_text(workload)


def test_workload_snapshot_validates(workload):
    validate_snapshot(workload.export_json())
