"""QuerySpan acceptance: one record per method, complete and round-trip.

The ISSUE's span acceptance criterion: with an observer installed, a
single warm query per method yields one QuerySpan JSON record that
round-trips and carries work, depth, steps, pruned, the μ-settled step,
cache hit/miss counts, and budget fields — for each of the five
single-query methods.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.graphs import road_graph
from repro.obs import Observer, QuerySpan
from repro.perf.warm import WarmEngine
from repro.robustness import Budget

pytestmark = pytest.mark.obs

METHODS = ("sssp", "et", "astar", "bids", "bidastar")


@pytest.fixture(scope="module")
def graph():
    return road_graph(10, 10, seed=5, name="span-road")


@pytest.fixture(scope="module")
def spans(graph):
    """One complete span per method: engine + cache + budget data."""
    obs = Observer()
    engine = WarmEngine(graph, observer=obs)
    s, t = 0, graph.num_vertices - 1
    out = {}
    for method in METHODS:
        # Prime the heuristic/result layers so the measured query sees
        # real cache traffic, then take the measured query cold through
        # the engine (use_cache=False) under a generous budget.
        engine.query(s, t, method=method)
        with obs.span(method, source=s, target=t) as span:
            ans = engine.query(
                s, t, method=method, use_cache=False,
                budget=Budget(max_steps=10**6),
            )
            span.distance = ans.distance
        out[method] = span
    return out


@pytest.mark.parametrize("method", METHODS)
class TestSpanAcceptance:
    def test_engine_fields_populated(self, spans, method):
        span = spans[method]
        assert span.runs == 1
        assert span.work > 0
        assert span.depth > 0
        assert span.steps > 0
        assert span.relaxations > 0
        assert span.peak_frontier > 0
        assert span.pruned >= 0
        if method != "sssp":  # sssp maintains no mu; everyone else settles
            assert span.mu_settled_step is not None
            assert math.isfinite(span.final_mu)

    def test_cache_fields_populated(self, spans, method):
        span = spans[method]
        d = span.to_dict()
        assert set(d["cache"]) == {"hits", "misses", "evictions", "layers"}
        if method in ("astar", "bidastar"):
            # The primed heuristic layer must have produced hits.
            assert d["cache"]["layers"]["heuristic"]["hits"] > 0

    def test_budget_fields_populated(self, spans, method):
        budget = spans[method].budget
        assert budget is not None
        assert budget["exhausted"] is False
        assert budget["steps"] == spans[method].steps
        assert {"reason", "relaxations", "elapsed_seconds", "limits"} <= set(budget)

    def test_record_roundtrips_through_json(self, spans, method):
        span = spans[method]
        text = span.to_json()
        json.loads(text)  # strict JSON, no NaN/Infinity literals
        back = QuerySpan.from_json(text)
        # Compare re-encoded: NaN != NaN, but its "nan" encoding is stable.
        assert back.to_json() == text

    def test_record_contains_required_keys(self, spans, method):
        d = json.loads(spans[method].to_json())
        for key in ("work", "depth", "steps", "pruned", "mu_settled_step",
                    "cache", "budget", "distance", "wall_seconds"):
            assert key in d, key
        assert d["method"] == method


class TestSpanFolding:
    def test_spans_nest_and_shadow(self, graph):
        obs = Observer()
        engine = WarmEngine(graph, observer=obs)
        with obs.span("outer") as outer:
            engine.query(0, 5, method="bids", use_cache=False)
            with obs.span("inner") as inner:
                engine.query(0, 7, method="bids", use_cache=False)
            engine.query(0, 9, method="bids", use_cache=False)
        assert inner.runs == 1
        assert outer.runs == 2  # the inner query folded only into inner

    def test_exhausted_budget_marks_span_inexact(self, graph):
        obs = Observer()
        engine = WarmEngine(graph, observer=obs)
        with obs.span("bids") as span:
            engine.query(
                0, graph.num_vertices - 1, method="bids",
                use_cache=False, budget=Budget(max_steps=1),
            )
        assert span.exhausted
        assert not span.exact
        assert span.budget["exhausted"] is True

    def test_non_finite_floats_encode_as_strings(self):
        span = QuerySpan(method="x", final_mu=math.inf, distance=math.nan)
        d = json.loads(span.to_json())
        assert d["final_mu"] == "inf"
        assert d["distance"] == "nan"
        back = QuerySpan.from_json(span.to_json())
        assert back.final_mu == math.inf
        assert math.isnan(back.distance)

    def test_unknown_cache_event_rejected(self):
        with pytest.raises(ValueError, match="unknown cache event"):
            QuerySpan(method="x").fold_cache("result", "explode")

    def test_max_spans_bound(self, graph):
        obs = Observer(max_spans=3)
        for i in range(6):
            with obs.span(f"m{i}"):
                pass
        assert len(obs.spans) == 3
        assert [s.method for s in obs.spans] == ["m3", "m4", "m5"]
