"""Integration: every instrumented hot path reports to the Observer.

One test per instrumented site — engine runs, frontier switching, batch
solving, warm caches, the resilient fallback chain, landmark h-row
memos, and budget exhaustion — plus the pay-for-use contract: attaching
an observer never changes the deterministic counters of the run it
observes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import batch_ppsp, ppsp
from repro.core.batch import solve_batch
from repro.graphs import knn_graph, road_graph
from repro.graphs.knn import uniform_points
from repro.heuristics.landmarks import LandmarkSet
from repro.obs import Observer
from repro.perf.warm import WarmEngine
from repro.robustness import Budget, FaultInjector
from repro.robustness.resilient import REFERENCE_RUNG, resilient_ppsp

pytestmark = pytest.mark.obs


@pytest.fixture(scope="module")
def grid():
    return road_graph(10, 10, seed=5, name="obs-road")


def _counter(obs, name, **labels):
    return obs.registry.get(name).value(**labels)


class TestEngineInstrumentation:
    @pytest.mark.parametrize("method,label", [
        ("sssp", "sssp"), ("et", "et"), ("astar", "astar"),
        ("bids", "bids"), ("bidastar", "bidastar"),
    ])
    def test_run_counters_by_policy_label(self, grid, method, label):
        obs = Observer()
        ans = ppsp(grid, 0, 99, method=method, observer=obs)
        assert _counter(obs, "repro_runs_total", policy=label) == 1
        assert _counter(obs, "repro_steps_total", policy=label) == ans.run.steps
        assert _counter(obs, "repro_relaxations_total", policy=label) == ans.run.relaxations

    def test_observed_run_always_traced(self, grid):
        """Pruned/mu metrics flow even when the caller passed no trace."""
        obs = Observer()
        ppsp(grid, 0, 99, method="bids", observer=obs)
        hist = obs.registry.get("repro_frontier_peak")
        assert hist.snapshot(policy="bids")["count"] == 1

    def test_pay_for_use_deterministic_counters_identical(self, grid):
        plain = ppsp(grid, 0, 99, method="bids")
        observed = ppsp(grid, 0, 99, method="bids", observer=Observer())
        assert observed.run.steps == plain.run.steps
        assert observed.run.relaxations == plain.run.relaxations
        assert observed.run.meter.work == plain.run.meter.work
        assert observed.distance == plain.distance

    def test_budget_exhaustion_counted_by_limit(self, grid):
        obs = Observer()
        ppsp(grid, 0, 99, method="bids", budget=Budget(max_steps=1), observer=obs)
        assert _counter(obs, "repro_budget_exhausted_total", limit="max_steps") == 1


class TestFrontierInstrumentation:
    def test_switches_recorded(self):
        # A dense graph forces sparse->dense and back as the wave passes.
        g = knn_graph(uniform_points(400, 2, seed=7), k=8, name="obs-knn")
        obs = Observer()
        ppsp(g, 0, 1, method="sssp", observer=obs)
        to_dense = _counter(obs, "repro_frontier_switches_total", to="dense")
        to_sparse = _counter(obs, "repro_frontier_switches_total", to="sparse")
        assert to_dense >= 1
        assert to_sparse >= 0  # may or may not shrink back before draining


class TestBatchInstrumentation:
    def test_solve_batch_reports(self, grid):
        obs = Observer()
        pairs = [(0, 99), (5, 50), (7, 70)]
        res = solve_batch(grid, pairs, method="multi", observer=obs)
        assert _counter(obs, "repro_batches_total", method="multi") == 1
        assert _counter(obs, "repro_batch_searches_total", method="multi") == res.num_searches
        # The multi solver runs one engine pass per query-graph
        # component; these three pairs share no endpoints.
        assert _counter(obs, "repro_runs_total", policy="multi") == 3
        obs2 = Observer()
        solve_batch(grid, [(0, 99), (0, 50), (50, 7)], method="multi", observer=obs2)
        assert _counter(obs2, "repro_runs_total", policy="multi") == 1

    def test_batch_ppsp_passthrough(self, grid):
        obs = Observer()
        batch_ppsp(grid, [(0, 99), (5, 50)], method="sssp-vc", observer=obs)
        assert _counter(obs, "repro_batches_total", method="sssp-vc") == 1


class TestWarmCacheInstrumentation:
    def test_result_cache_hit_miss(self, grid):
        obs = Observer()
        engine = WarmEngine(grid, observer=obs)
        engine.query(0, 99, method="bids")
        engine.query(0, 99, method="bids")
        assert _counter(obs, "repro_cache_events_total", layer="result", event="miss") == 1
        assert _counter(obs, "repro_cache_events_total", layer="result", event="hit") == 1

    def test_heuristic_cache_hit_miss(self, grid):
        obs = Observer()
        engine = WarmEngine(grid, observer=obs)
        engine.query(0, 99, method="astar", use_cache=False)
        engine.query(5, 99, method="astar", use_cache=False)  # same target: hit
        assert _counter(obs, "repro_cache_events_total", layer="heuristic", event="miss") == 1
        assert _counter(obs, "repro_cache_events_total", layer="heuristic", event="hit") == 1

    def test_result_cache_eviction(self, grid):
        obs = Observer()
        engine = WarmEngine(grid, result_cache_size=2, observer=obs)
        for t in (10, 20, 30):  # capacity 2: the third insert evicts
            engine.query(0, t, method="bids")
        assert _counter(obs, "repro_cache_events_total", layer="result", event="evict") == 1

    def test_landmark_h_row_events(self):
        g = knn_graph(uniform_points(120, 2, seed=3), k=5, name="obs-lm")
        obs = Observer()
        lm = LandmarkSet(g, k=4, observer=obs)
        lm.heuristic_to(7)
        lm.heuristic_to(7)
        assert _counter(obs, "repro_cache_events_total",
                        layer="landmark_h_row", event="miss") == 1
        assert _counter(obs, "repro_cache_events_total",
                        layer="landmark_h_row", event="hit") == 1


class TestResilientInstrumentation:
    def test_clean_chain_one_ok_attempt(self, grid):
        obs = Observer()
        ans = resilient_ppsp(grid, 0, 99, observer=obs)
        assert ans.exact
        assert _counter(obs, "repro_fallback_attempts_total",
                        method=ans.method, outcome="ok") == 1

    def test_failing_rungs_and_retries_counted(self, grid):
        obs = Observer()
        # A permanent fault at step 0 fires on every fresh engine rung
        # until max_fires is spent: bidastar errors, bids retries then
        # errors, and the chain lands on a later rung.
        injector = FaultInjector(seed=1, raise_at=0, transient=True, max_fires=2)
        ans = resilient_ppsp(grid, 0, 99, retries=1, observer=obs, fault_injector=injector)
        assert ans.exact
        errors = _counter(obs, "repro_fallback_attempts_total",
                          method="bidastar", outcome="error")
        assert errors >= 1
        assert _counter(obs, "repro_fallback_retries_total") >= 1

    def test_reference_rung_counted(self, grid):
        obs = Observer()
        ans = resilient_ppsp(grid, 0, 99, methods=(), observer=obs)
        assert ans.method == REFERENCE_RUNG
        assert _counter(obs, "repro_fallback_attempts_total",
                        method=REFERENCE_RUNG, outcome="ok") == 1


class TestExports:
    def test_text_and_json_agree_on_a_counter(self, grid):
        obs = Observer()
        ppsp(grid, 0, 99, method="bids", observer=obs)
        text = obs.export_text()
        assert 'repro_runs_total{policy="bids"} 1' in text
        payload = obs.export_json()
        by_name = {m["name"]: m for m in payload["metrics"]}
        sample = by_name["repro_runs_total"]["samples"][0]
        assert sample == {"labels": {"policy": "bids"}, "value": 1.0}
