"""Auditor detection matrix: no corruption class passes silently.

The chaos suite (``test_chaos.py``) proves each fault is detected *or*
recovered end to end.  This suite pins the sharper detection contract
behind it, corruption class by corruption class:

1. **checked mode flags it** — the run raises an
   :class:`InvariantViolation` of the documented kind, and the injector
   confirms the fault actually fired (a test that never injected proves
   nothing);
2. **the corruption is otherwise silent** — the same injection without
   an auditor completes and returns a *wrong or rightly-suspect* answer
   (or at least does not raise), which is exactly why checked mode
   exists: nothing else in the stack notices.

Together the two halves rule out the failure mode where an auditor
check rots into a no-op and its chaos test keeps passing because the
fault stopped firing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ppsp
from repro.robustness import FaultInjector, InvariantAuditor
from repro.robustness.auditor import InvariantViolation

from .conftest import mu_window

SEED = 7041

#: every auditor-detectable corruption class of FaultInjector, with the
#: methods it applies to and the violation kind that must flag it.
CORRUPTIONS = [
    pytest.param(
        "corrupt-dist",
        dict(corrupt_dist_at=2, corrupt_dist_count=3),
        ["sssp", "et", "bids", "astar", "bidastar"],
        {"dist-increase"},
        id="corrupt-dist",
    ),
    pytest.param(
        "drop-frontier",
        dict(drop_frontier_at=2),
        ["sssp", "et", "bids", "astar", "bidastar"],
        {"frontier-drop"},
        id="drop-frontier",
    ),
    pytest.param(
        "corrupt-mu",
        dict(corrupt_mu_at="first-finite-mu", mu_factor=0.25),
        ["et", "bids", "astar", "bidastar"],
        {"mu-unwitnessed", "mu-increase"},
        id="corrupt-mu",
    ),
    pytest.param(
        "perturb-heuristic",
        dict(perturb_heuristic=True),
        ["astar", "bidastar"],
        {"heuristic-endpoint", "heuristic-inconsistent"},
        id="perturb-heuristic",
    ),
]


def _build_injector(graph, s, t, method, spec):
    """Materialize an injector spec, resolving self-calibrating steps."""
    kwargs = dict(spec)
    if kwargs.get("corrupt_mu_at") == "first-finite-mu":
        first, total = mu_window(graph, s, t, method)
        if first is None or first + 1 >= total:
            pytest.skip(f"{method}: no step window with finite, unconverged mu")
        kwargs["corrupt_mu_at"] = first + 1
    return FaultInjector(seed=SEED, **kwargs)


@pytest.mark.parametrize("fault,spec,methods,kinds", CORRUPTIONS)
def test_checked_mode_flags_every_corruption_class(grid, grid_query, fault, spec, methods, kinds):
    s, t, _ = grid_query
    for method in methods:
        injector = _build_injector(grid, s, t, method, spec)
        with pytest.raises(InvariantViolation) as exc:
            ppsp(
                grid, s, t, method=method,
                auditor=InvariantAuditor(seed=SEED),
                fault_injector=injector,
            )
        assert exc.value.kind in kinds, (
            f"{fault} on {method}: flagged as {exc.value.kind!r}, "
            f"expected one of {sorted(kinds)}"
        )
        # The violation must come from a fault that actually fired.
        assert injector.fired, f"{fault} on {method}: injector never fired"
        assert all(kind.startswith(fault.split("-")[0]) for _, kind in injector.fired) or (
            injector.fired[0][1] == fault
        )


@pytest.mark.parametrize("fault,spec,methods,kinds", CORRUPTIONS)
def test_corruptions_are_silent_without_the_auditor(grid, grid_query, fault, spec, methods, kinds):
    """Control: unchecked runs swallow the same corruption quietly.

    This is the half that justifies checked mode — if a corruption
    already crashed or errored without the auditor, the detection test
    above would be vacuous.
    """
    s, t, true_distance = grid_query
    for method in methods:
        injector = _build_injector(grid, s, t, method, spec)
        ans = ppsp(grid, s, t, method=method, fault_injector=injector)
        assert injector.fired, f"{fault} on {method}: injector never fired"
        # Unchecked, the engine completes without raising and yields
        # *some* number — possibly wrong, possibly inf (drop-frontier can
        # sever the search) — which is the point.
        assert isinstance(ans.distance, float)


@pytest.mark.parametrize("method", ["sssp", "et", "bids", "astar", "bidastar"])
def test_clean_runs_pass_checked_mode(grid, grid_query, method):
    """The matrix is sound: with no injector, the auditor stays quiet."""
    s, t, true_distance = grid_query
    auditor = InvariantAuditor(seed=SEED)
    ans = ppsp(grid, s, t, method=method, auditor=auditor)
    assert ans.distance == pytest.approx(true_distance)
    assert auditor.steps_audited == ans.run.steps
