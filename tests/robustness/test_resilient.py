"""Fallback chains: resilient_ppsp survives failing rungs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra_ppsp
from repro.graphs import from_edges
from repro.robustness import (
    DEFAULT_CHAIN,
    Budget,
    FaultInjector,
    ResilientAnswer,
    resilient_ppsp,
)
from repro.robustness.resilient import REFERENCE_RUNG


class TestHappyPath:
    def test_first_rung_answers(self, grid, grid_query):
        s, t, true = grid_query
        res = resilient_ppsp(grid, s, t)
        assert res.exact
        assert res.method == DEFAULT_CHAIN[0] == "bidastar"
        assert res.distance == pytest.approx(true)
        assert [a.outcome for a in res.attempts] == ["ok"]

    def test_path_delegates_to_engine_answer(self, grid, grid_query):
        s, t, true = grid_query
        res = resilient_ppsp(grid, s, t)
        path = res.path()
        assert path[0] == s and path[-1] == t

    def test_query_validated_up_front(self, grid):
        with pytest.raises(ValueError, match="target vertex 99999"):
            resilient_ppsp(grid, 0, 99999)


class TestDegradedRungs:
    def test_coordless_graph_falls_through_to_bids(self, grid_query):
        # No coordinates: bidastar cannot build heuristics and errors out;
        # the chain must recover on the geometry-free bids rung.
        g = from_edges([0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0], directed=False)
        res = resilient_ppsp(g, 0, 3)
        assert res.exact
        assert res.method == "bids"
        assert res.distance == pytest.approx(6.0)
        assert res.attempts[0].method == "bidastar"
        assert res.attempts[0].outcome == "error"
        assert not res.attempts[0].transient

    def test_transient_fault_retried_same_rung(self, grid, grid_query):
        s, t, true = grid_query
        injector = FaultInjector(seed=1, raise_at=2, transient=True, max_fires=1)
        res = resilient_ppsp(grid, s, t, fault_injector=injector, retries=1)
        assert res.exact
        assert res.method == "bidastar"  # retry of the SAME rung succeeded
        assert [(a.method, a.outcome) for a in res.attempts] == [
            ("bidastar", "error"),
            ("bidastar", "ok"),
        ]
        assert res.attempts[0].transient

    def test_permanent_faults_drop_to_reference(self, grid, grid_query):
        s, t, true = grid_query
        # Fire a permanent fault at step 0 of every engine rung: only the
        # engine-free Dijkstra oracle can answer.
        injector = FaultInjector(seed=1, raise_at=0, transient=False, max_fires=100)
        res = resilient_ppsp(grid, s, t, fault_injector=injector)
        assert res.exact
        assert res.method == REFERENCE_RUNG
        assert res.distance == pytest.approx(true)
        engine_tries = [a for a in res.attempts if a.method != REFERENCE_RUNG]
        assert {a.method for a in engine_tries} == set(DEFAULT_CHAIN)
        assert all(a.outcome == "error" for a in engine_tries)

    def test_budgeted_chain_without_reference_returns_bound(self, grid, grid_query):
        s, t, true = grid_query
        res = resilient_ppsp(
            grid, s, t, budget=Budget(max_steps=1), reference_fallback=False
        )
        assert isinstance(res, ResilientAnswer)
        assert not res.exact
        assert res.distance >= true - 1e-9  # best μ across rungs: still a bound
        assert all(a.outcome == "inexact" for a in res.attempts)

    def test_budgeted_chain_with_reference_is_exact(self, grid, grid_query):
        s, t, true = grid_query
        res = resilient_ppsp(grid, s, t, budget=Budget(max_steps=1))
        assert res.exact
        assert res.method == REFERENCE_RUNG
        assert res.distance == pytest.approx(true)

    def test_reference_rung_has_no_path_state(self, grid, grid_query):
        s, t, _ = grid_query
        injector = FaultInjector(seed=1, raise_at=0, transient=False, max_fires=100)
        res = resilient_ppsp(grid, s, t, fault_injector=injector)
        with pytest.raises(NotImplementedError, match="dijkstra-reference"):
            res.path()

    def test_unreachable_is_exact_inf(self):
        g = from_edges([0], [1], [1.0], num_vertices=4, directed=True)
        res = resilient_ppsp(g, 3, 0)
        assert res.exact
        assert not res.reachable
        assert np.isinf(res.distance)


class TestJitteredBackoff:
    """Decorrelated-jitter retry delays: seeded, bounded, budget-gated."""

    def _transient_run(self, grid, grid_query, *, seed, **kwargs):
        s, t, _ = grid_query
        slept: list[float] = []
        res = resilient_ppsp(
            grid, s, t,
            retries=2, backoff=0.05,
            rng=np.random.default_rng(seed),
            sleep=slept.append,
            fault_injector=FaultInjector(
                seed=1, raise_at=2, transient=True, max_fires=2
            ),
            **kwargs,
        )
        return res, slept

    def test_sleeps_are_jittered_within_bounds(self, grid, grid_query):
        res, slept = self._transient_run(grid, grid_query, seed=3)
        assert res.exact
        assert len(slept) == 2  # two transient failures, two backoffs
        for delay in slept:
            assert 0.05 <= delay <= 16.0 * 0.05  # [base, default cap]

    def test_seeded_delays_are_reproducible(self, grid, grid_query):
        _, first = self._transient_run(grid, grid_query, seed=11)
        _, again = self._transient_run(grid, grid_query, seed=11)
        _, other = self._transient_run(grid, grid_query, seed=12)
        assert first == again
        assert first != other

    def test_backoff_cap_clamps_delays(self, grid, grid_query):
        s, t, _ = grid_query
        slept: list[float] = []
        resilient_ppsp(
            grid, s, t,
            retries=2, backoff=1.0, backoff_cap=1.0,
            rng=np.random.default_rng(0),
            sleep=slept.append,
            fault_injector=FaultInjector(
                seed=1, raise_at=2, transient=True, max_fires=2
            ),
        )
        assert slept == [1.0, 1.0]  # uniform(1, 3) clamped to the cap

    def test_zero_backoff_never_sleeps(self, grid, grid_query):
        res, slept = self._transient_run(grid, grid_query, seed=0, backoff_cap=None)
        assert slept  # sanity: the seeded run does back off
        s, t, _ = grid_query
        called: list[float] = []
        res = resilient_ppsp(
            grid, s, t, retries=2, backoff=0.0, sleep=called.append,
            fault_injector=FaultInjector(
                seed=1, raise_at=2, transient=True, max_fires=2
            ),
        )
        assert res.exact
        assert called == []

    def test_dry_retry_budget_degrades_to_next_rung(self, grid, grid_query):
        from repro.serve import RetryBudget

        s, t, true = grid_query
        budget = RetryBudget(capacity=0.0, refill_per_s=0.0)
        slept: list[float] = []
        res = resilient_ppsp(
            grid, s, t,
            retries=2, backoff=0.05,
            rng=np.random.default_rng(0),
            sleep=slept.append,
            retry_budget=budget,
            fault_injector=FaultInjector(
                seed=1, raise_at=2, transient=True, max_fires=1
            ),
        )
        assert res.exact
        assert res.distance == pytest.approx(true)
        assert res.method != DEFAULT_CHAIN[0]  # degraded, not retried
        assert slept == []  # denied before any backoff
        assert budget.denied == {"retry": 1}
