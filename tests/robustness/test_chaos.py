"""Chaos suite: every injected corruption class is detected or recovered.

ISSUE acceptance criterion: under a fixed seed, each fault class from
:class:`repro.robustness.FaultInjector` is either caught by the
:class:`~repro.robustness.InvariantAuditor` (checked mode) or absorbed
by the :func:`~repro.robustness.resilient_ppsp` fallback chain, and a
budget-exhausted run returns ``exact=False`` with a finite upper bound
that never undercuts the true distance.

Injection steps are derived from a clean traced run (``mu_window``), so
the scenarios self-calibrate to the search instead of hard-coding step
numbers that would drift with engine changes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ppsp
from repro.robustness import (
    Budget,
    FaultInjector,
    InvariantAuditor,
    resilient_ppsp,
)
from repro.robustness.resilient import REFERENCE_RUNG
from repro.robustness.faults import InjectedFault

from .conftest import mu_window

SEED = 2025  # one fixed seed for the whole suite (CI runs it verbatim)

ENGINE_METHODS = ["sssp", "et", "bids", "astar", "bidastar"]


def checked(graph, s, t, method, injector):
    return ppsp(
        graph, s, t, method=method,
        auditor=InvariantAuditor(seed=SEED),
        fault_injector=injector,
    )


class TestAuditorCatchesEachCorruptionClass:
    @pytest.mark.parametrize("method", ENGINE_METHODS)
    def test_corrupt_dist_detected(self, grid, grid_query, method):
        s, t, _ = grid_query
        injector = FaultInjector(
            seed=SEED, corrupt_dist_at=2, corrupt_dist_count=3
        )
        with pytest.raises(Exception) as exc:
            checked(grid, s, t, method, injector)
        assert exc.value.kind == "dist-increase"
        assert injector.fired == [(2, "corrupt-dist")]

    @pytest.mark.parametrize("method", ENGINE_METHODS)
    def test_drop_frontier_detected(self, grid, grid_query, method):
        s, t, _ = grid_query
        injector = FaultInjector(seed=SEED, drop_frontier_at=2)
        with pytest.raises(Exception) as exc:
            checked(grid, s, t, method, injector)
        assert exc.value.kind == "frontier-drop"
        assert injector.fired == [(2, "drop-frontier")]

    @pytest.mark.parametrize("method", ["et", "bids", "astar", "bidastar"])
    def test_corrupt_mu_detected(self, grid, grid_query, method):
        s, t, _ = grid_query
        # Shrink μ just after it first becomes finite: the fake bound has
        # no witnessing path in the distance table.
        first_finite, total = mu_window(grid, s, t, method)
        assert first_finite is not None and first_finite + 1 < total
        injector = FaultInjector(seed=SEED, corrupt_mu_at=first_finite + 1,
                                 mu_factor=0.25)
        with pytest.raises(Exception) as exc:
            checked(grid, s, t, method, injector)
        assert exc.value.kind == "mu-unwitnessed"
        assert injector.fired == [(first_finite + 1, "corrupt-mu")]

    @pytest.mark.parametrize("method", ["astar", "bidastar"])
    def test_perturbed_heuristic_detected(self, grid, grid_query, method):
        s, t, _ = grid_query
        injector = FaultInjector(seed=SEED, perturb_heuristic=True)
        with pytest.raises(Exception) as exc:
            checked(grid, s, t, method, injector)
        assert exc.value.kind in ("heuristic-endpoint", "heuristic-inconsistent")
        assert injector.fired == [(-1, "perturb-heuristic")]

    def test_injected_exception_surfaces_unchecked(self, grid, grid_query):
        s, t, _ = grid_query
        injector = FaultInjector(seed=SEED, raise_at=1)
        with pytest.raises(InjectedFault):
            ppsp(grid, s, t, method="bids", fault_injector=injector)


class TestFallbackChainRecoversEachClass:
    """The same corruptions, but resilient_ppsp must deliver an exact answer.

    Checked mode turns silent corruption into a (permanent)
    InvariantViolation; the chain then walks down to a rung the spent
    injector no longer corrupts — or to the engine-free reference rung.
    """

    def recovered(self, grid, s, t, true, injector, **kwargs):
        res = resilient_ppsp(
            grid, s, t, checked=True, fault_injector=injector, **kwargs
        )
        assert res.exact
        assert res.distance == pytest.approx(true)
        return res

    def test_recovers_from_corrupt_dist(self, grid, grid_query):
        s, t, true = grid_query
        injector = FaultInjector(seed=SEED, corrupt_dist_at=2, corrupt_dist_count=3)
        res = self.recovered(grid, s, t, true, injector)
        assert res.attempts[0].outcome == "error"
        assert "dist-increase" in res.attempts[0].error

    def test_recovers_from_dropped_frontier(self, grid, grid_query):
        s, t, true = grid_query
        injector = FaultInjector(seed=SEED, drop_frontier_at=2)
        res = self.recovered(grid, s, t, true, injector)
        assert "frontier-drop" in res.attempts[0].error

    def test_recovers_from_corrupt_mu(self, grid, grid_query):
        s, t, true = grid_query
        first_finite, _ = mu_window(grid, s, t, "bidastar")
        injector = FaultInjector(seed=SEED, corrupt_mu_at=first_finite + 1)
        self.recovered(grid, s, t, true, injector)
        assert injector.fired  # the corruption really happened

    def test_recovers_from_perturbed_heuristic(self, grid, grid_query):
        s, t, true = grid_query
        # Only the A*-family rung has heuristics to corrupt; the chain's
        # geometry-free bids rung must answer.
        injector = FaultInjector(seed=SEED, perturb_heuristic=True)
        res = self.recovered(grid, s, t, true, injector)
        assert res.method in ("bids", "et")

    def test_recovers_from_transient_crash_by_retry(self, grid, grid_query):
        s, t, true = grid_query
        injector = FaultInjector(seed=SEED, raise_at=2, transient=True, max_fires=1)
        res = self.recovered(grid, s, t, true, injector, retries=1)
        assert res.method == "bidastar"
        assert [(a.method, a.outcome) for a in res.attempts] == [
            ("bidastar", "error"), ("bidastar", "ok"),
        ]

    def test_recovers_from_persistent_crashes_via_reference(self, grid, grid_query):
        s, t, true = grid_query
        injector = FaultInjector(seed=SEED, raise_at=0, transient=False,
                                 max_fires=100)
        res = self.recovered(grid, s, t, true, injector)
        assert res.method == REFERENCE_RUNG


class TestBudgetExhaustionCriterion:
    @pytest.mark.parametrize("method", ["et", "bids", "astar", "bidastar"])
    def test_exhausted_run_keeps_finite_upper_bound(self, grid, grid_query, method):
        s, t, true = grid_query
        # Cut the search after μ is finite but before natural termination:
        # the degraded answer must be a finite bound >= the true distance.
        first_finite, total = mu_window(grid, s, t, method)
        assert first_finite is not None and first_finite + 1 < total
        ans = ppsp(grid, s, t, method=method, budget=Budget(max_steps=first_finite + 1))
        assert not ans.exact
        assert np.isfinite(ans.distance)
        assert ans.distance >= true - 1e-9
        assert ans.budget_report.exhausted

    def test_determinism_under_fixed_seed(self, grid, grid_query):
        s, t, _ = grid_query

        def run():
            injector = FaultInjector(seed=SEED, corrupt_dist_at=2,
                                     corrupt_dist_count=3)
            try:
                checked(grid, s, t, "bids", injector)
            except Exception as err:  # noqa: BLE001
                return (err.kind, err.step, str(err), tuple(injector.fired))
            return None

        first, second = run(), run()
        assert first is not None
        assert first == second
