"""Checked mode: the auditor accepts clean runs and rejects bad inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro import batch_ppsp, ppsp
from repro.heuristics import Heuristic
from repro.robustness import InvariantAuditor, InvariantViolation


class _FnHeuristic(Heuristic):
    """Adapt a plain vectorized function to the Heuristic interface."""

    def __init__(self, fn):
        super().__init__()
        self.fn = fn

    def _compute(self, vertices):
        return self.fn(vertices)

METHODS = ["sssp", "et", "bids", "astar", "bidastar"]


class TestCleanRuns:
    @pytest.mark.parametrize("method", METHODS)
    def test_no_false_positives(self, grid, grid_query, method):
        s, t, true = grid_query
        ans = ppsp(grid, s, t, method=method, checked=True)
        assert ans.exact
        assert ans.distance == pytest.approx(true)

    @pytest.mark.parametrize("method", METHODS)
    def test_auditor_actually_runs(self, grid, grid_query, method):
        s, t, _ = grid_query
        auditor = InvariantAuditor()
        ans = ppsp(grid, s, t, method=method, auditor=auditor)
        assert auditor.steps_audited == ans.run.steps > 0

    @pytest.mark.parametrize("method", ["multi", "plain-bids", "sssp-vc"])
    def test_batch_checked_clean(self, grid, method):
        res = batch_ppsp(
            grid, [(0, 143), (5, 100)], method=method, auditor=InvariantAuditor()
        )
        assert res.exact

    def test_deterministic_sampling(self, grid, grid_query):
        s, t, _ = grid_query
        # Two audited runs with the same seed behave identically (no
        # flaky sampling); a violation-free run stays violation-free.
        for _ in range(2):
            ppsp(grid, s, t, method="astar", auditor=InvariantAuditor(seed=7))


class TestDetection:
    def test_inadmissible_heuristic_rejected_at_bind(self, grid, grid_query):
        s, t, _ = grid_query

        def offset(v):  # h(t) != 0: inadmissible at the anchor
            return np.full(len(np.asarray(v)), 5.0)

        with pytest.raises(InvariantViolation) as exc:
            ppsp(grid, s, t, method="astar", heuristic=_FnHeuristic(offset),
                 auditor=InvariantAuditor())
        assert exc.value.kind == "heuristic-endpoint"
        assert exc.value.step == -1

    def test_inconsistent_heuristic_caught_by_sampling(self, grid, grid_query):
        s, t, _ = grid_query

        def jagged(v):  # huge pseudo-random jumps between neighbours, h(t)=0
            v = np.asarray(v)
            h = ((v * 2654435761) % 1024).astype(np.float64) * 1e3
            h[v == t] = 0.0
            return h

        with pytest.raises(InvariantViolation) as exc:
            ppsp(grid, s, t, method="astar", heuristic=_FnHeuristic(jagged),
                 auditor=InvariantAuditor())
        assert exc.value.kind == "heuristic-inconsistent"

    def test_violation_is_structured(self):
        err = InvariantViolation("mu-increase", 3, "mu rose", {"before": 1.0})
        assert err.kind == "mu-increase"
        assert err.step == 3
        assert err.details["before"] == 1.0
        assert "[mu-increase] step 3" in str(err)
