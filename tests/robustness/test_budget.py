"""Execution budgets: graceful degradation instead of crashes."""

from __future__ import annotations

import numpy as np
import pytest

from repro import batch_ppsp, ppsp
from repro.robustness import Budget
from repro.robustness.budget import BudgetMeter


class TestBudgetSpec:
    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError, match="max_steps"):
            Budget(max_steps=-1)

    def test_unlimited(self):
        assert Budget().unlimited
        assert not Budget(max_steps=5).unlimited

    def test_meter_counts_and_trips(self):
        meter = Budget(max_steps=2, max_relaxations=100).start()
        assert meter.check() is None
        meter.charge(steps=1, relaxations=10)
        assert meter.check() is None
        meter.charge(steps=1, relaxations=10)
        assert "max_steps" in meter.check()
        assert meter.exhausted

    def test_reason_is_sticky(self):
        meter = Budget(max_steps=1).start()
        meter.charge(steps=1)
        first = meter.check()
        meter.steps = 0  # even if counters are tampered with afterwards
        assert meter.check() == first

    def test_relaxation_limit(self):
        meter = Budget(max_relaxations=5).start()
        meter.charge(relaxations=6)
        assert "max_relaxations" in meter.check()

    def test_report_to_dict(self):
        meter = Budget(max_steps=1, wall_time=60.0).start()
        meter.charge(steps=1, relaxations=7)
        d = meter.report().to_dict()
        assert d["exhausted"] is True
        assert d["steps"] == 1 and d["relaxations"] == 7
        assert d["limits"]["wall_time"] == 60.0


class TestQueryBudgets:
    def test_step_budget_degrades_gracefully(self, grid, grid_query):
        s, t, true = grid_query
        ans = ppsp(grid, s, t, method="et", budget=Budget(max_steps=3))
        assert not ans.exact
        assert ans.distance >= true - 1e-9  # μ is always an upper bound
        assert ans.budget_report.exhausted
        assert "max_steps" in ans.budget_report.reason
        assert ans.run.steps <= 3

    def test_unlimited_budget_stays_exact(self, grid, grid_query):
        s, t, true = grid_query
        ans = ppsp(grid, s, t, method="bids", budget=Budget())
        assert ans.exact
        assert ans.distance == pytest.approx(true)
        assert not ans.budget_report.exhausted

    def test_zero_wall_time_stops_immediately(self, grid, grid_query):
        s, t, _ = grid_query
        ans = ppsp(grid, s, t, method="bids", budget=Budget(wall_time=0.0))
        assert not ans.exact
        assert ans.run.steps == 0
        assert np.isinf(ans.distance)

    def test_sssp_budget_row_is_upper_bound(self, grid, grid_query):
        s, t, true = grid_query
        ans = ppsp(grid, s, t, method="sssp", budget=Budget(max_steps=4))
        assert not ans.exact
        assert ans.distance >= true - 1e-9

    def test_relaxation_budget(self, grid, grid_query):
        s, t, _ = grid_query
        ans = ppsp(grid, s, t, method="et", budget=Budget(max_relaxations=50))
        assert not ans.exact
        assert "max_relaxations" in ans.budget_report.reason


class TestBatchBudgets:
    QUERIES = [(0, 143), (5, 100), (7, 60)]

    @pytest.mark.parametrize("method", ["multi", "plain-bids", "sssp-vc"])
    def test_shared_budget_marks_batch_inexact(self, grid, method):
        res = batch_ppsp(grid, self.QUERIES, method=method, budget=Budget(max_steps=2))
        assert not res.exact
        report = res.details["budget_report"]
        assert report.exhausted
        # Distances degrade to upper bounds (inf for unreached queries),
        # never undercutting the true distances.
        from repro.baselines.dijkstra import dijkstra_ppsp

        for (s, t), d in res.distances.items():
            assert d >= dijkstra_ppsp(grid, s, t) - 1e-9

    def test_generous_budget_stays_exact(self, grid):
        res = batch_ppsp(grid, self.QUERIES, budget=Budget(max_steps=10_000))
        assert res.exact
        assert not res.details["budget_report"].exhausted

    def test_shared_meter_spans_runs(self, grid):
        # One meter across the whole batch: it accumulates the steps of
        # every per-pair run, not just the last one.
        single = BudgetMeter(Budget())
        batch_ppsp(grid, self.QUERIES[:1], method="plain-bids", budget=single)
        shared = BudgetMeter(Budget())
        batch_ppsp(grid, self.QUERIES, method="plain-bids", budget=shared)
        assert single.steps > 0
        assert shared.steps > single.steps
