"""Shared fixtures and helpers for the robustness / chaos suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ppsp
from repro.baselines.dijkstra import dijkstra_ppsp
from repro.core.tracing import StepTrace
from repro.graphs import road_graph


@pytest.fixture(scope="module")
def grid():
    """A 12x12 road grid with spherical coordinates (supports all methods)."""
    return road_graph(12, 12, seed=3, name="chaos-grid")


@pytest.fixture(scope="module")
def grid_query(grid):
    """(source, target, true_distance) across the grid's diagonal."""
    s, t = 0, grid.num_vertices - 1
    return s, t, dijkstra_ppsp(grid, s, t)


def mu_window(graph, s, t, method):
    """(first step with finite μ, total steps) of one clean run.

    Chaos tests use this to place injections inside the window where μ
    is finite but the search has not yet converged — making scenarios
    self-calibrating instead of hard-coding step numbers.
    """
    trace = StepTrace()
    ans = ppsp(graph, s, t, method=method, trace=trace)
    first = next((r.step for r in trace.records if np.isfinite(r.mu)), None)
    return first, ans.run.steps
