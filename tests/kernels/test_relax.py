"""gather_relax vs the unfused expand_ranges / np.repeat construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import build_graph, road_graph, social_graph
from repro.kernels.relax import gather_relax
from repro.kernels.scatter import ScratchPool
from repro.parallel.primitives import expand_ranges


def _reference_gather(graph, eids, v, src_off, dist):
    """The pre-kernel engine construction, kept verbatim as the oracle."""
    starts = graph.indptr[v]
    counts = (graph.indptr[v + 1] - starts).astype(np.int64)
    edge_idx = expand_ranges(starts, counts)
    src_idx = np.repeat(np.arange(len(v)), counts)
    te = src_off[src_idx] + graph.indices[edge_idx]
    new_d = dist[eids][src_idx] + graph.weights[edge_idx]
    return te, new_d, int(counts.sum())


def _check(graph, eids, v, src_off, dist):
    scratch = ScratchPool()
    te, new_d, m = gather_relax(graph, eids, v, src_off, dist, scratch=scratch)
    ref_te, ref_nd, ref_m = _reference_gather(graph, eids, v, src_off, dist)
    assert m == ref_m
    assert np.array_equal(np.asarray(te[:m]), ref_te)
    # Bit-identical floats: both paths add the same weight to the same
    # tentative distance.
    assert np.asarray(new_d[:m]).tobytes() == ref_nd.tobytes()


@pytest.mark.parametrize("seed", range(12))
def test_matches_reference_random(seed):
    rng = np.random.default_rng(seed)
    g = social_graph(int(rng.integers(20, 120)), seed=seed)
    n = g.num_vertices
    k = int(rng.integers(1, 4))
    dist = rng.uniform(0.0, 5.0, size=k * n)
    size = int(rng.integers(1, n))
    v = rng.integers(0, n, size=size).astype(np.int64)
    src = rng.integers(0, k, size=size).astype(np.int64)
    eids = src * n + v
    src_off = src * n
    _check(g, eids, v, src_off, dist)


def test_zero_degree_sources_are_dropped():
    # Vertex 2 has no outgoing edges; a batch containing it must not
    # corrupt neighbouring segments.
    g = build_graph([(0, 1, 1.0), (1, 2, 2.0)], num_vertices=4, directed=True)
    dist = np.array([0.0, 1.0, 3.0, np.inf])
    v = np.array([0, 2, 1, 3], dtype=np.int64)
    eids = v.copy()
    src_off = np.zeros(4, dtype=np.int64)
    _check(g, eids, v, src_off, dist)


def test_all_zero_degree_batch():
    g = build_graph([(0, 1, 1.0)], num_vertices=3, directed=True)
    dist = np.array([0.0, 1.0, np.inf])
    v = np.array([1, 2], dtype=np.int64)  # both sinks
    scratch = ScratchPool()
    te, new_d, m = gather_relax(
        g, v.copy(), v, np.zeros(2, dtype=np.int64), dist, scratch=scratch
    )
    assert m == 0
    assert len(np.asarray(te)) == 0


def test_scratch_reuse_does_not_corrupt():
    """Back-to-back calls reuse the pooled buffers; results must match a
    fresh-scratch oracle on every call, including a shrink then grow."""
    g = road_graph(6, 6, seed=2)
    n = g.num_vertices
    rng = np.random.default_rng(5)
    dist = rng.uniform(0.0, 4.0, size=n)
    scratch = ScratchPool()
    for size in (30, 3, 25, 1, 30):
        v = rng.integers(0, n, size=size).astype(np.int64)
        eids = v.copy()
        src_off = np.zeros(size, dtype=np.int64)
        te, new_d, m = gather_relax(g, eids, v, src_off, dist, scratch=scratch)
        ref_te, ref_nd, ref_m = _reference_gather(g, eids, v, src_off, dist)
        assert m == ref_m
        assert np.array_equal(np.asarray(te[:m]), ref_te)
        assert np.asarray(new_d[:m]).tobytes() == ref_nd.tobytes()
