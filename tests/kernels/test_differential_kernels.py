"""Differential slice: every kernel impl vs ``ufunc_at``, bit-identical.

Reuses the seeded random-geometric instance family of
``tests/test_differential.py`` (directed/undirected, zero-weight edges,
disconnected pairs) — a spread of seeds, every single-query method and
every batch solver, answers compared for exact equality against the
``ufunc_at`` reference kernel.
"""

from __future__ import annotations

import pytest

from repro import batch_ppsp, ppsp
from repro.kernels.scatter import KERNEL_IMPLS

from ..test_differential import METHODS, _random_geometric

NON_REFERENCE = tuple(i for i in KERNEL_IMPLS if i != "ufunc_at")
BATCH_METHODS = ("multi", "plain-bids", "sssp-vc")


@pytest.mark.parametrize("seed", range(0, 50, 5))
def test_single_methods_identical_across_kernels(seed):
    graph, pairs = _random_geometric(seed)
    for s, t in pairs:
        for method in METHODS:
            ref = ppsp(graph, s, t, method=method, kernel="ufunc_at")
            for impl in NON_REFERENCE:
                got = ppsp(graph, s, t, method=method, kernel=impl)
                assert got.distance == ref.distance, (seed, method, impl, s, t)
                if ref.reachable:
                    assert got.path() == ref.path(), (seed, method, impl, s, t)


@pytest.mark.parametrize("seed", range(0, 50, 10))
def test_batch_solvers_identical_across_kernels(seed):
    graph, pairs = _random_geometric(seed)
    for bmethod in BATCH_METHODS:
        ref = batch_ppsp(graph, pairs, method=bmethod, kernel="ufunc_at")
        for impl in NON_REFERENCE:
            got = batch_ppsp(graph, pairs, method=bmethod, kernel=impl)
            assert got.distances == ref.distances, (seed, bmethod, impl)


@pytest.mark.parametrize("seed", (0, 21))
def test_env_override_selects_kernel(seed, monkeypatch):
    """REPRO_KERNEL steers runs that pass no explicit kernel."""
    from repro.core.engine import PPSPEngine

    graph, pairs = _random_geometric(seed)
    s, t = pairs[0]
    ref = ppsp(graph, s, t, method="bids", kernel="ufunc_at")
    monkeypatch.setenv("REPRO_KERNEL", "sort_reduceat")
    engine = PPSPEngine(graph)
    assert engine.kernel.impl == "sort_reduceat"
    got = ppsp(graph, s, t, method="bids")
    assert got.distance == ref.distance
