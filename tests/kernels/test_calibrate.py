"""Calibration layer: thresholds, Δ doubling, and the strategy trigger."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.stepping import CALIBRATE_CV_THRESHOLD, DeltaStepping, default_strategy
from repro.graphs import build_graph, road_graph
from repro.kernels import calibrate
from repro.kernels.calibrate import (
    DEFAULT_SCATTER_THRESHOLD,
    calibrate_delta,
    calibrate_scatter,
    scatter_threshold,
)


@pytest.fixture(autouse=True)
def _fresh_state(monkeypatch):
    """Isolate the process-wide caches from other tests (and vice versa)."""
    monkeypatch.setattr(calibrate, "_state", {"threshold": None, "profile": None})
    monkeypatch.setattr(calibrate, "_DELTA_CACHE", {})
    monkeypatch.delenv("REPRO_KERNEL_THRESHOLD", raising=False)
    monkeypatch.delenv("REPRO_KERNEL_CALIBRATE", raising=False)


def test_threshold_env_pin(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_THRESHOLD", "777")
    assert scatter_threshold() == 777


def test_threshold_calibration_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_CALIBRATE", "0")
    assert scatter_threshold() == DEFAULT_SCATTER_THRESHOLD


def test_calibrate_scatter_profile_cached():
    prof = calibrate_scatter(repeats=1)
    assert prof["threshold"] >= 1
    assert set(prof["timings"]) == {"128", "256", "512", "1024", "4096"}
    # Second call returns the cached profile object.
    assert calibrate_scatter() is prof
    assert scatter_threshold() == prof["threshold"]


def test_calibrate_delta_cached_by_fingerprint():
    g = road_graph(6, 6, seed=4)
    calls = []
    d1 = calibrate_delta(g, doublings=3)
    assert d1 > 0
    # Same fingerprint -> cache hit, even through a rebuilt object.
    g2 = road_graph(6, 6, seed=4)
    assert g.fingerprint() == g2.fingerprint()
    assert calibrate_delta(g2, doublings=3) == d1
    assert not calls


def test_calibrate_delta_empty_graph():
    g = build_graph([], num_vertices=3)
    assert calibrate_delta(g) == 1.0


def test_default_strategy_static_on_uniform_weights():
    """Low-dispersion weights keep the cheap static 2x-mean guess."""
    g = road_graph(6, 6, seed=4)
    mean_w, std_w = g.weight_stats()
    assert std_w <= CALIBRATE_CV_THRESHOLD * mean_w
    strat = default_strategy(g)
    assert isinstance(strat, DeltaStepping)
    assert strat.delta == pytest.approx(max(mean_w * 2.0, 1e-12))


def test_default_strategy_calibrates_on_skewed_weights():
    """A heavy-tailed weight mix (cv > threshold) triggers the doubling
    search; the result must come from the Δ cache afterwards."""
    rng = np.random.default_rng(0)
    edges = []
    for i in range(40):
        w = 1e-3 if rng.random() < 0.9 else 50.0  # bimodal: huge cv
        edges.append((i, (i + 1) % 40, w))
    g = build_graph(edges, name="skewed")
    mean_w, std_w = g.weight_stats()
    assert std_w > CALIBRATE_CV_THRESHOLD * mean_w
    strat = default_strategy(g)
    assert isinstance(strat, DeltaStepping)
    assert g.fingerprint() in calibrate._DELTA_CACHE
    assert strat.delta == calibrate._DELTA_CACHE[g.fingerprint()]


def test_default_strategy_modes():
    g = road_graph(4, 4, seed=1)
    always = default_strategy(g, calibrate="always")
    assert always.delta == calibrate._DELTA_CACHE[g.fingerprint()]
    never = default_strategy(g, calibrate="never")
    mean_w, _ = g.weight_stats()
    assert never.delta == pytest.approx(max(mean_w * 2.0, 1e-12))
    with pytest.raises(ValueError):
        default_strategy(g, calibrate="sometimes")


def test_harness_tune_delta_delegates():
    from repro.experiments import harness

    harness._DELTA_CACHE.clear()
    g = road_graph(5, 5, seed=2, name="tune-me")
    d = harness.tune_delta(g, doublings=2)
    assert d > 0
    assert g.fingerprint() in calibrate._DELTA_CACHE
    # Historical per-name cache still works.
    assert harness.tune_delta(g, doublings=2) == d
