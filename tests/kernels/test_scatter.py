"""Property suite for the scatter-min kernel family.

Every implementation must be *bit-identical* to the ``np.minimum.at``
reference — same distance bytes, same (sorted-unique) changed-target
array — across heavy duplicates, inf/finite mixes, empty and
single-element batches.  float64 min is order-independent and the
engine feeds no NaNs and no signed zeros, so byte equality is the
specification, not an approximation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels.scatter import (
    CONCRETE_IMPLS,
    KERNEL_IMPLS,
    Kernel,
    ScratchPool,
    get_kernel,
)

NON_REFERENCE = tuple(i for i in KERNEL_IMPLS if i != "ufunc_at")


def _reference(dist, targets, values):
    """The pre-kernel engine idiom: minimum.at then a separate unique."""
    np.minimum.at(dist, targets, values)
    return np.unique(targets)


def _random_batch(rng, n, size, *, dup_ratio=1, inf_values=False):
    targets = rng.integers(0, max(n // max(dup_ratio, 1), 1), size=size).astype(np.int64)
    values = rng.uniform(0.0, 10.0, size=size)
    if inf_values:
        values[rng.random(size) < 0.3] = np.inf
    return targets, values


@pytest.mark.parametrize("impl", NON_REFERENCE)
@pytest.mark.parametrize("seed", range(20))
def test_matches_reference_bitwise(impl, seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(8, 300))
    dist0 = rng.uniform(0.0, 5.0, size=n)
    dist0[rng.random(n) < 0.4] = np.inf
    size = int(rng.integers(0, 4 * n))
    targets, values = _random_batch(
        rng, n, size, dup_ratio=int(rng.integers(1, 6)),
        inf_values=bool(seed % 2),
    )

    expect_dist = dist0.copy()
    expect_changed = _reference(expect_dist, targets, values)

    got_dist = dist0.copy()
    got_changed = Kernel(impl).scatter_min(got_dist, targets, values)

    assert got_dist.tobytes() == expect_dist.tobytes()
    assert np.array_equal(got_changed, expect_changed)
    assert got_changed.dtype == np.int64


@pytest.mark.parametrize("impl", KERNEL_IMPLS)
def test_empty_batch(impl):
    dist = np.array([1.0, np.inf, 3.0])
    before = dist.tobytes()
    changed = Kernel(impl).scatter_min(
        dist, np.empty(0, dtype=np.int64), np.empty(0)
    )
    assert len(changed) == 0
    assert changed.dtype == np.int64
    assert dist.tobytes() == before


@pytest.mark.parametrize("impl", KERNEL_IMPLS)
def test_single_element_batch(impl):
    dist = np.array([np.inf, 5.0, 2.0])
    changed = Kernel(impl).scatter_min(
        dist, np.array([1], dtype=np.int64), np.array([3.5])
    )
    assert list(changed) == [1]
    assert list(dist) == [np.inf, 3.5, 2.0]


@pytest.mark.parametrize("impl", NON_REFERENCE)
def test_heavy_duplicates_single_target(impl):
    """All writes collide on one slot: the worst case for minimum.at."""
    rng = np.random.default_rng(99)
    dist = np.full(4, np.inf)
    values = rng.uniform(0.0, 1.0, size=10_000)
    targets = np.full(10_000, 2, dtype=np.int64)
    changed = Kernel(impl).scatter_min(dist, targets, values)
    assert list(changed) == [2]
    assert dist[2] == values.min()
    assert np.isinf(dist[[0, 1, 3]]).all()


@pytest.mark.parametrize("impl", NON_REFERENCE)
def test_all_inf_values_still_report_targets(impl):
    """scatter_min returns the *touched* unique targets, improving or not

    — the engine filters to improving entries before calling, so the
    contract is unique(targets), matching the reference exactly."""
    dist = np.array([1.0, 2.0])
    expect_dist = dist.copy()
    expect = _reference(expect_dist, np.array([0, 0, 1]), np.full(3, np.inf))
    got_dist = dist.copy()
    got = Kernel(impl).scatter_min(
        got_dist, np.array([0, 0, 1], dtype=np.int64), np.full(3, np.inf)
    )
    assert np.array_equal(got, expect)
    assert got_dist.tobytes() == expect_dist.tobytes()


def test_auto_dispatches_both_sides_of_threshold(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_THRESHOLD", "64")
    kern = Kernel("auto")
    assert kern.threshold == 64
    dist = np.full(1000, np.inf)
    rng = np.random.default_rng(0)

    small_t, small_v = _random_batch(rng, 1000, 63)
    kern.scatter_min(dist, small_t, small_v)
    big_t, big_v = _random_batch(rng, 1000, 64)
    kern.scatter_min(dist, big_t, big_v)

    stats = kern.take_stats()
    assert stats["ufunc_at"]["dispatched"] == 1
    assert stats["sort_reduceat"]["dispatched"] == 1
    # take_stats resets: a second call reports nothing.
    assert kern.take_stats() == {}


def test_concrete_impl_never_reports_dispatch():
    kern = Kernel("sort_reduceat")
    dist = np.full(10, np.inf)
    kern.scatter_min(dist, np.array([1, 1], dtype=np.int64), np.array([2.0, 1.0]))
    stats = kern.take_stats()
    assert stats["sort_reduceat"]["calls"] == 1
    assert stats["sort_reduceat"]["elements"] == 2
    assert stats["sort_reduceat"]["dispatched"] == 0


def test_get_kernel_contract(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    assert get_kernel(None).impl == "auto"
    monkeypatch.setenv("REPRO_KERNEL", "sort_reduceat")
    assert get_kernel(None).impl == "sort_reduceat"
    # Explicit spec wins over the environment.
    assert get_kernel("ufunc_at").impl == "ufunc_at"
    kern = Kernel("auto")
    assert get_kernel(kern) is kern
    with pytest.raises(ValueError):
        Kernel("no-such-impl")
    assert set(CONCRETE_IMPLS) < set(KERNEL_IMPLS)


def test_scratch_pool_growth_and_reuse():
    pool = ScratchPool()
    a = pool.take("x", 10, np.int64)
    assert len(a) == 10
    b = pool.take("x", 11, np.int64)
    # Same pooled buffer serves both: no realloc under the minimum size.
    assert a.base is b.base or a.base is not None
    big = pool.take("x", 5000, np.int64)
    assert len(big) == 5000
    assert pool.nbytes() > 0
    # Distinct tags never alias.
    c = pool.take("y", 10, np.float64)
    c[:] = 1.0
    d = pool.take("x", 10, np.int64)
    d[:] = 7
    assert (c == 1.0).all()
