"""ASCII plotting tests."""

import math

import pytest

from repro.analysis.plotting import ascii_heatmap, ascii_line_chart, format_si


class TestFormatSi:
    @pytest.mark.parametrize(
        "value,expect",
        [
            (0.0, "0"),
            (1234.0, "1.23k"),
            (2_500_000.0, "2.5M"),
            (3.2e9, "3.2G"),
            (0.0012, "1.2m"),
            (2.5e-6, "2.5u"),
            (7.0, "7"),
        ],
    )
    def test_cases(self, value, expect):
        assert format_si(value) == expect

    def test_inf(self):
        assert format_si(math.inf) == "inf"

    def test_tiny_uses_nano(self):
        assert format_si(3e-9).endswith("n")


class TestLineChart:
    def test_contains_marks_and_legend(self):
        chart = ascii_line_chart(
            {"a": [(0, 1.0), (10, 2.0)], "b": [(0, 2.0), (10, 1.0)]},
            title="T",
        )
        assert "T" in chart
        assert "o=a" in chart and "x=b" in chart
        assert "o" in chart and "x" in chart

    def test_log_scale_handles_wide_range(self):
        chart = ascii_line_chart(
            {"s": [(1, 1e-5), (2, 1e2)]}, log_y=True
        )
        assert "(no finite data)" not in chart

    def test_empty_series(self):
        chart = ascii_line_chart({"a": []})
        assert "(no finite data)" in chart

    def test_flat_series(self):
        chart = ascii_line_chart({"a": [(0, 5.0), (1, 5.0)]})
        assert "o" in chart

    def test_non_finite_points_skipped(self):
        chart = ascii_line_chart({"a": [(0, 1.0), (1, math.inf), (2, 2.0)]})
        assert "o" in chart

    def test_mark_positions_ordered(self):
        """Higher y must render on a higher (earlier) row."""
        chart = ascii_line_chart({"a": [(0, 0.0), (10, 10.0)]}, height=10, width=20)
        lines = [l for l in chart.splitlines() if "|" in l]
        first_mark = next(i for i, l in enumerate(lines) if "o" in l)
        last_mark = max(i for i, l in enumerate(lines) if "o" in l)
        assert first_mark < last_mark  # both extremes plotted


class TestHeatmap:
    def test_labels_and_values(self):
        out = ascii_heatmap(
            ["r1", "r2"], ["c1", "c2"],
            {("r1", "c1"): 1.0, ("r1", "c2"): 4.0, ("r2", "c1"): 2.0},
            title="H",
        )
        assert "H" in out
        assert "r1" in out and "c2" in out
        assert "1.00" in out and "4.00" in out
        assert "·" in out  # the missing cell

    def test_explicit_bounds_clamped(self):
        out = ascii_heatmap(
            ["r"], ["c"], {("r", "c"): 10.0}, lo=1.0, hi=4.0
        )
        assert "10.00" in out

    def test_no_data(self):
        out = ascii_heatmap(["r"], ["c"], {("r", "c"): math.inf})
        assert "(no finite data)" in out


class TestHeatmapShading:
    def test_shades_scale_with_value(self):
        from repro.analysis.plotting import _SHADES, ascii_heatmap

        out = ascii_heatmap(
            ["r"], ["lo", "hi"], {("r", "lo"): 1.0, ("r", "hi"): 4.0},
            lo=1.0, hi=4.0,
        )
        row = [l for l in out.splitlines() if l.startswith("r")][0]
        # The high cell uses a denser shade character than the low cell.
        assert _SHADES[0] + "1.00" in row.replace(" ", " ")
        assert _SHADES[-1] in row

    def test_values_above_hi_clamped_to_max_shade(self):
        from repro.analysis.plotting import _SHADES, ascii_heatmap

        out = ascii_heatmap(["r"], ["c"], {("r", "c"): 99.0}, lo=1.0, hi=4.0)
        assert _SHADES[-1] in out
