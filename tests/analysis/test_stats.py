"""Statistics helper tests."""

import math

import pytest

from repro.analysis.stats import geometric_mean, normalize_to_best, speedup


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([7.5]) == pytest.approx(7.5)

    def test_scale_invariance(self):
        a = [1.2, 3.4, 0.6]
        assert geometric_mean([10 * x for x in a]) == pytest.approx(
            10 * geometric_mean(a)
        )

    def test_overflow_safe(self):
        assert math.isfinite(geometric_mean([1e300, 1e300, 1e300]))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([-2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_inf(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, math.inf])


class TestNormalizeToBest:
    def test_best_is_one(self):
        out = normalize_to_best({"a": 2.0, "b": 1.0, "c": 4.0})
        assert out["b"] == 1.0
        assert out["a"] == 2.0
        assert out["c"] == 4.0

    def test_inf_passthrough(self):
        out = normalize_to_best({"a": 1.0, "timeout": math.inf})
        assert out["timeout"] == math.inf

    def test_all_inf_rejected(self):
        with pytest.raises(ValueError):
            normalize_to_best({"a": math.inf})

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            normalize_to_best({"a": 0.0})


def test_speedup():
    assert speedup(10.0, 2.0) == 5.0
    with pytest.raises(ValueError):
        speedup(1.0, 0.0)
