"""Percentile query-selection tests."""

import numpy as np
import pytest

from repro.analysis.percentiles import (
    doubling_rank_targets,
    reachable_by_distance,
    sample_query_pairs,
    target_at_percentile,
)
from repro.baselines import dijkstra


class TestReachable:
    def test_sorted_by_distance(self, small_road):
        verts, dists = reachable_by_distance(small_road, 0)
        assert verts[0] == 0 and dists[0] == 0.0
        assert (np.diff(dists) >= 0).all()

    def test_excludes_unreachable(self, disconnected_graph):
        verts, _ = reachable_by_distance(disconnected_graph, 0)
        assert set(verts.tolist()) == {0, 1, 2}


class TestTargetAtPercentile:
    def test_hundredth_is_farthest(self, small_road):
        t = target_at_percentile(small_road, 0, 100.0)
        d = dijkstra(small_road, 0)
        finite = np.isfinite(d)
        assert d[t] == pytest.approx(d[finite].max())

    def test_first_percentile_is_close(self, small_road):
        t = target_at_percentile(small_road, 0, 1.0)
        d = dijkstra(small_road, 0)
        rank = (d[np.isfinite(d)] < d[t]).sum()
        assert rank <= 0.02 * np.isfinite(d).sum() + 1

    def test_monotone_in_percentile(self, small_knn):
        d = dijkstra(small_knn, 0)
        t10 = target_at_percentile(small_knn, 0, 10.0)
        t90 = target_at_percentile(small_knn, 0, 90.0)
        assert d[t10] <= d[t90]

    def test_never_returns_source(self, line_graph):
        for p in (1, 50, 100):
            assert target_at_percentile(line_graph, 0, p) != 0

    def test_invalid_percentile(self, line_graph):
        with pytest.raises(ValueError):
            target_at_percentile(line_graph, 0, 0.0)
        with pytest.raises(ValueError):
            target_at_percentile(line_graph, 0, 101.0)

    def test_isolated_source_rejected(self):
        from repro.graphs import build_graph

        g = build_graph([(1, 2, 1.0)], num_vertices=3)
        with pytest.raises(ValueError, match="no reachable"):
            target_at_percentile(g, 0, 50.0)


class TestDoublingRanks:
    def test_ranks_double(self, small_road):
        targets = doubling_rank_targets(small_road, 0, first_rank=10)
        pcts = [p for _, p in targets]
        assert (np.diff(pcts) > 0).all()
        # consecutive percentile ratios ~2 except the final farthest point
        ratios = [b / a for a, b in zip(pcts, pcts[1:-1])]
        assert all(1.9 < r < 2.1 for r in ratios)

    def test_last_is_farthest(self, small_road):
        targets = doubling_rank_targets(small_road, 0)
        d = dijkstra(small_road, 0)
        t_last, p_last = targets[-1]
        assert p_last == 100.0
        assert d[t_last] == pytest.approx(d[np.isfinite(d)].max())


class TestSampleQueryPairs:
    def test_count_and_membership(self, small_road):
        pairs = sample_query_pairs(small_road, 50.0, num_pairs=4, seed=1)
        assert len(pairs) == 4
        from repro.graphs.connectivity import largest_component

        lcc = set(largest_component(small_road).tolist())
        for s, t in pairs:
            assert s in lcc and t in lcc

    def test_deterministic(self, small_road):
        a = sample_query_pairs(small_road, 50.0, num_pairs=3, seed=9)
        b = sample_query_pairs(small_road, 50.0, num_pairs=3, seed=9)
        assert a == b
