"""Pruned landmark labeling tests."""

import numpy as np
import pytest

from repro.baselines import PrunedLandmarkLabeling, dijkstra


class TestPLLExactness:
    def test_line(self, line_graph):
        pll = PrunedLandmarkLabeling(line_graph)
        assert pll.query(0, 4) == 10.0
        assert pll.query(1, 3) == 5.0

    def test_trivial(self, line_graph):
        pll = PrunedLandmarkLabeling(line_graph)
        assert pll.query(2, 2) == 0.0

    def test_disconnected(self, disconnected_graph):
        pll = PrunedLandmarkLabeling(disconnected_graph)
        assert np.isinf(pll.query(0, 4))
        assert pll.query(3, 4) == 1.0

    def test_all_pairs_small_road(self, small_road):
        pll = PrunedLandmarkLabeling(small_road)
        rng = np.random.default_rng(1)
        for _ in range(15):
            s, t = (int(x) for x in rng.integers(0, small_road.num_vertices, 2))
            ref = dijkstra(small_road, s)[t]
            got = pll.query(s, t)
            if np.isinf(ref):
                assert np.isinf(got)
            else:
                assert got == pytest.approx(ref), (s, t)

    def test_social_graph(self, small_social):
        pll = PrunedLandmarkLabeling(small_social)
        ref = dijkstra(small_social, 7)
        for t in (0, 99, 250):
            got = pll.query(7, t)
            if np.isinf(ref[t]):
                assert np.isinf(got)
            else:
                assert got == pytest.approx(ref[t])

    def test_directed_rejected(self):
        from repro.graphs import build_graph

        g = build_graph([(0, 1, 1.0)], directed=True)
        with pytest.raises(ValueError, match="undirected"):
            PrunedLandmarkLabeling(g)


class TestPLLIndex:
    def test_pruning_keeps_labels_small_on_hub_graph(self):
        """A star graph needs ~2 labels per vertex (hub + self)."""
        from repro.graphs import build_graph

        g = build_graph([(0, i, 1.0) for i in range(1, 60)])
        pll = PrunedLandmarkLabeling(g)
        assert pll.average_label_size() <= 2.5

    def test_index_smaller_than_apsp(self, small_social):
        pll = PrunedLandmarkLabeling(small_social)
        n = small_social.num_vertices
        assert pll.index_size < 0.25 * n * n

    def test_partial_index_upper_bounds(self, small_road):
        pll = PrunedLandmarkLabeling(small_road, max_roots=20)
        assert not pll.exact
        ref = dijkstra(small_road, 0)
        for t in (10, 50, 120):
            got = pll.query(0, t)
            # Partial indexes certify upper bounds only.
            assert got >= ref[t] - 1e-9

    def test_full_index_flag(self, line_graph):
        assert PrunedLandmarkLabeling(line_graph).exact
