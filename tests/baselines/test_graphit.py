"""GraphIt-style baseline tests."""

import numpy as np
import pytest

from repro.baselines import dijkstra, graphit_ppsp
from repro.parallel.cost_model import WorkDepthMeter


class TestGraphItET:
    def test_line(self, line_graph):
        assert graphit_ppsp(line_graph, 0, 4, delta=2.0) == 10.0

    def test_trivial(self, line_graph):
        assert graphit_ppsp(line_graph, 3, 3, delta=1.0) == 0.0

    def test_disconnected(self, disconnected_graph):
        assert np.isinf(graphit_ppsp(disconnected_graph, 0, 4, delta=1.0))

    @pytest.mark.parametrize("delta", [0.5, 5.0, 500.0])
    def test_correct_for_any_delta(self, delta, random_graph_factory):
        g = random_graph_factory(80, 320, seed=12)
        ref = dijkstra(g, 2)
        for t in (7, 50, 79):
            assert graphit_ppsp(g, 2, t, delta=delta) == pytest.approx(ref[t]), (delta, t)

    def test_road_graph_many_pairs(self, small_road):
        rng = np.random.default_rng(2)
        n = small_road.num_vertices
        for _ in range(6):
            s, t = (int(x) for x in rng.integers(0, n, size=2))
            ref = dijkstra(small_road, s)[t]
            got = graphit_ppsp(small_road, s, t, delta=30.0)
            assert got == pytest.approx(ref), (s, t)

    def test_meter_populated(self, small_road):
        m = WorkDepthMeter()
        graphit_ppsp(small_road, 0, 100, delta=30.0, meter=m)
        assert m.work > 0 and m.steps > 0

    def test_out_of_range_rejected(self, line_graph):
        with pytest.raises(ValueError):
            graphit_ppsp(line_graph, 0, 99, delta=1.0)


class TestGraphItAStar:
    def test_road(self, small_road):
        ref = dijkstra(small_road, 0)
        got = graphit_ppsp(small_road, 0, 130, delta=30.0, use_astar=True)
        assert got == pytest.approx(ref[130])

    def test_knn(self, small_knn):
        ref = dijkstra(small_knn, 5)
        got = graphit_ppsp(small_knn, 5, 222, delta=20.0, use_astar=True)
        assert got == pytest.approx(ref[222])

    def test_needs_coordinates(self, small_social):
        with pytest.raises(ValueError, match="coordinates"):
            graphit_ppsp(small_social, 0, 5, delta=1.0, use_astar=True)

    def test_random_pairs(self, small_road):
        rng = np.random.default_rng(3)
        n = small_road.num_vertices
        for _ in range(6):
            s, t = (int(x) for x in rng.integers(0, n, size=2))
            ref = dijkstra(small_road, s)[t]
            got = graphit_ppsp(small_road, s, t, delta=45.0, use_astar=True)
            assert got == pytest.approx(ref), (s, t)
