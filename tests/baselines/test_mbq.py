"""MBQ-style baseline tests, including its integer-rounding caveat."""

import numpy as np
import pytest

from repro.baselines import dijkstra, mbq_ppsp
from repro.parallel.cost_model import WorkDepthMeter


class TestMBQET:
    def test_line(self, line_graph):
        assert mbq_ppsp(line_graph, 0, 4) == 10.0

    def test_trivial(self, line_graph):
        assert mbq_ppsp(line_graph, 1, 1) == 0.0

    def test_disconnected(self, disconnected_graph):
        assert np.isinf(mbq_ppsp(disconnected_graph, 0, 3))

    def test_random_pairs(self, random_graph_factory):
        g = random_graph_factory(80, 320, seed=13)
        ref = dijkstra(g, 0)
        for t in (11, 44, 77):
            assert mbq_ppsp(g, 0, t) == pytest.approx(ref[t])

    @pytest.mark.parametrize("batch_size", [1, 8, 256])
    def test_any_batch_size(self, batch_size, small_road):
        ref = dijkstra(small_road, 0)[99]
        assert mbq_ppsp(small_road, 0, 99, batch_size=batch_size) == pytest.approx(ref)

    @pytest.mark.parametrize("shift", [0, 2, 6])
    def test_bucket_shift_coarsens_but_stays_exact(self, shift, small_road):
        """Coarser buckets change scheduling order, never the answer."""
        ref = dijkstra(small_road, 3)[120]
        got = mbq_ppsp(small_road, 3, 120, bucket_shift=shift, priority_scale=8.0)
        assert got == pytest.approx(ref)

    def test_meter_records_small_batches(self, small_road):
        m = WorkDepthMeter()
        mbq_ppsp(small_road, 0, 100, batch_size=4, meter=m)
        # Scheduling in small batches means many shallow steps — the
        # depth overhead that makes MBQ the slow baseline here.
        assert m.steps > 10

    def test_out_of_range(self, line_graph):
        with pytest.raises(ValueError):
            mbq_ppsp(line_graph, 9, 0)


class TestMBQAStar:
    def test_road(self, small_road):
        ref = dijkstra(small_road, 0)[130]
        assert mbq_ppsp(small_road, 0, 130, use_astar=True) == pytest.approx(ref)

    def test_needs_coordinates(self, small_social):
        with pytest.raises(ValueError, match="coordinates"):
            mbq_ppsp(small_social, 0, 5, use_astar=True)

    def test_random_pairs(self, small_knn):
        rng = np.random.default_rng(4)
        n = small_knn.num_vertices
        for _ in range(5):
            s, t = (int(x) for x in rng.integers(0, n, size=2))
            ref = dijkstra(small_knn, s)[t]
            got = mbq_ppsp(small_knn, s, t, use_astar=True)
            if np.isinf(ref):
                assert np.isinf(got)
            else:
                assert got == pytest.approx(ref), (s, t)
