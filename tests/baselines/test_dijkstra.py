"""Sequential Dijkstra oracle tests (checked against networkx)."""

import networkx as nx
import numpy as np
import pytest

from repro.baselines import bidirectional_dijkstra, dijkstra, dijkstra_ppsp


def to_networkx(graph):
    gx = nx.DiGraph() if graph.directed else nx.Graph()
    gx.add_nodes_from(range(graph.num_vertices))
    src, dst, w = graph.edges()
    for u, v, x in zip(src, dst, w):
        if gx.has_edge(int(u), int(v)):
            gx[int(u)][int(v)]["weight"] = min(gx[int(u)][int(v)]["weight"], float(x))
        else:
            gx.add_edge(int(u), int(v), weight=float(x))
    return gx


class TestDijkstra:
    def test_line(self, line_graph):
        assert list(dijkstra(line_graph, 0)) == [0, 1, 3, 6, 10]

    def test_matches_networkx(self, random_graph_factory):
        g = random_graph_factory(70, 250, seed=9)
        gx = to_networkx(g)
        ref = nx.single_source_dijkstra_path_length(gx, 0)
        got = dijkstra(g, 0)
        for v in range(70):
            if v in ref:
                assert got[v] == pytest.approx(ref[v])
            else:
                assert np.isinf(got[v])

    def test_directed_matches_networkx(self, random_graph_factory):
        g = random_graph_factory(50, 180, seed=10, directed=True)
        gx = to_networkx(g)
        ref = nx.single_source_dijkstra_path_length(gx, 5)
        got = dijkstra(g, 5)
        for v in range(50):
            if v in ref:
                assert got[v] == pytest.approx(ref[v])
            else:
                assert np.isinf(got[v])

    def test_early_stop_at_target_is_exact(self, small_road):
        full = dijkstra(small_road, 0)
        assert dijkstra_ppsp(small_road, 0, 77) == pytest.approx(full[77])


class TestBidirectionalDijkstra:
    def test_line(self, line_graph):
        assert bidirectional_dijkstra(line_graph, 0, 4) == 10.0

    def test_trivial(self, line_graph):
        assert bidirectional_dijkstra(line_graph, 2, 2) == 0.0

    def test_disconnected(self, disconnected_graph):
        assert np.isinf(bidirectional_dijkstra(disconnected_graph, 0, 4))

    def test_random_pairs_match_unidirectional(self, random_graph_factory):
        g = random_graph_factory(90, 350, seed=11)
        rng = np.random.default_rng(1)
        for _ in range(12):
            s, t = (int(x) for x in rng.integers(0, 90, size=2))
            assert bidirectional_dijkstra(g, s, t) == pytest.approx(
                dijkstra_ppsp(g, s, t)
            ), (s, t)

    def test_directed(self):
        from repro.graphs import build_graph

        g = build_graph([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 5.0)], directed=True)
        assert bidirectional_dijkstra(g, 0, 2) == 2.0
        assert bidirectional_dijkstra(g, 2, 0) == 5.0
