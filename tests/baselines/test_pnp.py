"""PnP-style direction-predicting baseline tests."""

import numpy as np
import pytest

from repro.baselines import dijkstra
from repro.baselines.pnp import pnp_ppsp
from repro.parallel.cost_model import WorkDepthMeter


class TestPnP:
    def test_line(self, line_graph):
        assert pnp_ppsp(line_graph, 0, 4) == 10.0

    def test_trivial(self, line_graph):
        assert pnp_ppsp(line_graph, 2, 2) == 0.0

    def test_disconnected(self, disconnected_graph):
        assert np.isinf(pnp_ppsp(disconnected_graph, 0, 4))

    def test_random_pairs_exact(self, random_graph_factory):
        g = random_graph_factory(90, 340, seed=21)
        rng = np.random.default_rng(2)
        for _ in range(10):
            s, t = (int(x) for x in rng.integers(0, 90, size=2))
            ref = dijkstra(g, s)[t]
            got = pnp_ppsp(g, s, t)
            if np.isinf(ref):
                assert np.isinf(got)
            else:
                assert got == pytest.approx(ref), (s, t)

    def test_directed_exact_both_directions(self):
        from repro.graphs import build_graph

        g = build_graph(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 10.0)], directed=True
        )
        assert pnp_ppsp(g, 0, 3) == 3.0
        assert pnp_ppsp(g, 3, 0) == 10.0

    def test_prediction_picks_cheap_side(self):
        """Target in a tiny appendage: backward search must win."""
        from repro.graphs import build_graph

        # Dense blob around vertex 0, a long thin tail to the target.
        blob = [(i, j, 1.0) for i in range(30) for j in range(i + 1, 30)]
        tail = [(29 + i, 30 + i, 1.0) for i in range(15)]
        g = build_graph(blob + tail)
        meter = WorkDepthMeter()
        got = pnp_ppsp(g, 0, 44, probe_edges=64, meter=meter)
        ref = dijkstra(g, 0)[44]
        assert got == pytest.approx(ref)

    def test_meter_collects_probe_and_search(self, small_road):
        m = WorkDepthMeter()
        pnp_ppsp(small_road, 0, 100, meter=m)
        assert m.steps > 2  # probes plus search rounds

    def test_out_of_range(self, line_graph):
        with pytest.raises(ValueError):
            pnp_ppsp(line_graph, 0, 77)

    def test_bids_beats_pnp_in_work(self, small_road):
        """The paper's point: prediction-only BiDS leaves pruning on the
        table; full BiDS does less relaxation work on typical pairs."""
        from repro.core.engine import run_policy
        from repro.core.policies import BiDS

        rng = np.random.default_rng(3)
        n = small_road.num_vertices
        pnp_work, bids_work = 0.0, 0.0
        for _ in range(5):
            s, t = (int(x) for x in rng.integers(0, n, size=2))
            m = WorkDepthMeter()
            pnp_ppsp(small_road, s, t, meter=m)
            pnp_work += m.work
            bids_work += run_policy(small_road, BiDS(s, t)).meter.work
        assert bids_work < pnp_work
