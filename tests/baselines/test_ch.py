"""Contraction hierarchy tests."""

import numpy as np
import pytest

from repro.baselines import ContractionHierarchy, dijkstra


class TestCHExactness:
    def test_line(self, line_graph):
        ch = ContractionHierarchy(line_graph)
        assert ch.query(0, 4) == 10.0
        assert ch.query(1, 3) == 5.0

    def test_trivial(self, line_graph):
        assert ContractionHierarchy(line_graph).query(2, 2) == 0.0

    def test_disconnected(self, disconnected_graph):
        ch = ContractionHierarchy(disconnected_graph)
        assert np.isinf(ch.query(0, 4))
        assert ch.query(3, 4) == 1.0

    def test_diamond_shortcut_correctness(self, diamond_graph):
        ch = ContractionHierarchy(diamond_graph)
        assert ch.query(0, 3) == 3.0

    def test_road_random_pairs(self, small_road):
        ch = ContractionHierarchy(small_road)
        rng = np.random.default_rng(1)
        for _ in range(12):
            s, t = (int(x) for x in rng.integers(0, small_road.num_vertices, 2))
            ref = dijkstra(small_road, s)[t]
            got = ch.query(s, t)
            if np.isinf(ref):
                assert np.isinf(got)
            else:
                assert got == pytest.approx(ref), (s, t)

    def test_knn_random_pairs(self, small_knn):
        ch = ContractionHierarchy(small_knn)
        rng = np.random.default_rng(2)
        for _ in range(8):
            s, t = (int(x) for x in rng.integers(0, small_knn.num_vertices, 2))
            ref = dijkstra(small_knn, s)[t]
            got = ch.query(s, t)
            if np.isinf(ref):
                assert np.isinf(got)
            else:
                assert got == pytest.approx(ref), (s, t)

    def test_tight_witness_budgets_stay_exact(self, small_road):
        """Budget exhaustion adds redundant shortcuts, never wrong answers."""
        ch = ContractionHierarchy(small_road, hop_limit=1, settle_limit=2)
        ref = dijkstra(small_road, 0)
        for t in (20, 77, 130):
            assert ch.query(0, t) == pytest.approx(ref[t])

    def test_directed_rejected(self):
        from repro.graphs import build_graph

        g = build_graph([(0, 1, 1.0)], directed=True)
        with pytest.raises(ValueError, match="undirected"):
            ContractionHierarchy(g)


class TestCHStructure:
    def test_ranks_are_a_permutation(self, small_road):
        ch = ContractionHierarchy(small_road)
        assert sorted(ch.rank.tolist()) == list(range(small_road.num_vertices))

    def test_upward_graph_is_upward(self, small_road):
        ch = ContractionHierarchy(small_road)
        src, dst, _ = ch.upward.edges()
        assert (ch.rank[src] < ch.rank[dst]).all()

    def test_star_contracts_leaves_first(self):
        """Leaves have negative edge difference; the hub goes last and
        no shortcuts are needed."""
        from repro.graphs import build_graph

        g = build_graph([(0, i, 1.0) for i in range(1, 40)])
        ch = ContractionHierarchy(g)
        assert ch.rank[0] == g.num_vertices - 1
        assert ch.shortcuts_added == 0

    def test_path_graph_needs_few_shortcuts(self):
        from repro.graphs import build_graph

        n = 60
        g = build_graph([(i, i + 1, 1.0) for i in range(n - 1)])
        ch = ContractionHierarchy(g)
        # Contracting a path adds at most ~n shortcuts total.
        assert ch.shortcuts_added <= 2 * n

    def test_index_edges_property(self, small_road):
        ch = ContractionHierarchy(small_road)
        base_arcs = small_road.num_edges // 2  # undirected arcs stored twice
        assert ch.index_edges >= base_arcs
