"""Property-based tests for the index baselines (CH, PLL) and PnP.

Same style as tests/test_properties.py: random graphs from hypothesis,
every implementation must agree with sequential Dijkstra exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import (
    ContractionHierarchy,
    PrunedLandmarkLabeling,
    dijkstra,
)
from repro.baselines.pnp import pnp_ppsp
from repro.graphs import from_edges

COMMON = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_graphs(draw, max_n=16, max_m=48):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=1, max_value=max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    w = draw(st.lists(st.floats(0.0, 50.0, allow_nan=False), min_size=m, max_size=m))
    return from_edges(src, dst, np.asarray(w), num_vertices=n, dedupe=True)


def _check_pair(got: float, ref: float) -> None:
    if np.isinf(ref):
        assert np.isinf(got)
    else:
        assert got == pytest.approx(ref)


@settings(**COMMON)
@given(small_graphs(), st.data())
def test_ch_matches_dijkstra(g, data):
    ch = ContractionHierarchy(g)
    for _ in range(3):
        s = data.draw(st.integers(0, g.num_vertices - 1))
        t = data.draw(st.integers(0, g.num_vertices - 1))
        _check_pair(ch.query(s, t), dijkstra(g, s)[t])


@settings(**COMMON)
@given(small_graphs(), st.data())
def test_ch_with_tight_budgets_matches_dijkstra(g, data):
    """Witness-budget exhaustion must never change answers."""
    ch = ContractionHierarchy(g, hop_limit=1, settle_limit=1)
    s = data.draw(st.integers(0, g.num_vertices - 1))
    t = data.draw(st.integers(0, g.num_vertices - 1))
    _check_pair(ch.query(s, t), dijkstra(g, s)[t])


@settings(**COMMON)
@given(small_graphs(), st.data())
def test_pll_matches_dijkstra(g, data):
    pll = PrunedLandmarkLabeling(g)
    for _ in range(3):
        s = data.draw(st.integers(0, g.num_vertices - 1))
        t = data.draw(st.integers(0, g.num_vertices - 1))
        _check_pair(pll.query(s, t), dijkstra(g, s)[t])


@settings(**COMMON)
@given(small_graphs())
def test_pll_labels_are_valid_distances(g):
    """Every stored label (hub, d) must satisfy d == d(hub, v): labels
    are exact distances, not bounds."""
    pll = PrunedLandmarkLabeling(g)
    # Recover hub rank -> vertex mapping by checking self-labels.
    order = np.argsort(-g.degree())
    for v in range(g.num_vertices):
        for r, d in zip(pll._hubs[v], pll._dists[v]):
            hub = int(order[r])
            assert d == pytest.approx(dijkstra(g, hub)[v])


@settings(**COMMON)
@given(small_graphs(), st.data())
def test_pnp_matches_dijkstra(g, data):
    s = data.draw(st.integers(0, g.num_vertices - 1))
    t = data.draw(st.integers(0, g.num_vertices - 1))
    _check_pair(pnp_ppsp(g, s, t), dijkstra(g, s)[t])


@settings(**COMMON)
@given(small_graphs(), st.data())
def test_landmark_heuristic_consistent_on_random_graphs(g, data):
    """ALT bounds are consistent on arbitrary undirected graphs."""
    from repro.heuristics.landmarks import LandmarkSet

    k = data.draw(st.integers(1, 4))
    ls = LandmarkSet(g, k=k, method="random", seed=data.draw(st.integers(0, 100)))
    t = data.draw(st.integers(0, g.num_vertices - 1))
    h = ls.heuristic_to(t)
    src, dst, w = g.edges()
    if len(src):
        assert (h(src) <= w + h(dst) + 1e-6).all()
    # Admissibility against true distances.
    d = dijkstra(g, t)
    hv = h(np.arange(g.num_vertices))
    finite = np.isfinite(d)
    assert (hv[finite] <= d[finite] + 1e-6).all()
