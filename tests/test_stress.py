"""Stress and invariant tests: partial runs, adversarial graphs, scale.

These pin the *internal* invariants of the engine (not just final
answers): tentative distances are always admissible, truncated runs
leave consistent state, adversarial weight distributions don't break
pruning, and repeated runs are deterministic.
"""

import numpy as np
import pytest

from repro.baselines import dijkstra
from repro.core.engine import PPSPEngine, run_policy
from repro.core.policies import BiDAStar, BiDS, EarlyTermination, MultiPPSP, SsspPolicy
from repro.core.query_graph import QueryGraph
from repro.core.stepping import BellmanFord, DeltaStepping
from repro.graphs import build_graph, from_edges, road_graph, social_graph

# Nightly suite: excluded from tier-1 by the default `-m` filter.
pytestmark = pytest.mark.slow


class TestPartialRunInvariants:
    """Even a truncated run must only hold admissible distances."""

    @pytest.mark.parametrize("steps", [1, 2, 5, 10])
    def test_tentative_distances_admissible(self, small_road, steps):
        ref = dijkstra(small_road, 0)
        res = run_policy(small_road, SsspPolicy(0), max_steps=steps)
        got = res.distances_from(0)
        finite = np.isfinite(got)
        assert (got[finite] >= ref[finite] - 1e-9).all()

    @pytest.mark.parametrize("steps", [1, 3, 7])
    def test_bids_mu_always_upper_bound(self, small_road, steps):
        s, t = 0, 100
        ref = dijkstra(small_road, s)[t]
        res = run_policy(small_road, BiDS(s, t), max_steps=steps)
        assert res.answer >= ref - 1e-9

    def test_resuming_semantics_complete_run_exact(self, small_road):
        """A run without max_steps is a fixpoint: a second engine pass
        started from scratch reproduces identical distances."""
        a = run_policy(small_road, SsspPolicy(3)).distances_from(0)
        b = run_policy(small_road, SsspPolicy(3)).distances_from(0)
        assert np.array_equal(a, b)


class TestAdversarialWeights:
    def test_extreme_weight_ratio(self):
        """Weights spanning 12 orders of magnitude."""
        rng = np.random.default_rng(1)
        n, m = 60, 240
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        keep = src != dst
        w = 10.0 ** rng.uniform(-6, 6, keep.sum())
        g = from_edges(src[keep], dst[keep], w, num_vertices=n, dedupe=True)
        ref = dijkstra(g, 0)
        for t in (10, 30, 59):
            got = run_policy(g, BiDS(0, int(t))).answer
            if np.isinf(ref[t]):
                assert np.isinf(got)
            else:
                assert got == pytest.approx(ref[t])

    def test_all_zero_weights(self):
        g = build_graph([(i, i + 1, 0.0) for i in range(30)])
        assert run_policy(g, BiDS(0, 30)).answer == 0.0
        assert run_policy(g, EarlyTermination(0, 30)).answer == 0.0

    def test_single_heavy_bridge(self):
        """Two cliques joined by one enormous edge: μ/2 pruning must not
        cut the only crossing."""
        edges = [(i, j, 1.0) for i in range(10) for j in range(i + 1, 10)]
        edges += [(10 + i, 10 + j, 1.0) for i in range(10) for j in range(i + 1, 10)]
        edges += [(4, 14, 1e6)]
        g = build_graph(edges)
        ref = dijkstra(g, 0)[19]
        assert run_policy(g, BiDS(0, 19)).answer == pytest.approx(ref)

    def test_skewed_weights_all_strategies(self):
        """CH5-style skew (the paper's scalability outlier) stays exact."""
        rng = np.random.default_rng(2)
        n, m = 80, 320
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        keep = src != dst
        w = rng.lognormal(0.0, 3.0, keep.sum())
        g = from_edges(src[keep], dst[keep], w, num_vertices=n, dedupe=True)
        ref = dijkstra(g, 1)[70]
        for strategy in (DeltaStepping(0.01), DeltaStepping(1e4), BellmanFord()):
            got = run_policy(g, BiDS(1, 70), strategy=strategy).answer
            if np.isinf(ref):
                assert np.isinf(got)
            else:
                assert got == pytest.approx(ref)


class TestDeterminism:
    def test_engine_is_deterministic(self, small_road):
        runs = [run_policy(small_road, BiDS(0, 120)) for _ in range(3)]
        assert len({r.answer for r in runs}) == 1
        assert len({r.steps for r in runs}) == 1
        assert len({r.relaxations for r in runs}) == 1
        assert all(np.array_equal(runs[0].dist, r.dist) for r in runs)

    def test_batch_deterministic(self, small_road):
        qg = QueryGraph.clique([0, 30, 60, 90])
        a = run_policy(small_road, MultiPPSP(qg))
        b = run_policy(small_road, MultiPPSP(qg))
        assert a.answer == b.answer
        assert a.meter.work == b.meter.work


class TestModerateScale:
    """Larger-than-fixture graphs exercise dense-mode frontiers and the
    grouped relaxation paths."""

    @pytest.fixture(scope="class")
    def big_road(self):
        return road_graph(60, 60, seed=9)

    @pytest.fixture(scope="class")
    def big_social(self):
        return social_graph(5000, avg_degree=12, seed=9)

    def test_road_at_scale(self, big_road):
        ref = dijkstra(big_road, 0)
        for t in (1000, 2500, 3599):
            for policy in (BiDS(0, t), BiDAStar(0, t)):
                got = run_policy(big_road, policy).answer
                assert got == pytest.approx(ref[t]), (t, type(policy).__name__)

    def test_social_at_scale_dense_frontier(self, big_social):
        ref = dijkstra(big_social, 0)
        got = run_policy(big_social, SsspPolicy(0), frontier_mode="dense")
        assert np.allclose(got.distances_from(0), ref)

    def test_batch_at_scale(self, big_road):
        rng = np.random.default_rng(4)
        verts = rng.choice(big_road.num_vertices, size=8, replace=False).tolist()
        qg = QueryGraph.random_pattern(verts, 12, seed=1)
        res = run_policy(big_road, MultiPPSP(qg))
        for (s, t), d in res.answer.items():
            assert d == pytest.approx(dijkstra(big_road, s)[t])

    def test_engine_reuse_many_queries(self, big_road):
        eng = PPSPEngine(big_road)
        rng = np.random.default_rng(5)
        for _ in range(5):
            s, t = (int(x) for x in rng.integers(0, big_road.num_vertices, 2))
            got = eng.run(BiDS(s, t)).answer
            assert got == pytest.approx(dijkstra(big_road, s)[t])


class TestLargeBatches:
    def test_32_query_batch_chunked(self, small_road):
        from repro.core.batch import solve_batch

        rng = np.random.default_rng(11)
        n = small_road.num_vertices
        pairs = [tuple(int(x) for x in rng.choice(n, 2, replace=False)) for _ in range(32)]
        full = solve_batch(small_road, pairs, method="multi", max_sources=8)
        assert full.details["chunks"] >= 4
        for (s, t), d in full.distances.items():
            ref = dijkstra(small_road, s)[t]
            if np.isinf(ref):
                assert np.isinf(d)
            else:
                assert d == pytest.approx(ref)

    def test_batch_with_repeated_and_self_queries(self, small_road):
        from repro.core.batch import solve_batch

        pairs = [(0, 50), (50, 0), (0, 50), (7, 7), (0, 7)]
        for method in ("multi", "sssp-vc", "sssp-plain"):
            res = solve_batch(small_road, pairs, method=method)
            assert res.distance(7, 7) == 0.0
            assert res.distance(0, 50) == pytest.approx(dijkstra(small_road, 0)[50])

    def test_dense_frontier_multi_batch(self, small_social):
        from repro.core.batch import solve_batch

        rng = np.random.default_rng(12)
        verts = rng.choice(small_social.num_vertices, size=6, replace=False).tolist()
        from repro.core.query_graph import QueryGraph

        qg = QueryGraph.clique(verts)
        res = solve_batch(small_social, qg, method="multi", frontier_mode="dense")
        for (s, t), d in res.distances.items():
            ref = dijkstra(small_social, s)[t]
            if np.isinf(ref):
                assert np.isinf(d)
            else:
                assert d == pytest.approx(ref)
