"""Every example script must run clean end-to-end.

Examples are the library's front door; each embeds its own assertions
(cross-method agreement), so a zero exit status means the demonstrated
behavior actually held.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must narrate what they show"
