"""Chaos: a pool worker stalls mid-shard (never killed); serving survives.

The sibling of ``test_pool_chaos.py``: instead of SIGKILLing a worker
(loud — ``BrokenProcessPool`` fires immediately), the injector wedges
one with a long in-shard sleep, which ``concurrent.futures`` cannot
detect at all.  Without supervision that hangs the batch for the full
stall; with PR 9's straggler defenses it must not:

* **hedged** — a backup copy of the stalled shard launches after the
  hedge delay and wins the race; answers stay *bit-identical* to
  serial, the batch completes in a small fraction of the stall, and
  the wedged primary is quarantined (killed + respawned), never waited
  on.
* **hedging disabled** — the per-shard deadline times the shard out
  (no hang), quarantines the workers, and the serve pipeline recovers
  every query through its breaker / resilient chain.

Both properties are asserted across every batch method and 1/2/4
workers, and end-to-end through :class:`QueryService` (the issue's
acceptance scenario: zero stuck futures, zero silent wrong answers,
bounded wall time).
"""

from __future__ import annotations

import time

import pytest

from repro.baselines import dijkstra
from repro.core.batch import BATCH_METHODS, solve_batch
from repro.graphs import road_graph
from repro.graphs.connectivity import largest_component
from repro.obs import Observer
from repro.parallel.pool import ProcessPool
from repro.robustness import FaultInjector
from repro.serve import HedgePolicy, ServePipeline, ShardTimeout

pytestmark = pytest.mark.hedge

#: the injected in-shard sleep; every run must finish well under it.
STALL_S = 8.0
#: generous hedged-run wall bound — hedge fires at ~0.3 s, so finishing
#: in under half the stall proves nobody waited the stall out.
HEDGED_WALL_S = 4.0
SHARD_DEADLINE_S = 6.0
#: cold-start hedge delay, kept small so suite wall time stays low.
HEDGE = HedgePolicy(initial_delay_s=0.3)


@pytest.fixture(scope="module")
def instance():
    graph = road_graph(8, 8, seed=7, name="stall-road")
    lcc = [int(v) for v in largest_component(graph)]
    pairs = [(lcc[i], lcc[len(lcc) - 1 - i]) for i in range(8)]
    return graph, pairs


@pytest.fixture(scope="module")
def truth(instance):
    graph, pairs = instance
    return {(s, t): float(dijkstra(graph, s)[t]) for s, t in pairs}


def _stall_injector(seed=1):
    return FaultInjector(
        seed=seed, stall_worker_at=0, stall_worker_seconds=STALL_S
    )


@pytest.fixture(scope="module", params=(1, 2, 4), ids=lambda w: f"w{w}")
def pool_workers(request):
    return request.param


class TestStalledShardMatrix:
    @pytest.mark.parametrize("method", BATCH_METHODS)
    def test_hedge_outruns_stall_bit_identical(
        self, instance, method, pool_workers
    ):
        """Every batch method x worker count: the hedged batch beats the
        stall by a wide margin and matches serial bit for bit."""
        graph, pairs = instance
        serial = solve_batch(graph, pairs, method=method)
        obs = Observer()
        start = time.perf_counter()
        with ProcessPool(pool_workers, observer=obs) as pool:
            res = solve_batch(
                graph, pairs, method=method, backend="process", pool=pool,
                fault_injector=_stall_injector(),
                shard_deadline=SHARD_DEADLINE_S, hedge=HEDGE,
            )
            wall = time.perf_counter() - start
            quarantines = pool.quarantines
        assert wall < HEDGED_WALL_S, f"stall was waited out ({wall:.1f}s)"
        assert res.distances == serial.distances  # bitwise, not approx
        assert res.exact == serial.exact
        reg = obs.registry
        assert reg.get("repro_hedge_launched_total").value() >= 1
        assert reg.get("repro_hedge_races_total").value(winner="hedge") >= 1
        # the wedged primary was quarantined, not waited for
        assert quarantines >= 1


class TestDeadlineWithoutHedging:
    def test_shard_timeout_raised_not_hung(self, instance):
        graph, pairs = instance
        obs = Observer()
        start = time.perf_counter()
        with ProcessPool(2, observer=obs) as pool:
            with pytest.raises(ShardTimeout):
                solve_batch(
                    graph, pairs, method="multi", backend="process",
                    pool=pool, fault_injector=_stall_injector(),
                    shard_deadline=1.5,
                )
            wall = time.perf_counter() - start
            assert pool.quarantines == 1
        assert wall < STALL_S / 2, f"deadline did not bound the hang ({wall:.1f}s)"
        reg = obs.registry
        assert reg.get("repro_pool_shard_timeouts_total").value() == 1
        assert (
            reg.get("repro_pool_suspect_workers_total").value(reason="deadline")
            == 1
        )

    def test_pipeline_recovers_through_resilient_chain(self, instance, truth):
        """The acceptance scenario's second half: deadline fires, the
        breaker/per-query chain re-answers everything exactly."""
        graph, pairs = instance
        obs = Observer()
        pipe = ServePipeline(
            graph, method="multi", backend="process", workers=2,
            shard_deadline=1.5,
            fault_injector=_stall_injector(),
            observer=obs,
        )
        start = time.perf_counter()
        res = pipe.run(pairs)
        wall = time.perf_counter() - start
        assert wall < STALL_S - 1.0, f"recovery waited out the stall ({wall:.1f}s)"
        assert "failed" not in res.counts()
        for s, t in pairs:
            assert res.distance(s, t) == pytest.approx(truth[(s, t)], rel=1e-12)
        reg = obs.registry
        assert reg.get("repro_pool_shard_timeouts_total").value() >= 1
        assert (
            reg.get("repro_pool_suspect_workers_total").value(reason="deadline")
            >= 1
        )


class TestVerifyingPipeline:
    def test_hedged_verified_run_matches_serial(self, instance, truth):
        """Stall under a verifying pipeline with hedging: bit-identical
        to the serial pipeline, every certificate valid."""
        graph, pairs = instance
        reference = ServePipeline(graph, method="multi", verify=True).run(pairs)
        obs = Observer()
        pipe = ServePipeline(
            graph, method="multi", backend="process", workers=2, verify=True,
            shard_deadline=SHARD_DEADLINE_S, hedge=HEDGE,
            fault_injector=_stall_injector(),
            observer=obs,
        )
        start = time.perf_counter()
        res = pipe.run(pairs)
        wall = time.perf_counter() - start
        assert wall < HEDGED_WALL_S
        assert "failed" not in res.counts()
        # hedge preserved the clean path: bitwise equal, not an ulp off
        assert res.distances == reference.distances
        assert res.exact == reference.exact
        verification = res.details["verification"]
        assert verification["failed"] == 0
        assert verification["invalid"] == 0
        assert obs.registry.get("repro_hedge_races_total").value(winner="hedge") >= 1


class TestQueryServiceAcceptance:
    def test_hedged_service_zero_stuck_futures(self, instance, truth):
        """The issue's headline acceptance: a worker stalls mid-shard
        under the live service — at least one hedge win, every future
        resolves, answers equal serial, wall bounded."""
        from repro.serve import QueryService

        graph, pairs = instance
        serial = solve_batch(graph, pairs, method="multi")
        obs = Observer()
        start = time.perf_counter()
        with QueryService(
            graph, method="multi", max_batch=len(pairs), max_wait_ms=20.0,
            backend="process", workers=2, observer=obs,
            shard_deadline=SHARD_DEADLINE_S, hedge=HEDGE,
            fault_injector=_stall_injector(),
        ) as svc:
            svc.start()
            futures = [svc.submit(s, t) for s, t in pairs]
        wall = time.perf_counter() - start
        assert wall < HEDGED_WALL_S, f"service waited out the stall ({wall:.1f}s)"
        assert all(f.done() for f in futures), "stuck ServiceFuture"
        for f, (s, t) in zip(futures, pairs):
            res = f.result(timeout=0)
            assert res.outcome == "ok"
            assert res.distance == serial.distances[(s, t)]  # bitwise
        assert obs.registry.get("repro_hedge_races_total").value(winner="hedge") >= 1

    def test_unhedged_service_times_out_and_recovers(self, instance, truth):
        """Hedging off: the same stall hits the shard deadline (no
        hang) and the service still answers everything exactly via the
        breaker/resilient chain, counting the quarantine."""
        from repro.serve import QueryService

        graph, pairs = instance
        obs = Observer()
        start = time.perf_counter()
        with QueryService(
            graph, method="multi", max_batch=len(pairs), max_wait_ms=20.0,
            backend="process", workers=2, observer=obs,
            shard_deadline=1.5,
            fault_injector=_stall_injector(),
        ) as svc:
            svc.start()
            futures = [svc.submit(s, t) for s, t in pairs]
        wall = time.perf_counter() - start
        assert wall < STALL_S - 1.0, f"recovery waited out the stall ({wall:.1f}s)"
        assert all(f.done() for f in futures), "stuck ServiceFuture"
        for f, (s, t) in zip(futures, pairs):
            res = f.result(timeout=0)
            assert res.outcome == "ok"
            assert res.distance == pytest.approx(truth[(s, t)], rel=1e-12)
        reg = obs.registry
        assert reg.get("repro_pool_shard_timeouts_total").value() >= 1
        assert (
            reg.get("repro_pool_suspect_workers_total").value(reason="deadline")
            >= 1
        )
