"""Work/depth meter and Brent-bound simulated-time tests."""

import math

import pytest

from repro.parallel.cost_model import WorkDepthMeter, simulated_time, speedup_curve


class TestWorkDepthMeter:
    def test_record_accumulates(self):
        m = WorkDepthMeter()
        m.record_step(100)
        m.record_step(50)
        assert m.work == 150
        assert m.steps == 2
        assert m.step_work == [100, 50]

    def test_default_span_is_log(self):
        m = WorkDepthMeter()
        m.record_step(1024)
        assert m.depth == pytest.approx(1 + 10)

    def test_explicit_span(self):
        m = WorkDepthMeter()
        m.record_step(100, span=3.0)
        assert m.depth == 3.0

    def test_zero_work_clamped_to_one(self):
        m = WorkDepthMeter()
        m.record_step(0)
        assert m.work == 1.0

    def test_merge_sequential(self):
        a, b = WorkDepthMeter(), WorkDepthMeter()
        a.record_step(10)
        b.record_step(20)
        b.record_step(30)
        a.merge(b)
        assert a.work == 60
        assert a.steps == 3
        assert a.step_work == [10, 20, 30]

    def test_merge_parallel_overlaps(self):
        metered = []
        for w in ([10, 10], [40]):
            m = WorkDepthMeter()
            for x in w:
                m.record_step(x)
            metered.append(m)
        combined = WorkDepthMeter()
        combined.merge_parallel(metered)
        assert combined.work == 60
        # Steps zip: [10+40, 10]
        assert combined.step_work == [50, 10]
        assert combined.depth == max(m.depth for m in metered)

    def test_merge_parallel_empty(self):
        m = WorkDepthMeter()
        m.merge_parallel([])
        assert m.work == 0


class TestSimulatedTime:
    def test_single_processor_is_work_plus_sync(self):
        m = WorkDepthMeter()
        m.record_step(64)
        t1 = m.simulated_time(1)
        assert t1 == pytest.approx(64 + (1 + 6))

    def test_more_processors_never_slower(self):
        m = WorkDepthMeter()
        for w in (100, 2000, 5, 800):
            m.record_step(w)
        times = [m.simulated_time(p) for p in (1, 2, 4, 8, 64)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_brent_bound(self):
        """T_P <= W/P + c*D and T_P >= max(W/P, sync*D)."""
        m = WorkDepthMeter()
        for w in (100, 350, 7):
            m.record_step(w)
        for p in (1, 3, 16):
            tp = m.simulated_time(p)
            assert tp <= m.work / p + m.depth + 1e-9
            assert tp >= m.work / p
            assert tp >= m.depth

    def test_speedup_saturates_at_depth(self):
        """With fixed depth, speedup can't exceed W/(sync*D)."""
        m = WorkDepthMeter()
        m.record_step(10_000)
        limit = m.work / m.depth
        assert m.speedup(10**6) <= limit + 1

    def test_invalid_processors(self):
        with pytest.raises(ValueError):
            simulated_time([10], 0)

    def test_sync_cost_scales_overhead(self):
        m = WorkDepthMeter()
        m.record_step(100)
        assert m.simulated_time(4, sync_cost=10.0) > m.simulated_time(4, sync_cost=1.0)


class TestSpeedupCurve:
    def test_monotone_nondecreasing(self):
        m = WorkDepthMeter()
        for w in (500, 1000, 250):
            m.record_step(w)
        curve = speedup_curve(m, [1, 2, 4, 8])
        vals = [curve[p] for p in (1, 2, 4, 8)]
        assert vals[0] == pytest.approx(1.0)
        assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))

    def test_work_rich_scales_better(self):
        """More work per step at equal steps -> better speedup: the
        paper's 'plain algorithms scale better' effect."""
        plain, pruned = WorkDepthMeter(), WorkDepthMeter()
        for _ in range(20):
            plain.record_step(10_000)
            pruned.record_step(100)
        assert plain.speedup(96) > pruned.speedup(96)
