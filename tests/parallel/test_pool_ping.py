"""ProcessPool.ping failure accounting — no real workers involved.

A probe that dies with an ``OSError`` (a torn pipe, not a worker
crash) must not be silently folded into a bare ``False``: the failure
class is logged, counted per exception type on the observer, and the
executor is respawned.  The fake executor below keeps this tier-1
(fork-free); the real-pool behaviour rides in the fork-heavy suites.
"""

from __future__ import annotations

import logging

import pytest

from repro.obs import Observer
from repro.parallel.pool import ProcessPool


class _FakeFuture:
    def __init__(self, exc):
        self._exc = exc

    def result(self, timeout=None):
        if self._exc is not None:
            raise self._exc
        return 0


class _FakeExecutor:
    def __init__(self, exc=None):
        self.exc = exc
        self.submissions = 0

    def submit(self, fn, *args, **kwargs):
        self.submissions += 1
        return _FakeFuture(self.exc)


@pytest.fixture
def pool(monkeypatch):
    pool = ProcessPool(workers=2, observer=Observer())
    calls = {"ensure": 0, "discard": 0}
    fake = _FakeExecutor()

    def ensure():
        calls["ensure"] += 1
        return fake

    monkeypatch.setattr(pool, "_ensure_executor", ensure)
    monkeypatch.setattr(pool, "_discard_executor", lambda: calls.__setitem__(
        "discard", calls["discard"] + 1))
    return pool, fake, calls


def test_healthy_ping_probes_every_slot(pool):
    p, fake, calls = pool
    assert p.ping() is True
    assert fake.submissions == 2  # one probe per worker slot
    assert calls["discard"] == 0


@pytest.mark.parametrize("exc", [OSError("pipe closed"), TimeoutError("late")])
def test_failed_ping_counts_the_failure_class(pool, caplog, exc):
    p, fake, calls = pool
    fake.exc = exc
    with caplog.at_level(logging.WARNING, logger="repro.pool"):
        assert p.ping() is False
    reason = type(exc).__name__
    counter = p.observer.registry.get("repro_pool_ping_failures_total")
    assert counter.value(error=reason) == 1
    # the respawn reason is in the log, not swallowed
    assert any(reason in rec.getMessage() for rec in caplog.records)
    # discarded and rebuilt: ensure called for the probe and the respawn
    assert calls["discard"] == 1
    assert calls["ensure"] == 2


def test_failed_ping_without_observer_still_respawns(monkeypatch):
    p = ProcessPool(workers=1)
    fake = _FakeExecutor(exc=OSError("gone"))
    monkeypatch.setattr(p, "_ensure_executor", lambda: fake)
    monkeypatch.setattr(p, "_discard_executor", lambda: None)
    assert p.ping() is False


def test_ping_on_closed_pool_raises():
    p = ProcessPool(workers=1)
    p.close()
    with pytest.raises(RuntimeError, match="closed"):
        p.ping()
