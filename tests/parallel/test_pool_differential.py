"""Differential determinism: process-pool backend vs serial, bitwise.

Every batch method, on the same seeded random-geometric family the
method-vs-Dijkstra suite uses (directed and undirected instances,
zero-weight edges, disconnected and self pairs), solved serially and
through :mod:`repro.parallel.pool` at 1, 2, and 4 workers — asserting
**equality**, not approximation: distances, cost-model meters,
certificates, and reconstructed paths must be the same bits regardless
of how the batch was sharded.

``POOL_SMOKE=1`` trims the sweep to a CI-sized slice (2 workers, three
seeds); ``-k "w2"`` selects one worker count from the full matrix.
"""

from __future__ import annotations

import os

import pytest

from repro.core.batch import BATCH_METHODS, solve_batch
from repro.core.paths import PathError
from repro.parallel.pool import ProcessPool
from tests.test_differential import _check_path, _random_geometric

pytestmark = pytest.mark.pool

_SMOKE = bool(os.environ.get("POOL_SMOKE"))
# Seeds 0 and 6 are directed instances (every third seed is).
SEEDS = (0, 2, 6) if _SMOKE else tuple(range(0, 12, 2))
WORKER_COUNTS = (2,) if _SMOKE else (1, 2, 4)
#: methods whose serial backend retains per-pair path state.
PATH_METHODS = ("multi", "sssp-plain", "sssp-vc")


@pytest.fixture(scope="module", params=WORKER_COUNTS, ids=lambda w: f"w{w}")
def pool(request):
    """One shared pool per worker count — reused across every seed and
    method, like a serving process would, so the suite also exercises
    segment caching and executor reuse."""
    with ProcessPool(request.param) as p:
        yield p


def _assert_identical(serial, proc, *, seed, method):
    ctx = f"seed={seed} method={method}"
    assert proc.distances == serial.distances, ctx
    assert proc.exact == serial.exact, ctx
    assert proc.num_searches == serial.num_searches, ctx
    assert proc.details == serial.details, ctx
    # The reassembled meter must replay the serial merge exactly.
    assert proc.meter.work == serial.meter.work, ctx
    assert proc.meter.depth == serial.meter.depth, ctx
    assert proc.meter.steps == serial.meter.steps, ctx
    assert proc.meter.step_work == serial.meter.step_work, ctx


def _assert_same_paths(graph, serial, proc, pairs, *, seed, method):
    for s, t in pairs:
        try:
            want = serial.path(s, t)
        except PathError:
            with pytest.raises(PathError):
                proc.path(s, t)
            continue
        got = proc.path(s, t)
        assert got == want, f"seed={seed} {method} path ({s}, {t})"
        # Arc-validate in the stored orientation only: for a directed
        # pair held under the flipped key, serial semantics return the
        # canonical path reversed — equality above is the contract.
        if s != t and (not graph.directed or (s, t) in serial.distances):
            _check_path(graph, got, s, t, serial.distance(s, t))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("method", BATCH_METHODS)
def test_process_backend_bitwise_identical(pool, seed, method):
    graph, pairs = _random_geometric(seed)
    # Self pairs and disconnected pairs stay in: both backends must
    # agree on them too (0.0 and inf respectively).
    serial = solve_batch(graph, pairs, method=method, certify=True)
    proc = solve_batch(
        graph, pairs, method=method, certify=True, backend="process", pool=pool
    )
    _assert_identical(serial, proc, seed=seed, method=method)

    assert serial.certificates is not None and proc.certificates is not None
    assert set(proc.certificates) == set(serial.certificates)
    for key, want in serial.certificates.items():
        assert proc.certificates[key].to_dict() == want.to_dict(), (
            f"seed={seed} {method} certificate {key}"
        )

    if method in PATH_METHODS:
        _assert_same_paths(graph, serial, proc, pairs, seed=seed, method=method)
    else:
        # Plain modes discard per-query state in both backends alike.
        with pytest.raises(NotImplementedError):
            serial.path(*pairs[0])
        with pytest.raises(NotImplementedError):
            proc.path(*pairs[0])


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_uncertified_runs_identical_too(pool, seed):
    """certify=False is the hot path: same equality bar, no certificates."""
    graph, pairs = _random_geometric(seed)
    for method in BATCH_METHODS:
        serial = solve_batch(graph, pairs, method=method)
        proc = solve_batch(graph, pairs, method=method, backend="process", pool=pool)
        _assert_identical(serial, proc, seed=seed, method=method)
        assert serial.certificates is None and proc.certificates is None


def test_ephemeral_pool_matches_shared(seed=4):
    """backend='process' without a pool builds and tears one down."""
    graph, pairs = _random_geometric(seed)
    serial = solve_batch(graph, pairs, method="multi")
    proc = solve_batch(graph, pairs, method="multi", backend="process", workers=2)
    _assert_identical(serial, proc, seed=seed, method="multi")
