"""Fork-join DAG simulator tests: greedy schedules obey Brent's bound."""

import pytest

from repro.parallel.forkjoin import ForkJoinSimulator, Task, fork, leaf, parallel_for_task


class TestTaskAlgebra:
    def test_leaf_work_and_span(self):
        t = leaf(3.0)
        assert t.work() == 3.0
        assert t.span() == 3.0

    def test_fork_work_adds_span_maxes(self):
        t = fork(leaf(2.0), leaf(5.0), cost=1.0)
        assert t.work() == 8.0
        assert t.span() == 6.0

    def test_parallel_for_work(self):
        t = parallel_for_task(16, unit_cost=2.0)
        assert t.work() == 32.0
        assert t.span() == 2.0  # zero fork cost: span = one leaf

    def test_parallel_for_span_with_fork_cost(self):
        t = parallel_for_task(16, unit_cost=1.0, fork_cost=1.0)
        # Balanced binary tree of depth 4 over 16 leaves.
        assert t.span() == pytest.approx(5.0)

    def test_empty_parallel_for(self):
        assert parallel_for_task(0).work() == 0.0


class TestSimulator:
    def test_single_processor_runs_all_work(self):
        t = parallel_for_task(10, unit_cost=1.0)
        assert ForkJoinSimulator(1).run(t) == pytest.approx(t.work())

    def test_infinite_processors_run_span(self):
        t = fork(fork(leaf(1.0), leaf(4.0)), leaf(2.0), cost=1.0)
        assert ForkJoinSimulator(64).run(t) == pytest.approx(t.span())

    def test_brent_bound_holds(self):
        t = parallel_for_task(37, unit_cost=1.0, fork_cost=0.5)
        w, d = t.work(), t.span()
        for p in (1, 2, 3, 8):
            tp = ForkJoinSimulator(p).run(t)
            assert tp <= w / p + d + 1e-9
            assert tp >= max(w / p, d) - 1e-9

    def test_speedup_with_two_processors(self):
        t = fork(leaf(10.0), leaf(10.0))
        assert ForkJoinSimulator(2).run(t) == pytest.approx(10.0)
        assert ForkJoinSimulator(1).run(t) == pytest.approx(20.0)

    def test_invalid_processors(self):
        with pytest.raises(ValueError):
            ForkJoinSimulator(0)

    def test_unbalanced_dag(self):
        # A deep spine with one heavy leaf each level.
        t = leaf(1.0)
        for _ in range(5):
            t = fork(t, leaf(1.0), cost=0.0)
        assert ForkJoinSimulator(2).run(t) >= t.span()
