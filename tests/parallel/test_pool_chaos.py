"""Chaos: SIGKILL a pool worker mid-shard; serving must still be right.

A killed worker surfaces as :class:`~repro.parallel.pool.WorkerCrashError`
— a whole-shard failure with no partial answers — so the serve pipeline's
existing failure ladder (circuit breaker, per-query resilient chain)
absorbs it exactly like any other shard fault.  The bar is the one every
chaos suite in this repo holds: every query answered (no ``failed``
outcomes), every answer equal to the serial ground truth, and with
``verify=True`` every certificate checks out — a crash may cost wall
clock, never correctness.
"""

from __future__ import annotations

import pytest

from repro.baselines import dijkstra
from repro.core.batch import solve_batch
from repro.parallel.pool import ProcessPool, WorkerCrashError
from repro.robustness import FaultInjector
from repro.serve import ServePipeline
from tests.test_differential import _random_geometric

pytestmark = pytest.mark.pool


@pytest.fixture(scope="module")
def instance():
    graph, pairs = _random_geometric(2)  # undirected, has duplicate points
    return graph, pairs


def _ground_truth(graph, pairs):
    return {
        (s, t): float(dijkstra(graph, s)[t]) for s, t in pairs
    }


class TestWorkerKill:
    def test_solve_batch_surfaces_crash_then_retries_clean(self, instance):
        """At the batch layer a kill is loud: WorkerCrashError, nothing
        partial; the spent injector then lets a retry through, and the
        retry is bit-identical to serial."""
        graph, pairs = instance
        serial = solve_batch(graph, pairs, method="multi")
        injector = FaultInjector(seed=1, kill_worker_at=0)
        with ProcessPool(2) as pool:
            with pytest.raises(WorkerCrashError):
                solve_batch(
                    graph, pairs, method="multi", backend="process",
                    pool=pool, fault_injector=injector,
                )
            assert ("kill-worker" in [kind for _, kind in injector.fired])
            retry = solve_batch(
                graph, pairs, method="multi", backend="process",
                pool=pool, fault_injector=injector,  # spent: fires at most once
            )
        assert retry.distances == serial.distances
        assert retry.exact == serial.exact

    @pytest.mark.parametrize("method", ["multi", "sssp-vc"])
    def test_pipeline_recovers_to_ground_truth(self, instance, method):
        """The issue's headline property: kill a worker mid-shard under a
        verifying pipeline — same answers as serial, nothing failed,
        nothing silently wrong."""
        graph, pairs = instance
        truth = _ground_truth(graph, pairs)
        reference = ServePipeline(graph, method=method).run(pairs)
        pipe = ServePipeline(
            graph, method=method, backend="process", workers=2, verify=True,
            fault_injector=FaultInjector(seed=3, kill_worker_at=0),
        )
        res = pipe.run(pairs)
        assert "failed" not in res.counts()
        # Queries on the crashed shard recover through the resilient
        # per-query chain — a different (but exact) method, so their
        # float summation order may differ from the batch reference by
        # an ulp.  Correctness is vs ground truth; bitwise identity is
        # the *clean-path* contract (see test_pool_differential).
        for s, t in pairs:
            assert res.distance(s, t) == pytest.approx(truth[(s, t)], rel=1e-12)
            assert res.distance(s, t) == pytest.approx(
                reference.distance(s, t), rel=1e-12
            )
        verification = res.details["verification"]
        assert verification["failed"] == 0
        assert verification["invalid"] == 0
        assert verification["checked"] >= len(pairs)

    def test_checkpoint_resume_after_kill_matches_uninterrupted(
        self, instance, tmp_path
    ):
        """Crash the host process after the first durable write while the
        process backend is also losing a worker; the resumed job must
        still converge to the uninterrupted answers."""
        graph, pairs = instance

        class Killed(RuntimeError):
            pass

        def kill_after_first(manifest):
            if len(manifest["completed_shards"]) == 1:
                raise Killed("simulated host crash")

        reference = ServePipeline(
            graph, method="multi", checkpoint_every=2,
        ).run(pairs)
        path = tmp_path / "job.json"
        pipe = ServePipeline(
            graph, method="multi", backend="process", workers=2,
            checkpoint_path=path, checkpoint_every=2,
            checkpoint_hook=kill_after_first,
            fault_injector=FaultInjector(seed=5, kill_worker_at=1),
        )
        with pytest.raises(Killed):
            pipe.run(pairs)
        resumed = ServePipeline(
            graph, method="multi", backend="process", workers=2,
            checkpoint_path=path, checkpoint_every=2,
        ).run(pairs, resume=True)
        assert "failed" not in resumed.counts()
        assert set(resumed.distances) == set(reference.distances)
        for key, want in reference.distances.items():
            # The shard that lost its worker pre-crash was re-answered
            # by the resilient chain before being checkpointed; exact
            # answers, possibly an ulp off the batch reference.
            assert resumed.distances[key] == pytest.approx(want, rel=1e-12), key
        assert resumed.exact == reference.exact
