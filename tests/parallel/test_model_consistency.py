"""Cross-validation: the Brent-bound cost model vs the DAG simulator.

The engine charges steps through :class:`WorkDepthMeter`; the
:class:`ForkJoinSimulator` schedules explicit binary fork-join DAGs.
Replaying a meter's step profile as a chain of parallel-for DAGs must
give times the closed-form model brackets — if these ever diverge, one
of the two parallel models is lying.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.parallel.cost_model import WorkDepthMeter
from repro.parallel.forkjoin import ForkJoinSimulator, parallel_for_task


def replay_time(step_work: list[float], processors: int) -> float:
    """Schedule each step as a parallel-for DAG; steps are barriers."""
    sim = ForkJoinSimulator(processors)
    return sum(sim.run(parallel_for_task(int(w), unit_cost=1.0)) for w in step_work)


class TestModelsAgree:
    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(st.integers(1, 300), min_size=1, max_size=8),
        st.sampled_from([1, 2, 4, 8, 32]),
    )
    def test_simulated_time_brackets_dag_schedule(self, works, p):
        meter = WorkDepthMeter()
        for w in works:
            meter.record_step(w)
        model = meter.simulated_time(p, sync_cost=1.0)
        dag = replay_time([float(w) for w in works], p)
        # The DAG schedule has no explicit sync cost, so it lower-bounds
        # the model; Brent guarantees it is at least sum(w/p).
        assert dag <= model + 1e-9
        assert dag >= sum(w / p for w in works) - 1e-9

    def test_single_processor_exact(self):
        meter = WorkDepthMeter()
        for w in (10, 25, 3):
            meter.record_step(w)
        assert replay_time([10, 25, 3], 1) == pytest.approx(38.0)

    def test_many_processors_hit_span(self):
        # One big flat step: with enough processors the DAG runs in ~1
        # unit; the model adds its log-span sync term.
        dag = replay_time([1024.0], 4096)
        assert dag == pytest.approx(1.0)
        meter = WorkDepthMeter()
        meter.record_step(1024)
        assert meter.simulated_time(4096) >= dag

    def test_engine_meter_replayable(self, random_graph_factory=None):
        """A real engine run's profile replays without error and keeps
        the same speedup ordering between 1 and 16 processors."""
        from repro.core.engine import run_policy
        from repro.core.policies import SsspPolicy
        from repro.graphs import road_graph

        g = road_graph(12, 12, seed=1)
        meter = run_policy(g, SsspPolicy(0)).meter
        t1 = replay_time(meter.step_work, 1)
        t16 = replay_time(meter.step_work, 16)
        assert t16 < t1
        assert meter.simulated_time(16) < meter.simulated_time(1)
