"""Data-parallel primitive tests."""

import numpy as np

from repro.parallel.primitives import dedup, exclusive_scan, expand_ranges, pack, write_min


class TestWriteMin:
    def test_lowers_values(self):
        vals = np.array([5.0, 5.0, 5.0])
        ok = write_min(vals, np.array([0, 2]), np.array([3.0, 7.0]))
        assert list(vals) == [3.0, 5.0, 5.0]
        assert list(ok) == [True, False]

    def test_duplicate_indices_take_min(self):
        vals = np.array([10.0])
        ok = write_min(vals, np.array([0, 0, 0]), np.array([7.0, 3.0, 9.0]))
        assert vals[0] == 3.0
        # All three were below the pre-batch value 10.
        assert list(ok) == [True, True, True]

    def test_equal_value_not_success(self):
        vals = np.array([4.0])
        ok = write_min(vals, np.array([0]), np.array([4.0]))
        assert not ok[0]

    def test_empty_batch(self):
        vals = np.array([1.0])
        ok = write_min(vals, np.array([], dtype=int), np.array([]))
        assert len(ok) == 0


class TestPackDedup:
    def test_pack(self):
        a = np.array([1, 2, 3, 4])
        assert list(pack(a, np.array([True, False, True, False]))) == [1, 3]

    def test_dedup(self):
        assert list(dedup(np.array([3, 1, 3, 2, 1]))) == [1, 2, 3]


class TestExclusiveScan:
    def test_basic(self):
        scan, total = exclusive_scan(np.array([2, 3, 4]))
        assert list(scan) == [0, 2, 5]
        assert total == 9

    def test_empty(self):
        scan, total = exclusive_scan(np.array([], dtype=int))
        assert len(scan) == 0 and total == 0


class TestExpandRanges:
    def test_basic(self):
        got = expand_ranges(np.array([10, 20]), np.array([3, 2]))
        assert list(got) == [10, 11, 12, 20, 21]

    def test_zero_counts_skipped(self):
        got = expand_ranges(np.array([5, 9, 100]), np.array([2, 0, 1]))
        assert list(got) == [5, 6, 100]

    def test_all_zero(self):
        assert len(expand_ranges(np.array([1, 2]), np.array([0, 0]))) == 0

    def test_empty(self):
        assert len(expand_ranges(np.array([], dtype=int), np.array([], dtype=int))) == 0

    def test_overlapping_ranges_allowed(self):
        got = expand_ranges(np.array([0, 1]), np.array([3, 2]))
        assert list(got) == [0, 1, 2, 1, 2]

    def test_matches_naive_random(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            k = rng.integers(1, 30)
            starts = rng.integers(0, 1000, size=k)
            counts = rng.integers(0, 8, size=k)
            want = np.concatenate(
                [np.arange(s, s + c) for s, c in zip(starts, counts)]
            ) if counts.sum() else np.empty(0, dtype=np.int64)
            got = expand_ranges(starts, counts)
            assert np.array_equal(got, want)

    def test_single_big_range(self):
        got = expand_ranges(np.array([7]), np.array([1000]))
        assert got[0] == 7 and got[-1] == 1006 and len(got) == 1000
