"""Engine step-trace tests."""

import numpy as np
import pytest

from repro.core.engine import run_policy
from repro.core.policies import BiDS, EarlyTermination, MultiPPSP, SsspPolicy
from repro.core.query_graph import QueryGraph
from repro.core.tracing import StepTrace


class TestTraceContents:
    def test_one_record_per_step(self, small_road):
        tr = StepTrace()
        res = run_policy(small_road, SsspPolicy(0), trace=tr)
        assert len(tr) == res.steps

    def test_steps_numbered_consecutively(self, small_road):
        tr = StepTrace()
        run_policy(small_road, BiDS(0, 100), trace=tr)
        assert [r.step for r in tr] == list(range(len(tr)))

    def test_counts_consistent_with_run(self, small_road):
        tr = StepTrace()
        res = run_policy(small_road, EarlyTermination(0, 100), trace=tr)
        assert sum(r.relaxed_edges for r in tr) == res.relaxations

    def test_theta_nondecreasing_for_delta(self, small_road):
        from repro.core.stepping import DeltaStepping

        tr = StepTrace()
        run_policy(small_road, SsspPolicy(0), strategy=DeltaStepping(30.0), trace=tr)
        thetas = [r.theta for r in tr]
        assert all(b >= a for a, b in zip(thetas, thetas[1:]))

    def test_mu_monotone_nonincreasing(self, small_road):
        tr = StepTrace()
        res = run_policy(small_road, BiDS(3, 120), trace=tr)
        mus = [r.mu for r in tr]
        finite_seen = False
        for a, b in zip(mus, mus[1:]):
            if np.isfinite(a):
                finite_seen = True
                assert b <= a + 1e-12
        assert finite_seen
        assert mus[-1] == pytest.approx(res.answer)

    def test_sssp_mu_is_nan(self, line_graph):
        tr = StepTrace()
        run_policy(line_graph, SsspPolicy(0), trace=tr)
        assert all(np.isnan(r.mu) for r in tr)

    def test_multippsp_traces_loosest_radius(self, small_road):
        tr = StepTrace()
        res = run_policy(small_road, MultiPPSP(QueryGraph([(0, 30), (30, 90)])), trace=tr)
        final = tr.records[-1].mu
        assert final == pytest.approx(max(res.answer.values()))

    def test_pruning_visible_after_mu(self, small_road):
        tr = StepTrace()
        run_policy(small_road, BiDS(0, 20), trace=tr)
        settled = tr.mu_settled_step()
        assert settled is not None
        assert sum(r.pruned for r in tr.records[settled:]) > 0


class TestTraceAnalysis:
    def test_summary_fields(self, small_road):
        tr = StepTrace()
        run_policy(small_road, BiDS(0, 100), trace=tr)
        s = tr.summary()
        assert s["steps"] == len(tr)
        assert s["peak_frontier"] >= 2
        assert np.isfinite(s["final_mu"])

    def test_empty_trace(self):
        tr = StepTrace()
        assert tr.summary()["steps"] == 0
        assert tr.mu_settled_step() is None

    def test_render_truncates_long_traces(self, small_road):
        tr = StepTrace()
        run_policy(small_road, SsspPolicy(0), trace=tr)
        out = tr.render(max_rows=6)
        if len(tr) > 6:
            assert "..." in out
        assert "theta" in out

    def test_record_round_trip(self, line_graph):
        tr = StepTrace()
        run_policy(line_graph, SsspPolicy(0), trace=tr)
        d = tr.records[0].as_dict()
        assert set(d) == {
            "step", "theta", "frontier_size", "extracted", "pruned",
            "relaxed_edges", "improved", "mu",
        }

    def test_no_trace_zero_overhead_path(self, small_road):
        """Engine accepts trace=None (the default) without error."""
        res = run_policy(small_road, BiDS(0, 50), trace=None)
        assert np.isfinite(res.answer)
