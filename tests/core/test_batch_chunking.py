"""Chunked Multi-BiDS (Sec. 4.2 space control) and directed VC tests."""

import numpy as np
import pytest

from repro.baselines import dijkstra
from repro.core.batch import solve_batch
from repro.core.query_graph import QueryGraph, vertex_cover


class TestChunkedMulti:
    def test_chunked_matches_unchunked(self, small_road):
        rng = np.random.default_rng(1)
        verts = rng.choice(small_road.num_vertices, size=10, replace=False).tolist()
        qg = QueryGraph.clique(verts[:6])
        full = solve_batch(small_road, qg, method="multi")
        chunked = solve_batch(small_road, qg, method="multi", max_sources=3)
        assert chunked.distances.keys() == full.distances.keys()
        for k in full.distances:
            assert chunked.distances[k] == pytest.approx(full.distances[k])
        assert chunked.details["chunks"] > 1

    def test_no_chunking_when_small_enough(self, small_road):
        qg = QueryGraph.chain([0, 5, 9])
        res = solve_batch(small_road, qg, method="multi", max_sources=10)
        assert "chunks" not in res.details

    def test_chunk_bounds_respected(self, small_road):
        rng = np.random.default_rng(2)
        verts = rng.choice(small_road.num_vertices, size=12, replace=False).tolist()
        qg = QueryGraph.separate(verts)  # 6 disjoint pairs
        res = solve_batch(small_road, qg, method="multi", max_sources=4)
        # 12 endpoints, <=4 per chunk -> at least 3 chunks.
        assert res.details["chunks"] >= 3
        ref = {k: dijkstra(small_road, k[0])[k[1]] for k in res.distances}
        for k, v in res.distances.items():
            assert v == pytest.approx(ref[k])

    def test_max_sources_only_for_multi(self, small_road):
        with pytest.raises(ValueError, match="multi"):
            solve_batch(small_road, [(0, 1)], method="plain-bids", max_sources=4)

    def test_max_sources_too_small(self, small_road):
        with pytest.raises(ValueError, match="at least 2"):
            solve_batch(small_road, [(0, 1), (2, 3)], method="multi", max_sources=1)

    def test_directed_chunked(self):
        from repro.graphs import build_graph

        g = build_graph(
            [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (3, 0, 1.0), (0, 2, 9.0)],
            directed=True,
        )
        pairs = [(0, 2), (1, 3), (2, 0), (3, 1)]
        qg = QueryGraph(pairs, directed=True)
        full = solve_batch(g, qg, method="multi")
        chunked = solve_batch(g, qg, method="multi", max_sources=4)
        for k, v in full.distances.items():
            assert chunked.distances[k] == pytest.approx(v)


class TestDirectedVertexCover:
    def test_bipartite_cover_is_optimal_star(self):
        # All queries share source 0: cover = {0's source copy}.
        qg = QueryGraph([(0, 1), (0, 2), (0, 3)], directed=True)
        cover = vertex_cover(qg)
        assert len(cover) == 1
        assert qg.direction[cover[0]] == 1
        assert qg.vertices[cover[0]] == 0

    def test_both_roles_vertex_gets_two_copies(self):
        qg = QueryGraph([(0, 1), (1, 2)], directed=True)
        # vertex 1 appears as target copy and source copy.
        roles = [(int(v), int(d)) for v, d in zip(qg.vertices, qg.direction)]
        assert (1, 1) in roles and (1, -1) in roles

    def test_koenig_matches_bruteforce(self):
        """König cover size == optimum found by enumeration."""
        from itertools import combinations

        rng = np.random.default_rng(5)
        for trial in range(10):
            pairs = [
                (int(a), int(b))
                for a, b in zip(rng.integers(0, 4, 6), rng.integers(4, 8, 6))
            ]
            qg = QueryGraph(pairs, directed=True)
            cover = vertex_cover(qg)
            edges = qg.edges
            # Brute force minimum.
            best = None
            k = qg.num_vertices
            for size in range(0, k + 1):
                found = False
                for subset in combinations(range(k), size):
                    chosen = set(subset)
                    if all(a in chosen or b in chosen for a, b in edges):
                        best, found = size, True
                        break
                if found:
                    break
            assert len(cover) == best, (trial, pairs)

    def test_directed_sssp_vc_answers_with_both_roles(self):
        from repro.graphs import build_graph

        g = build_graph(
            [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 4.0), (2, 1, 8.0)], directed=True
        )
        pairs = [(0, 1), (2, 1)]  # vertex 1 is only ever a target
        qg = QueryGraph(pairs, directed=True)
        res = solve_batch(g, qg, method="sssp-vc")
        assert res.num_searches == 1  # backward SSSP from 1 covers both
        assert res.distances[(0, 1)] == pytest.approx(1.0)
        assert res.distances[(2, 1)] == pytest.approx(5.0)
