"""Golden StepTrace fixtures: the engine's step sequence is pinned.

Each fixture is the full :meth:`StepTrace.to_json` export of one
fixed-seed run.  Any change to stepping order, θ selection, pruning, or
μ maintenance shows up as a diff here before it shows up as a perf or
correctness surprise.  Regenerate deliberately with::

    UPDATE_TRACE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/core/test_trace_golden.py

and review the fixture diff like any other code change.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import ppsp
from repro.core.tracing import StepTrace
from repro.graphs import road_graph

FIXTURES = Path(__file__).parent / "fixtures"
UPDATE = os.environ.get("UPDATE_TRACE_GOLDEN") == "1"

# (fixture stem, method, source, target) on the one pinned graph.
CASES = [
    ("trace_road8_sssp_0_63", "sssp", 0, 63),
    ("trace_road8_et_0_63", "et", 0, 63),
    ("trace_road8_astar_0_63", "astar", 0, 63),
    ("trace_road8_bids_0_63", "bids", 0, 63),
    ("trace_road8_bidastar_5_58", "bidastar", 5, 58),
]

_FLOAT_FIELDS = {"theta", "mu"}


def _decoded(value):
    """Raw JSON summary values may carry the "inf"/"nan" string encoding."""
    if isinstance(value, str):
        return float(value)
    return value


@pytest.fixture(scope="module")
def graph():
    return road_graph(8, 8, seed=5, name="golden-road")


def _run_trace(graph, method: str, s: int, t: int) -> StepTrace:
    trace = StepTrace()
    ppsp(graph, s, t, method=method, trace=trace)
    return trace


@pytest.mark.parametrize("stem,method,s,t", CASES, ids=[c[0] for c in CASES])
def test_trace_matches_golden(graph, stem, method, s, t):
    path = FIXTURES / f"{stem}.json"
    trace = _run_trace(graph, method, s, t)
    if UPDATE:
        path.write_text(trace.to_json(indent=2) + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"missing fixture {path.name}; run with UPDATE_TRACE_GOLDEN=1"
    )
    golden = StepTrace.from_json(path.read_text())
    assert len(trace) == len(golden), "step count changed"
    for i, (got, want) in enumerate(zip(trace, golden)):
        got_d, want_d = got.as_dict(), want.as_dict()
        assert set(got_d) == set(want_d)
        for field, want_v in want_d.items():
            got_v = got_d[field]
            if field in _FLOAT_FIELDS:
                assert got_v == pytest.approx(want_v, rel=1e-9, nan_ok=True), (
                    f"step {i}: {field} {got_v} != {want_v}"
                )
            else:
                assert got_v == want_v, f"step {i}: {field} {got_v} != {want_v}"


@pytest.mark.parametrize("stem,method,s,t", CASES, ids=[c[0] for c in CASES])
def test_summary_matches_golden(graph, stem, method, s, t):
    path = FIXTURES / f"{stem}.json"
    if not path.exists():
        pytest.skip("fixture not generated yet")
    want = json.loads(path.read_text())["summary"]
    got = json.loads(_run_trace(graph, method, s, t).to_json())["summary"]
    for key in ("steps", "peak_frontier", "total_pruned", "mu_settled_step"):
        assert got[key] == want[key], key
    assert _decoded(got["final_mu"]) == pytest.approx(
        _decoded(want["final_mu"]), nan_ok=True
    )


def test_roundtrip_is_lossless(graph):
    trace = _run_trace(graph, "bids", 0, 63)
    back = StepTrace.from_json(trace.to_json())
    assert [r.as_dict() for r in back] == [r.as_dict() for r in trace]
