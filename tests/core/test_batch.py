"""Batch PPSP solver tests: MultiPPSP policy and the four strategies."""

import numpy as np
import pytest

from repro.baselines import dijkstra
from repro.core.batch import BATCH_METHODS, solve_batch
from repro.core.engine import run_policy
from repro.core.policies import MultiPPSP
from repro.core.query_graph import PATTERNS, QueryGraph
from repro.core.stepping import DeltaStepping


def oracle(graph, qg):
    out = {}
    for i, j in qg.edges:
        s, t = int(qg.vertices[i]), int(qg.vertices[j])
        out[(s, t)] = float(dijkstra(graph, s)[t])
    return out


class TestMultiPPSPPolicy:
    def test_single_pair(self, line_graph):
        res = run_policy(line_graph, MultiPPSP(QueryGraph([(0, 4)])))
        assert res.answer[(0, 4)] == 10.0

    def test_chain_three_stops(self, line_graph):
        res = run_policy(line_graph, MultiPPSP(QueryGraph.chain([0, 2, 4])))
        assert res.answer[(0, 2)] == 3.0
        assert res.answer[(2, 4)] == 7.0

    def test_self_query_zero(self, line_graph):
        res = run_policy(line_graph, MultiPPSP(QueryGraph([(1, 1), (0, 2)])))
        assert res.answer[(1, 1)] == 0.0

    def test_disconnected_query_inf(self, disconnected_graph):
        res = run_policy(disconnected_graph, MultiPPSP(QueryGraph([(0, 4), (0, 2)])))
        assert np.isinf(res.answer[(0, 4)])
        assert res.answer[(0, 2)] == 2.0

    def test_shared_vertex_search_count(self, small_road):
        """A star batch searches from |Vq| vertices, not 2x queries."""
        qg = QueryGraph.star(0, [10, 20, 30])
        pol = MultiPPSP(qg)
        assert pol.num_sources == 4

    def test_loop_only_batch_answers_zero(self, line_graph):
        res = run_policy(line_graph, MultiPPSP(QueryGraph([(1, 1)])))
        assert res.answer[(1, 1)] == 0.0

    def test_requires_query_graph_type(self):
        with pytest.raises(TypeError):
            MultiPPSP([(0, 1)])

    def test_vertex_out_of_range(self, line_graph):
        with pytest.raises(ValueError):
            run_policy(line_graph, MultiPPSP(QueryGraph([(0, 99)])))

    def test_mu_max_radius_shrinks(self, small_road):
        res = run_policy(small_road, MultiPPSP(QueryGraph([(0, 5), (0, 17)])))
        pol = res.policy
        assert np.isfinite(pol.mu_max).all()

    @pytest.mark.parametrize("pattern", list(PATTERNS))
    def test_all_patterns_match_oracle(self, pattern, small_road):
        rng = np.random.default_rng(5)
        verts = rng.choice(small_road.num_vertices, size=6, replace=False).tolist()
        qg = PATTERNS[pattern](verts)
        res = run_policy(small_road, MultiPPSP(qg))
        ref = oracle(small_road, qg)
        for key, val in res.answer.items():
            assert val == pytest.approx(ref[key]), (pattern, key)


class TestSolveBatch:
    @pytest.mark.parametrize("method", BATCH_METHODS)
    def test_every_method_matches_oracle(self, method, small_knn):
        rng = np.random.default_rng(6)
        from repro.graphs.connectivity import largest_component

        lcc = largest_component(small_knn)
        verts = rng.choice(lcc, size=6, replace=False).tolist()
        qg = QueryGraph.random_pattern(verts, 8, seed=2)
        res = solve_batch(small_knn, qg, method=method)
        ref = oracle(small_knn, qg)
        assert res.method == method
        for key, val in res.distances.items():
            assert val == pytest.approx(ref[key]), key

    def test_accepts_raw_pairs(self, line_graph):
        res = solve_batch(line_graph, [(0, 2), (2, 4)])
        assert res.distance(0, 2) == 3.0
        assert res.distance(4, 2) == 7.0  # symmetric lookup

    def test_unknown_method_rejected(self, line_graph):
        with pytest.raises(ValueError, match="unknown batch method"):
            solve_batch(line_graph, [(0, 1)], method="magic")

    def test_strategy_factory_used(self, small_road):
        calls = []

        def factory():
            calls.append(1)
            return DeltaStepping(25.0)

        solve_batch(small_road, [(0, 5), (7, 9)], method="plain-bids", strategy_factory=factory)
        assert len(calls) == 2  # one strategy per query

    def test_num_searches_accounting(self, small_road):
        qg = QueryGraph.star(0, [5, 9, 13])
        assert solve_batch(small_road, qg, method="multi").num_searches == 4
        assert solve_batch(small_road, qg, method="plain-bids").num_searches == 6
        assert solve_batch(small_road, qg, method="sssp-vc").num_searches == 1
        assert solve_batch(small_road, qg, method="sssp-plain").num_searches == 1

    def test_vc_fewer_searches_than_plain_on_chain(self, small_road):
        qg = QueryGraph.chain([0, 5, 9, 13, 17, 21])
        vc = solve_batch(small_road, qg, method="sssp-vc")
        plain = solve_batch(small_road, qg, method="sssp-plain")
        assert vc.num_searches < plain.num_searches
        assert vc.meter.work < plain.meter.work

    def test_multi_shares_work_on_clique(self, small_road):
        """Multi-BiDS beats plain per-query BiDS in work on a clique."""
        rng = np.random.default_rng(7)
        verts = rng.choice(small_road.num_vertices, size=6, replace=False).tolist()
        qg = QueryGraph.clique(verts)
        multi = solve_batch(small_road, qg, method="multi")
        plain = solve_batch(small_road, qg, method="plain-bids")
        assert multi.meter.work < plain.meter.work

    def test_plain_star_overlaps_depth(self, small_road):
        """Plain* runs queries concurrently: same work, less depth."""
        qg = QueryGraph.separate([0, 40, 80, 120, 7, 77])
        serial = solve_batch(small_road, qg, method="plain-bids")
        overlap = solve_batch(small_road, qg, method="plain-star-bids")
        assert overlap.meter.work == pytest.approx(serial.meter.work)
        assert overlap.meter.depth < serial.meter.depth

    def test_directed_batch(self):
        from repro.graphs import build_graph

        g = build_graph(
            [(0, 1, 1.0), (1, 2, 2.0), (3, 1, 4.0), (2, 3, 1.0)], directed=True
        )
        qg = QueryGraph([(0, 2), (3, 2)], directed=True)
        ref = {(0, 2): 3.0, (3, 2): 6.0}
        for method in ("multi", "plain-bids", "sssp-plain", "sssp-vc"):
            res = solve_batch(g, qg, method=method)
            for key, val in ref.items():
                assert res.distances[key] == pytest.approx(val), (method, key)


class TestBatchResult:
    def test_distance_lookup_both_orders(self, line_graph):
        res = solve_batch(line_graph, [(0, 3)])
        assert res.distance(0, 3) == res.distance(3, 0) == 6.0

    def test_missing_query_raises_naming_the_pair(self, line_graph):
        res = solve_batch(line_graph, [(0, 3)])
        with pytest.raises(ValueError, match=r"\(1, 2\)"):
            res.distance(1, 2)
        # ... in either orientation: the reversed key must not surface
        # as a bare KeyError.
        with pytest.raises(ValueError, match="never part of this batch"):
            res.distance(2, 1)

    def test_shed_pair_returns_inf(self, line_graph):
        res = solve_batch(line_graph, [(0, 3)])
        res.shed.add((1, 2))
        assert res.distance(1, 2) == float("inf")
        assert res.distance(2, 1) == float("inf")  # reversed orientation too
