"""Stepping strategy (GetDist) tests."""

import numpy as np
import pytest

from repro.core.stepping import (
    BellmanFord,
    DeltaStepping,
    DijkstraOrder,
    RhoStepping,
    default_strategy,
)
from repro.graphs import build_graph


class TestDeltaStepping:
    def test_threshold_is_bucket_end_of_minimum(self):
        s = DeltaStepping(10.0)
        assert s.threshold(np.array([3.0, 25.0])) == 10.0
        assert s.threshold(np.array([12.0])) == 20.0

    def test_threshold_always_above_minimum(self):
        s = DeltaStepping(5.0)
        for lo in (0.0, 4.99, 5.0, 7.3, 123.4):
            th = s.threshold(np.array([lo, lo + 50]))
            assert th > lo

    def test_exact_boundary_moves_to_next_bucket(self):
        s = DeltaStepping(10.0)
        # 10.0 sits in bucket 1 -> threshold 20.
        assert s.threshold(np.array([10.0])) == 20.0

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            DeltaStepping(0.0)
        with pytest.raises(ValueError):
            DeltaStepping(-1.0)

    def test_reset_is_noop_but_callable(self):
        s = DeltaStepping(1.0)
        s.reset()
        assert s.threshold(np.array([0.5])) == 1.0


class TestRhoStepping:
    def test_small_frontier_takes_everything(self):
        s = RhoStepping(10)
        assert s.threshold(np.array([1.0, 2.0])) == float("inf")

    def test_takes_rho_smallest(self):
        s = RhoStepping(3)
        prios = np.array([9.0, 1.0, 5.0, 3.0, 7.0])
        th = s.threshold(prios)
        assert th == 5.0
        assert (prios <= th).sum() >= 3

    def test_rho_one_is_dijkstra_like(self):
        s = RhoStepping(1)
        assert s.threshold(np.array([4.0, 2.0, 8.0])) == 2.0

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            RhoStepping(0)


class TestOtherStrategies:
    def test_bellman_ford_takes_all(self):
        assert BellmanFord().threshold(np.array([1e12])) == float("inf")

    def test_dijkstra_order_takes_minimum(self):
        assert DijkstraOrder().threshold(np.array([4.0, 2.0])) == 2.0


class TestDefaultStrategy:
    def test_scales_with_mean_weight(self):
        g = build_graph([(0, 1, 10.0), (1, 2, 30.0)])
        s = default_strategy(g)
        assert isinstance(s, DeltaStepping)
        assert s.delta == pytest.approx(40.0)  # 2 * mean(10,30,10,30)

    def test_empty_graph_gets_unit_delta(self):
        g = build_graph([], num_vertices=2)
        assert default_strategy(g).delta == 1.0


class TestStrategiesAgreeOnDistances:
    """All GetDist plug-ins must give identical SSSP answers."""

    @pytest.mark.parametrize(
        "strategy",
        [DeltaStepping(1.0), DeltaStepping(100.0), RhoStepping(2), BellmanFord(), DijkstraOrder()],
        ids=["delta-fine", "delta-coarse", "rho", "bellman-ford", "dijkstra"],
    )
    def test_sssp_matches_oracle(self, strategy, random_graph_factory):
        from repro.baselines import dijkstra
        from repro.core.sssp import sssp_distances

        g = random_graph_factory(60, 200, seed=17)
        got = sssp_distances(g, 0, strategy=strategy)
        assert np.allclose(got, dijkstra(g, 0), equal_nan=False)
