"""BatchResult.path tests: shortest paths out of batch solvers."""

import numpy as np
import pytest

from repro.core.batch import solve_batch
from repro.core.paths import PathError
from repro.core.query_graph import QueryGraph


def check_path(graph, path, s, t, want_len):
    assert path[0] == s and path[-1] == t
    total = 0.0
    for u, v in zip(path[:-1], path[1:]):
        nbrs = graph.neighbors(u)
        hit = np.flatnonzero(nbrs == v)
        assert len(hit), f"({u}, {v}) not an edge"
        total += graph.neighbor_weights(u)[hit].min()
    assert total == pytest.approx(want_len)


@pytest.mark.parametrize("method", ["multi", "sssp-vc", "sssp-plain"])
class TestBatchPaths:
    def test_paths_realize_distances(self, method, small_road):
        qg = QueryGraph.clique([0, 40, 90, 130])
        res = solve_batch(small_road, qg, method=method)
        for (s, t), d in res.distances.items():
            check_path(small_road, res.path(s, t), s, t, d)

    def test_reversed_lookup(self, method, small_road):
        res = solve_batch(small_road, [(3, 99)], method=method)
        p = res.path(99, 3)
        check_path(small_road, p, 99, 3, res.distance(3, 99))

    def test_trivial_pair(self, method, small_road):
        res = solve_batch(small_road, [(7, 7), (0, 9)], method=method)
        assert res.path(7, 7) == [7]

    def test_unknown_pair_raises(self, method, small_road):
        res = solve_batch(small_road, [(0, 9)], method=method)
        with pytest.raises(KeyError):
            res.path(1, 2)


class TestBatchPathEdgeCases:
    def test_plain_methods_decline(self, small_road):
        res = solve_batch(small_road, [(0, 9)], method="plain-bids")
        with pytest.raises(NotImplementedError, match="multi"):
            res.path(0, 9)

    def test_disconnected_pair_raises_patherror(self, disconnected_graph):
        res = solve_batch(disconnected_graph, [(0, 4)], method="multi")
        with pytest.raises(PathError):
            res.path(0, 4)

    def test_directed_multi_paths(self):
        from repro.graphs import build_graph

        g = build_graph(
            [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (3, 0, 1.0), (0, 2, 9.0)],
            directed=True,
        )
        qg = QueryGraph([(0, 2), (2, 0), (1, 3)], directed=True)
        for method in ("multi", "sssp-vc"):
            res = solve_batch(g, qg, method=method)
            for (s, t), d in res.distances.items():
                check_path(g, res.path(s, t), s, t, d)

    def test_star_paths_through_sssp_cover(self, small_knn):
        """SSMT: the single covering SSSP serves every leaf's path."""
        qg = QueryGraph.star(0, [50, 100, 150, 200, 250])
        res = solve_batch(small_knn, qg, method="sssp-vc")
        assert res.num_searches == 1
        for (s, t), d in res.distances.items():
            check_path(small_knn, res.path(s, t), s, t, d)

    def test_multi_stop_legs(self, small_road):
        from repro.core.query_types import multi_stop

        stops = [0, 40, 80, 120]
        res = multi_stop(small_road, stops)
        full = []
        for a, b in zip(stops[:-1], stops[1:]):
            leg = res.path(a, b)
            check_path(small_road, leg, a, b, res.distance(a, b))
            full.extend(leg[:-1])
        full.append(stops[-1])
        assert full[0] == stops[0] and full[-1] == stops[-1]


class TestChunkedPaths:
    def test_paths_survive_chunking(self, small_road):
        qg = QueryGraph.clique([0, 30, 60, 90, 120, 3])
        res = solve_batch(small_road, qg, method="multi", max_sources=3)
        assert res.details["chunks"] > 1
        for (s, t), d in res.distances.items():
            check_path(small_road, res.path(s, t), s, t, d)

    def test_unknown_pair_in_chunked(self, small_road):
        res = solve_batch(small_road, [(0, 9), (20, 30)], method="multi", max_sources=2)
        with pytest.raises(KeyError):
            res.path(0, 30)
