"""Differential testing: vectorized engine vs the literal Alg. 2 loop."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import run_policy
from repro.core.policies import BiDS, EarlyTermination, MultiPPSP, SsspPolicy
from repro.core.query_graph import QueryGraph
from repro.core.reference import run_policy_reference
from repro.core.stepping import BellmanFord, DeltaStepping
from repro.graphs import from_edges


@st.composite
def graphs_strategy(draw, max_n=14, max_m=40):
    n = draw(st.integers(2, max_n))
    m = draw(st.integers(1, max_m))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    w = draw(st.lists(st.floats(0.0, 30.0, allow_nan=False), min_size=m, max_size=m))
    return from_edges(src, dst, np.asarray(w), num_vertices=n, dedupe=True)


COMMON = dict(deadline=None, max_examples=30,
              suppress_health_check=[HealthCheck.too_slow])


class TestAgainstVectorizedEngine:
    @settings(**COMMON)
    @given(graphs_strategy(), st.data())
    def test_sssp_identical_distances(self, g, data):
        s = data.draw(st.integers(0, g.num_vertices - 1))
        fast = run_policy(g, SsspPolicy(s), strategy=DeltaStepping(5.0))
        _, ref = run_policy_reference(g, SsspPolicy(s), strategy=DeltaStepping(5.0))
        assert np.allclose(fast.dist, ref, equal_nan=False)

    @settings(**COMMON)
    @given(graphs_strategy(), st.data())
    def test_et_and_bids_same_answer(self, g, data):
        s = data.draw(st.integers(0, g.num_vertices - 1))
        t = data.draw(st.integers(0, g.num_vertices - 1))
        for make in (lambda: EarlyTermination(s, t), lambda: BiDS(s, t)):
            fast = run_policy(g, make(), strategy=BellmanFord()).answer
            ref, _ = run_policy_reference(g, make(), strategy=BellmanFord())
            if np.isinf(ref):
                assert np.isinf(fast)
            else:
                assert fast == pytest.approx(ref)

    @settings(**COMMON)
    @given(graphs_strategy(max_n=10), st.data())
    def test_multippsp_same_answers(self, g, data):
        n = g.num_vertices
        k = data.draw(st.integers(2, min(5, n)))
        verts = data.draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k,
                                   unique=True))
        pairs = list(zip(verts[:-1], verts[1:]))
        fast = run_policy(g, MultiPPSP(QueryGraph(pairs)), strategy=DeltaStepping(4.0))
        ref, _ = run_policy_reference(
            g, MultiPPSP(QueryGraph(pairs)), strategy=DeltaStepping(4.0)
        )
        assert fast.answer.keys() == ref.keys()
        for key in ref:
            a, b = fast.answer[key], ref[key]
            if np.isinf(b):
                assert np.isinf(a)
            else:
                assert a == pytest.approx(b), key


class TestReferenceFixtures:
    def test_line(self, line_graph):
        ans, dist = run_policy_reference(line_graph, EarlyTermination(0, 4))
        assert ans == 10.0

    def test_settled_row_matches_dijkstra(self, small_road):
        from repro.baselines import dijkstra

        _, dist = run_policy_reference(small_road, SsspPolicy(0))
        assert np.allclose(dist[0], dijkstra(small_road, 0))

    def test_directed_bids(self):
        from repro.graphs import build_graph

        g = build_graph([(0, 1, 2.0), (1, 2, 3.0)], directed=True)
        ans, _ = run_policy_reference(g, BiDS(0, 2))
        assert ans == 5.0

    def test_max_steps(self, small_road):
        _, dist = run_policy_reference(small_road, SsspPolicy(0), max_steps=1)
        # Only the first wave is settled.
        assert np.isfinite(dist[0]).sum() < small_road.num_vertices
