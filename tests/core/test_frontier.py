"""Frontier structure tests: sparse/dense representations and switching."""

import numpy as np
import pytest

from repro.core.frontier import Frontier


def ids(*xs):
    return np.array(xs, dtype=np.int64)


class TestBasics:
    def test_starts_empty(self):
        f = Frontier(100)
        assert len(f) == 0
        assert list(f.ids()) == []

    def test_add_and_len(self):
        f = Frontier(100)
        f.add(ids(3, 7, 1))
        assert len(f) == 3
        assert list(f.ids()) == [1, 3, 7]

    def test_add_deduplicates(self):
        f = Frontier(100)
        f.add(ids(5, 5, 2))
        f.add(ids(2, 9))
        assert list(f.ids()) == [2, 5, 9]

    def test_add_empty_noop(self):
        f = Frontier(100)
        f.add(np.empty(0, dtype=np.int64))
        assert len(f) == 0

    def test_replace(self):
        f = Frontier(100)
        f.add(ids(1, 2, 3))
        f.replace(ids(8, 9))
        assert list(f.ids()) == [8, 9]

    def test_clear(self):
        f = Frontier(100)
        f.add(ids(1, 2))
        f.clear()
        assert len(f) == 0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Frontier(10, mode="weird")


class TestExtract:
    def test_extract_below_threshold(self):
        f = Frontier(100)
        f.add(ids(0, 1, 2, 3))
        prio = {0: 1.0, 1: 5.0, 2: 3.0, 3: 9.0}
        got = f.extract(lambda e: np.array([prio[int(x)] for x in e]), 4.0)
        assert sorted(got.tolist()) == [0, 2]
        assert sorted(f.ids().tolist()) == [1, 3]

    def test_extract_all(self):
        f = Frontier(100)
        f.add(ids(4, 5))
        got = f.extract(lambda e: np.zeros(len(e)), 1.0)
        assert len(got) == 2
        assert len(f) == 0

    def test_extract_empty(self):
        f = Frontier(100)
        got = f.extract(lambda e: np.zeros(len(e)), 1.0)
        assert len(got) == 0


class TestModes:
    def test_forced_dense(self):
        f = Frontier(50, mode="dense")
        assert f.is_dense
        f.add(ids(3, 1))
        assert list(f.ids()) == [1, 3]
        assert len(f) == 2

    def test_forced_sparse_never_switches(self):
        f = Frontier(10, mode="sparse")
        f.add(np.arange(10))
        assert not f.is_dense

    def test_auto_switches_to_dense_when_large(self):
        f = Frontier(100, mode="auto")
        f.add(np.arange(20))  # 20% > 5% threshold
        assert f.is_dense
        assert len(f) == 20

    def test_auto_switches_back_to_sparse(self):
        f = Frontier(1000, mode="auto")
        f.add(np.arange(100))
        assert f.is_dense
        f.replace(ids(1, 2))  # 0.2% < 2% threshold
        assert not f.is_dense
        assert list(f.ids()) == [1, 2]

    def test_dense_and_sparse_agree(self):
        """Same operation sequence gives identical contents in both modes."""
        rng = np.random.default_rng(0)
        fs = Frontier(500, mode="sparse")
        fd = Frontier(500, mode="dense")
        for _ in range(10):
            batch = rng.integers(0, 500, size=30)
            fs.add(batch)
            fd.add(batch)
            thr = rng.uniform(0, 500)
            es = fs.extract(lambda e: e.astype(float), thr)
            ed = fd.extract(lambda e: e.astype(float), thr)
            assert np.array_equal(np.sort(es), np.sort(ed))
        assert np.array_equal(fs.ids(), fd.ids())


class TestIncrementalCount:
    """len() must track true cardinality through every mutation path."""

    def test_dense_count_matches_flags_under_random_ops(self):
        rng = np.random.default_rng(7)
        f = Frontier(300, mode="dense")
        for _ in range(50):
            op = rng.integers(0, 3)
            if op == 0:
                # Unsorted batch with duplicates — the dedup fallback.
                f.add(rng.integers(0, 300, size=int(rng.integers(1, 40))))
            elif op == 1:
                # Sorted-unique batch — the fast counting path.
                f.add(np.unique(rng.integers(0, 300, size=10)))
            else:
                f.extract(lambda e: e.astype(float), float(rng.uniform(0, 300)))
            assert len(f) == len(f.ids())

    def test_dense_count_overlapping_adds(self):
        f = Frontier(50, mode="dense")
        f.add(ids(1, 2, 3))
        f.add(ids(2, 3, 4))  # two already present
        assert len(f) == 4
        f.add(ids(4, 4, 4))  # duplicate-only batch, nothing new
        assert len(f) == 4
        f.add(ids(9, 7, 7, 1))  # unsorted with dups, one genuinely new x2
        assert len(f) == 6

    def test_sparse_merge_matches_unique_concat(self):
        rng = np.random.default_rng(11)
        f = Frontier(10_000, mode="sparse")
        reference = np.empty(0, dtype=np.int64)
        for _ in range(30):
            batch = rng.integers(0, 10_000, size=int(rng.integers(1, 50)))
            f.add(batch)
            reference = np.unique(np.concatenate([reference, batch]))
            assert np.array_equal(f.ids(), reference)

    def test_sparse_add_beyond_current_max(self):
        """Insertions past the end (searchsorted pos == len) must work."""
        f = Frontier(100, mode="sparse")
        f.add(ids(1, 2, 3))
        f.add(ids(50, 99))
        assert list(f.ids()) == [1, 2, 3, 50, 99]

    def test_count_survives_mode_switches(self):
        f = Frontier(100, mode="auto")
        f.add(np.arange(0, 20))  # forces dense
        assert f.is_dense and len(f) == 20
        f.add(np.arange(10, 30))  # half overlap
        assert len(f) == 30
        f.replace(ids(1))  # 1% < 2% hysteresis floor: back to sparse
        assert not f.is_dense and len(f) == 1
        f.add(np.arange(50))  # dense again
        assert f.is_dense
        assert len(f) == len(f.ids()) == 50
