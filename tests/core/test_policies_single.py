"""Single-query policy tests: ET and A* (Table 2, top block)."""

import numpy as np
import pytest

from repro.baselines import dijkstra
from repro.core.engine import run_policy
from repro.core.policies import AStar, EarlyTermination, SsspPolicy
from repro.core.stepping import DeltaStepping
from repro.heuristics.geometric import Heuristic, ZeroHeuristic


class TestEarlyTermination:
    def test_line_distance(self, line_graph):
        assert run_policy(line_graph, EarlyTermination(0, 4)).answer == 10.0

    def test_source_equals_target(self, line_graph):
        assert run_policy(line_graph, EarlyTermination(2, 2)).answer == 0.0

    def test_unreachable_returns_inf(self, disconnected_graph):
        assert np.isinf(run_policy(disconnected_graph, EarlyTermination(0, 4)).answer)

    def test_matches_dijkstra_on_random(self, random_graph_factory):
        g = random_graph_factory(80, 300, seed=1)
        ref = dijkstra(g, 3)
        for t in (0, 17, 42, 79):
            assert run_policy(g, EarlyTermination(3, t)).answer == pytest.approx(ref[t])

    def test_prunes_vs_sssp(self, small_road):
        """ET must do no more relaxation work than SSSP for a close pair."""
        s, t = 0, 1
        et = run_policy(small_road, EarlyTermination(s, t), strategy=DeltaStepping(50.0))
        ss = run_policy(small_road, SsspPolicy(s), strategy=DeltaStepping(50.0))
        assert et.relaxations <= ss.relaxations

    def test_query_out_of_range(self, line_graph):
        with pytest.raises(ValueError):
            run_policy(line_graph, EarlyTermination(0, 99))

    def test_distance_row_usable_for_path(self, small_road):
        res = run_policy(small_road, EarlyTermination(0, 77))
        # The partial distance row must be exact on the s-t path itself.
        from repro.core.paths import walk_path

        p = walk_path(small_road, res.dist[0], 0, 77)
        assert p[0] == 0 and p[-1] == 77


class _CountingZero(Heuristic):
    def _compute(self, vertices):
        return np.zeros(len(vertices))


class TestAStar:
    def test_geometric_heuristic_road(self, small_road):
        ref = dijkstra(small_road, 0)
        res = run_policy(small_road, AStar(0, 100))
        assert res.answer == pytest.approx(ref[100])

    def test_geometric_heuristic_knn(self, small_knn):
        ref = dijkstra(small_knn, 2)
        res = run_policy(small_knn, AStar(2, 200))
        assert res.answer == pytest.approx(ref[200])

    def test_zero_heuristic_equals_et(self, small_road):
        """A* with h=0 must produce exactly ET's behavior."""
        s, t = 0, 120
        a = run_policy(
            small_road,
            AStar(s, t, heuristic=ZeroHeuristic()),
            strategy=DeltaStepping(40.0),
        )
        e = run_policy(small_road, EarlyTermination(s, t), strategy=DeltaStepping(40.0))
        assert a.answer == e.answer
        assert a.relaxations == e.relaxations
        assert a.steps == e.steps

    def test_needs_coordinates(self, small_social):
        with pytest.raises(ValueError, match="no coordinates"):
            run_policy(small_social, AStar(0, 5))

    def test_explicit_heuristic_accepted_without_coords(self, small_social):
        res = run_policy(small_social, AStar(0, 5, heuristic=ZeroHeuristic()))
        assert res.answer == pytest.approx(dijkstra(small_social, 0)[5])

    def test_astar_prunes_no_less_than_et(self, small_road):
        """With an admissible h, A* relaxes at most what ET relaxes."""
        s, t = 0, small_road.num_vertices - 1
        a = run_policy(small_road, AStar(s, t), strategy=DeltaStepping(30.0))
        e = run_policy(small_road, EarlyTermination(s, t), strategy=DeltaStepping(30.0))
        assert a.relaxations <= e.relaxations * 1.05  # allow step-boundary noise

    def test_memoized_heuristic_computes_each_vertex_once(self, small_road):
        res = run_policy(small_road, AStar(0, 130, memoize=True))
        h = res.policy.heuristic
        assert h.evaluated <= small_road.num_vertices
        assert h.calls > h.evaluated  # reuse actually happened

    def test_unmemoized_heuristic_recomputes(self, small_road):
        res = run_policy(small_road, AStar(0, 130, memoize=False))
        h = res.policy.heuristic
        assert h.calls == h.evaluated

    def test_source_equals_target(self, small_road):
        assert run_policy(small_road, AStar(7, 7)).answer == 0.0

    def test_heuristic_work_charged_to_meter(self, small_road):
        with_h = run_policy(small_road, AStar(0, 130, memoize=False))
        no_h = run_policy(small_road, EarlyTermination(0, 130))
        # Heuristic evaluations add work beyond relaxations.
        assert with_h.meter.work > no_h.meter.work * 0.9
