"""Query graph abstraction and vertex cover tests (Sec. 4.1 / 4.3)."""

import numpy as np
import pytest

from repro.core.query_graph import PATTERNS, QueryGraph, vertex_cover


class TestConstruction:
    def test_basic(self):
        qg = QueryGraph([(10, 20), (20, 30)])
        assert qg.num_vertices == 3
        assert qg.num_edges == 2
        assert list(qg.vertices) == [10, 20, 30]

    def test_duplicate_pairs_collapse(self):
        qg = QueryGraph([(1, 2), (1, 2), (2, 1)])
        assert qg.num_edges == 1

    def test_reversed_pair_is_same_query_undirected(self):
        qg = QueryGraph([(5, 9), (9, 5)])
        assert qg.num_edges == 1

    def test_directed_keeps_order(self):
        qg = QueryGraph([(5, 9), (9, 5)], directed=True)
        assert qg.num_edges == 2
        assert qg.direction is not None

    def test_directed_bipartite_split(self):
        qg = QueryGraph([(1, 2), (3, 2)], directed=True)
        # Sources {1,3} forward, target {2} backward.
        dirs = {int(v): int(d) for v, d in zip(qg.vertices, qg.direction)}
        assert dirs[1] == 1 and dirs[3] == 1 and dirs[2] == -1

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            QueryGraph([])

    def test_index_of(self):
        qg = QueryGraph([(100, 7)])
        assert qg.vertices[qg.index_of(100)] == 100

    def test_neighbors_symmetric(self):
        qg = QueryGraph([(1, 2), (2, 3)])
        i1, i2, i3 = (qg.index_of(v) for v in (1, 2, 3))
        assert list(qg.neighbors(i2)) == sorted([i1, i3])
        assert qg.degree(i2) == 2 and qg.degree(i1) == 1


class TestPatterns:
    def test_separate(self):
        qg = QueryGraph.separate([1, 2, 3, 4, 5, 6])
        assert qg.num_edges == 3
        assert all(qg.degree(i) == 1 for i in range(qg.num_vertices))

    def test_separate_odd_rejected(self):
        with pytest.raises(ValueError):
            QueryGraph.separate([1, 2, 3])

    def test_chain(self):
        qg = QueryGraph.chain([4, 8, 15, 16])
        assert qg.num_edges == 3
        degs = sorted(qg.degree(i) for i in range(4))
        assert degs == [1, 1, 2, 2]

    def test_star(self):
        qg = QueryGraph.star(0, [1, 2, 3, 4, 5])
        assert qg.num_edges == 5
        assert qg.degree(qg.index_of(0)) == 5

    def test_fork(self):
        qg = QueryGraph.fork([1, 2, 3, 4, 5, 6])
        # chain 1-2-3-4 plus 4-5, 4-6.
        assert qg.num_edges == 5
        assert qg.degree(qg.index_of(4)) == 3

    def test_diamond(self):
        qg = QueryGraph.diamond([1, 2, 3, 4, 5, 6])
        assert qg.num_edges == 8  # 2 hubs x 4 others
        assert qg.degree(qg.index_of(1)) == 4

    def test_bipartite(self):
        qg = QueryGraph.bipartite([1, 2], [3, 4, 5])
        assert qg.num_edges == 6

    def test_clique(self):
        qg = QueryGraph.clique([1, 2, 3, 4])
        assert qg.num_edges == 6

    def test_random_pattern_deterministic(self):
        a = QueryGraph.random_pattern([1, 2, 3, 4, 5, 6], 7, seed=3)
        b = QueryGraph.random_pattern([1, 2, 3, 4, 5, 6], 7, seed=3)
        assert a.edges == b.edges
        assert a.num_edges == 7

    def test_random_pattern_too_many_edges(self):
        with pytest.raises(ValueError):
            QueryGraph.random_pattern([1, 2, 3], 5)

    def test_all_registry_patterns_build_on_six(self):
        vs = [3, 14, 15, 92, 65, 35]
        for name, make in PATTERNS.items():
            qg = make(vs)
            assert qg.num_edges >= 3, name


class TestVertexCover:
    def _check_cover(self, qg, cover):
        chosen = set(int(c) for c in cover)
        for a, b in qg.edges:
            if a != b:
                assert a in chosen or b in chosen

    def test_star_cover_is_center(self):
        qg = QueryGraph.star(0, [1, 2, 3, 4, 5])
        cover = vertex_cover(qg)
        assert len(cover) == 1
        assert int(qg.vertices[cover[0]]) == 0

    def test_chain_cover_every_other(self):
        """The paper's multi-stop observation: chain cover = every other
        vertex, so a 6-stop chain needs <= 3 SSSPs."""
        qg = QueryGraph.chain([1, 2, 3, 4, 5, 6])
        cover = vertex_cover(qg)
        self._check_cover(qg, cover)
        assert len(cover) <= 3

    def test_clique_cover_is_all_but_one(self):
        qg = QueryGraph.clique([1, 2, 3, 4, 5])
        cover = vertex_cover(qg)
        self._check_cover(qg, cover)
        assert len(cover) == 4

    def test_bipartite_cover_is_smaller_side(self):
        qg = QueryGraph.bipartite([1, 2], [3, 4, 5, 6])
        cover = vertex_cover(qg)
        self._check_cover(qg, cover)
        assert len(cover) == 2

    def test_exact_is_minimum_on_small_graphs(self):
        # Path of 4 edges: optimal cover has 2 vertices.
        qg = QueryGraph.chain([10, 20, 30, 40, 50])
        assert len(vertex_cover(qg)) == 2

    def test_greedy_covers_large_graphs(self):
        rng = np.random.default_rng(1)
        pairs = [(int(a), int(b)) for a, b in rng.integers(0, 40, size=(120, 2)) if a != b]
        qg = QueryGraph(pairs)
        cover = vertex_cover(qg, exact_limit=4)  # force greedy path
        self._check_cover(qg, cover)

    def test_self_loop_only_needs_nothing(self):
        qg = QueryGraph([(1, 1)])
        assert len(vertex_cover(qg)) == 0

    def test_method_on_class(self):
        qg = QueryGraph.star(9, [1, 2])
        assert len(qg.vertex_cover()) == 1


class TestDirectedCopies:
    def test_same_vertex_both_roles_two_copies(self):
        qg = QueryGraph([(1, 2), (2, 3)], directed=True)
        verts = qg.vertices.tolist()
        # 2 appears once per role.
        assert verts.count(2) == 2

    def test_self_pair_directed(self):
        qg = QueryGraph([(5, 5)], directed=True)
        assert qg.num_vertices == 2  # source copy + target copy
        assert qg.num_edges == 1

    def test_edges_always_source_to_target_side(self):
        qg = QueryGraph([(0, 1), (1, 0), (0, 2)], directed=True)
        for a, b in qg.edges:
            assert qg.direction[a] == 1 and qg.direction[b] == -1

    def test_index_of_prefers_source_copy(self):
        qg = QueryGraph([(1, 2), (2, 3)], directed=True)
        i = qg.index_of(2)
        assert qg.direction[i] == 1


class TestKoenigCover:
    def test_matching_saturates_smaller_side(self):
        # K_{2,4}: minimum cover = the 2 sources.
        qg = QueryGraph(
            [(s, t) for s in (0, 1) for t in (10, 11, 12, 13)], directed=True
        )
        cover = vertex_cover(qg)
        assert len(cover) == 2
        assert all(qg.direction[c] == 1 for c in cover)

    def test_perfect_matching_case(self):
        # Disjoint directed pairs: cover size == number of queries.
        qg = QueryGraph([(0, 10), (1, 11), (2, 12)], directed=True)
        assert len(vertex_cover(qg)) == 3
