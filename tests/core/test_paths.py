"""Path reconstruction tests."""

import numpy as np
import pytest

from repro.baselines import dijkstra
from repro.core.engine import run_policy
from repro.core.paths import (
    PathError,
    meeting_vertex,
    stitch_bidirectional_path,
    walk_path,
)
from repro.core.policies import BiDS, SsspPolicy


def path_length(graph, path):
    total = 0.0
    for u, v in zip(path[:-1], path[1:]):
        nbrs = graph.neighbors(u)
        ws = graph.neighbor_weights(u)
        hit = np.flatnonzero(nbrs == v)
        assert len(hit), f"({u},{v}) is not an edge"
        total += ws[hit].min()
    return total


class TestWalkPath:
    def test_line(self, line_graph):
        dist = dijkstra(line_graph, 0)
        assert walk_path(line_graph, dist, 0, 4) == [0, 1, 2, 3, 4]

    def test_trivial(self, line_graph):
        dist = dijkstra(line_graph, 2)
        assert walk_path(line_graph, dist, 2, 2) == [2]

    def test_diamond_takes_shortest_branch(self, diamond_graph):
        dist = dijkstra(diamond_graph, 0)
        assert walk_path(diamond_graph, dist, 0, 3) == [0, 1, 3]

    def test_unreachable_raises(self, disconnected_graph):
        dist = dijkstra(disconnected_graph, 0)
        with pytest.raises(PathError):
            walk_path(disconnected_graph, dist, 0, 4)

    def test_path_length_equals_distance(self, small_road):
        dist = dijkstra(small_road, 0)
        t = 130
        p = walk_path(small_road, dist, 0, t)
        assert p[0] == 0 and p[-1] == t
        assert path_length(small_road, p) == pytest.approx(dist[t])

    def test_directed_path(self):
        from repro.graphs import build_graph

        g = build_graph([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)], directed=True)
        dist = dijkstra(g, 0)
        assert walk_path(g, dist, 0, 2) == [0, 1, 2]

    def test_zero_weight_edges(self):
        from repro.graphs import build_graph

        g = build_graph([(0, 1, 0.0), (1, 2, 0.0)])
        dist = dijkstra(g, 0)
        p = walk_path(g, dist, 0, 2)
        assert p[0] == 0 and p[-1] == 2

    def test_zero_weight_plateau_with_dead_end_pocket(self):
        """A greedy backward walk can enter the {3, 4} plateau pocket
        and strand itself; reconstruction must back out of it."""
        from repro.graphs import build_graph

        g = build_graph(
            [
                (0, 1, 1.0),      # the real route: 0 -> 1 -> 2
                (1, 2, 0.0),
                (2, 3, 0.0),      # plateau pocket hanging off the target
                (3, 4, 0.0),
                (4, 2, 0.0),
            ]
        )
        dist = dijkstra(g, 0)
        p = walk_path(g, dist, 0, 2)
        assert p[0] == 0 and p[-1] == 2
        total = 0.0
        for u, v in zip(p, p[1:]):
            nbrs, ws = g.neighbors(u), g.neighbor_weights(u)
            total += float(ws[nbrs == v].min())
        assert total == pytest.approx(dist[2])


class TestBidirectionalStitch:
    def test_meeting_vertex_on_path(self, small_road):
        res = run_policy(small_road, BiDS(0, 100))
        m = meeting_vertex(res.dist[0], res.dist[1])
        assert res.dist[0][m] + res.dist[1][m] == pytest.approx(res.answer)

    def test_meeting_vertex_unreachable_raises(self, disconnected_graph):
        res = run_policy(disconnected_graph, BiDS(0, 4))
        with pytest.raises(PathError):
            meeting_vertex(res.dist[0], res.dist[1])

    def test_stitched_path_is_shortest(self, small_road):
        s, t = 0, 137
        res = run_policy(small_road, BiDS(s, t))
        p = stitch_bidirectional_path(small_road, res.dist[0], res.dist[1], s, t)
        assert p[0] == s and p[-1] == t
        assert path_length(small_road, p) == pytest.approx(res.answer)

    def test_stitched_path_no_duplicate_meeting_vertex(self, small_road):
        s, t = 3, 88
        res = run_policy(small_road, BiDS(s, t))
        p = stitch_bidirectional_path(small_road, res.dist[0], res.dist[1], s, t)
        assert len(p) == len(set(p))

    def test_directed_stitch(self):
        from repro.graphs import build_graph

        g = build_graph(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 9.0)], directed=True
        )
        res = run_policy(g, BiDS(0, 3))
        p = stitch_bidirectional_path(g, res.dist[0], res.dist[1], 0, 3)
        assert p == [0, 1, 2, 3]

    def test_adjacent_pair(self, small_road):
        s = 0
        t = int(small_road.neighbors(0)[0])
        res = run_policy(small_road, BiDS(s, t))
        p = stitch_bidirectional_path(small_road, res.dist[0], res.dist[1], s, t)
        assert p[0] == s and p[-1] == t
        assert path_length(small_road, p) == pytest.approx(res.answer)
