"""Named query-type API tests (the paper's Sec. 1 taxonomy)."""

import numpy as np
import pytest

from repro.baselines import dijkstra
from repro.core.query_types import arbitrary_batch, multi_stop, pairwise, ssmt, subset_apsp


class TestSSMT:
    def test_distances_exact(self, small_road):
        res = ssmt(small_road, 0, [10, 20, 30])
        ref = dijkstra(small_road, 0)
        for t in (10, 20, 30):
            assert res.distance(0, t) == pytest.approx(ref[t])

    def test_few_targets_uses_multi(self, small_road):
        res = ssmt(small_road, 0, [10, 20])
        assert res.method == "multi"

    def test_many_targets_uses_sssp(self, small_road):
        res = ssmt(small_road, 0, list(range(10, 22)))
        assert res.method == "sssp-vc"
        assert res.num_searches == 1

    def test_method_override(self, small_road):
        res = ssmt(small_road, 0, [10, 20], method="plain-bids")
        assert res.method == "plain-bids"


class TestPairwise:
    def test_full_matrix(self, small_knn):
        ws, ts = [0, 5], [100, 150, 200]
        res = pairwise(small_knn, ws, ts)
        assert len(res.distances) == 6
        for w in ws:
            ref = dijkstra(small_knn, w)
            for t in ts:
                assert res.distance(w, t) == pytest.approx(ref[t])


class TestMultiStop:
    def test_legs_and_trip_length(self, small_road):
        stops = [0, 40, 80, 120]
        res = multi_stop(small_road, stops)
        legs = [dijkstra(small_road, a)[b] for a, b in zip(stops[:-1], stops[1:])]
        assert res.details["trip_length"] == pytest.approx(sum(legs))

    def test_disconnected_leg_gives_inf_trip(self, disconnected_graph):
        res = multi_stop(disconnected_graph, [0, 2, 4], method="plain-bids")
        assert np.isinf(res.details["trip_length"])

    def test_vc_needs_every_other_stop(self, small_road):
        res = multi_stop(small_road, [0, 30, 60, 90, 120, 7], method="sssp-vc")
        assert res.num_searches <= 3


class TestSubsetApsp:
    def test_all_pairs_present(self, small_social):
        group = [1, 5, 9, 13]
        res = subset_apsp(small_social, group)
        assert len(res.distances) == 6
        ref = dijkstra(small_social, 1)
        assert res.distance(1, 9) == pytest.approx(ref[9])

    def test_symmetric_lookup(self, small_social):
        res = subset_apsp(small_social, [2, 4, 6])
        assert res.distance(6, 2) == res.distance(2, 6)


class TestArbitraryBatch:
    def test_overlapping_pairs(self, small_road):
        res = arbitrary_batch(small_road, [(0, 50), (50, 100), (0, 100)])
        ref0 = dijkstra(small_road, 0)
        ref50 = dijkstra(small_road, 50)
        assert res.distance(0, 50) == pytest.approx(ref0[50])
        assert res.distance(50, 100) == pytest.approx(ref50[100])
        assert res.distance(0, 100) == pytest.approx(ref0[100])

    def test_accepts_any_batch_method(self, small_road):
        for method in ("multi", "sssp-vc", "plain-bids"):
            res = arbitrary_batch(small_road, [(0, 9), (9, 18)], method=method)
            assert res.method == method
