"""BiDS and BiD-A* policy tests (Thm. 3.3 / Thm. 3.4)."""

import numpy as np
import pytest

from repro.baselines import dijkstra
from repro.core.engine import run_policy
from repro.core.policies import BiDAStar, BiDS, EarlyTermination
from repro.core.stepping import BellmanFord, DeltaStepping, DijkstraOrder, RhoStepping


class TestBiDS:
    def test_line_distance(self, line_graph):
        assert run_policy(line_graph, BiDS(0, 4)).answer == 10.0

    def test_source_equals_target(self, line_graph):
        assert run_policy(line_graph, BiDS(3, 3)).answer == 0.0

    def test_adjacent_pair(self, line_graph):
        assert run_policy(line_graph, BiDS(1, 2)).answer == 2.0

    def test_matches_dijkstra_many_pairs(self, random_graph_factory):
        g = random_graph_factory(100, 400, seed=2)
        rng = np.random.default_rng(0)
        for _ in range(10):
            s, t = rng.integers(0, 100, size=2)
            ref = dijkstra(g, int(s))[int(t)]
            got = run_policy(g, BiDS(int(s), int(t))).answer
            assert got == pytest.approx(ref), (s, t)

    @pytest.mark.parametrize(
        "strategy",
        [DeltaStepping(2.0), RhoStepping(4), BellmanFord(), DijkstraOrder()],
        ids=["delta", "rho", "bellman-ford", "dijkstra"],
    )
    def test_correct_under_any_stepping(self, strategy, random_graph_factory):
        """Thm. 3.3: the μ/2 prune is correct for *any* stepping algorithm."""
        g = random_graph_factory(60, 220, seed=3)
        ref = dijkstra(g, 0)[47]
        assert run_policy(g, BiDS(0, 47), strategy=strategy).answer == pytest.approx(ref)

    def test_mu_halving_prunes_work(self, small_road):
        s, t = 0, 20  # close pair: pruning should bite hard
        b = run_policy(small_road, BiDS(s, t), strategy=DeltaStepping(30.0))
        e = run_policy(small_road, EarlyTermination(s, t), strategy=DeltaStepping(30.0))
        assert b.relaxations <= e.relaxations

    def test_no_vertex_relaxed_beyond_half_mu(self, small_road):
        """After termination no *settled* vertex used by the run violated
        the μ/2 bound: distances strictly beyond μ/2 + max edge weight
        cannot have been expanded."""
        s, t = 3, 140
        res = run_policy(small_road, BiDS(s, t))
        mu = res.answer
        wmax = small_road.weights.max()
        for side in (0, 1):
            d = res.dist[side]
            finite = d[np.isfinite(d)]
            assert finite.max() <= mu / 2 + wmax + 1e-9

    def test_disconnected_early_exit(self, disconnected_graph):
        res = run_policy(disconnected_graph, BiDS(0, 4))
        assert np.isinf(res.answer)

    def test_disconnected_exit_saves_work(self):
        """App. B: with the optimization the search stops as soon as one
        side drains; without it both components are exhausted."""
        from repro.graphs import build_graph

        # Big component around s, tiny around t.
        edges = [(i, i + 1, 1.0) for i in range(50)] + [(60, 61, 1.0)]
        g = build_graph(edges, num_vertices=62)
        fast = run_policy(g, BiDS(0, 61))
        slow = run_policy(g, BiDS(0, 61, disconnected_early_exit=False))
        assert np.isinf(fast.answer) and np.isinf(slow.answer)
        assert fast.relaxations <= slow.relaxations

    def test_directed_cycle(self):
        from repro.graphs import build_graph

        g = build_graph(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)], directed=True
        )
        assert run_policy(g, BiDS(0, 3)).answer == 3.0
        assert run_policy(g, BiDS(3, 0)).answer == 1.0


class TestBiDAStar:
    def test_road_distance(self, small_road):
        ref = dijkstra(small_road, 0)
        res = run_policy(small_road, BiDAStar(0, 143))
        assert res.answer == pytest.approx(ref[143])

    def test_knn_distance(self, small_knn):
        ref = dijkstra(small_knn, 10)
        res = run_policy(small_knn, BiDAStar(10, 250))
        assert res.answer == pytest.approx(ref[250])

    def test_many_random_pairs_road(self, small_road):
        rng = np.random.default_rng(4)
        n = small_road.num_vertices
        for _ in range(8):
            s, t = (int(x) for x in rng.integers(0, n, size=2))
            ref = dijkstra(small_road, s)[t]
            got = run_policy(small_road, BiDAStar(s, t)).answer
            if np.isinf(ref):
                assert np.isinf(got)
            else:
                assert got == pytest.approx(ref), (s, t)

    @pytest.mark.parametrize(
        "strategy",
        [DeltaStepping(25.0), RhoStepping(8), BellmanFord()],
        ids=["delta", "rho", "bellman-ford"],
    )
    def test_correct_under_any_stepping(self, strategy, small_road):
        """Thm. 3.4 holds for any stepping algorithm."""
        ref = dijkstra(small_road, 2)[130]
        got = run_policy(small_road, BiDAStar(2, 130), strategy=strategy).answer
        assert got == pytest.approx(ref)

    def test_heuristics_sum_to_zero(self, small_road):
        """Consistency fix of Sec. 3.5: h_F(v) + h_B(v) = 0 for all v."""
        res = run_policy(small_road, BiDAStar(0, 100))
        pol = res.policy
        n = small_road.num_vertices
        v = np.arange(n)
        hf = pol._h_signed(v)          # forward ids: e = v
        hb = pol._h_signed(v + n)      # backward ids: e = n + v
        assert np.allclose(hf + hb, 0.0)

    def test_source_equals_target(self, small_road):
        assert run_policy(small_road, BiDAStar(9, 9)).answer == 0.0

    def test_needs_coordinates(self, small_social):
        with pytest.raises(ValueError, match="no coordinates"):
            run_policy(small_social, BiDAStar(0, 5))

    def test_memoization_flag_threads_through(self, small_road):
        res = run_policy(small_road, BiDAStar(0, 100, memoize=True))
        assert res.policy.h_s.calls > res.policy.h_s.evaluated

    def test_prunes_at_least_as_well_as_bids_far_pair(self, small_road):
        """For a far pair the heuristic guidance should not increase work
        much; typically it decreases it."""
        s, t = 0, small_road.num_vertices - 1
        ba = run_policy(small_road, BiDAStar(s, t), strategy=DeltaStepping(30.0))
        b = run_policy(small_road, BiDS(s, t), strategy=DeltaStepping(30.0))
        assert ba.relaxations <= b.relaxations * 1.2

    def test_disconnected(self):
        from repro.graphs import from_edges

        coords = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 0.0], [6.0, 0.0]])
        g = from_edges(
            [0, 2], [1, 3], [1.5, 1.5],
            num_vertices=4, coords=coords, coord_system="euclidean",
        )
        assert np.isinf(run_policy(g, BiDAStar(0, 3)).answer)
