"""SSSP convenience wrapper tests."""

import numpy as np
import pytest

from repro.baselines import dijkstra
from repro.core.sssp import sssp, sssp_distances
from repro.core.stepping import RhoStepping


class TestSssp:
    def test_matches_oracle(self, small_social):
        assert np.allclose(sssp_distances(small_social, 0), dijkstra(small_social, 0))

    def test_result_carries_meter(self, line_graph):
        res = sssp(line_graph, 0)
        assert res.meter.work > 0
        assert res.steps > 0

    def test_strategy_passthrough(self, small_road):
        got = sssp_distances(small_road, 3, strategy=RhoStepping(7))
        assert np.allclose(got, dijkstra(small_road, 3))

    def test_unreachable_inf(self, disconnected_graph):
        d = sssp_distances(disconnected_graph, 3)
        assert d[3] == 0.0 and d[4] == 1.0
        assert np.isinf(d[0])

    def test_every_source_consistent(self, small_knn):
        """Symmetric graph: d(a, b) == d(b, a) across full SSSP runs."""
        da = sssp_distances(small_knn, 0)
        db = sssp_distances(small_knn, 99)
        assert da[99] == pytest.approx(db[0])

    def test_triangle_inequality_holds(self, small_road):
        """SSSP distances satisfy d(s,v) <= d(s,u) + w(u,v) for all edges."""
        d = sssp_distances(small_road, 0)
        src, dst, w = small_road.edges()
        finite = np.isfinite(d[src])
        assert (d[dst][finite] <= d[src][finite] + w[finite] + 1e-9).all()
