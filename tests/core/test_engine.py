"""PPSP engine tests: the shared Alg. 2 executor."""

import numpy as np
import pytest

from repro.baselines import dijkstra
from repro.core.engine import PPSPEngine, run_policy
from repro.core.policies import BiDS, EarlyTermination, SsspPolicy
from repro.core.stepping import BellmanFord, DeltaStepping


class TestBasicExecution:
    def test_line_graph_distances(self, line_graph):
        res = run_policy(line_graph, SsspPolicy(0))
        assert np.allclose(res.distances_from(0), [0, 1, 3, 6, 10])

    def test_diamond_takes_cheaper_route(self, diamond_graph):
        res = run_policy(diamond_graph, SsspPolicy(0))
        assert res.distances_from(0)[3] == 3.0

    def test_unreachable_is_inf(self, disconnected_graph):
        res = run_policy(disconnected_graph, SsspPolicy(0))
        d = res.distances_from(0)
        assert np.isinf(d[3]) and np.isinf(d[4])

    def test_source_distance_zero(self, line_graph):
        res = run_policy(line_graph, SsspPolicy(2))
        assert res.distances_from(0)[2] == 0.0

    def test_result_shape_matches_num_sources(self, line_graph):
        res = run_policy(line_graph, BiDS(0, 4))
        assert res.dist.shape == (2, 5)

    def test_steps_and_relaxations_counted(self, line_graph):
        res = run_policy(line_graph, SsspPolicy(0))
        assert res.steps >= 1
        assert res.relaxations >= 4

    def test_meter_accumulates(self, line_graph):
        res = run_policy(line_graph, SsspPolicy(0))
        assert res.meter.work > 0
        assert res.meter.steps == res.steps
        assert len(res.meter.step_work) == res.steps


class TestEngineOptions:
    def test_max_steps_truncates(self, small_road):
        res = run_policy(small_road, SsspPolicy(0), max_steps=2)
        assert res.steps == 2

    @pytest.mark.parametrize("mode", ["auto", "sparse", "dense"])
    def test_frontier_modes_agree(self, small_road, mode):
        res = run_policy(small_road, SsspPolicy(0), frontier_mode=mode)
        assert np.allclose(res.distances_from(0), dijkstra(small_road, 0))

    def test_pull_relax_same_answer(self, small_road):
        a = run_policy(small_road, SsspPolicy(0))
        b = run_policy(small_road, SsspPolicy(0), pull_relax=True)
        assert np.allclose(a.distances_from(0), b.distances_from(0))

    def test_pull_relax_never_more_steps(self, small_knn):
        """Pull relaxation tightens distances earlier, so steps can only
        stay equal or drop."""
        a = run_policy(small_knn, SsspPolicy(0), strategy=DeltaStepping(50.0))
        b = run_policy(
            small_knn, SsspPolicy(0), strategy=DeltaStepping(50.0), pull_relax=True
        )
        assert b.steps <= a.steps
        assert np.allclose(a.distances_from(0), b.distances_from(0))

    def test_external_meter_used(self, line_graph):
        from repro.parallel.cost_model import WorkDepthMeter

        m = WorkDepthMeter()
        res = run_policy(line_graph, SsspPolicy(0), meter=m)
        assert res.meter is m
        assert m.work > 0

    def test_engine_reusable_across_runs(self, small_road):
        eng = PPSPEngine(small_road)
        r1 = eng.run(SsspPolicy(0))
        r2 = eng.run(SsspPolicy(5))
        assert np.allclose(r1.distances_from(0), dijkstra(small_road, 0))
        assert np.allclose(r2.distances_from(0), dijkstra(small_road, 5))


class TestDirectedGraphs:
    def test_directed_sssp(self):
        from repro.graphs import build_graph

        g = build_graph([(0, 1, 1.0), (1, 2, 1.0)], directed=True)
        d = run_policy(g, SsspPolicy(0)).distances_from(0)
        assert list(d) == [0.0, 1.0, 2.0]
        d2 = run_policy(g, SsspPolicy(2)).distances_from(0)
        assert np.isinf(d2[0]) and np.isinf(d2[1])

    def test_directed_bids_uses_reverse_for_backward(self):
        from repro.graphs import build_graph

        # One-way path 0 -> 1 -> 2: BiDS backward search from 2 must
        # traverse reversed arcs to meet the forward search.
        g = build_graph([(0, 1, 2.0), (1, 2, 3.0)], directed=True)
        res = run_policy(g, BiDS(0, 2))
        assert res.answer == 5.0

    def test_directed_asymmetric_distances(self):
        from repro.graphs import build_graph

        g = build_graph([(0, 1, 1.0), (1, 0, 7.0)], directed=True)
        assert run_policy(g, BiDS(0, 1)).answer == 1.0
        assert run_policy(g, BiDS(1, 0)).answer == 7.0


class TestEdgeCases:
    def test_single_vertex_graph(self):
        from repro.graphs import build_graph

        g = build_graph([], num_vertices=1)
        res = run_policy(g, SsspPolicy(0))
        assert res.distances_from(0)[0] == 0.0

    def test_source_out_of_range_rejected(self, line_graph):
        with pytest.raises(ValueError):
            run_policy(line_graph, SsspPolicy(99))

    def test_zero_weight_edges(self):
        from repro.graphs import build_graph

        g = build_graph([(0, 1, 0.0), (1, 2, 0.0), (2, 3, 1.0)])
        d = run_policy(g, SsspPolicy(0)).distances_from(0)
        assert list(d) == [0.0, 0.0, 0.0, 1.0]

    def test_parallel_edges_resolved_to_min(self):
        from repro.graphs import from_edges

        g = from_edges([0, 0], [1, 1], [5.0, 3.0], num_vertices=2)
        assert run_policy(g, SsspPolicy(0)).distances_from(0)[1] == 3.0

    def test_et_terminates_under_bellman_ford(self, small_social):
        res = run_policy(small_social, EarlyTermination(0, 5), strategy=BellmanFord())
        assert res.answer == dijkstra(small_social, 0)[5]
