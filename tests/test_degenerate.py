"""Degenerate inputs: boundary queries, bad ids, bad weights, empty batches.

Robustness satellite of the framework: every edge case must produce
either a correct answer or a clear, early error — never a cryptic numpy
traceback from deep inside the engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import batch_ppsp, ppsp, validate_query
from repro.core.paths import PathError
from repro.graphs import build_graph, from_edges
from repro.graphs.csr import Graph
from repro.heuristics import ZeroHeuristic

METHODS = ["sssp", "et", "bids", "astar", "bidastar"]
BATCH_METHODS = ["multi", "plain-bids", "plain-star-bids", "sssp-plain", "sssp-vc"]


def _run(graph, s, t, method):
    """ppsp() with explicit zero heuristics on coordinate-free graphs."""
    kwargs = {}
    if graph.coords is None:
        if method == "astar":
            kwargs["heuristic"] = ZeroHeuristic()
        elif method == "bidastar":
            kwargs["heuristic_to_source"] = ZeroHeuristic()
            kwargs["heuristic_to_target"] = ZeroHeuristic()
    return ppsp(graph, s, t, method=method, **kwargs)


class TestSourceEqualsTarget:
    @pytest.mark.parametrize("method", METHODS)
    def test_distance_zero(self, small_road, method):
        ans = ppsp(small_road, 7, 7, method=method)
        assert ans.distance == 0.0
        assert ans.exact
        assert ans.reachable

    @pytest.mark.parametrize("method", METHODS)
    def test_trivial_path(self, small_road, method):
        assert ppsp(small_road, 7, 7, method=method).path() == [7]

    def test_batch_with_identical_pair(self, small_road):
        res = batch_ppsp(small_road, [(3, 3), (0, 10)])
        assert res.distances[(3, 3)] == 0.0


class TestUnreachable:
    @pytest.mark.parametrize("method", METHODS)
    def test_infinite_distance(self, disconnected_graph, method):
        ans = _run(disconnected_graph, 0, 4, method)
        assert np.isinf(ans.distance)
        assert ans.exact  # proven disconnected, not budget-limited
        assert not ans.reachable

    @pytest.mark.parametrize("method", METHODS)
    def test_path_raises_path_error(self, disconnected_graph, method):
        ans = _run(disconnected_graph, 0, 4, method)
        with pytest.raises(PathError):
            ans.path()

    @pytest.mark.parametrize("method", BATCH_METHODS)
    def test_batch_mixes_reachable_and_not(self, disconnected_graph, method):
        res = batch_ppsp(disconnected_graph, [(0, 2), (0, 4)], method=method)
        assert res.distances[(0, 2)] == pytest.approx(2.0)
        assert np.isinf(res.distances[(0, 4)])


class TestEmptyBatch:
    @pytest.mark.parametrize("queries", [[], ()])
    def test_empty_queries(self, small_road, queries):
        res = batch_ppsp(small_road, queries)
        assert res.distances == {}
        assert res.num_searches == 0
        assert res.exact

    def test_unknown_method_still_rejected(self, small_road):
        with pytest.raises(ValueError, match="unknown"):
            batch_ppsp(small_road, [], method="bogus")


class TestEndpointValidation:
    @pytest.mark.parametrize("bad", [-1, 144, 10**9])
    def test_ppsp_bad_source(self, small_road, bad):
        with pytest.raises(ValueError, match=f"source vertex {bad} out of range"):
            ppsp(small_road, bad, 0)

    @pytest.mark.parametrize("bad", [-5, 144])
    def test_ppsp_bad_target(self, small_road, bad):
        with pytest.raises(ValueError, match=f"target vertex {bad} out of range"):
            ppsp(small_road, 0, bad)

    def test_error_names_graph(self, small_road):
        with pytest.raises(ValueError, match="'small-road' with 144 vertices"):
            ppsp(small_road, 0, 999)

    def test_empty_graph_rejected(self):
        g = from_edges([], [], [], num_vertices=0)
        with pytest.raises(ValueError, match="no vertices"):
            ppsp(g, 0, 0)

    def test_validate_query_is_public(self, small_road):
        validate_query(small_road, 0, 143)  # fine
        with pytest.raises(ValueError):
            validate_query(small_road, 0, 144)

    @pytest.mark.parametrize("method", BATCH_METHODS)
    def test_batch_bad_endpoint(self, small_road, method):
        with pytest.raises(ValueError, match=r"vertex 999 out of range"):
            batch_ppsp(small_road, [(0, 5), (3, 999)], method=method)


class TestBadWeightsRejectedAtConstruction:
    def test_negative_weight_names_edge(self):
        with pytest.raises(ValueError, match=r"edge #1 \(0 -> 2\) has negative"):
            build_graph([(0, 1, 1.0), (0, 2, -3.0)], directed=True)

    def test_nan_weight_names_edge(self):
        with pytest.raises(ValueError, match=r"edge #0 \(0 -> 1\) has NaN"):
            build_graph([(0, 1, float("nan"))], directed=True)

    def test_first_bad_edge_reported(self):
        with pytest.raises(ValueError, match="edge #1"):
            build_graph(
                [(0, 1, 1.0), (1, 2, -1.0), (2, 3, -2.0)], directed=True
            )

    def test_validate_false_escape_hatch(self):
        # Diagnostic loads (repro info) may bypass checks deliberately.
        g = Graph(
            indptr=np.array([0, 1, 1], dtype=np.int64),
            indices=np.array([1], dtype=np.int64),
            weights=np.array([-5.0]),
            directed=True,
            validate=False,
        )
        assert g.num_edges == 1

    def test_zero_weight_is_fine(self):
        g = build_graph([(0, 1, 0.0)], directed=True)
        assert ppsp(g, 0, 1, method="sssp").distance == 0.0
