"""Shared fixtures: small graphs with known answers plus random factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import build_graph, knn_graph, road_graph, social_graph
from repro.graphs.knn import uniform_points


@pytest.fixture
def line_graph():
    """0-1-2-3-4 path with weights 1, 2, 3, 4 (d(0,4) = 10)."""
    return build_graph([(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 4, 4.0)], name="line")


@pytest.fixture
def diamond_graph():
    """Two parallel 0->3 routes: 0-1-3 (cost 3) and 0-2-3 (cost 4)."""
    return build_graph(
        [(0, 1, 1.0), (1, 3, 2.0), (0, 2, 3.0), (2, 3, 1.0)], name="diamond"
    )


@pytest.fixture
def disconnected_graph():
    """Two components: {0,1,2} and {3,4}."""
    return build_graph(
        [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)], num_vertices=5, name="disco"
    )


@pytest.fixture
def small_road():
    """A 12x12 road grid with spherical coordinates (144 vertices)."""
    return road_graph(12, 12, seed=3, name="small-road")


@pytest.fixture
def small_knn():
    """A 5-NN graph over 300 uniform 2-D points."""
    return knn_graph(uniform_points(300, 2, seed=4), k=5, name="small-knn")


@pytest.fixture
def small_social():
    """A power-law graph with 400 vertices."""
    return social_graph(400, avg_degree=8, seed=5, name="small-social")


def random_graph(n: int, m: int, seed: int, *, directed: bool = False, max_w: float = 10.0):
    """A random multigraph-ish test instance (dedupe keeps min weight)."""
    from repro.graphs import from_edges

    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    keep = src != dst
    w = rng.uniform(0.1, max_w, size=keep.sum())
    return from_edges(
        src[keep], dst[keep], w, num_vertices=n, directed=directed, dedupe=True,
        name=f"rand-{n}-{m}-{seed}",
    )


@pytest.fixture
def random_graph_factory():
    return random_graph
