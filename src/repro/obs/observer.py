"""The Observer: the single, default-off hook the hot paths report to.

Instrumented call sites (:class:`~repro.core.engine.PPSPEngine`,
:class:`~repro.core.frontier.Frontier`,
:func:`~repro.core.batch.solve_batch`,
:class:`~repro.perf.warm.WarmEngine`,
:func:`~repro.robustness.resilient.resilient_ppsp`,
:class:`~repro.serve.pipeline.ServePipeline`,
:class:`~repro.heuristics.landmarks.LandmarkSet`) all take an optional
``observer``; when it is ``None`` — the default everywhere — the only
cost is the ``is not None`` test, so production paths that do not opt in
pay nothing (the overhead-guard test pins this: zero new allocations,
identical deterministic counters).

With an observer installed, every run/cache/fallback event updates two
sinks at once:

* the **metrics registry** — process-lifetime counters/histograms in
  the catalogue of ``docs/observability.md``, exported via
  :func:`~repro.obs.exposition.render_prometheus` /
  :func:`~repro.obs.exposition.render_json`;
* the **current span**, if one is open — the per-query record
  (:class:`~repro.obs.span.QuerySpan`) wrapping one PPSP or batch
  execution::

      obs = Observer()
      with obs.span("bidastar", source=s, target=t) as span:
          engine.query(s, t, method="bidastar")
      span.to_json()   # work, depth, steps, pruned, mu-settled, caches...

Engine runs under an observer always carry a
:class:`~repro.core.tracing.StepTrace` (the observer supplies one when
the caller didn't), which is where per-step prune counts and the
μ-settlement step come from — the pay-for-use part of the contract.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from ..core.tracing import StepTrace
from .registry import DEFAULT_BUCKETS, TIME_BUCKETS, MetricsRegistry
from .span import QuerySpan

__all__ = ["Observer", "policy_label"]

#: policy class name -> the public method label used on metrics.
_POLICY_LABELS = {
    "SsspPolicy": "sssp",
    "EarlyTermination": "et",
    "AStar": "astar",
    "BiDS": "bids",
    "BiDAStar": "bidastar",
    "MultiPPSP": "multi",
}


def policy_label(policy) -> str:
    """The metrics label of a policy instance (``bids``, ``multi``, ...)."""
    return _POLICY_LABELS.get(type(policy).__name__, type(policy).__name__.lower())


class Observer:
    """Aggregates engine/cache/fallback events into metrics and spans.

    Parameters
    ----------
    registry : MetricsRegistry, optional
        Share one registry between several observers (e.g. per-tenant
        observers over one process-wide exposition endpoint); defaults
        to a private registry.
    max_spans : int
        Completed spans retained in :attr:`spans` (oldest dropped
        first); metrics are unaffected by this bound.
    """

    def __init__(self, *, registry: MetricsRegistry | None = None, max_spans: int = 256) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.max_spans = int(max_spans)
        self.spans: list[QuerySpan] = []
        self._span: QuerySpan | None = None
        r = self.registry
        self._runs = r.counter(
            "repro_runs_total", "Engine runs completed", ("policy",))
        self._steps = r.counter(
            "repro_steps_total", "Engine steps (rounds of Alg. 2) executed", ("policy",))
        self._relaxations = r.counter(
            "repro_relaxations_total", "Edge relaxations performed", ("policy",))
        self._pruned = r.counter(
            "repro_pruned_total", "Frontier elements pruned (Prune of Alg. 2)", ("policy",))
        self._work_hist = r.histogram(
            "repro_run_work", "Work (unit operations) per engine run", ("policy",),
            buckets=DEFAULT_BUCKETS)
        self._depth_hist = r.histogram(
            "repro_run_depth", "Depth (critical path) per engine run", ("policy",),
            buckets=DEFAULT_BUCKETS)
        self._mu_settled = r.histogram(
            "repro_mu_settled_fraction",
            "mu-settlement step as a fraction of total steps (settle early = small)",
            ("policy",),
            buckets=(0.1, 0.25, 0.5, 0.75, 0.9, 1.0))
        self._frontier_peak = r.histogram(
            "repro_frontier_peak", "Peak frontier size per traced run", ("policy",),
            buckets=DEFAULT_BUCKETS)
        self._frontier_switches = r.counter(
            "repro_frontier_switches_total",
            "Sparse<->dense frontier representation switches (App. B)", ("to",))
        self._cache_events = r.counter(
            "repro_cache_events_total",
            "Warm-layer cache traffic (result / heuristic / landmark_h_row)",
            ("layer", "event"))
        self._batches = r.counter(
            "repro_batches_total", "Batch executions", ("method",))
        self._batch_searches = r.counter(
            "repro_batch_searches_total", "Concurrent searches launched by batches",
            ("method",))
        self._fallback = r.counter(
            "repro_fallback_attempts_total",
            "Fallback-chain rung attempts by outcome", ("method", "outcome"))
        self._retries = r.counter(
            "repro_fallback_retries_total", "Transient-failure retries in fallback chains")
        self._budget_exhausted = r.counter(
            "repro_budget_exhausted_total", "Runs stopped by an execution budget", ("limit",))
        self._query_seconds = r.histogram(
            "repro_query_seconds", "Wall-clock time of observed spans", ("method",),
            buckets=TIME_BUCKETS)
        self._serve_queries = r.counter(
            "repro_serve_queries_total",
            "Serve-pipeline queries by terminal outcome "
            "(ok / inexact / shed / timeout / failed / repaired)", ("outcome",))
        self._serve_deadline = r.counter(
            "repro_serve_deadline_misses_total",
            "Queries whose deadline expired before execution began")
        self._serve_checkpoints = r.counter(
            "repro_serve_checkpoints_total",
            "Durable checkpoint events (write / resume)", ("event",))
        self._breaker_state = r.gauge(
            "repro_breaker_state",
            "Circuit-breaker state per method (0 closed, 1 half-open, 2 open)",
            ("method",))
        self._breaker_transitions = r.counter(
            "repro_breaker_transitions_total",
            "Circuit-breaker state transitions", ("method", "to"))
        self._verify_checks = r.counter(
            "repro_verify_checks_total",
            "Certificate/answer verifications by outcome "
            "(valid / invalid / unproven / confirmed)", ("outcome",))
        self._verify_check_count = r.histogram(
            "repro_verify_check_count",
            "Individual facts checked per certificate verification",
            buckets=(1, 2, 5, 10, 20, 50, 100, 200))
        self._verify_repairs = r.counter(
            "repro_verify_repairs_total",
            "Exact recomputes triggered by refuted answers (repaired / failed)",
            ("result",))
        self._verify_quarantine = r.counter(
            "repro_verify_quarantine_total",
            "Corrupt state quarantined instead of served "
            "(result-cache / checkpoint)", ("layer",))
        self._pool_batches = r.counter(
            "repro_pool_batches_total",
            "Batches executed on the process-pool backend", ("method",))
        self._pool_shards = r.counter(
            "repro_pool_shards_total",
            "Pool shards by completion status (ok / crashed)", ("status",))
        self._pool_workers = r.gauge(
            "repro_pool_workers",
            "Worker processes of the most recent pool batch")
        self._pool_shard_seconds = r.histogram(
            "repro_pool_shard_seconds",
            "Wall-clock from shard dispatch to shard completion",
            buckets=TIME_BUCKETS)
        self._pool_crashes = r.counter(
            "repro_pool_worker_crashes_total",
            "Pool workers that died mid-shard (SIGKILL/OOM)")
        self._service_depth = r.gauge(
            "repro_service_queue_depth",
            "Distinct queries waiting in the micro-batcher's submission queue")
        self._service_batches = r.counter(
            "repro_service_batches_total",
            "Coalesced batches flushed by trigger "
            "(size / pressure / wait / drain / shutdown / manual)", ("reason",))
        self._service_coalesce = r.histogram(
            "repro_service_coalesce_size",
            "Distinct queries per coalesced service batch",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128))
        self._service_wait = r.histogram(
            "repro_service_coalesce_wait_seconds",
            "Longest submission-queue wait inside each coalesced batch",
            buckets=TIME_BUCKETS)
        self._service_dedup = r.counter(
            "repro_service_dedup_total",
            "Submissions coalesced into an already-queued identical query")
        self._service_respawns = r.counter(
            "repro_service_worker_respawns_total",
            "Pool worker respawns observed by the query service")
        self._pool_ping_failures = r.counter(
            "repro_pool_ping_failures_total",
            "Pool health-check probes that failed, by exception class",
            ("error",))
        self._pool_shard_timeouts = r.counter(
            "repro_pool_shard_timeouts_total",
            "Shards that produced no result within their deadline")
        self._pool_suspects = r.counter(
            "repro_pool_suspect_workers_total",
            "Worker-set quarantines (deadline timeout / stuck straggler)",
            ("reason",))
        self._hedge_launched = r.counter(
            "repro_hedge_launched_total",
            "Backup shard executions launched for stragglers")
        self._hedge_races = r.counter(
            "repro_hedge_races_total",
            "Resolved hedge races by winning lane (primary / hedge)",
            ("winner",))
        self._hedge_denied = r.counter(
            "repro_hedge_denied_total",
            "Hedges skipped because the retry budget was dry")
        self._hedge_delay = r.histogram(
            "repro_hedge_delay_seconds",
            "Straggler age when its hedge launched",
            buckets=TIME_BUCKETS)
        self._overload_decisions = r.counter(
            "repro_overload_decisions_total",
            "Degradation-ladder decisions (exact / inexact / shed)",
            ("mode",))
        self._overload_shed = r.counter(
            "repro_overload_shed_total",
            "Submissions shed at the door by queue-delay overload control")
        self._overload_aimd = r.gauge(
            "repro_overload_aimd_limit",
            "Current AIMD in-flight batch concurrency limit")
        self._retry_denials = r.counter(
            "repro_overload_retry_denials_total",
            "Retry-budget denials by kind (hedge / retry)",
            ("kind",))
        self._kernel_calls = r.counter(
            "repro_kernel_invocations_total",
            "scatter_min kernel invocations by concrete implementation",
            ("impl",))
        self._kernel_elements = r.counter(
            "repro_kernel_elements_total",
            "Elements scattered through each kernel implementation",
            ("impl",))
        self._kernel_dispatch = r.counter(
            "repro_kernel_dispatch_total",
            "Auto-dispatch decisions routed to each implementation",
            ("impl",))

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    @property
    def current_span(self) -> QuerySpan | None:
        return self._span

    @contextmanager
    def span(self, method: str, *, source: int | None = None, target: int | None = None):
        """Open a :class:`QuerySpan`; events inside fold into it.

        Spans nest: an inner span shadows the outer one for its
        duration (events fold into the innermost open span only).
        """
        span = QuerySpan(
            method=str(method),
            source=None if source is None else int(source),
            target=None if target is None else int(target),
        )
        prev, self._span = self._span, span
        t0 = time.perf_counter()
        try:
            yield span
        finally:
            span.wall_seconds = time.perf_counter() - t0
            self._span = prev
            self.spans.append(span)
            if len(self.spans) > self.max_spans:
                del self.spans[: len(self.spans) - self.max_spans]
            self._query_seconds.observe(span.wall_seconds, method=span.method)

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def begin_run(self, policy, trace: StepTrace | None) -> StepTrace:
        """Engine run start: ensure a StepTrace exists for this run."""
        return trace if trace is not None else StepTrace()

    def end_run(self, result, trace: StepTrace | None) -> None:
        """Engine run end: fold the result into metrics and the span."""
        label = policy_label(result.policy)
        self._runs.inc(policy=label)
        self._steps.inc(result.steps, policy=label)
        self._relaxations.inc(result.relaxations, policy=label)
        self._work_hist.observe(result.meter.work, policy=label)
        self._depth_hist.observe(result.meter.depth, policy=label)
        if trace is not None and len(trace):
            self._pruned.inc(trace.total_pruned(), policy=label)
            self._frontier_peak.observe(trace.peak_frontier(), policy=label)
            settled = trace.mu_settled_step()
            if settled is not None and result.steps > 0:
                self._mu_settled.observe((settled + 1) / result.steps, policy=label)
        if result.exhausted and result.budget_report is not None:
            reason = result.budget_report.reason or ""
            limit = reason.split("=", 1)[0] if "=" in reason else "unknown"
            self._budget_exhausted.inc(limit=limit)
        if self._span is not None:
            self._span.fold_run(result, trace)

    def on_frontier_switch(self, to_dense: bool, size: int) -> None:
        """Frontier hook: one sparse<->dense representation switch."""
        self._frontier_switches.inc(to="dense" if to_dense else "sparse")

    def on_kernel(self, stats: dict) -> None:
        """Kernel hook: fold one run's scatter-min tallies into counters.

        ``stats`` maps a concrete impl name to its ``{"calls", "elements",
        "dispatched"}`` totals, as returned by
        :meth:`repro.kernels.scatter.Kernel.take_stats`.
        """
        for impl, s in stats.items():
            if s.get("calls"):
                self._kernel_calls.inc(s["calls"], impl=impl)
            if s.get("elements"):
                self._kernel_elements.inc(s["elements"], impl=impl)
            if s.get("dispatched"):
                self._kernel_dispatch.inc(s["dispatched"], impl=impl)

    # ------------------------------------------------------------------
    # Batch / cache / fallback hooks
    # ------------------------------------------------------------------
    def on_batch(self, method: str, result) -> None:
        self._batches.inc(method=method)
        self._batch_searches.inc(result.num_searches, method=method)
        if self._span is not None:
            self._span.batch_searches += result.num_searches

    def on_cache(self, layer: str, event: str) -> None:
        self._cache_events.inc(layer=layer, event=event)
        if self._span is not None:
            self._span.fold_cache(layer, event)

    def on_fallback(self, method: str, attempt: int, outcome: str) -> None:
        self._fallback.inc(method=method, outcome=outcome)
        if attempt > 1:
            self._retries.inc()
        if self._span is not None:
            self._span.fold_fallback(method, attempt, outcome)

    # ------------------------------------------------------------------
    # Process-pool hooks
    # ------------------------------------------------------------------
    def on_pool_batch(self, method: str, workers: int, shards: int) -> None:
        """Pool hook: one batch dispatched to the process backend."""
        self._pool_batches.inc(method=method)
        self._pool_workers.set(workers)

    def on_pool_shard(self, status: str, seconds: float) -> None:
        """Pool hook: one shard reached a terminal status (ok / crashed)."""
        self._pool_shards.inc(status=status)
        self._pool_shard_seconds.observe(seconds)

    def on_pool_crash(self) -> None:
        """Pool hook: a worker process died mid-shard."""
        self._pool_crashes.inc()

    def on_pool_ping_failure(self, error: str) -> None:
        """Pool hook: one health probe failed (``error`` = exception class)."""
        self._pool_ping_failures.inc(error=error)

    def on_shard_timeout(self) -> None:
        """Pool hook: a shard hit its deadline with no result."""
        self._pool_shard_timeouts.inc()

    def on_worker_suspect(self, reason: str) -> None:
        """Pool hook: the worker set was quarantined (killed + respawn)."""
        self._pool_suspects.inc(reason=reason)

    # ------------------------------------------------------------------
    # Hedging hooks (straggler defense)
    # ------------------------------------------------------------------
    def on_hedge_launch(self, delay_s: float) -> None:
        """Hedge hook: a backup shard launched after ``delay_s`` waiting."""
        self._hedge_launched.inc()
        self._hedge_delay.observe(delay_s)

    def on_hedge_result(self, winner: str) -> None:
        """Hedge hook: a race resolved (``winner`` = primary / hedge)."""
        self._hedge_races.inc(winner=winner)

    def on_hedge_denied(self) -> None:
        """Hedge hook: the retry budget refused a backup launch."""
        self._hedge_denied.inc()

    # ------------------------------------------------------------------
    # Overload-control hooks
    # ------------------------------------------------------------------
    def on_overload_decision(self, mode: str) -> None:
        """Overload hook: one ladder decision (exact / inexact / shed)."""
        self._overload_decisions.inc(mode=mode)

    def on_overload_shed(self) -> None:
        """Overload hook: a submission was shed at the door."""
        self._overload_shed.inc()

    def on_aimd_limit(self, limit: float) -> None:
        """Overload hook: the AIMD batch-concurrency limit moved."""
        self._overload_aimd.set(limit)

    def on_retry_denied(self, kind: str) -> None:
        """Overload hook: the retry budget denied a token (hedge / retry)."""
        self._retry_denials.inc(kind=kind)

    # ------------------------------------------------------------------
    # Serve-pipeline hooks
    # ------------------------------------------------------------------
    def on_serve_query(self, outcome: str) -> None:
        """Pipeline hook: one query reached a terminal outcome."""
        self._serve_queries.inc(outcome=outcome)

    def on_deadline_miss(self) -> None:
        """Pipeline hook: a deadline expired while the query was queued."""
        self._serve_deadline.inc()

    def on_checkpoint(self, event: str) -> None:
        """Pipeline hook: a durable checkpoint was written or resumed."""
        self._serve_checkpoints.inc(event=event)

    # ------------------------------------------------------------------
    # Query-service hooks (micro-batcher)
    # ------------------------------------------------------------------
    def on_service_queue(self, depth: int) -> None:
        """Service hook: the submission queue's current distinct depth."""
        self._service_depth.set(depth)

    def on_service_flush(self, reason: str, size: int, waited_s: float) -> None:
        """Service hook: one coalesced batch left the queue for execution."""
        self._service_batches.inc(reason=reason)
        self._service_coalesce.observe(size)
        self._service_wait.observe(waited_s)

    def on_service_dedup(self) -> None:
        """Service hook: a duplicate (s, t) submission coalesced."""
        self._service_dedup.inc()

    def on_service_respawn(self, count: int = 1) -> None:
        """Service hook: the pool respawned crashed workers."""
        self._service_respawns.inc(count)

    # ------------------------------------------------------------------
    # Verification hooks (certificates, quarantine, repair)
    # ------------------------------------------------------------------
    def on_verify(self, outcome: str, *, checks: int = 0) -> None:
        """One answer verification finished (valid / invalid / unproven /
        confirmed); ``checks`` is the number of individual facts the
        certificate checker evaluated."""
        self._verify_checks.inc(outcome=outcome)
        if checks:
            self._verify_check_count.observe(checks)
        if self._span is not None:
            self._span.fold_verify(f"verify-{outcome}")

    def on_repair(self, result: str) -> None:
        """One exact recompute of a refuted answer (repaired / failed)."""
        self._verify_repairs.inc(result=result)
        if self._span is not None:
            self._span.fold_verify(f"repair-{result}")

    def on_quarantine(self, layer: str) -> None:
        """Corrupt state dropped instead of served (result-cache /
        checkpoint)."""
        self._verify_quarantine.inc(layer=layer)
        if self._span is not None:
            self._span.fold_verify(f"quarantine-{layer}")

    def on_breaker(self, method: str, state: str, *, transition: bool = True) -> None:
        """Breaker hook: mirror the state machine onto the gauge.

        ``transition=False`` is the initial closed reading at breaker
        creation — the gauge is set, but no transition is counted.
        """
        from ..serve.breaker import STATE_VALUES

        self._breaker_state.set(STATE_VALUES.get(state, -1), method=method)
        if transition:
            self._breaker_transitions.inc(method=method, to=state)

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def export_text(self) -> str:
        """Prometheus text exposition of the registry."""
        from .exposition import render_prometheus

        return render_prometheus(self.registry)

    def export_json(self, *, include_spans: bool = True) -> dict:
        """The JSON snapshot (validated by ``validate_snapshot``)."""
        from .exposition import render_json

        return render_json(self.registry, spans=self.spans if include_spans else None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Observer(metrics={len(self.registry)}, spans={len(self.spans)})"
