"""Exposition formats: Prometheus text and a schema-checked JSON snapshot.

Two renderings of one :class:`~repro.obs.registry.MetricsRegistry`:

* :func:`render_prometheus` — the Prometheus text format (``# HELP`` /
  ``# TYPE`` headers, ``name{label="v"} value`` samples, cumulative
  ``_bucket{le=...}`` histograms), scrape-ready and also the format the
  ``repro stats`` golden test pins;
* :func:`render_json` — a structured snapshot ``{"schema", "kind",
  "metrics", "spans"}`` validated in-tree by :func:`validate_snapshot`
  (a dependency-free structural check the ``obs-smoke`` CI job runs
  against the live CLI output).

Both renderings are deterministic: families in name order, children in
sorted label order, integral values printed without a fractional part.
"""

from __future__ import annotations

import math

from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "render_prometheus",
    "render_json",
    "validate_snapshot",
    "SNAPSHOT_SCHEMA_VERSION",
    "SNAPSHOT_KIND",
]

SNAPSHOT_SCHEMA_VERSION = 1
SNAPSHOT_KIND = "repro-obs-snapshot"


def _fmt(value: float) -> str:
    """Prometheus-style number: ints bare, floats via repr, inf as +Inf."""
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _labels_str(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in merged.items())
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.type_name}")
        if isinstance(metric, Histogram):
            for labels, child in metric.samples():
                running = 0
                for bound, c in zip(metric.buckets, child.counts):
                    running += c
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_labels_str(labels, {'le': _fmt(float(bound))})} {running}"
                    )
                total = running + child.counts[-1]
                lines.append(
                    f"{metric.name}_bucket{_labels_str(labels, {'le': '+Inf'})} {total}"
                )
                lines.append(f"{metric.name}_sum{_labels_str(labels)} {_fmt(child.sum)}")
                lines.append(f"{metric.name}_count{_labels_str(labels)} {total}")
        else:
            for labels, child in metric.samples():
                lines.append(f"{metric.name}{_labels_str(labels)} {_fmt(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(registry: MetricsRegistry, *, spans=None) -> dict:
    """The registry (and optionally spans) as a JSON-safe snapshot."""
    from .span import _encode  # shared non-finite float encoding

    metrics = []
    for metric in registry.collect():
        entry: dict = {
            "name": metric.name,
            "type": metric.type_name,
            "help": metric.help,
            "samples": [],
        }
        if isinstance(metric, Histogram):
            for labels, _child in metric.samples():
                snap = metric.snapshot(**labels)
                entry["samples"].append({
                    "labels": labels,
                    "buckets": [
                        {"le": _encode(b["le"]), "count": b["count"]}
                        for b in snap["buckets"]
                    ],
                    "sum": _encode(snap["sum"]),
                    "count": snap["count"],
                })
        else:
            for labels, child in metric.samples():
                entry["samples"].append({"labels": labels, "value": _encode(child.value)})
        metrics.append(entry)
    payload = {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "kind": SNAPSHOT_KIND,
        "metrics": metrics,
    }
    if spans is not None:
        payload["spans"] = [_encode(s.to_dict()) for s in spans]
    return payload


def validate_snapshot(payload: dict) -> None:
    """Structural check of a :func:`render_json` snapshot.

    Raises ``ValueError`` naming the first problem; returns ``None`` on
    success.  Dependency-free on purpose — this is what the
    ``obs-smoke`` CI job runs against live ``repro stats`` output, so it
    must work in the minimal container.
    """
    def fail(msg: str):
        raise ValueError(f"invalid obs snapshot: {msg}")

    if not isinstance(payload, dict):
        fail(f"expected a dict, got {type(payload).__name__}")
    if payload.get("schema") != SNAPSHOT_SCHEMA_VERSION:
        fail(f"schema must be {SNAPSHOT_SCHEMA_VERSION}, got {payload.get('schema')!r}")
    if payload.get("kind") != SNAPSHOT_KIND:
        fail(f"kind must be {SNAPSHOT_KIND!r}, got {payload.get('kind')!r}")
    metrics = payload.get("metrics")
    if not isinstance(metrics, list):
        fail("metrics must be a list")
    seen: set[str] = set()
    for i, m in enumerate(metrics):
        where = f"metrics[{i}]"
        if not isinstance(m, dict):
            fail(f"{where} must be a dict")
        name = m.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{where}.name must be a non-empty string")
        if name in seen:
            fail(f"duplicate metric name {name!r}")
        seen.add(name)
        mtype = m.get("type")
        if mtype not in ("counter", "gauge", "histogram"):
            fail(f"{where} ({name}): unknown type {mtype!r}")
        samples = m.get("samples")
        if not isinstance(samples, list):
            fail(f"{where} ({name}): samples must be a list")
        for j, s in enumerate(samples):
            swhere = f"{where}.samples[{j}]"
            if not isinstance(s, dict):
                fail(f"{swhere} must be a dict")
            if not isinstance(s.get("labels"), dict):
                fail(f"{swhere} ({name}): labels must be a dict")
            if mtype == "histogram":
                buckets = s.get("buckets")
                if not isinstance(buckets, list) or not buckets:
                    fail(f"{swhere} ({name}): histogram needs a buckets list")
                counts = [b.get("count") for b in buckets]
                if any(not isinstance(c, int) or c < 0 for c in counts):
                    fail(f"{swhere} ({name}): bucket counts must be ints >= 0")
                if any(c2 < c1 for c1, c2 in zip(counts, counts[1:])):
                    fail(f"{swhere} ({name}): bucket counts must be cumulative")
                if buckets[-1].get("le") != "inf":
                    fail(f"{swhere} ({name}): last bucket must be le=inf")
                if not isinstance(s.get("count"), int):
                    fail(f"{swhere} ({name}): count must be an int")
                if "sum" not in s:
                    fail(f"{swhere} ({name}): missing sum")
            else:
                if "value" not in s:
                    fail(f"{swhere} ({name}): missing value")
    spans = payload.get("spans")
    if spans is not None:
        if not isinstance(spans, list):
            fail("spans must be a list when present")
        for i, sp in enumerate(spans):
            if not isinstance(sp, dict):
                fail(f"spans[{i}] must be a dict")
            for key in ("method", "runs", "work", "depth", "steps", "pruned",
                        "cache", "budget", "wall_seconds"):
                if key not in sp:
                    fail(f"spans[{i}] missing field {key!r}")
            cache = sp["cache"]
            if not isinstance(cache, dict) or not {"hits", "misses"} <= set(cache):
                fail(f"spans[{i}].cache must carry hits/misses")
