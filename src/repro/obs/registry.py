"""A dependency-free metrics registry: counters, gauges, histograms.

The observability layer needs Prometheus-style metric semantics —
monotone counters, point-in-time gauges, fixed-bucket histograms, all
optionally split into labeled families — without pulling in a client
library the container may not have.  This module implements exactly
that subset:

* metric *families* are created once on a :class:`MetricsRegistry`
  (``registry.counter("repro_steps_total", ...)``) and are idempotent:
  asking for an existing name returns the existing family (a type or
  label-name mismatch raises, catching instrumentation typos early);
* each family holds *children* keyed by label values
  (``counter.inc(3, policy="bids")``); unlabeled families have a single
  anonymous child;
* histograms use **fixed buckets** chosen at creation.  Observations
  land in the first bucket whose upper bound is >= the value, matching
  Prometheus's cumulative ``le`` semantics at exposition time.

Everything is deterministic: families collect in name order and
children in sorted label order, so two runs of the same seeded workload
produce byte-identical expositions (the ``repro stats`` golden test
depends on this).
"""

from __future__ import annotations

import re
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "TIME_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: decade buckets for work-like quantities (edge counts, steps, work).
DEFAULT_BUCKETS = (1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7)
#: sub-millisecond..seconds buckets for wall-clock latencies.
TIME_BUCKETS = (1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class _Metric:
    """Shared family machinery: label validation and child storage."""

    type_name = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()) -> None:
        self.name = _check_name(name)
        self.help = str(help)
        self.labelnames = tuple(labelnames)
        for ln in self.labelnames:
            if not _LABEL_RE.match(ln):
                raise ValueError(f"invalid label name {ln!r} on metric {name!r}")
        self._children: dict[tuple[str, ...], object] = {}

    def _key(self, labels: dict) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[ln]) for ln in self.labelnames)

    def _child(self, labels: dict):
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def _new_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def samples(self):
        """``(labels_dict, child)`` pairs in sorted label order."""
        for key in sorted(self._children):
            yield dict(zip(self.labelnames, key)), self._children[key]


class _CounterValue:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class Counter(_Metric):
    """A monotone non-decreasing sum (events, totals)."""

    type_name = "counter"

    def _new_child(self) -> _CounterValue:
        return _CounterValue()

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self._child(labels).value += amount

    def value(self, **labels) -> float:
        key = self._key(labels)
        child = self._children.get(key)
        return child.value if child is not None else 0.0


class Gauge(_Metric):
    """A point-in-time value that may move either way."""

    type_name = "gauge"

    def _new_child(self) -> _CounterValue:
        return _CounterValue()

    def set(self, value: float, **labels) -> None:
        self._child(labels).value = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        self._child(labels).value += amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self._child(labels).value -= amount

    def value(self, **labels) -> float:
        key = self._key(labels)
        child = self._children.get(key)
        return child.value if child is not None else 0.0


class _HistogramValue:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        # one slot per finite bucket plus the implicit +Inf overflow.
        self.counts = [0] * (num_buckets + 1)
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket distribution (cumulative ``le`` at exposition)."""

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name!r} buckets must be strictly increasing")
        self.buckets = bounds

    def _new_child(self) -> _HistogramValue:
        return _HistogramValue(len(self.buckets))

    def observe(self, value: float, **labels) -> None:
        child = self._child(labels)
        child.counts[bisect_left(self.buckets, float(value))] += 1
        child.sum += float(value)
        child.count += 1

    def snapshot(self, **labels) -> dict:
        """Cumulative bucket counts plus sum/count for one child."""
        key = self._key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
        cumulative = []
        running = 0
        for bound, c in zip(self.buckets, child.counts):
            running += c
            cumulative.append({"le": bound, "count": running})
        cumulative.append({"le": float("inf"), "count": running + child.counts[-1]})
        return {"buckets": cumulative, "sum": child.sum, "count": child.count}


class MetricsRegistry:
    """Named metric families with idempotent get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.type_name}"
                )
            if existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered with labels "
                    f"{existing.labelnames}, asked for {tuple(labelnames)}"
                )
            return existing
        metric = cls(name, help, tuple(labelnames), **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self, name: str, help: str = "", labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def collect(self) -> list[_Metric]:
        """All families in name order (exposition is deterministic)."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Drop every family (tests; a live service never resets)."""
        self._metrics.clear()
