"""Observability layer: metrics registry, query spans, exposition.

The production leg that follows robustness (budgets/checked mode) and
perf (warm serving): make every per-run quantity the paper's evaluation
reasons about — work/depth, prune counts, μ-settlement, cache hit
rates, budget consumption — visible as first-class metrics without
taxing the default path.

Three pieces:

* :class:`~repro.obs.registry.MetricsRegistry` — dependency-free
  counters / gauges / fixed-bucket histograms with labeled families;
* :class:`~repro.obs.observer.Observer` — the default-off hook the hot
  paths report to, plus :meth:`Observer.span` producing one
  :class:`~repro.obs.span.QuerySpan` record per query/batch execution;
* :mod:`~repro.obs.exposition` — Prometheus text and schema-checked
  JSON snapshots (``repro stats`` on the CLI).

The overhead contract: with no observer installed the instrumented
sites cost one ``is None`` test each — zero extra allocations, bit-
identical deterministic counters.  See ``docs/observability.md``.
"""

from .exposition import render_json, render_prometheus, validate_snapshot
from .observer import Observer, policy_label
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .span import QuerySpan

__all__ = [
    "Observer",
    "QuerySpan",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "render_prometheus",
    "render_json",
    "validate_snapshot",
    "policy_label",
]
