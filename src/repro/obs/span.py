"""Query spans: one structured record per PPSP / batch execution.

A :class:`QuerySpan` is the per-query unit of observability: everything
the paper's analysis reasons about for one execution — work/depth from
the :class:`~repro.parallel.cost_model.WorkDepthMeter`, step/prune/μ
structure from the :class:`~repro.core.tracing.StepTrace`, budget
consumption from the :class:`~repro.robustness.budget.BudgetMeter`, and
cache traffic from the warm layers — folded into a single
JSON-serializable record.

Spans are opened with :meth:`Observer.span` and filled passively: every
engine run, cache event, and fallback attempt that happens while the
span is open is folded in.  A span therefore aggregates naturally over
multi-run executions (BiDS counts as one engine run; a fallback chain
folds every rung it tried; a batch folds every search).

Non-finite floats are encoded as the strings ``"inf"``/``"-inf"``/
``"nan"`` in JSON (the same convention as
:meth:`repro.core.tracing.StepTrace.to_json`) so exports are strict
JSON; :meth:`QuerySpan.from_json` restores them.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

__all__ = ["QuerySpan"]

_SPECIAL = {"inf": math.inf, "-inf": -math.inf, "nan": math.nan}


def _encode(value):
    """Recursively replace non-JSON floats with sentinel strings."""
    if isinstance(value, float) and not math.isfinite(value):
        return "nan" if math.isnan(value) else ("inf" if value > 0 else "-inf")
    if isinstance(value, dict):
        return {k: _encode(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    return value


def _decode(value):
    """Inverse of :func:`_encode`."""
    if isinstance(value, str) and value in _SPECIAL:
        return _SPECIAL[value]
    if isinstance(value, dict):
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


@dataclass
class QuerySpan:
    """Aggregated observability record of one query/batch execution.

    Engine quantities (``work``/``depth``/``steps``/``relaxations``/
    ``pruned``) sum over every engine run folded into the span;
    ``mu_settled_step``/``final_mu``/``peak_frontier`` describe the most
    recent traced run (the query's own run for single queries).  Cache
    counters cover every warm layer that fired while the span was open,
    split per layer in ``cache_layers``.  ``budget`` holds the last
    folded :meth:`BudgetReport.to_dict` (None when no budget was set).
    """

    method: str
    source: int | None = None
    target: int | None = None
    runs: int = 0
    work: float = 0.0
    depth: float = 0.0
    steps: int = 0
    relaxations: int = 0
    pruned: int = 0
    mu_settled_step: int | None = None
    final_mu: float | None = None
    peak_frontier: int = 0
    distance: float | None = None
    exact: bool = True
    exhausted: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_layers: dict = field(default_factory=dict)
    budget: dict | None = None
    batch_searches: int = 0
    fallback_attempts: list = field(default_factory=list)
    retries: int = 0
    verification: dict = field(default_factory=dict)
    wall_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Folding hooks (called by Observer while the span is open)
    # ------------------------------------------------------------------
    def fold_run(self, result, trace=None) -> None:
        """Fold one engine :class:`~repro.core.engine.RunResult` in."""
        self.runs += 1
        self.work += float(result.meter.work)
        self.depth += float(result.meter.depth)
        self.steps += int(result.steps)
        self.relaxations += int(result.relaxations)
        if result.exhausted:
            self.exhausted = True
            self.exact = False
        if result.budget_report is not None:
            self.budget = result.budget_report.to_dict()
        if trace is not None and len(trace):
            self.pruned += trace.total_pruned()
            self.mu_settled_step = trace.mu_settled_step()
            final = trace.records[-1].mu
            self.final_mu = float(final)
            self.peak_frontier = max(self.peak_frontier, trace.peak_frontier())

    def fold_cache(self, layer: str, event: str) -> None:
        """Fold one cache event (``hit`` / ``miss`` / ``evict``)."""
        per = self.cache_layers.setdefault(
            layer, {"hits": 0, "misses": 0, "evictions": 0}
        )
        if event == "hit":
            self.cache_hits += 1
            per["hits"] += 1
        elif event == "miss":
            self.cache_misses += 1
            per["misses"] += 1
        elif event == "evict":
            self.cache_evictions += 1
            per["evictions"] += 1
        else:
            raise ValueError(f"unknown cache event {event!r}")

    def fold_fallback(self, method: str, attempt: int, outcome: str) -> None:
        """Fold one fallback-chain attempt in (resilient execution)."""
        self.fallback_attempts.append(
            {"method": method, "attempt": int(attempt), "outcome": outcome}
        )
        if attempt > 1:
            self.retries += 1

    def fold_verify(self, event: str) -> None:
        """Fold one verification event (check outcome / repair / quarantine)."""
        self.verification[event] = self.verification.get(event, 0) + 1

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The span as a nested plain dict (floats kept as floats)."""
        return {
            "method": self.method,
            "source": self.source,
            "target": self.target,
            "runs": self.runs,
            "work": self.work,
            "depth": self.depth,
            "steps": self.steps,
            "relaxations": self.relaxations,
            "pruned": self.pruned,
            "mu_settled_step": self.mu_settled_step,
            "final_mu": self.final_mu,
            "peak_frontier": self.peak_frontier,
            "distance": self.distance,
            "exact": self.exact,
            "exhausted": self.exhausted,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "evictions": self.cache_evictions,
                "layers": self.cache_layers,
            },
            "budget": self.budget,
            "batch_searches": self.batch_searches,
            "fallback": {
                "attempts": self.fallback_attempts,
                "retries": self.retries,
            },
            "verification": self.verification,
            "wall_seconds": self.wall_seconds,
        }

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(_encode(self.to_dict()), indent=indent)

    @classmethod
    def from_dict(cls, payload: dict) -> "QuerySpan":
        cache = payload.get("cache", {})
        fallback = payload.get("fallback", {})
        return cls(
            method=payload["method"],
            source=payload.get("source"),
            target=payload.get("target"),
            runs=payload.get("runs", 0),
            work=payload.get("work", 0.0),
            depth=payload.get("depth", 0.0),
            steps=payload.get("steps", 0),
            relaxations=payload.get("relaxations", 0),
            pruned=payload.get("pruned", 0),
            mu_settled_step=payload.get("mu_settled_step"),
            final_mu=payload.get("final_mu"),
            peak_frontier=payload.get("peak_frontier", 0),
            distance=payload.get("distance"),
            exact=payload.get("exact", True),
            exhausted=payload.get("exhausted", False),
            cache_hits=cache.get("hits", 0),
            cache_misses=cache.get("misses", 0),
            cache_evictions=cache.get("evictions", 0),
            cache_layers=cache.get("layers", {}),
            budget=payload.get("budget"),
            batch_searches=payload.get("batch_searches", 0),
            fallback_attempts=fallback.get("attempts", []),
            retries=fallback.get("retries", 0),
            # Absent in pre-1.5 span exports; default keeps those loading.
            verification=payload.get("verification", {}),
            wall_seconds=payload.get("wall_seconds", 0.0),
        )

    @classmethod
    def from_json(cls, text: str) -> "QuerySpan":
        return cls.from_dict(_decode(json.loads(text)))
