"""The seeded stats workload behind ``repro stats``.

One deterministic pass that exercises every instrumented layer on one
graph: each of the five single-query methods runs cold then warm (so
the result/heuristic caches see both misses and hits), a Multi-BiDS
batch runs over the same pairs, one resilient query walks the fallback
chain, a chaos-seeded serve pipeline trips a circuit breaker open,
routes through the fallback rungs, and recovers it via a half-open
probe (all on a simulated clock), a verified serve run detects
seeded bit-flip corruption and repairs it (exercising the certificate
checker, repair, and quarantine counters), a simulated-transport
straggler story exercises hedged re-execution (a hedge win, a primary
win, a shard deadline, a budget denial), and the overload controller
walks its full ladder (exact -> inexact -> shed, plus AIMD moves).
All randomness flows from one seed,
so the resulting metrics — everything except wall-clock histograms —
are reproducible byte for byte, which is what lets the text exposition
be pinned as a golden fixture (``tests/obs/test_stats_golden.py``).
"""

from __future__ import annotations

import numpy as np

from ..graphs import road_graph
from ..graphs.connectivity import largest_component
from .observer import Observer

__all__ = ["stats_workload", "DEFAULT_STATS_SEED", "STATS_METHODS"]

DEFAULT_STATS_SEED = 1729
STATS_METHODS = ("sssp", "et", "astar", "bids", "bidastar")


def default_stats_graph():
    """The built-in workload graph (the golden-trace road grid)."""
    return road_graph(8, 8, seed=5, name="stats-road")


def seeded_pairs(graph, num_pairs: int, seed: int) -> list[tuple[int, int]]:
    """``num_pairs`` distinct (s, t) pairs inside the largest component."""
    lcc = largest_component(graph)
    if len(lcc) < 2:
        raise ValueError(
            f"graph {graph.name!r} has no component with >= 2 vertices"
        )
    rng = np.random.default_rng(seed)
    want = min(num_pairs, len(lcc) // 2)
    chosen = rng.choice(lcc, size=2 * want, replace=False)
    return [(int(chosen[2 * i]), int(chosen[2 * i + 1])) for i in range(want)]


def stats_workload(
    graph=None,
    *,
    num_pairs: int = 3,
    seed: int = DEFAULT_STATS_SEED,
    methods: tuple[str, ...] = STATS_METHODS,
    warm_rounds: int = 2,
    batch: bool = True,
    resilient: bool = True,
    serve: bool = True,
    verify: bool = True,
    hedge: bool = True,
    overload: bool = True,
    observer: Observer | None = None,
) -> Observer:
    """Run the observed workload and return the (filled) observer.

    ``graph`` defaults to the seeded 8x8 road grid; any graph with
    coordinates (or none, if A* methods are dropped from ``methods``)
    works.  Each query runs inside its own :class:`QuerySpan`, so the
    returned observer carries both the lifetime metrics and the
    per-query records.
    """
    from ..perf.warm import WarmEngine
    from ..robustness.resilient import resilient_ppsp

    if graph is None:
        graph = default_stats_graph()
    obs = observer if observer is not None else Observer()
    pairs = seeded_pairs(graph, num_pairs, seed)
    engine = WarmEngine(graph, observer=obs)

    has_coords = graph.coords is not None and graph.coord_system is not None
    run_methods = tuple(
        m for m in methods if has_coords or m not in ("astar", "bidastar")
    )

    for method in run_methods:
        for s, t in pairs:
            with obs.span(method, source=s, target=t) as span:
                span.distance = engine.query(s, t, method=method).distance
        for _ in range(max(warm_rounds - 1, 0)):
            for s, t in pairs:
                with obs.span(method, source=s, target=t) as span:
                    span.distance = engine.query(s, t, method=method).distance

    if batch and len(pairs) >= 2:
        with obs.span("batch-multi") as span:
            res = engine.batch(pairs, method="multi")
            span.exact = res.exact
    if resilient and pairs:
        s, t = pairs[0]
        with obs.span("resilient", source=s, target=t) as span:
            ans = resilient_ppsp(graph, s, t, observer=obs)
            span.distance = ans.distance

    if serve and len(pairs) >= 2:
        # A deterministic serve story on a simulated clock: the first
        # two shards hit injected permanent faults, trip the batch
        # breaker open, and route through the resilient rungs; admission
        # sheds the lowest-priority pair; after the cooldown a second
        # run's half-open probe closes the breaker again.  Every counter
        # this touches is seed-reproducible.
        from ..robustness.clock import SimClock
        from ..robustness.faults import FaultInjector
        from ..serve import ServePipeline

        sim = SimClock()
        pipe = ServePipeline(
            graph,
            method="multi",
            checkpoint_every=max(len(pairs) // 2, 1),
            max_queue=max(len(pairs) - 1, 1),
            breaker_threshold=1,
            breaker_cooldown=5.0,
            clock=sim,
            observer=obs,
            fault_injector=FaultInjector(
                seed=seed, raise_at=0, transient=False, max_fires=2
            ),
        )
        with obs.span("serve-batch") as span:
            res = pipe.run(pairs)
            span.exact = all(res.exact.values()) if res.exact else True
        sim.advance(10.0)  # past the cooldown: next run probes half-open
        with obs.span("serve-batch") as span:
            res = pipe.run(pairs)
            span.exact = all(res.exact.values()) if res.exact else True

    if verify and len(pairs) >= 2:
        # The verification story, two acts: a clean verified run proves
        # every answer valid, then seeded bit-flips corrupt tentative
        # distances mid-run and every corrupted answer is refuted by its
        # certificate, repaired by an exact recompute, and re-proven —
        # filling the verify/repair counter families deterministically.
        from ..robustness.faults import FaultInjector
        from ..serve import ServePipeline

        with obs.span("serve-verify") as span:
            res = ServePipeline(
                graph, method="multi", verify=True, observer=obs
            ).run(pairs)
            span.exact = all(res.exact.values()) if res.exact else True
        pipe = ServePipeline(
            graph,
            method="multi",
            verify=True,
            observer=obs,
            fault_injector=FaultInjector(
                seed=seed, flip_dist_at=2, flip_dist_count=8, max_fires=4
            ),
        )
        with obs.span("serve-verify") as span:
            res = pipe.run(pairs)
            span.exact = all(res.exact.values()) if res.exact else True

    if hedge:
        # The straggler story, on the simulated shard transport so no
        # real process pool (and no wall-clock noise) is involved: one
        # healthy shard, one mildly slow shard whose primary outruns
        # its hedge, and one wedged shard whose hedge wins the race.
        # Then a lone shard blows its deadline, and a dry retry budget
        # denies a hedge outright.  The pool-level reactions to the
        # deadline signal (worker quarantine, a failed ping on the
        # wedged executor) are mirrored directly on the observer so
        # those families stay seed-deterministic without spawning
        # processes.
        from ..robustness.clock import SimClock
        from ..serve.hedging import (
            HedgePolicy,
            LatencyEstimator,
            ShardTimeout,
            SimShardTransport,
            supervise_shards,
        )
        from ..serve.overload import RetryBudget

        sim = SimClock()

        def latency(task, lane):
            if lane == "hedge":
                return 1.0 if task["shard"] == 1 else 0.02
            return {0: 0.05, 1: 0.4, 2: 9.0}[task["shard"]]

        supervise_shards(
            SimShardTransport(sim, latency),
            [{"shard": i} for i in range(3)],
            clock=sim,
            deadline=30.0,
            policy=HedgePolicy(),
            estimator=LatencyEstimator(seed=seed),
            observer=obs,
        )

        sim2 = SimClock()
        try:
            supervise_shards(
                SimShardTransport(sim2, lambda task, lane: 60.0),
                [{"shard": 0}],
                clock=sim2,
                deadline=0.5,
                observer=obs,
            )
        except ShardTimeout:
            obs.on_worker_suspect("deadline")
            obs.on_pool_ping_failure("OSError")

        sim3 = SimClock()
        supervise_shards(
            SimShardTransport(
                sim3, lambda task, lane: 0.6 if lane == "primary" else 0.02
            ),
            [{"shard": 0}],
            clock=sim3,
            policy=HedgePolicy(),
            estimator=LatencyEstimator(seed=seed),
            retry_budget=RetryBudget(
                capacity=0.0, refill_per_s=0.0, clock=sim3, observer=obs
            ),
            observer=obs,
        )

    if overload:
        # The admission ladder, walked deterministically: a healthy
        # flush stays exact, sojourn persistently above target for a
        # full interval degrades to inexact, a stuck queue sheds at the
        # door, and batch outcomes move the AIMD limit down (timeout)
        # and back up (healthy).
        from ..robustness.clock import SimClock
        from ..serve.overload import AIMDLimiter, OverloadController

        simo = SimClock()
        ctl = OverloadController(
            clock=simo,
            target_ms=100.0,
            interval_ms=1000.0,
            shed_multiple=8.0,
            degrade_budget_ms=250.0,
            aimd=AIMDLimiter(initial=4.0),
            observer=obs,
        )
        ctl.flush_mode(0.02)  # healthy: exact
        ctl.on_batch_done({"ok": 3})
        ctl.flush_mode(0.5)  # above target, interval not yet elapsed
        simo.advance(1.5)
        ctl.flush_mode(0.5)  # persistent overload: inexact
        ctl.on_batch_done({"timeout": 1, "ok": 2})  # AIMD halves
        ctl.should_shed(oldest_sojourn_s=1.2)  # door shed
        ctl.on_batch_done({"ok": 3})  # recovery nudge
    return obs
