"""The seeded stats workload behind ``repro stats``.

One deterministic pass that exercises every instrumented layer on one
graph: each of the five single-query methods runs cold then warm (so
the result/heuristic caches see both misses and hits), a Multi-BiDS
batch runs over the same pairs, one resilient query walks the fallback
chain, a chaos-seeded serve pipeline trips a circuit breaker open,
routes through the fallback rungs, and recovers it via a half-open
probe (all on a simulated clock), and a verified serve run detects
seeded bit-flip corruption and repairs it (exercising the certificate
checker, repair, and quarantine counters).  All randomness flows from
one seed,
so the resulting metrics — everything except wall-clock histograms —
are reproducible byte for byte, which is what lets the text exposition
be pinned as a golden fixture (``tests/obs/test_stats_golden.py``).
"""

from __future__ import annotations

import numpy as np

from ..graphs import road_graph
from ..graphs.connectivity import largest_component
from .observer import Observer

__all__ = ["stats_workload", "DEFAULT_STATS_SEED", "STATS_METHODS"]

DEFAULT_STATS_SEED = 1729
STATS_METHODS = ("sssp", "et", "astar", "bids", "bidastar")


def default_stats_graph():
    """The built-in workload graph (the golden-trace road grid)."""
    return road_graph(8, 8, seed=5, name="stats-road")


def seeded_pairs(graph, num_pairs: int, seed: int) -> list[tuple[int, int]]:
    """``num_pairs`` distinct (s, t) pairs inside the largest component."""
    lcc = largest_component(graph)
    if len(lcc) < 2:
        raise ValueError(
            f"graph {graph.name!r} has no component with >= 2 vertices"
        )
    rng = np.random.default_rng(seed)
    want = min(num_pairs, len(lcc) // 2)
    chosen = rng.choice(lcc, size=2 * want, replace=False)
    return [(int(chosen[2 * i]), int(chosen[2 * i + 1])) for i in range(want)]


def stats_workload(
    graph=None,
    *,
    num_pairs: int = 3,
    seed: int = DEFAULT_STATS_SEED,
    methods: tuple[str, ...] = STATS_METHODS,
    warm_rounds: int = 2,
    batch: bool = True,
    resilient: bool = True,
    serve: bool = True,
    verify: bool = True,
    observer: Observer | None = None,
) -> Observer:
    """Run the observed workload and return the (filled) observer.

    ``graph`` defaults to the seeded 8x8 road grid; any graph with
    coordinates (or none, if A* methods are dropped from ``methods``)
    works.  Each query runs inside its own :class:`QuerySpan`, so the
    returned observer carries both the lifetime metrics and the
    per-query records.
    """
    from ..perf.warm import WarmEngine
    from ..robustness.resilient import resilient_ppsp

    if graph is None:
        graph = default_stats_graph()
    obs = observer if observer is not None else Observer()
    pairs = seeded_pairs(graph, num_pairs, seed)
    engine = WarmEngine(graph, observer=obs)

    has_coords = graph.coords is not None and graph.coord_system is not None
    run_methods = tuple(
        m for m in methods if has_coords or m not in ("astar", "bidastar")
    )

    for method in run_methods:
        for s, t in pairs:
            with obs.span(method, source=s, target=t) as span:
                span.distance = engine.query(s, t, method=method).distance
        for _ in range(max(warm_rounds - 1, 0)):
            for s, t in pairs:
                with obs.span(method, source=s, target=t) as span:
                    span.distance = engine.query(s, t, method=method).distance

    if batch and len(pairs) >= 2:
        with obs.span("batch-multi") as span:
            res = engine.batch(pairs, method="multi")
            span.exact = res.exact
    if resilient and pairs:
        s, t = pairs[0]
        with obs.span("resilient", source=s, target=t) as span:
            ans = resilient_ppsp(graph, s, t, observer=obs)
            span.distance = ans.distance

    if serve and len(pairs) >= 2:
        # A deterministic serve story on a simulated clock: the first
        # two shards hit injected permanent faults, trip the batch
        # breaker open, and route through the resilient rungs; admission
        # sheds the lowest-priority pair; after the cooldown a second
        # run's half-open probe closes the breaker again.  Every counter
        # this touches is seed-reproducible.
        from ..robustness.clock import SimClock
        from ..robustness.faults import FaultInjector
        from ..serve import ServePipeline

        sim = SimClock()
        pipe = ServePipeline(
            graph,
            method="multi",
            checkpoint_every=max(len(pairs) // 2, 1),
            max_queue=max(len(pairs) - 1, 1),
            breaker_threshold=1,
            breaker_cooldown=5.0,
            clock=sim,
            observer=obs,
            fault_injector=FaultInjector(
                seed=seed, raise_at=0, transient=False, max_fires=2
            ),
        )
        with obs.span("serve-batch") as span:
            res = pipe.run(pairs)
            span.exact = all(res.exact.values()) if res.exact else True
        sim.advance(10.0)  # past the cooldown: next run probes half-open
        with obs.span("serve-batch") as span:
            res = pipe.run(pairs)
            span.exact = all(res.exact.values()) if res.exact else True

    if verify and len(pairs) >= 2:
        # The verification story, two acts: a clean verified run proves
        # every answer valid, then seeded bit-flips corrupt tentative
        # distances mid-run and every corrupted answer is refuted by its
        # certificate, repaired by an exact recompute, and re-proven —
        # filling the verify/repair counter families deterministically.
        from ..robustness.faults import FaultInjector
        from ..serve import ServePipeline

        with obs.span("serve-verify") as span:
            res = ServePipeline(
                graph, method="multi", verify=True, observer=obs
            ).run(pairs)
            span.exact = all(res.exact.values()) if res.exact else True
        pipe = ServePipeline(
            graph,
            method="multi",
            verify=True,
            observer=obs,
            fault_injector=FaultInjector(
                seed=seed, flip_dist_at=2, flip_dist_count=8, max_fires=4
            ),
        )
        with obs.span("serve-verify") as span:
            res = pipe.run(pairs)
            span.exact = all(res.exact.values()) if res.exact else True
    return obs
