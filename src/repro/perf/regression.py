"""Benchmark-regression harness: a fixed seeded workload + tolerance gate.

``repro bench`` (and ``python -m repro.perf.regression``) runs a frozen
workload — every single-query method cold and warm, plus the batch
solvers — on two seeded synthetic graphs, and emits a ``BENCH_<i>.json``
snapshot at the repo root.  Each snapshot also embeds a comparison
against the previous ``BENCH_*.json``, so the sequence of files *is*
the project's performance trajectory: any PR that silently regresses
work counts or wall-clock shows up as a failed tolerance gate.

Two kinds of numbers are recorded and gated differently:

* **deterministic counters** (engine work, steps, relaxations) are
  machine-independent: they must match the baseline within a tight
  tolerance (default 10%), and a miss is a hard regression;
* **wall-clock** is noisy and machine-dependent: it is recorded for
  trend reading and gated only by a loose tolerance (default 100%).

The workload is comparable across runs only when scale, seed, and
schema match; ``compare`` refuses (status ``incomparable``) otherwise.
"""

from __future__ import annotations

import json
import platform
import re
import time
from pathlib import Path

import numpy as np

__all__ = [
    "SCALES",
    "SEED",
    "run_benchmark",
    "compare",
    "find_baseline",
    "next_bench_path",
    "bench_command",
]

SCHEMA = 1
SEED = 1729
METHODS = ("sssp", "et", "astar", "bids", "bidastar")
BATCH_METHODS = ("multi", "plain-bids", "sssp-vc")
#: the acceptance bar: warm repeated-query throughput vs cold start.
MIN_WARM_SPEEDUP = 3.0
#: the acceptance bar: serve-time certificate verification on a clean
#: workload must cost less than this fraction of the unverified run.
#: Re-baselined 0.15 -> 0.25 when the kernel layer landed: the plain
#: solve got ~30% faster while the absolute certificate cost (path
#: walks + spot checks, deliberately solver-independent scalar code)
#: stayed ~3-4 ms, so the same verification work now reads ~0.12 on the
#: ratio.  The gate still catches real verification regressions — e.g.
#: emission or checking going superlinear — at double today's cost.
VERIFY_MAX_OVERHEAD = 0.25
#: the acceptance bar: steady-state micro-batched service throughput on
#: a warm persistent pool vs per-call process-backend batches (which
#: pay pool spin-up + graph export every call).
MIN_SERVICE_SPEEDUP = 2.0
#: the acceptance bar: the segmented scatter-min kernels replaying the
#: stepping-dominated wave trace vs the ``ufunc_at`` reference.
MIN_KERNEL_SPEEDUP = 1.5
# Wall-clock baselines shorter than this are too noisy to gate on.
_WALL_FLOOR_S = 5e-3

SCALES = {
    "tiny": dict(road_side=8, knn_points=120, num_pairs=3, repeats=2,
                 warm_rounds=4, batch_pairs=4,
                 verify_road_side=16, verify_pairs=6,
                 service_pairs=8, service_chunk=4, service_rounds=2,
                 kernel_graph_n=2000, kernel_rounds=2),
    "small": dict(road_side=16, knn_points=400, num_pairs=4, repeats=3,
                  warm_rounds=6, batch_pairs=6,
                  # Large enough that the serve baseline clears the wall
                  # floor, so the verify-overhead gate actually engages.
                  verify_road_side=96, verify_pairs=12,
                  # The stream coalesces to one full batch at the
                  # service's default flush size (the acceptance
                  # workload); it *arrives* in client chunks of 8.
                  service_pairs=32, service_chunk=8, service_rounds=3,
                  # Hub-heavy graph: Bellman-Ford waves reach ~40k
                  # duplicate-rich proposals, the regime the segmented
                  # scatter kernels exist for; big enough that the
                  # ufunc_at replay clears the wall floor and the
                  # kernel-speedup gate engages.
                  kernel_graph_n=16000, kernel_rounds=5),
}


def build_workload(scale: str) -> dict:
    """The frozen graphs + query pairs for one scale (fully seeded)."""
    from ..graphs import knn_graph, road_graph
    from ..graphs.connectivity import largest_component
    from ..graphs.knn import uniform_points

    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; options: {sorted(SCALES)}")
    cfg = SCALES[scale]
    side = cfg["road_side"]
    graphs = {
        "road": road_graph(side, side, seed=SEED, name="bench-road"),
        "knn": knn_graph(
            uniform_points(cfg["knn_points"], 2, seed=SEED), k=5, name="bench-knn"
        ),
    }
    pairs: dict[str, list[tuple[int, int]]] = {}
    batch_pairs: dict[str, list[tuple[int, int]]] = {}
    for i, (name, g) in enumerate(sorted(graphs.items())):
        rng = np.random.default_rng(SEED + i)
        lcc = largest_component(g)
        chosen = rng.choice(lcc, size=2 * cfg["num_pairs"], replace=False)
        pairs[name] = [
            (int(chosen[2 * j]), int(chosen[2 * j + 1])) for j in range(cfg["num_pairs"])
        ]
        chosen_b = rng.choice(lcc, size=2 * cfg["batch_pairs"], replace=False)
        batch_pairs[name] = [
            (int(chosen_b[2 * j]), int(chosen_b[2 * j + 1]))
            for j in range(cfg["batch_pairs"])
        ]
    return {"config": cfg, "graphs": graphs, "pairs": pairs, "batch_pairs": batch_pairs}


def _workload_key(scale: str) -> str:
    return f"schema{SCHEMA}-scale:{scale}-seed:{SEED}"


def run_benchmark(scale: str = "small", *, backend: str = "serial") -> dict:
    """Execute the full workload and return the snapshot payload.

    ``backend="process"`` additionally measures the multi-process batch
    backend against the serial one (additive ``"pool"`` section, never
    gated — wall clock depends on core count, and the bit-identity flag
    is the real signal).
    """
    from ..api import batch_ppsp, ppsp
    from .warm import WarmEngine

    wl = build_workload(scale)
    cfg = wl["config"]
    repeats, warm_rounds = cfg["repeats"], cfg["warm_rounds"]
    single: dict[str, dict] = {}
    batch: dict[str, dict] = {}
    arena_checks: dict[str, dict] = {}

    for name in sorted(wl["graphs"]):
        g = wl["graphs"][name]
        qpairs = wl["pairs"][name]
        single[name] = {}
        engine = WarmEngine(g)

        for method in METHODS:
            # Cold: fresh policy/heuristic/arrays on every call.
            t0 = time.perf_counter()
            for _ in range(repeats):
                for s, t in qpairs:
                    ans = ppsp(g, s, t, method=method)
            cold_s = (time.perf_counter() - t0) / (repeats * len(qpairs))
            work = steps = relax = 0.0
            for s, t in qpairs:
                ans = ppsp(g, s, t, method=method)
                work += ans.run.meter.work
                steps += ans.run.steps
                relax += ans.run.relaxations

            # Warm: one priming pass fills the caches, then the measured
            # rounds are repeated queries — the serving steady state.
            for s, t in qpairs:
                engine.query(s, t, method=method)
            t0 = time.perf_counter()
            for _ in range(warm_rounds):
                for s, t in qpairs:
                    engine.query(s, t, method=method)
            warm_s = (time.perf_counter() - t0) / (warm_rounds * len(qpairs))

            # Warm, result cache bypassed: the engine still runs, but
            # buffers are pooled and heuristic rows cached — isolates the
            # arena + h-table effect for the A* family.
            t0 = time.perf_counter()
            for _ in range(repeats):
                for s, t in qpairs:
                    engine.query(s, t, method=method, use_cache=False)
            warm_uncached_s = (time.perf_counter() - t0) / (repeats * len(qpairs))

            single[name][method] = {
                "cold_s": cold_s,
                "warm_s": warm_s,
                "warm_uncached_s": warm_uncached_s,
                "warm_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
                "work": work,
                "steps": steps,
                "relaxations": relax,
            }
        stats = engine.stats()
        arena_checks[name] = {
            "allocations": stats["arena"]["allocations"],
            "reuses": stats["arena"]["reuses"],
            "result_hits": stats["results"]["hits"],
            "heuristic_hits": stats["heuristics"]["hits"],
        }

        bpairs = wl["batch_pairs"][name]
        batch[name] = {}
        for bmethod in BATCH_METHODS:
            t0 = time.perf_counter()
            for _ in range(repeats):
                res = batch_ppsp(g, bpairs, method=bmethod)
            cold_s = (time.perf_counter() - t0) / repeats
            t0 = time.perf_counter()
            for _ in range(repeats):
                wres = engine.batch(bpairs, method=bmethod)
            warm_s = (time.perf_counter() - t0) / repeats
            batch[name][bmethod] = {
                "cold_s": cold_s,
                "warm_s": warm_s,
                "work": float(res.meter.work),
                "num_searches": res.num_searches,
            }

    verify = _verify_overhead(wl)
    service = _service_section(wl)
    kernels = _kernel_section(wl)
    gates = _gates(single, verify, service, kernels)
    pool = _pool_section(wl) if backend == "process" else None
    return {
        "schema": SCHEMA,  # additive sections (e.g. "obs", "verify") do NOT
        # bump this: the workload key must stay comparable across snapshots.
        "kind": "repro-bench",
        "workload_key": _workload_key(scale),
        "scale": scale,
        "seed": SEED,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "created_unix": time.time(),
        "workload": {
            "config": {k: v for k, v in cfg.items()},
            "graphs": {
                name: {"n": g.num_vertices, "m": g.num_edges}
                for name, g in wl["graphs"].items()
            },
            "pairs": {k: v for k, v in wl["pairs"].items()},
        },
        "single": single,
        "batch": batch,
        "arena": arena_checks,
        "obs": _observed_metrics(wl),
        "verify": verify,
        "service": service,
        "kernels": kernels,
        **({"pool": pool} if pool is not None else {}),
        "gates": gates,
    }


def _pool_section(wl: dict, *, workers: int = 2) -> dict:
    """Additive ``"pool"`` section: process backend vs serial, per batch
    method and graph.

    Never gated: the wall-clock ratio is a function of the host's core
    count (on a single-core box the pool is strictly overhead), so the
    section records ``speedup`` for trending and ``identical`` — a
    distance-for-distance comparison against the serial answers — as
    the invariant worth failing over.  One shared pool serves the whole
    section so fork/attach cost is paid once, like a serving process.
    """
    from ..core.batch import solve_batch
    from ..parallel.pool import ProcessPool

    out: dict[str, dict] = {"workers": workers, "graphs": {}}
    with ProcessPool(workers) as pool:
        for name in sorted(wl["graphs"]):
            g = wl["graphs"][name]
            bpairs = wl["batch_pairs"][name]
            rows: dict[str, dict] = {}
            for bmethod in BATCH_METHODS:
                t0 = time.perf_counter()
                serial = solve_batch(g, bpairs, method=bmethod)
                serial_s = time.perf_counter() - t0
                t0 = time.perf_counter()
                proc = solve_batch(
                    g, bpairs, method=bmethod, backend="process", pool=pool
                )
                process_s = time.perf_counter() - t0
                rows[bmethod] = {
                    "serial_s": serial_s,
                    "process_s": process_s,
                    "speedup": serial_s / process_s if process_s > 0 else float("inf"),
                    "identical": serial.distances == proc.distances,
                }
            out["graphs"][name] = rows
    return out


def _observed_metrics(wl: dict) -> dict:
    """One instrumented pass per graph: per-phase engine metrics.

    Runs after (and independently of) the timed loops with its own
    :class:`WarmEngine` and observer, so it contributes nothing to the
    gated counters; the numbers land in the snapshot's additive
    ``"obs"`` section so work/pruning/μ-settlement and cache behaviour
    are trended alongside the wall-clock trajectory.
    """
    from ..obs import Observer
    from .warm import WarmEngine

    out: dict[str, dict] = {}
    for name in sorted(wl["graphs"]):
        g = wl["graphs"][name]
        obs = Observer()
        engine = WarmEngine(g, observer=obs)
        rows: dict[str, dict] = {}
        for method in METHODS:
            # Cold round then warm round: the second pass exercises the
            # result cache, so hit counts below are non-trivial.
            for _ in range(2):
                for s, t in wl["pairs"][name]:
                    with obs.span(method, source=s, target=t):
                        engine.query(s, t, method=method)
            spans = [sp for sp in obs.spans if sp.method == method]
            rows[method] = {
                "work": sum(sp.work for sp in spans),
                "depth": sum(sp.depth for sp in spans),
                "steps": sum(sp.steps for sp in spans),
                "pruned": sum(sp.pruned for sp in spans),
                "mu_settled_steps": [sp.mu_settled_step for sp in spans],
                "cache_hits": sum(sp.cache_hits for sp in spans),
            }
        stats = engine.stats()
        out[name] = {
            "methods": rows,
            "cache": {
                "result_hits": stats["results"]["hits"],
                "result_misses": stats["results"]["misses"],
                "heuristic_hits": stats["heuristics"]["hits"],
                "heuristic_misses": stats["heuristics"]["misses"],
            },
        }
    return out


def _verify_overhead(wl: dict) -> dict:
    """Additive ``"verify"`` section: serve-time verification cost.

    Serves a dedicated seeded road workload (``verify_road_side`` /
    ``verify_pairs`` in the scale config — large enough at gated scales
    that the search dominates, the regime verification is built for)
    through :class:`ServePipeline` twice per round — plain, then with
    ``verify=True`` — and records the relative wall overhead of
    certificate emission + checking.  Rounds interleave the two sides
    so machine drift cancels; each side keeps its best-of-N.  A plain
    baseline below ``_WALL_FLOOR_S`` is recorded but ungated —
    sub-millisecond ratios are scheduler noise, not signal.

    The queries form a chain (consecutive pairs share an endpoint), so
    the batch is one query-graph component and both sides run a single
    Multi-BiDS engine pass: the ratio isolates certificate emission +
    checking instead of folding in per-component engine startup, which
    the batch rows already trend.
    """
    from ..graphs import road_graph
    from ..graphs.connectivity import largest_component
    from ..serve import ServePipeline

    cfg = wl["config"]
    side = cfg["verify_road_side"]
    g = road_graph(side, side, seed=SEED, name="bench-verify-road")
    rng = np.random.default_rng(SEED)
    lcc = largest_component(g)
    chosen = rng.choice(lcc, size=cfg["verify_pairs"] + 1, replace=False)
    pairs = [
        (int(chosen[j]), int(chosen[j + 1]))
        for j in range(cfg["verify_pairs"])
    ]

    # Best-of-8: the kernel layer cut the plain baseline by ~25%, so the
    # same absolute certificate cost now reads as a larger ratio and a
    # noisy best-of-4 minimum can push a ~0.10 true overhead past the
    # gate.  More interleaved rounds tighten both minima.
    rounds = 8
    best = {"plain": float("inf"), "verified": float("inf")}
    for _ in range(rounds):
        for label, flag in (("plain", False), ("verified", True)):
            pipe = ServePipeline(g, method="multi", verify=flag)
            t0 = time.perf_counter()
            pipe.run(pairs)
            best[label] = min(best[label], time.perf_counter() - t0)
    overhead = best["verified"] / best["plain"] - 1.0 if best["plain"] > 0 else 0.0
    gated = best["plain"] >= _WALL_FLOOR_S
    return {
        "workload": {"road_side": side, "num_pairs": len(pairs), "method": "multi"},
        "plain_s": best["plain"],
        "verified_s": best["verified"],
        "overhead": overhead,
        "gated": gated,
        "max_allowed_overhead": VERIFY_MAX_OVERHEAD,
        "worst_gated_overhead": overhead if gated else None,
        "pass": (not gated) or overhead <= VERIFY_MAX_OVERHEAD,
    }


def _service_section(wl: dict, *, workers: int = 2) -> dict:
    """Additive ``"service"`` section: micro-batched steady state vs
    per-call process batches.

    Both sides answer the same seeded query stream — which *arrives*
    in client chunks of ``service_chunk`` pairs — with the same batch
    method on the same worker count.  The **per-call** side does what
    callers did before the service existed: one ``solve_batch(backend=
    "process")`` call per arrival chunk, no pool, paying executor
    spin-up and the shared graph export on every call.  The
    **service** side submits the same chunks to a warm
    :class:`~repro.serve.QueryService`, which coalesces them into
    ``max_batch`` windows executed on a persistent pool that attached
    the graph before timing began — so its steady-state cost is
    coalescing + shard pickling.  Rounds interleave the two sides
    (machine drift cancels) and each keeps its best-of-N; a per-call
    baseline under ``_WALL_FLOOR_S`` is recorded but ungated.
    ``identical`` re-checks the service answers against serial
    ``solve_batch`` on the very batch compositions the coalescer
    formed — the bit-identity invariant, which is gated
    unconditionally.

    A host that cannot run the process pool at all (no fork, no
    ``/dev/shm``) records the error and passes the gate vacuously —
    the section measures the service layer, not the host.
    """
    from ..core.batch import solve_batch
    from ..graphs.connectivity import largest_component
    from ..serve import QueryService

    cfg = wl["config"]
    g = wl["graphs"]["road"]
    rng = np.random.default_rng(SEED + 7)
    lcc = largest_component(g)
    num = cfg["service_pairs"]
    chosen = rng.choice(lcc, size=2 * num, replace=False)
    pairs = [(int(chosen[2 * j]), int(chosen[2 * j + 1])) for j in range(num)]
    chunk = cfg["service_chunk"]
    chunks = [pairs[i:i + chunk] for i in range(0, num, chunk)]
    max_batch = min(32, num)
    rounds = cfg["service_rounds"]
    workload = {
        "num_pairs": num, "chunk": chunk, "max_batch": max_batch,
        "workers": workers, "rounds": rounds, "method": "multi",
    }

    best = {"per_call": float("inf"), "service": float("inf")}
    try:
        with QueryService(
            g, method="multi", max_batch=max_batch, max_wait_ms=10_000.0,
            backend="process", workers=workers,
        ) as svc:
            svc.warm()
            # Priming round: workers attach the shared graph here, so
            # the timed rounds see the steady state a serving process
            # lives in.
            svc.submit_many(pairs)
            svc.drain()
            futs = []
            for _ in range(rounds):
                t0 = time.perf_counter()
                futs = []
                for part in chunks:
                    futs.extend(svc.submit_many(part))
                svc.drain()
                for f in futs:
                    f.result()
                best["service"] = min(best["service"], time.perf_counter() - t0)
                t0 = time.perf_counter()
                for part in chunks:
                    solve_batch(g, part, method="multi",
                                backend="process", workers=workers)
                best["per_call"] = min(best["per_call"], time.perf_counter() - t0)
            reference: dict[tuple[int, int], float] = {}
            for record in svc.batches:
                ref = solve_batch(g, list(record.keys), method="multi")
                for key in record.keys:
                    reference[key] = ref.distance(*key)
            identical = all(f.result().distance == reference[f.key] for f in futs)
            respawns = svc.stats()["respawns"]
    except Exception as exc:  # noqa: BLE001 — a poolless host is not a regression
        return {
            "workload": workload,
            "error": f"{type(exc).__name__}: {exc}",
            "gated": False,
            "min_required_speedup": MIN_SERVICE_SPEEDUP,
            "pass": True,
        }
    speedup = (
        best["per_call"] / best["service"] if best["service"] > 0 else float("inf")
    )
    gated = best["per_call"] >= _WALL_FLOOR_S
    return {
        "workload": workload,
        "per_call_s": best["per_call"],
        "service_s": best["service"],
        "speedup": speedup,
        "respawns": respawns,
        "identical": identical,
        "gated": gated,
        "min_required_speedup": MIN_SERVICE_SPEEDUP,
        "pass": identical and ((not gated) or speedup >= MIN_SERVICE_SPEEDUP),
    }


def _kernel_section(wl: dict) -> dict:
    """Additive ``"kernels"`` section: scatter-min kernels on real waves.

    Two halves, both against the ``ufunc_at`` reference implementation:

    **Speed** — one Bellman-Ford SSSP from the top hub of a seeded
    hub-heavy web graph is run once with a recording kernel, capturing
    the exact ``(targets, values)`` batch of every ``scatter_min`` call
    (waves of tens of thousands of duplicate-rich proposals — the
    stepping-dominated regime).  Each implementation then replays the
    identical wave trace; rounds interleave the impls (machine drift
    cancels) and each keeps its best-of-N.  Replaying isolates the
    kernel: a full engine run dilutes the scatter with gather/frontier
    work that is byte-for-byte shared across impls.  A reference replay
    under ``_WALL_FLOOR_S`` is recorded but ungated.

    **Identity** — every impl must answer bit-identically to
    ``ufunc_at``: all five single-query methods, cold (:func:`ppsp`)
    and warm (:class:`WarmEngine`), on every workload graph, plus a
    process-backend batch (workers build their own kernel from the
    shipped name).  A host that cannot run the process pool records the
    error and passes that check vacuously, like ``_service_section``.
    """
    from ..api import ppsp
    from ..core.batch import solve_batch
    from ..core.engine import run_policy
    from ..core.policies import SsspPolicy
    from ..core.stepping import BellmanFord
    from ..graphs.generators import web_graph
    from ..kernels.scatter import CONCRETE_IMPLS, Kernel
    from .warm import WarmEngine

    cfg = wl["config"]
    g = web_graph(cfg["kernel_graph_n"], seed=SEED, name="bench-kernel-web")
    source = int(np.argmax(g.out_degrees()))

    class _Recorder(Kernel):
        __slots__ = ("waves",)

        def __init__(self) -> None:
            super().__init__("ufunc_at")
            self.waves: list = []

        def scatter_min(self, dist, targets, values):
            # targets/values may be scratch views: copy before reuse.
            self.waves.append((targets.copy(), values.copy()))
            return super().scatter_min(dist, targets, values)

    recorder = _Recorder()
    run_policy(g, SsspPolicy(source), strategy=BellmanFord(), kernel=recorder)
    waves = recorder.waves
    base = np.full(g.num_vertices, np.inf)
    base[source] = 0.0

    impls = ("ufunc_at",) + tuple(i for i in CONCRETE_IMPLS if i != "ufunc_at") + ("auto",)
    best = {impl: float("inf") for impl in impls}
    for _ in range(cfg["kernel_rounds"]):
        for impl in impls:
            kern = Kernel(impl)
            _ = kern.threshold  # resolve calibration outside the timed region
            dist = base.copy()
            t0 = time.perf_counter()
            for targets, values in waves:
                kern.scatter_min(dist, targets, values)
            best[impl] = min(best[impl], time.perf_counter() - t0)
    ref_s = best["ufunc_at"]
    speedups = {
        impl: (ref_s / best[impl] if best[impl] > 0 else float("inf"))
        for impl in impls if impl != "ufunc_at"
    }
    gated = ref_s >= _WALL_FLOOR_S

    # Identity: every impl vs the ufunc_at answers, all methods.
    identical: dict[str, bool] = {}
    for impl in [i for i in impls if i != "ufunc_at"]:
        ok = True
        for name in sorted(wl["graphs"]):
            wg = wl["graphs"][name]
            qpairs = wl["pairs"][name]
            warm_ref = WarmEngine(wg, kernel="ufunc_at")
            warm_impl = WarmEngine(wg, kernel=impl)
            for method in METHODS:
                for s_, t_ in qpairs:
                    ref = ppsp(wg, s_, t_, method=method, kernel="ufunc_at")
                    got = ppsp(wg, s_, t_, method=method, kernel=impl)
                    ok &= got.distance == ref.distance
                    wr = warm_ref.query(s_, t_, method=method, use_cache=False)
                    wi = warm_impl.query(s_, t_, method=method, use_cache=False)
                    ok &= wi.distance == wr.distance
        identical[impl] = ok

    pool_identity: dict[str, object]
    try:
        wg = wl["graphs"]["road"]
        bpairs = wl["batch_pairs"]["road"]
        ref = solve_batch(wg, bpairs, method="multi", kernel="ufunc_at")
        pool_ok = True
        for impl in [i for i in impls if i != "ufunc_at"]:
            proc = solve_batch(
                wg, bpairs, method="multi", backend="process", workers=2,
                kernel=impl,
            )
            pool_ok &= proc.distances == ref.distances
        pool_identity = {"identical": pool_ok}
    except Exception as exc:  # noqa: BLE001 — a poolless host is not a regression
        pool_identity = {"error": f"{type(exc).__name__}: {exc}", "identical": None}

    identity_pass = all(identical.values()) and pool_identity["identical"] is not False
    return {
        "workload": {
            "graph_n": g.num_vertices, "graph_m": g.num_edges,
            "source": source, "strategy": "bellman-ford",
            "waves": len(waves),
            "wave_elements": int(sum(len(t) for t, _ in waves)),
            "rounds": cfg["kernel_rounds"],
        },
        "replay_s": {impl: best[impl] for impl in impls},
        "speedups": speedups,
        "identical": identical,
        "pool_identity": pool_identity,
        "gated": gated,
        "min_required_speedup": MIN_KERNEL_SPEEDUP,
        "pass": identity_pass
        and ((not gated) or all(v >= MIN_KERNEL_SPEEDUP for v in speedups.values())),
    }


def _gates(single: dict, verify: dict, service: dict, kernels: dict) -> dict:
    """The acceptance gates computed from the measured workload."""
    speedups = {}
    for method in ("astar", "bidastar"):
        vals = [
            graph_rows[method]["warm_speedup"]
            for graph_rows in single.values()
            if method in graph_rows
        ]
        speedups[method] = min(vals) if vals else float("inf")
    return {
        "min_required_warm_speedup": MIN_WARM_SPEEDUP,
        "warm_speedup_astar": speedups.get("astar"),
        "warm_speedup_bidastar": speedups.get("bidastar"),
        "max_verify_overhead": VERIFY_MAX_OVERHEAD,
        "verify_overhead": verify["worst_gated_overhead"],
        "min_required_service_speedup": MIN_SERVICE_SPEEDUP,
        "service_speedup": service.get("speedup"),
        "min_required_kernel_speedup": MIN_KERNEL_SPEEDUP,
        "kernel_speedups": kernels.get("speedups"),
        "pass": all(v >= MIN_WARM_SPEEDUP for v in speedups.values())
        and verify["pass"] and service["pass"] and kernels["pass"],
    }


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------
def compare(
    current: dict,
    baseline: dict,
    *,
    work_tolerance: float = 0.10,
    wall_tolerance: float = 1.00,
) -> dict:
    """Tolerance-gate ``current`` against ``baseline``.

    Returns ``{"status": "ok" | "regression" | "incomparable", ...}``.
    Deterministic counters (work / steps / relaxations) are gated at
    ``work_tolerance`` relative increase; wall-clock at
    ``wall_tolerance``.  Wall entries whose baseline is below
    ``_WALL_FLOOR_S`` are skipped — sub-millisecond timings are
    scheduler noise, not signal.  Improvements never fail the gate.
    """
    if baseline.get("workload_key") != current.get("workload_key"):
        return {
            "status": "incomparable",
            "reason": (
                f"workload mismatch: baseline {baseline.get('workload_key')!r} "
                f"vs current {current.get('workload_key')!r}"
            ),
        }
    regressions: list[dict] = []
    checked = 0
    for graph, methods in current.get("single", {}).items():
        base_graph = baseline.get("single", {}).get(graph, {})
        for method, row in methods.items():
            base = base_graph.get(method)
            if base is None:
                continue
            for metric, tol in (
                ("work", work_tolerance),
                ("steps", work_tolerance),
                ("relaxations", work_tolerance),
                ("cold_s", wall_tolerance),
                ("warm_s", wall_tolerance),
            ):
                cur_v, base_v = row.get(metric), base.get(metric)
                if cur_v is None or base_v is None or base_v <= 0:
                    continue
                if metric.endswith("_s") and base_v < _WALL_FLOOR_S:
                    continue
                checked += 1
                if cur_v > base_v * (1.0 + tol):
                    regressions.append({
                        "where": f"single.{graph}.{method}.{metric}",
                        "baseline": base_v,
                        "current": cur_v,
                        "ratio": cur_v / base_v,
                        "tolerance": tol,
                    })
    return {
        "status": "regression" if regressions else "ok",
        "checked": checked,
        "work_tolerance": work_tolerance,
        "wall_tolerance": wall_tolerance,
        "regressions": regressions,
    }


_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def _bench_files(directory: Path) -> list[tuple[int, Path]]:
    directory = Path(directory)
    if not directory.is_dir():
        return []
    out = []
    for p in directory.iterdir():
        m = _BENCH_RE.match(p.name)
        if m:
            out.append((int(m.group(1)), p))
    return sorted(out)


def find_baseline(directory, *, exclude: Path | None = None) -> Path | None:
    """The highest-numbered ``BENCH_*.json`` (excluding the output file)."""
    files = [
        p for _, p in _bench_files(Path(directory))
        if exclude is None or p.resolve() != Path(exclude).resolve()
    ]
    return files[-1] if files else None


def next_bench_path(directory) -> Path:
    """The next snapshot name: one past the highest index, starting at 2.

    (``BENCH_2.json`` is the first snapshot because the harness landed
    in PR 2; the index tracks the PR trajectory, not a file count.)
    """
    files = _bench_files(Path(directory))
    idx = files[-1][0] + 1 if files else 2
    return Path(directory) / f"BENCH_{idx}.json"


# ----------------------------------------------------------------------
# Command entry (shared by ``repro bench`` and ``python -m``)
# ----------------------------------------------------------------------
def bench_command(
    *,
    scale: str = "small",
    output: str | None = None,
    baseline: str | None = None,
    directory: str = ".",
    work_tolerance: float = 0.10,
    wall_tolerance: float = 1.00,
    check: bool = False,
    backend: str = "serial",
    kernel: str | None = None,
) -> tuple[dict, int]:
    """Run, compare, write, and summarize one benchmark snapshot.

    Returns ``(payload, exit_code)``; the exit code is nonzero only when
    ``check`` is set and the gate failed (a comparable baseline showed a
    regression, or the warm-speedup gate missed).

    ``kernel`` pins the scatter-min implementation for the whole
    workload (engine runs, warm layer, pool workers) through the
    ``REPRO_KERNEL`` override; the pin is recorded in the snapshot.
    """
    import os

    directory = Path(directory)
    out_path = Path(output) if output else next_bench_path(directory)
    if kernel is not None:
        from ..kernels.scatter import KERNEL_IMPLS

        if kernel not in KERNEL_IMPLS:
            raise ValueError(f"unknown kernel {kernel!r}; options: {KERNEL_IMPLS}")
        prev = os.environ.get("REPRO_KERNEL")
        os.environ["REPRO_KERNEL"] = kernel
        try:
            payload = run_benchmark(scale, backend=backend)
        finally:
            if prev is None:
                os.environ.pop("REPRO_KERNEL", None)
            else:
                os.environ["REPRO_KERNEL"] = prev
        payload["kernel_pin"] = kernel
    else:
        payload = run_benchmark(scale, backend=backend)

    base_path = Path(baseline) if baseline else find_baseline(directory, exclude=out_path)
    if base_path is not None and base_path.exists():
        base = json.loads(base_path.read_text())
        payload["comparison"] = {
            "baseline_file": base_path.name,
            **compare(payload, base, work_tolerance=work_tolerance,
                      wall_tolerance=wall_tolerance),
        }
    else:
        payload["comparison"] = {"status": "no-baseline"}

    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    payload["output_file"] = str(out_path)

    failed = check and (
        payload["comparison"]["status"] == "regression" or not payload["gates"]["pass"]
    )
    return payload, 1 if failed else 0


def main(argv=None) -> int:
    """``python -m repro.perf.regression`` — the nightly entry point."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=sorted(SCALES))
    parser.add_argument("--output", help="snapshot path (default: next BENCH_<i>.json)")
    parser.add_argument("--baseline", help="explicit baseline file to gate against")
    parser.add_argument("--dir", default=".", help="where BENCH_*.json live")
    parser.add_argument("--work-tolerance", type=float, default=0.10)
    parser.add_argument("--wall-tolerance", type=float, default=1.00)
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero on gate failure")
    parser.add_argument("--kernel",
                        help="pin the scatter-min kernel for the whole workload")
    args = parser.parse_args(argv)
    payload, rc = bench_command(
        scale=args.scale, output=args.output, baseline=args.baseline,
        directory=args.dir, work_tolerance=args.work_tolerance,
        wall_tolerance=args.wall_tolerance, check=args.check,
        kernel=args.kernel,
    )
    summary = {
        "output": payload["output_file"],
        "gates": payload["gates"],
        "comparison": payload["comparison"],
    }
    print(json.dumps(summary, indent=2))
    return rc


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
