"""The warm engine: amortize per-query overheads across a query stream.

A cold :func:`repro.ppsp` call pays three fixed costs every time: fresh
``(k, n)`` numpy allocations, a new policy + heuristic (recomputing
``h`` rows A* already computed for the last query to the same target),
and — trivially but measurably — re-deriving the answer for a query the
service just answered.  :class:`WarmEngine` binds all three
amortizations to one graph:

* **buffer pooling** — one :class:`~repro.perf.arena.BufferArena`
  recycles distance arrays and dense frontier masks, so the steady
  state performs zero new ``(k, n)`` allocations;
* **heuristic caching** — memoized per-target heuristics are kept in an
  LRU, so repeated A*/BiD-A* queries toward a target reuse its ``h``
  table (geometric graphs) or its landmark row
  (:class:`~repro.heuristics.landmarks.LandmarkSet` graphs);
* **result caching** — exact ``(s, t, method)`` answers are served from
  an LRU without touching the engine at all.

Usage::

    engine = WarmEngine(graph)
    a = engine.query(s, t, method="bidastar", path=True)
    a.distance, a.path()
    engine.batch(pairs, method="multi")

Caches assume the graph is frozen; after mutating it in place call
:meth:`WarmEngine.invalidate`.  See ``docs/perf.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..core.batch import BATCH_METHODS, BatchResult, solve_batch
from ..core.engine import PPSPEngine
from ..core.paths import stitch_bidirectional_path, walk_path
from ..core.policies import AStar, BiDAStar, BiDS, EarlyTermination, SsspPolicy
from ..heuristics.geometric import Heuristic, make_heuristic
from .arena import BufferArena
from .cache import LRUCache, ResultCache

__all__ = ["WarmAnswer", "WarmEngine"]

_BIDIRECTIONAL = {"bids", "bidastar"}
_METHODS = ("sssp", "et", "astar", "bids", "bidastar")


@dataclass(frozen=True)
class WarmAnswer:
    """One warm query's answer — values only, no live engine state.

    Unlike :class:`repro.api.PPSPAnswer`, this carries no ``RunResult``:
    the distance matrix lived in a pooled buffer that went back to the
    arena when the query finished, which is what makes the warm path
    allocation-free.  ``path()`` returns the shortest path when the
    query was made with ``path=True``; ``cached`` says the answer came
    straight from the result cache.
    """

    source: int
    target: int
    method: str
    distance: float
    exact: bool = True
    cached: bool = False
    steps: int = 0
    relaxations: int = 0
    work: float = 0.0
    depth: float = 0.0
    path_vertices: tuple[int, ...] | None = None
    #: attached under ``verify_hits=True`` so cache hits can be
    #: re-validated; excluded from equality (two answers with the same
    #: values are the same answer, certified or not).
    certificate: object | None = field(default=None, compare=False)

    @property
    def reachable(self) -> bool:
        return bool(np.isfinite(self.distance))

    def path(self) -> list[int]:
        """The shortest s-t vertex path captured at query time."""
        if self.source == self.target:
            return [self.source]
        if not self.reachable:
            from ..core.paths import PathError

            raise PathError(f"target {self.target} unreachable from {self.source}")
        if self.path_vertices is None:
            raise ValueError(
                "path was not captured; re-run the query with path=True"
            )
        return list(self.path_vertices)


class WarmEngine:
    """Serve many queries against one graph with pooled, cached state.

    Parameters
    ----------
    graph : Graph
        The (frozen) input graph.
    landmarks : LandmarkSet, optional
        ALT landmarks enabling ``astar``/``bidastar`` on graphs without
        coordinates; graphs *with* coordinates use their geometric
        heuristic and ignore this.
    result_cache_size : int
        LRU capacity of the exact-answer cache (0 disables).
    heuristic_cache_size : int
        LRU capacity of the per-target heuristic cache.
    arena : BufferArena, optional
        Share one pool between several engines on same-size graphs;
        defaults to a private arena.
    strategy_factory : callable, optional
        Zero-argument callable producing a fresh
        :class:`~repro.core.stepping.SteppingStrategy` per query;
        defaults to the engine's Δ*-stepping default.
    frontier_mode, pull_relax :
        Fixed engine configuration for every query.
    kernel : str or None
        Scatter-min kernel for every engine run (:mod:`repro.kernels`);
        ``None`` resolves via ``REPRO_KERNEL`` then ``"auto"``.  All
        kernels are bit-identical, so warm answers (and the result
        cache) are unaffected by the choice.
    observer : repro.obs.Observer, optional
        Default-off observability hook.  When attached, every engine run
        reports work/depth/steps, the result and heuristic caches emit
        hit/miss/evict events (layers ``"result"`` and ``"heuristic"``),
        and an attached landmark set reports its h-row memo hits.  When
        ``None`` (the default) the warm path is bit-identical to the
        uninstrumented engine.
    verify_hits : bool
        Certificate-validate every result-cache hit before serving it
        (:mod:`repro.verify`).  A hit that fails its check is
        **quarantined**: evicted and recomputed fresh, never served.
        Fresh computations get certificates attached so later hits are
        checkable.  Off by default — the cost is one O(path + k) check
        per hit plus certificate construction per miss.
    checker : CertificateChecker, optional
        Override the default checker (e.g. a looser tolerance).
    fault_injector : FaultInjector, optional
        Chaos hook: its ``corrupt_warm_answer`` is applied to every
        cache hit before verification, modeling in-cache payload
        corruption (the bytes in the cache go bad, not just the served
        copy).
    """

    def __init__(
        self,
        graph,
        *,
        landmarks=None,
        result_cache_size: int = 1024,
        heuristic_cache_size: int = 64,
        arena: BufferArena | None = None,
        strategy_factory=None,
        frontier_mode: str = "auto",
        pull_relax: bool = False,
        kernel=None,
        observer=None,
        verify_hits: bool = False,
        checker=None,
        fault_injector=None,
    ) -> None:
        self.graph = graph
        self.landmarks = landmarks
        self.observer = observer
        if landmarks is not None and observer is not None:
            landmarks.observer = observer
        self.arena = arena if arena is not None else BufferArena()
        self.results = ResultCache(result_cache_size)
        self._heuristics: LRUCache = LRUCache(heuristic_cache_size)
        self._strategy_factory = strategy_factory
        self._frontier_mode = frontier_mode
        self._pull_relax = pull_relax
        self._kernel = kernel
        self.verify_hits = bool(verify_hits)
        self.fault_injector = fault_injector
        self._checker = checker
        if self.verify_hits and self._checker is None:
            from ..verify import CertificateChecker  # lazy: verify imports obs

            self._checker = CertificateChecker()
        self._engine = self._make_engine()
        self.queries = 0
        self.batches = 0
        #: cache hits evicted because their certificate failed.
        self.quarantined = 0

    def _make_engine(self) -> PPSPEngine:
        strategy = self._strategy_factory() if self._strategy_factory else None
        return PPSPEngine(
            self.graph,
            strategy=strategy,
            frontier_mode=self._frontier_mode,
            pull_relax=self._pull_relax,
            kernel=self._kernel,
            arena=self.arena,
            observer=self.observer,
            track_processed=self.verify_hits,
        )

    # ------------------------------------------------------------------
    # Heuristic cache
    # ------------------------------------------------------------------
    def heuristic_for(self, vertex: int) -> Heuristic:
        """The cached, memoized distance-to-``vertex`` heuristic.

        Geometric graphs get their coordinate heuristic; coordinate-free
        graphs fall back to the attached :class:`LandmarkSet`.  The same
        instance is returned for repeated targets, so its memo table
        (the ``h`` row) persists across queries — the Sec.-5 memoization
        lifted from per-query to per-engine scope.
        """
        vertex = int(vertex)
        observer = self.observer
        h = self._heuristics.get(vertex)
        if h is not None:
            if observer is not None:
                observer.on_cache("heuristic", "hit")
            return h
        if observer is not None:
            observer.on_cache("heuristic", "miss")
        if self.graph.coords is not None and self.graph.coord_system is not None:
            h = make_heuristic(self.graph, vertex, memoize=True)
        elif self.landmarks is not None:
            h = self.landmarks.heuristic_to(vertex)
        else:
            raise ValueError(
                f"graph {self.graph.name!r} has no coordinates and no landmarks "
                "attached; A* methods are not applicable"
            )
        before = self._heuristics.evictions
        self._heuristics.put(vertex, h)
        if observer is not None and self._heuristics.evictions > before:
            observer.on_cache("heuristic", "evict")
        return h

    def _make_policy(self, source: int, target: int, method: str):
        if method == "sssp":
            return SsspPolicy(source)
        if method == "et":
            return EarlyTermination(source, target)
        if method == "astar":
            return AStar(source, target, heuristic=self.heuristic_for(target))
        if method == "bids":
            return BiDS(source, target)
        if method == "bidastar":
            return BiDAStar(
                source,
                target,
                heuristic_to_source=self.heuristic_for(source),
                heuristic_to_target=self.heuristic_for(target),
            )
        raise ValueError(f"unknown method {method!r}; options: {_METHODS}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        source: int,
        target: int,
        *,
        method: str = "bids",
        path: bool = False,
        use_cache: bool = True,
        budget=None,
    ) -> WarmAnswer:
        """Exact shortest s-t distance, warm.

        Semantically identical to ``repro.ppsp(graph, s, t,
        method=...)`` — same engine, same policies — but buffers come
        from the pool, heuristics from the heuristic cache, and repeat
        queries from the result cache.  ``path=True`` captures a
        shortest path while the distance matrix is still alive (pooled
        buffers are recycled when the call returns, so the path cannot
        be derived later).

        ``budget`` (a :class:`repro.robustness.Budget` or live meter)
        bounds this one query's engine run; an answer whose budget ran
        out (``exact=False``) is never stored in the result cache.
        """
        from ..api import validate_query  # runtime import: api imports perf lazily

        validate_query(self.graph, source, target)
        source, target = int(source), int(target)
        self.queries += 1
        observer = self.observer
        if use_cache:
            hit = self.results.get(source, target, method)
            if hit is not None and (hit.path_vertices is not None or not path
                                    or not hit.reachable or source == target):
                if self.verify_hits:
                    hit = self._verified_hit(source, target, method, hit)
                if hit is not None:
                    if observer is not None:
                        observer.on_cache("result", "hit")
                    return replace(hit, cached=True)
            if observer is not None:
                observer.on_cache("result", "miss")

        bmeter = None
        if budget is not None:
            bmeter = budget if hasattr(budget, "charge") else budget.start()
        with self.arena.scope():
            run = self._engine.run(
                self._make_policy(source, target, method), budget=bmeter
            )
            if method == "sssp":
                distance = float(run.answer[target])
            else:
                distance = float(run.answer)
            path_vertices = None
            if path and np.isfinite(distance) and source != target:
                if method in _BIDIRECTIONAL:
                    p = stitch_bidirectional_path(
                        self.graph, run.dist[0], run.dist[1], source, target
                    )
                else:
                    p = walk_path(self.graph, run.dist[0], source, target)
                path_vertices = tuple(int(v) for v in p)
            certificate = None
            if self.verify_hits:
                # Built while the pooled dist rows are still alive.
                from ..verify import certificate_for_run

                certificate = certificate_for_run(
                    self.graph, source, target, method,
                    distance, not run.exhausted, run,
                )

        answer = WarmAnswer(
            source=source,
            target=target,
            method=method,
            distance=distance,
            exact=not run.exhausted,
            cached=False,
            steps=run.steps,
            relaxations=run.relaxations,
            work=float(run.meter.work),
            depth=float(run.meter.depth),
            path_vertices=path_vertices,
            certificate=certificate,
        )
        if use_cache and answer.exact:
            before = self.results.evictions
            self.results.put(source, target, method, answer)
            if observer is not None and self.results.evictions > before:
                observer.on_cache("result", "evict")
        return answer

    def _verified_hit(self, source, target, method, hit):
        """Certificate-check one cache hit; None means quarantined/unusable.

        The fault injector (when armed) corrupts the payload first and
        the corrupted copy is written back — the cache itself now holds
        bad bytes, exactly like real in-memory corruption, so eviction
        (not mere recomputation) is what keeps it from resurfacing.
        """
        observer = self.observer
        if self.fault_injector is not None:
            corrupted = self.fault_injector.corrupt_warm_answer(hit)
            if corrupted is not hit:
                self.results.put(source, target, method, corrupted)
                hit = corrupted
        if hit.certificate is None:
            # Uncertified entry (cached before verify_hits was enabled):
            # nothing to vouch for it — recompute and replace.
            if observer is not None:
                observer.on_verify("unproven")
            return None
        report = self._checker.check(
            self.graph, hit.certificate, expected_distance=hit.distance
        )
        if report.valid:
            if observer is not None:
                observer.on_verify("valid", checks=report.checks)
            return hit
        self.results.evict(source, target, method)
        self.quarantined += 1
        if observer is not None:
            observer.on_verify("invalid", checks=report.checks)
            observer.on_quarantine("result-cache")
        return None

    def batch(
        self,
        queries,
        *,
        method: str = "multi",
        keep_paths: bool = False,
        **kwargs,
    ) -> BatchResult:
        """Answer a batch of (s, t) pairs with pooled engine buffers.

        By default the per-search distance matrices go back to the pool
        as soon as the distances are extracted, so ``BatchResult.path``
        is unavailable (``keep_paths=True`` opts out of pooling for
        this call and retains full path state).  The per-pair answers
        are folded into the result cache under their single-query method
        equivalents, so a later ``query(s, t, method='bids')`` hits.
        """
        if method not in BATCH_METHODS:
            raise ValueError(f"unknown batch method {method!r}; options: {BATCH_METHODS}")
        self.batches += 1
        if self.observer is not None and "observer" not in kwargs:
            kwargs = {**kwargs, "observer": self.observer}
        if self._kernel is not None:
            kwargs.setdefault("kernel", self._kernel)
        if self.verify_hits:
            # Certified folds: later verified hits need evidence.
            kwargs.setdefault("certify", True)
        if keep_paths:
            res = solve_batch(self.graph, queries, method=method, **kwargs)
        else:
            with self.arena.scope():
                res = solve_batch(
                    self.graph, queries, method=method, arena=self.arena, **kwargs
                )
                res._path_state = None
        if res.exact:
            certs = res.certificates or {}
            for (s, t), d in res.distances.items():
                cached = WarmAnswer(
                    source=int(s), target=int(t), method="bids",
                    distance=float(d), exact=True,
                    certificate=certs.get((s, t)),
                )
                self.results.put(int(s), int(t), "bids", cached)
        return res

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every cached answer and heuristic row.

        Call this after mutating the bound graph *in place* (weights or
        topology); pooled buffers are shape-keyed and carry no graph
        values, so the arena survives invalidation untouched.
        """
        self.results.invalidate()
        self._heuristics.clear()
        if self.landmarks is not None:
            self.landmarks.clear_cache()

    def stats(self) -> dict:
        """Lifetime counters of every warm layer (for dashboards/tests)."""
        out = {
            "queries": self.queries,
            "batches": self.batches,
            "results": self.results.stats(),
            "heuristics": self._heuristics.stats(),
            "arena": self.arena.stats(),
        }
        if self.verify_hits:
            out["quarantined"] = self.quarantined
        if self.landmarks is not None:
            out["landmark_cache"] = {
                "hits": self.landmarks.cache_hits,
                "misses": self.landmarks.cache_misses,
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WarmEngine(graph={self.graph.name!r}, queries={self.queries}, "
            f"result_hits={self.results.hits})"
        )
