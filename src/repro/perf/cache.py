"""LRU caches for warm query serving.

Two layers sit on top of the engine:

* :class:`LRUCache` — a small ordered-dict LRU with hit/miss counters,
  shared by the result cache and the per-target heuristic cache of
  :class:`~repro.perf.warm.WarmEngine`;
* :class:`ResultCache` — exact answers keyed by ``(source, target,
  method)``.  Entries are immutable :class:`~repro.perf.warm.WarmAnswer`
  values, so a hit costs one dict lookup and no engine work at all.

Invalidation is **explicit**: the caches are bound to one graph object
and assume its topology and weights do not change.  Anything that
mutates the graph in place must call
:meth:`~repro.perf.warm.WarmEngine.invalidate` (which clears both
layers); building a new :class:`~repro.graphs.csr.Graph` — the usual
idiom, e.g. ``Graph.with_weights`` — naturally calls for a new
``WarmEngine``.  See ``docs/perf.md`` for the full semantics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable

__all__ = ["LRUCache", "ResultCache"]

_MISSING = object()


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    ``maxsize <= 0`` disables caching entirely (every ``get`` misses,
    ``put`` is a no-op) — handy for ablations and for callers that want
    cache-off behaviour without branching.
    """

    def __init__(self, maxsize: int = 128) -> None:
        self.maxsize = int(maxsize)
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default=None):
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value) -> None:
        if self.maxsize <= 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def pop(self, key: Hashable, default=None):
        return self._data.pop(key, default)

    def clear(self) -> None:
        self._data.clear()

    def keys(self):
        return self._data.keys()

    def stats(self) -> dict:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class ResultCache:
    """Exact ``(source, target, method)`` answers with explicit invalidation.

    A thin, typed veneer over :class:`LRUCache`: keys are normalized to
    ``(int(s), int(t), str(method))`` so numpy integer scalars and plain
    ints hit the same entry.  ``invalidate()`` empties the cache (called
    by :meth:`WarmEngine.invalidate` on graph mutation); counters
    survive invalidation so long-running services keep lifetime hit
    rates.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        self._lru = LRUCache(maxsize)

    @staticmethod
    def _key(source: int, target: int, method: str) -> tuple[int, int, str]:
        return int(source), int(target), str(method)

    def get(self, source: int, target: int, method: str):
        return self._lru.get(self._key(source, target, method))

    def put(self, source: int, target: int, method: str, answer) -> None:
        self._lru.put(self._key(source, target, method), answer)

    def evict(self, source: int, target: int, method: str) -> bool:
        """Drop one entry (quarantine); True when something was removed.

        Unlike :meth:`invalidate` this is surgical — used by
        certificate-verified serving to quarantine a single corrupt
        payload without throwing away every other good answer.
        """
        return self._lru.pop(self._key(source, target, method), _MISSING) is not _MISSING

    def invalidate(self) -> None:
        self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    @property
    def evictions(self) -> int:
        return self._lru.evictions

    def stats(self) -> dict:
        return self._lru.stats()
