"""``repro.perf`` — the warm-engine performance layer.

Everything here amortizes per-query overhead across a query stream on
one graph (the serving scenario of the ROADMAP north star):

* :class:`BufferArena` (:mod:`repro.perf.arena`) — pools the large
  ``(k, n)`` numpy buffers the engine allocates per run;
* :class:`LRUCache` / :class:`ResultCache` (:mod:`repro.perf.cache`) —
  bounded caches for exact answers and per-target heuristics;
* :class:`WarmEngine` (:mod:`repro.perf.warm`) — the user-facing
  handle combining pooling + heuristic caching + result caching;
* :mod:`repro.perf.regression` — the ``repro bench`` harness that
  freezes a seeded workload and gates each ``BENCH_<i>.json`` snapshot
  against the previous one.
"""

from .arena import BufferArena
from .cache import LRUCache, ResultCache
from .warm import WarmAnswer, WarmEngine

__all__ = [
    "BufferArena",
    "LRUCache",
    "ResultCache",
    "WarmAnswer",
    "WarmEngine",
]
