"""Pooled numpy buffers for the warm query path.

Every cold ``ppsp()`` call allocates a fresh ``(k, n)`` distance array
and (in dense mode) ``k*n`` frontier masks.  On a serving workload —
many queries against one graph — those allocations dominate the
fixed per-query overhead the paper's batch design amortizes away.  A
:class:`BufferArena` keeps released buffers in free lists keyed by
``(shape, dtype)`` so repeated queries reuse memory instead of paying
the allocator (and the page-faulting of first-touch) every time.

The arena is deliberately dumb: exact-shape matching, no size classes,
no trimming policy beyond :meth:`trim`.  Queries against one graph
produce a tiny, fixed set of shapes (``k ∈ {1, 2, |V_q|}`` times ``n``),
so exact matching hits essentially always after warm-up — and the
``allocations`` counter staying flat *is* the test that the warm path
performs zero new ``(k, n)`` allocations.

Buffers are handed out leased; :meth:`release` returns them to the
pool.  A :meth:`scope` context manager auto-releases everything
acquired inside it — the pattern :class:`~repro.perf.warm.WarmEngine`
uses to bound a query's buffers to the query.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

__all__ = ["BufferArena"]


class BufferArena:
    """Free lists of numpy arrays keyed by exact ``(shape, dtype)``.

    Counters (all monotonic):

    * ``allocations`` — buffers created because the free list was empty;
    * ``reuses``      — acquires served from a free list;
    * ``releases``    — buffers returned to a free list.

    ``acquire`` never zeroes memory unless asked (``fill=``): a recycled
    buffer holds stale values from its previous lease, exactly like
    ``np.empty``.  Callers that need a known initial state pass ``fill``
    (the engine fills distance arrays with ``inf``).
    """

    def __init__(self) -> None:
        self._pools: dict[tuple[tuple[int, ...], str], list[np.ndarray]] = {}
        self._leased: dict[int, tuple[tuple[tuple[int, ...], str], np.ndarray]] = {}
        self._scopes: list[list[np.ndarray]] = []
        self.allocations = 0
        self.reuses = 0
        self.releases = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _key(shape, dtype) -> tuple[tuple[int, ...], str]:
        shape = (int(shape),) if np.isscalar(shape) else tuple(int(s) for s in shape)
        return shape, np.dtype(dtype).str

    def acquire(self, shape, dtype=np.float64, *, fill=None) -> np.ndarray:
        """A buffer of exactly ``shape``/``dtype``, recycled when possible."""
        key = self._key(shape, dtype)
        pool = self._pools.get(key)
        if pool:
            arr = pool.pop()
            self.reuses += 1
        else:
            arr = np.empty(key[0], dtype=np.dtype(key[1]))
            self.allocations += 1
        if fill is not None:
            arr[...] = fill
        self._leased[id(arr)] = (key, arr)
        if self._scopes:
            self._scopes[-1].append(arr)
        return arr

    def release(self, arr: np.ndarray | None) -> bool:
        """Return a leased buffer (or a view of one) to its free list.

        Accepts views — ``RunResult.dist`` is the engine's flat arena
        buffer reshaped to ``(k, n)`` — by resolving to the base array.
        Returns False (and does nothing) for arrays the arena does not
        hold a lease on, so double releases are harmless no-ops.
        """
        if arr is None:
            return False
        base = arr if arr.base is None else arr.base
        entry = self._leased.pop(id(base), None)
        if entry is None:
            return False
        key, buf = entry
        self._pools.setdefault(key, []).append(buf)
        self.releases += 1
        return True

    @contextmanager
    def scope(self):
        """Auto-release every buffer acquired inside the ``with`` block.

        Buffers explicitly released inside the scope are skipped at exit
        (release of an unleased buffer is a no-op), so manual and scoped
        management compose.
        """
        leases: list[np.ndarray] = []
        self._scopes.append(leases)
        try:
            yield self
        finally:
            self._scopes.pop()
            for arr in leases:
                self.release(arr)

    # ------------------------------------------------------------------
    def trim(self) -> int:
        """Drop all pooled (free) buffers; returns how many were freed."""
        freed = sum(len(pool) for pool in self._pools.values())
        self._pools.clear()
        return freed

    @property
    def leased(self) -> int:
        """Number of buffers currently out on lease."""
        return len(self._leased)

    @property
    def pooled(self) -> int:
        """Number of buffers sitting in free lists."""
        return sum(len(pool) for pool in self._pools.values())

    def pooled_bytes(self) -> int:
        return sum(a.nbytes for pool in self._pools.values() for a in pool)

    def stats(self) -> dict:
        return {
            "allocations": self.allocations,
            "reuses": self.reuses,
            "releases": self.releases,
            "leased": self.leased,
            "pooled": self.pooled,
            "pooled_bytes": self.pooled_bytes(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BufferArena(allocations={self.allocations}, reuses={self.reuses}, "
            f"pooled={self.pooled}, leased={self.leased})"
        )
