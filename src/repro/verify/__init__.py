"""Self-verifying answers: certificates, checking, quarantine and repair.

The trust layer (PR 6).  Solvers emit :class:`Certificate` objects — a
witness path plus lower-bound evidence — and the independent
:class:`CertificateChecker` validates them in O(path length + k spot
checks).  Built on top of it:

* :class:`repro.perf.WarmEngine` ``verify_hits=True`` — cache hits are
  re-checked and failing entries quarantined (evicted and recomputed,
  never served);
* :class:`repro.serve.ServePipeline` ``verify=True`` — every answer is
  checked before it is recorded; a failed check triggers one exact
  recompute and re-check (the ``repaired`` outcome);
* ``repro verify`` / ``repro serve-batch --verify`` on the CLI.

See docs/robustness.md for what is proven vs spot-checked.
"""

from .certificate import (
    CERTIFICATE_KIND,
    CERTIFICATE_VERSION,
    Certificate,
    CertificateError,
    RelaxFact,
    build_certificate,
    certificate_for_run,
)
from .checker import CertificateChecker, CheckReport

__all__ = [
    "CERTIFICATE_KIND",
    "CERTIFICATE_VERSION",
    "Certificate",
    "CertificateChecker",
    "CertificateError",
    "CheckReport",
    "RelaxFact",
    "build_certificate",
    "certificate_for_run",
]
