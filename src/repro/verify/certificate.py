"""Answer certificates: a PPSP result that can prove itself.

A :class:`Certificate` packages everything an *independent* checker needs
to validate a query answer without re-solving it:

* **witness path** — the upper-bound side.  Re-summing real edge weights
  along the path takes O(path length) and pins the claimed distance from
  above; since no real path can sum below the true distance, any claim
  that is *too low* is always refuted by this check alone.
* **final μ** — the engine's best source–target estimate at termination;
  for exact answers it must coincide with the claimed distance.
* **heuristic bound** — for the A*-family methods, the geometric lower
  bound ``h(s)`` recomputed from coordinates (dual feasibility: an
  admissible potential certifies ``dist >= h(s)``).
* **relaxation facts** — ``k`` spot-checkable samples from the settled
  frontiers.  Each fact ``(u, v, w, du, dv)`` records the tentative
  distance ``du`` that element ``u`` held *when it was last extracted
  for relaxation* (the engine's ``track_processed`` snapshot) and
  asserts ``dv <= du + w`` for an out-edge ``(u, v, w)`` — sound because
  an extracted element relaxes all its out-edges and distances only
  decrease afterwards.

Certificates are plain data: JSON round-trippable (inf/nan encoded with
the same sentinels as :class:`repro.obs.QuerySpan`), independent of the
engine, and validated by :class:`repro.verify.CertificateChecker` in
O(path length + k) — orders of magnitude cheaper than re-solving.

Budget-degraded answers (``exact=False``) carry one-sided *upper-bound*
certificates: the witness path still proves ``d(s, t) <= distance``, but
no optimality claim is made or checked.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ..core.paths import PathError, stitch_bidirectional_path, walk_path
from ..obs.span import _decode, _encode

__all__ = [
    "CERTIFICATE_KIND",
    "CERTIFICATE_VERSION",
    "Certificate",
    "CertificateError",
    "RelaxFact",
    "build_certificate",
    "certificate_for_run",
]

CERTIFICATE_KIND = "repro-certificate"
CERTIFICATE_VERSION = 1

#: Knuth's multiplicative hash constant — deterministic edge picks.
_HASH = 2654435761

#: Methods whose run keeps two dist rows (forward + backward).
_BIDIRECTIONAL = frozenset({"bids", "bidastar"})


class CertificateError(ValueError):
    """A certificate payload that violates the schema (not merely invalid:
    a *malformed* certificate cannot even be checked)."""


@dataclass(frozen=True)
class RelaxFact:
    """One spot-checkable relaxation invariant from a settled frontier.

    Asserts ``dv <= du + w`` where ``du`` is the distance ``u`` held at
    its last extraction and ``dv`` is the final distance of ``v``.  With
    ``rev=True`` the arc ``(u, v, w)`` lives in the *reverse* graph (the
    fact came from a backward search row on a directed graph).
    """

    u: int
    v: int
    w: float
    du: float
    dv: float
    rev: bool = False

    def to_dict(self) -> dict:
        return {
            "u": self.u,
            "v": self.v,
            "w": self.w,
            "du": self.du,
            "dv": self.dv,
            "rev": self.rev,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RelaxFact":
        if not isinstance(payload, dict):
            raise CertificateError(f"fact must be an object, got {type(payload).__name__}")
        extra = set(payload) - {"u", "v", "w", "du", "dv", "rev"}
        if extra:
            raise CertificateError(f"fact has unknown fields {sorted(extra)}")
        try:
            return cls(
                u=_as_int(payload["u"], "fact.u"),
                v=_as_int(payload["v"], "fact.v"),
                w=_as_float(payload["w"], "fact.w"),
                du=_as_float(payload["du"], "fact.du"),
                dv=_as_float(payload["dv"], "fact.dv"),
                rev=_as_bool(payload.get("rev", False), "fact.rev"),
            )
        except KeyError as exc:
            raise CertificateError(f"fact is missing field {exc.args[0]!r}") from None


@dataclass
class Certificate:
    """Self-contained evidence for one query answer (see module docs)."""

    source: int
    target: int
    method: str
    distance: float
    exact: bool
    mu: float | None = None
    graph_fingerprint: str | None = None
    path: tuple[int, ...] | None = None
    facts: tuple[RelaxFact, ...] = field(default=())
    heuristic_bound: float | None = None

    @property
    def kind(self) -> str:
        """``"exact"`` (two-sided claim) or ``"upper-bound"`` (one-sided)."""
        return "exact" if self.exact else "upper-bound"

    # ------------------------------------------------------------------
    # JSON round trip — same inf/nan sentinels as QuerySpan
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return _encode(
            {
                "kind": CERTIFICATE_KIND,
                "version": CERTIFICATE_VERSION,
                "source": self.source,
                "target": self.target,
                "method": self.method,
                "distance": float(self.distance),
                "exact": self.exact,
                "mu": None if self.mu is None else float(self.mu),
                "graph_fingerprint": self.graph_fingerprint,
                "path": None if self.path is None else list(self.path),
                "facts": [f.to_dict() for f in self.facts],
                "heuristic_bound": (
                    None if self.heuristic_bound is None else float(self.heuristic_bound)
                ),
            }
        )

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "Certificate":
        """Strict inverse of :meth:`to_dict`.

        Raises :class:`CertificateError` on any schema violation —
        unknown fields, wrong types, missing keys, bad kind/version —
        so a tampered or truncated payload fails loudly at parse time
        rather than producing a half-checked certificate.
        """
        if not isinstance(payload, dict):
            raise CertificateError(
                f"certificate must be an object, got {type(payload).__name__}"
            )
        payload = _decode(payload)
        if payload.get("kind") != CERTIFICATE_KIND:
            raise CertificateError(
                f"not a certificate (kind={payload.get('kind')!r}, "
                f"expected {CERTIFICATE_KIND!r})"
            )
        if payload.get("version") != CERTIFICATE_VERSION:
            raise CertificateError(
                f"certificate version {payload.get('version')!r} is not "
                f"readable by this build (expects {CERTIFICATE_VERSION})"
            )
        known = {
            "kind", "version", "source", "target", "method", "distance",
            "exact", "mu", "graph_fingerprint", "path", "facts",
            "heuristic_bound",
        }
        extra = set(payload) - known
        if extra:
            raise CertificateError(f"certificate has unknown fields {sorted(extra)}")
        missing = {"source", "target", "method", "distance", "exact"} - set(payload)
        if missing:
            raise CertificateError(f"certificate is missing fields {sorted(missing)}")

        method = payload["method"]
        if not isinstance(method, str) or not method:
            raise CertificateError("method must be a non-empty string")
        fingerprint = payload.get("graph_fingerprint")
        if fingerprint is not None and not isinstance(fingerprint, str):
            raise CertificateError("graph_fingerprint must be a string or null")
        path = payload.get("path")
        if path is not None:
            if not isinstance(path, list) or not path:
                raise CertificateError("path must be a non-empty array or null")
            path = tuple(_as_int(v, "path vertex") for v in path)
        facts = payload.get("facts", [])
        if not isinstance(facts, list):
            raise CertificateError("facts must be an array")
        mu = payload.get("mu")
        bound = payload.get("heuristic_bound")
        return cls(
            source=_as_int(payload["source"], "source"),
            target=_as_int(payload["target"], "target"),
            method=method,
            distance=_as_float(payload["distance"], "distance"),
            exact=_as_bool(payload["exact"], "exact"),
            mu=None if mu is None else _as_float(mu, "mu"),
            graph_fingerprint=fingerprint,
            path=path,
            facts=tuple(RelaxFact.from_dict(f) for f in facts),
            heuristic_bound=None if bound is None else _as_float(bound, "heuristic_bound"),
        )

    @classmethod
    def from_json(cls, text: str) -> "Certificate":
        try:
            payload = json.loads(text)
        except (TypeError, ValueError) as exc:
            raise CertificateError(f"certificate is not valid JSON: {exc}") from None
        return cls.from_dict(payload)


# ----------------------------------------------------------------------
# Schema helpers
# ----------------------------------------------------------------------
def _as_int(value, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise CertificateError(f"{name} must be an integer, got {value!r}")
    return int(value)


def _as_float(value, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CertificateError(f"{name} must be a number, got {value!r}")
    return float(value)


def _as_bool(value, name: str) -> bool:
    if not isinstance(value, bool):
        raise CertificateError(f"{name} must be a boolean, got {value!r}")
    return value


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def build_certificate(
    graph,
    source: int,
    target: int,
    method: str,
    distance: float,
    exact: bool,
    *,
    dist_forward=None,
    dist_backward=None,
    backward_reversed: bool = False,
    processed_forward=None,
    processed_backward=None,
    mu: float | None = None,
    heuristic_bound: float | None = None,
    path="auto",
    spot_checks: int = 8,
) -> Certificate:
    """Assemble a :class:`Certificate` from a solver's dist rows.

    ``dist_forward``/``dist_backward`` are the final ``(n,)`` distance
    rows (backward row present only for bidirectional methods;
    ``backward_reversed=True`` when it traversed ``graph.reverse()``).
    ``processed_*`` are the matching ``track_processed`` snapshots used
    to sample relaxation facts.  ``path="auto"`` reconstructs the
    witness path from the rows; pass an explicit sequence (or ``None``)
    for solvers that already walked it.  Reconstruction failures —
    expected when the rows are corrupt or the run was cut short — yield
    ``path=None``, which the checker treats as refuting any finite exact
    claim (the producer always supplies a witness when one exists).
    """
    distance = float(distance)
    if path == "auto":
        path = _reconstruct_path(graph, source, target, distance, dist_forward, dist_backward)
    elif path is not None:
        path = tuple(int(v) for v in path)

    facts: list[RelaxFact] = []
    per_row = max(1, spot_checks // (2 if processed_backward is not None else 1))
    if processed_forward is not None and dist_forward is not None:
        facts.extend(
            _sample_facts(graph, dist_forward, processed_forward, False, per_row)
        )
    if processed_backward is not None and dist_backward is not None:
        facts.extend(
            _sample_facts(
                graph, dist_backward, processed_backward,
                backward_reversed and graph.directed, per_row,
            )
        )

    return Certificate(
        source=int(source),
        target=int(target),
        method=str(method),
        distance=distance,
        exact=bool(exact),
        mu=None if mu is None else float(mu),
        graph_fingerprint=graph.fingerprint(),
        path=path,
        facts=tuple(facts),
        heuristic_bound=heuristic_bound,
    )


def certificate_for_run(
    graph,
    source: int,
    target: int,
    method: str,
    distance: float,
    exact: bool,
    run,
    *,
    heuristic_bound: float | None = None,
    spot_checks: int = 8,
) -> Certificate:
    """Build a certificate straight from a :class:`RunResult`.

    Knows the engine's dist-row layout per method: bidirectional methods
    keep the forward search in row 0 and the backward search in row 1
    (traversing the reverse graph when directed); everything else is a
    single forward row.  Must be called while ``run.dist`` is alive —
    arena-backed buffers are reused after the scope closes.
    """
    bidir = method in _BIDIRECTIONAL
    pd = run.processed_dist
    return build_certificate(
        graph,
        source,
        target,
        method,
        distance,
        exact,
        dist_forward=run.dist[0],
        dist_backward=run.dist[1] if bidir else None,
        backward_reversed=bool(graph.directed),
        processed_forward=None if pd is None else pd[0],
        processed_backward=pd[1] if (bidir and pd is not None) else None,
        mu=distance if method != "sssp" else None,
        heuristic_bound=heuristic_bound,
        spot_checks=spot_checks,
    )


def _reconstruct_path(graph, source, target, distance, dist_forward, dist_backward):
    """Witness path from dist rows, or None when one cannot be walked."""
    if not np.isfinite(distance):
        return None
    if source == target:
        return (int(source),)
    if dist_forward is None:
        return None
    try:
        if dist_backward is not None:
            path = stitch_bidirectional_path(
                graph, dist_forward, dist_backward, source, target
            )
        else:
            path = walk_path(graph, dist_forward, source, target)
    except (PathError, ValueError, IndexError):
        return None
    return tuple(int(v) for v in path)


def _sample_facts(graph, dist_row, processed_row, rev: bool, count: int):
    """Evenly spaced relaxation facts from one search's snapshot.

    Sampling is deterministic (no RNG): evenly spaced over the settled
    elements, with the out-edge per vertex picked by a multiplicative
    hash — reproducible across runs, yet spread over the frontier.
    """
    g = graph.reverse() if (rev and graph.directed) else graph
    settled = np.flatnonzero(np.isfinite(processed_row))
    if len(settled) == 0 or count <= 0:
        return []
    picks = settled[
        np.unique(np.linspace(0, len(settled) - 1, num=min(count, len(settled)), dtype=np.int64))
    ]
    facts = []
    for u in picks:
        u = int(u)
        start, end = int(g.indptr[u]), int(g.indptr[u + 1])
        if end == start:
            continue
        e = start + (u * _HASH) % (end - start)
        v = int(g.indices[e])
        facts.append(
            RelaxFact(
                u=u,
                v=v,
                w=float(g.weights[e]),
                du=float(processed_row[u]),
                dv=float(dist_row[v]),
                rev=bool(rev),
            )
        )
    return facts
