"""Independent certificate validation in O(path length + k spot checks).

The checker shares **no code path** with the solvers: it looks up edges
directly in the CSR arrays, re-sums weights with plain arithmetic, and
recomputes geometric bounds from coordinates.  A bug (or bit flip) in
the engine, the caches, or a checkpoint therefore cannot vouch for
itself.

What is *proven* vs *spot-checked* (see docs/robustness.md):

* A claim that is **too low** is always refuted: the witness path must
  re-sum to the claimed distance over real edges, and no real path sums
  below the true distance.
* A claim that is **too high** while presenting a consistent witness
  path is caught by the lower-bound side — μ/distance agreement, the
  recomputed heuristic bound, and the sampled relaxation facts — which
  is probabilistic, not exhaustive.  Fabricating such a certificate
  requires a *valid but suboptimal* path plus consistent facts; random
  corruption does not produce one.
* ``inf`` (unreachable) claims carry no cheap disconnection proof; the
  report marks them ``unproven`` and callers needing certainty (the
  serve pipeline) confirm them with one authoritative Dijkstra.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .certificate import Certificate

__all__ = ["CertificateChecker", "CheckReport"]


@dataclass
class CheckReport:
    """Outcome of one certificate check.

    ``valid``
        No check failed.  (Vacuously true for an empty certificate —
        see ``proven`` for what was actually established.)
    ``proven``
        Strength of the established claim: ``"exact"`` (witness path
        verified and optimality evidence consistent), ``"upper-bound"``
        (witness verified, no optimality claim), ``"unproven"`` (nothing
        checkable — e.g. an infinite distance), or ``"refuted"`` when
        any check failed.
    ``checks``
        Number of individual facts verified (path hops + relaxation
        facts + bounds) — the histogram fodder.
    ``failures``
        Human-readable reasons, empty when valid.
    """

    valid: bool
    proven: str
    checks: int = 0
    failures: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.valid


class CertificateChecker:
    """Validates a :class:`Certificate` against a graph.

    ``tolerance`` is relative for distance comparisons (scaled by
    ``max(1, |distance|)``) and absolute for per-edge facts; the default
    ``1e-6`` is ~9 orders of magnitude above float64 path-sum noise on
    the bundled workloads while still refuting any material corruption.
    """

    def __init__(self, *, tolerance: float = 1e-6) -> None:
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.tolerance = float(tolerance)

    # ------------------------------------------------------------------
    def check(self, graph, cert: Certificate, *, expected_distance=None) -> CheckReport:
        """Validate ``cert`` against ``graph``; see :class:`CheckReport`.

        ``expected_distance`` cross-checks the answer actually *served*
        (cache payload, checkpoint row) against the certificate's own
        claim — the hook that catches corruption of the stored answer
        after the certificate was built.
        """
        failures: list[str] = []
        checks = 0
        d = float(cert.distance)
        tol = self.tolerance * max(1.0, abs(d) if math.isfinite(d) else 1.0)
        n = graph.num_vertices

        # --- structural sanity -----------------------------------------
        if not (0 <= cert.source < n) or not (0 <= cert.target < n):
            failures.append(
                f"endpoints ({cert.source}, {cert.target}) out of range for n={n}"
            )
            return CheckReport(False, "refuted", checks, failures)
        if math.isnan(d) or d < 0:
            failures.append(f"distance {d!r} is not a valid metric value")
        if cert.graph_fingerprint is not None:
            checks += 1
            if cert.graph_fingerprint != graph.fingerprint():
                failures.append(
                    f"graph fingerprint mismatch: certificate was issued for "
                    f"{cert.graph_fingerprint}, this graph is {graph.fingerprint()}"
                )
        if expected_distance is not None:
            checks += 1
            e = float(expected_distance)
            same_inf = math.isinf(d) and math.isinf(e) and (d > 0) == (e > 0)
            if not same_inf and not (
                math.isfinite(d) and math.isfinite(e) and abs(d - e) <= tol
            ):
                failures.append(
                    f"served distance {e!r} disagrees with certified {d!r}"
                )
        if cert.source == cert.target:
            checks += 1
            if d != 0.0:
                failures.append(f"self-query must certify 0, got {d!r}")
            if cert.path is not None and cert.path != (cert.source,):
                failures.append("self-query path must be the single vertex")

        # --- witness path (the upper-bound side) -----------------------
        proven = "unproven"
        if cert.path is not None and cert.source != cert.target:
            hops, path_failures = self._check_path(graph, cert, d, tol)
            checks += hops
            failures.extend(path_failures)
            if not path_failures:
                proven = "exact" if cert.exact else "upper-bound"
        elif cert.exact and math.isfinite(d) and cert.source != cert.target:
            # The producer always attaches a witness to a finite exact
            # claim; its absence means reconstruction failed on the
            # solver's own rows — corrupt state, not a checkable answer.
            failures.append("finite exact claim carries no witness path")
        elif cert.source == cert.target and not failures:
            proven = "exact" if cert.exact else "upper-bound"

        # --- optimality evidence (the lower-bound side) ----------------
        if cert.mu is not None:
            checks += 1
            m = float(cert.mu)
            if cert.exact and math.isfinite(d) and abs(m - d) > tol:
                failures.append(f"final mu {m!r} disagrees with exact distance {d!r}")
        if cert.heuristic_bound is not None:
            checks += 1
            failures.extend(self._check_heuristic_bound(graph, cert, d, tol))
        for i, f in enumerate(cert.facts):
            checks += 1
            msg = self._check_fact(graph, f, i)
            if msg is not None:
                failures.append(msg)

        if failures:
            return CheckReport(False, "refuted", checks, failures)
        return CheckReport(True, proven, checks, failures)

    # ------------------------------------------------------------------
    def _check_path(self, graph, cert: Certificate, d: float, tol: float):
        """Re-sum the witness path over real edges; return (hops, failures)."""
        path = cert.path
        failures: list[str] = []
        if path[0] != cert.source or path[-1] != cert.target:
            failures.append(
                f"path endpoints ({path[0]}, {path[-1]}) are not the query "
                f"({cert.source}, {cert.target})"
            )
            return len(path) - 1, failures
        n = graph.num_vertices
        total = 0.0
        for hop, (u, v) in enumerate(zip(path, path[1:])):
            if not (0 <= v < n):
                failures.append(f"path vertex {v} out of range")
                return hop + 1, failures
            w = _min_arc_weight(graph, u, v)
            if w is None:
                failures.append(f"path hop {u} -> {v} is not an edge of the graph")
                return hop + 1, failures
            total += w
        if not math.isfinite(d):
            failures.append("witness path attached to a non-finite distance claim")
        elif cert.exact:
            if abs(total - d) > tol:
                failures.append(
                    f"witness path sums to {total!r}, certificate claims {d!r}"
                )
        elif total > d + tol:
            # One-sided certificates still promise path weight <= claim;
            # a heavier witness means the stored bound was corrupted.
            failures.append(
                f"witness path ({total!r}) exceeds the claimed upper bound {d!r}"
            )
        return len(path) - 1, failures

    def _check_heuristic_bound(self, graph, cert: Certificate, d: float, tol: float):
        """Recompute the geometric lower bound h(s) from coordinates."""
        from ..heuristics import make_heuristic

        if not graph.has_coords():
            return ["certificate carries a heuristic bound but the graph has no coords"]
        failures = []
        h = make_heuristic(graph, cert.target, memoize=False)
        b = float(cert.heuristic_bound)
        hs = float(h(np.asarray([cert.source]))[0])
        if abs(hs - b) > tol:
            failures.append(
                f"heuristic bound {b!r} does not match recomputed h(s)={hs!r}"
            )
        if math.isfinite(d) and b > d + tol:
            failures.append(
                f"heuristic lower bound {b!r} exceeds the claimed distance {d!r}"
            )
        if cert.path is not None and len(cert.path) > 1 and not failures:
            # Dual feasibility along the witness: a consistent potential
            # satisfies h(u) <= w(u, v) + h(v) on every hop.
            verts = np.asarray(cert.path, dtype=np.int64)
            hv = h(verts)
            for u, v, hu, hnext in zip(cert.path, cert.path[1:], hv, hv[1:]):
                w = _min_arc_weight(graph, u, v)
                if w is not None and hu > w + hnext + tol:
                    failures.append(
                        f"heuristic inconsistent on hop {u} -> {v}: "
                        f"h({u})={float(hu)!r} > w + h({v})"
                    )
                    break
        return failures

    def _check_fact(self, graph, f, index: int):
        """One relaxation fact: the arc exists and dv <= du + w holds."""
        g = graph.reverse() if (f.rev and graph.directed) else graph
        n = g.num_vertices
        if not (0 <= f.u < n) or not (0 <= f.v < n):
            return f"fact #{index}: endpoints ({f.u}, {f.v}) out of range"
        if math.isnan(f.w) or math.isnan(f.du) or math.isnan(f.dv):
            return f"fact #{index}: NaN value"
        tol = self.tolerance * max(1.0, abs(f.w), abs(f.du) if math.isfinite(f.du) else 1.0)
        indptr, indices, weights = g.csr_lists()
        arc_ok = False
        for e in range(indptr[f.u], indptr[f.u + 1]):
            if indices[e] == f.v and abs(weights[e] - f.w) <= tol:
                arc_ok = True
                break
        if not arc_ok:
            return (
                f"fact #{index}: arc {f.u} -> {f.v} (w={f.w!r}"
                f"{', reverse' if f.rev else ''}) is not in the graph"
            )
        if f.dv > f.du + f.w + tol:
            return (
                f"fact #{index}: relaxation invariant violated: "
                f"dist[{f.v}]={f.dv!r} > {f.du!r} + {f.w!r}"
            )
        return None


def _min_arc_weight(graph, u: int, v: int):
    """Minimum weight among arcs u -> v, or None when absent.

    Parallel edges collapse to the minimum — the only weight a shortest
    path can use.  O(deg(u)) straight off the CSR arrays.
    """
    n = graph.num_vertices
    if not (0 <= u < n):
        return None
    indptr, indices, weights = graph.csr_lists()
    best = None
    # Scalar scan: called once per path hop, where degree-sized numpy
    # temporaries cost more than the comparison loop itself.
    for e in range(indptr[u], indptr[u + 1]):
        if indices[e] == v:
            w = weights[e]
            if best is None or w < best:
                best = w
    return best
