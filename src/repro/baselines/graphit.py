"""GraphIt-style unidirectional PPSP baseline (GI-ET / GI-A*).

Reimplements the algorithmic core of GraphIt's ordered-processing PPSP
(Zhang et al., CGO'20) over our CSR substrate so the comparison against
Orionet isolates the *algorithmic* differences the paper credits for its
speedups:

* unidirectional search only (early termination, optionally A*);
* lazy bucketed Δ-stepping in which a vertex is **not deduplicated**
  across bucket insertions — stale and duplicate entries are re-examined
  when popped (GraphIt's lazy bucket update);
* no sparse-dense frontier switching, no bidirectional relaxation, and
  no heuristic memoization (GraphIt recomputes ``h`` per relaxation,
  which is why the paper finds GI-A* can lose to GI-ET).

The implementation is still vectorized per bucket, so wall-clock ratios
against Orionet reflect extra relaxations and heuristic work, not an
artificial Python penalty.
"""

from __future__ import annotations

import math

import numpy as np

from ..heuristics.geometric import PointHeuristic
from ..kernels.scatter import get_kernel
from ..parallel.cost_model import WorkDepthMeter
from ..parallel.primitives import expand_ranges

__all__ = ["graphit_ppsp"]


def graphit_ppsp(
    graph,
    source: int,
    target: int,
    *,
    delta: float,
    use_astar: bool = False,
    meter: WorkDepthMeter | None = None,
    max_buckets: int = 1 << 22,
    kernel=None,
) -> float:
    """GI-ET (``use_astar=False``) or GI-A* distance query.

    ``delta`` is the bucket width (tuned per graph, as in the paper's
    experiments).  Returns the exact s-t distance.  ``kernel`` selects
    the scatter-min implementation (:mod:`repro.kernels`), so baseline
    timings ride the same inner loop as the engine.
    """
    n = graph.num_vertices
    if not (0 <= source < n and 0 <= target < n):
        raise ValueError("query out of range")
    meter = meter if meter is not None else WorkDepthMeter()
    if source == target:
        return 0.0

    h = None
    if use_astar:
        if graph.coords is None:
            raise ValueError("GI-A* needs coordinates")
        h = PointHeuristic(graph.coords, target, graph.coord_system)

    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    kern = get_kernel(kernel)
    degs = graph.out_degrees()
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    mu = np.inf

    def bucket_of(priorities: np.ndarray) -> np.ndarray:
        return np.minimum((priorities / delta).astype(np.int64), max_buckets - 1)

    # Lazy bucket structure: bucket index -> list of vertex-id arrays.
    seed = np.array([source], dtype=np.int64)
    seed_prio = dist[seed] + (h(seed) if h is not None else 0.0)
    buckets: dict[int, list[np.ndarray]] = {int(bucket_of(seed_prio)[0]): [seed]}
    current = 0

    while buckets:
        while current not in buckets:
            current += 1
            if current >= max_buckets:
                return float(mu)
            if not buckets:
                return float(mu)
        chunks = buckets.pop(current)
        batch = np.concatenate(chunks)
        # Lazy update: drop entries whose priority no longer matches the
        # bucket (they were superseded) and entries past the prune bound.
        d = dist[batch]
        prio = d + h(batch) if h is not None else d
        # Lazy check: entries whose priority moved *up* past this bucket
        # are stale copies (a duplicate lives in a later bucket); entries
        # at or below the current bucket are processed now.
        live = bucket_of(prio) <= current
        live &= prio < mu
        batch = batch[live]
        step_work = float(len(chunks) + len(d))
        if h is not None:
            step_work += len(d)
        if len(batch) == 0:
            meter.record_step(step_work)
            continue
        # NOTE: no dedup here — duplicates relax redundantly, as in lazy
        # bucketing.
        starts = indptr[batch]
        counts = degs[batch]
        edge_idx = expand_ranges(starts, counts)
        step_work += float(len(edge_idx))
        if len(edge_idx):
            tgt = indices[edge_idx].astype(np.int64)
            nd = np.repeat(dist[batch], counts) + weights[edge_idx]
            before = dist[tgt]
            improving = nd < before
            if improving.any():
                # One fused scatter-min: the write and the deduplicated
                # improving-target set (a vertex may still live in
                # several buckets at once — lazy bucket update — so
                # stale copies are filtered at pop time).
                tgt_i = kern.scatter_min(dist, tgt[improving], nd[improving])
                if dist[target] < mu:
                    mu = float(dist[target])
                prio_i = dist[tgt_i] + h(tgt_i) if h is not None else dist[tgt_i]
                if h is not None:
                    step_work += len(tgt_i)
                keep = prio_i < mu
                tgt_i, prio_i = tgt_i[keep], prio_i[keep]
                # An improvement can map below the cursor (its old bucket
                # already passed); Δ-stepping re-processes it in the
                # current bucket, so clamp the insertion index.
                ins = np.maximum(bucket_of(prio_i), current)
                for b in np.unique(ins):
                    buckets.setdefault(int(b), []).append(tgt_i[ins == b])
        meter.record_step(step_work)
        if math.isfinite(mu) and not buckets:
            break
    return float(mu)
