"""Contraction Hierarchies (Geisberger et al., WEA'08 / Transp. Sci. 2012).

The second canonical preprocessing-based comparator the paper's Sec. 7
names (alongside PLL): contract vertices in importance order, inserting
shortcuts that preserve shortest distances among the not-yet-contracted;
queries then run a bidirectional Dijkstra that only ever moves *upward*
in the contraction order, touching a tiny fraction of the graph.

Orionet's pitch is being preprocessing-free; CH is the classic point in
the opposite corner (moderate preprocessing, near-instant queries, great
on road networks, less so on hub-heavy social graphs where contraction
produces dense shortcut cores).  ``experiments/ext_preprocessing.py``
quantifies the tradeoff on our suite.

Implementation notes: lazy-priority contraction with
``edge_difference + contracted_neighbors`` (the standard heuristic),
bounded witness searches, undirected graphs only (the paper symmetrizes
its inputs).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graphs.csr import from_edges

__all__ = ["ContractionHierarchy"]


class ContractionHierarchy:
    """Preprocess a graph into a CH; query with upward bidirectional Dijkstra.

    Parameters
    ----------
    graph : Graph
        Undirected, nonnegative weights.
    hop_limit, settle_limit : int
        Witness-search budgets.  Exhausting a budget without finding a
        witness just inserts a (possibly unnecessary) shortcut — queries
        stay exact, preprocessing gets cheaper.
    """

    def __init__(self, graph, *, hop_limit: int = 5, settle_limit: int = 64) -> None:
        if graph.directed:
            raise ValueError("ContractionHierarchy supports undirected graphs only")
        self.graph = graph
        self.hop_limit = hop_limit
        self.settle_limit = settle_limit
        n = graph.num_vertices

        # Dynamic remaining-graph adjacency: adj[u][v] = weight.  Parallel
        # edges collapse to the minimum up front.
        adj: list[dict[int, float]] = [dict() for _ in range(n)]
        src, dst, w = graph.edges()
        for u, v, x in zip(src.tolist(), dst.tolist(), w.tolist()):
            if u == v:
                continue
            old = adj[u].get(v)
            if old is None or x < old:
                adj[u][v] = x
        self._adj_snapshot_edges = sum(len(a) for a in adj)

        rank = np.full(n, -1, dtype=np.int64)
        contracted = np.zeros(n, dtype=bool)
        deleted_neighbors = np.zeros(n, dtype=np.int64)
        self.shortcuts_added = 0

        # All edges of the hierarchy (original + shortcuts), collected as
        # we contract; direction is assigned by final ranks afterwards.
        all_edges: list[tuple[int, int, float]] = [
            (int(u), int(v), float(x)) for u, v, x in zip(src, dst, w) if u != v
        ]

        def simulate(v: int) -> tuple[int, list[tuple[int, int, float]]]:
            """Shortcuts needed if ``v`` were contracted now."""
            nbrs = [(u, wu) for u, wu in adj[v].items() if not contracted[u]]
            shortcuts: list[tuple[int, int, float]] = []
            for i, (u, wu) in enumerate(nbrs):
                targets = {x: wu + wx for x, wx in nbrs[i + 1 :]}
                if not targets:
                    continue
                witnessed = self._witness_search(
                    adj, contracted, u, v, targets, max(targets.values())
                )
                for x, through in targets.items():
                    if not witnessed.get(x, False):
                        shortcuts.append((u, x, through))
            return len(shortcuts), shortcuts

        def priority(v: int, num_shortcuts: int) -> float:
            degree = sum(1 for u in adj[v] if not contracted[u])
            return (num_shortcuts - degree) + deleted_neighbors[v]

        heap: list[tuple[float, int]] = []
        for v in range(n):
            cnt, _ = simulate(v)
            heapq.heappush(heap, (priority(v, cnt), v))

        next_rank = 0
        while heap:
            _, v = heapq.heappop(heap)
            if contracted[v]:
                continue
            # Lazy update: recompute; requeue if no longer the minimum.
            cnt, shortcuts = simulate(v)
            prio = priority(v, cnt)
            if heap and prio > heap[0][0]:
                heapq.heappush(heap, (prio, v))
                continue
            # Contract v.
            rank[v] = next_rank
            next_rank += 1
            contracted[v] = True
            for u, x, wux in shortcuts:
                old = adj[u].get(x)
                if old is None or wux < old:
                    adj[u][x] = wux
                    adj[x][u] = wux
                all_edges.append((u, x, wux))
                self.shortcuts_added += 1
            for u in adj[v]:
                if not contracted[u]:
                    deleted_neighbors[u] += 1

        self.rank = rank
        # Upward graph: arcs from lower rank to higher rank only.  For
        # undirected inputs both query searches climb the same CSR.
        e = np.array(all_edges, dtype=np.float64).reshape(-1, 3)
        us = e[:, 0].astype(np.int64)
        vs = e[:, 1].astype(np.int64)
        ws = e[:, 2]
        up_src = np.where(rank[us] < rank[vs], us, vs)
        up_dst = np.where(rank[us] < rank[vs], vs, us)
        self.upward = from_edges(
            up_src, up_dst, ws, num_vertices=n, directed=True, dedupe=True,
            name=f"{graph.name}+ch-up",
        )

    # ------------------------------------------------------------------
    def _witness_search(
        self,
        adj: list[dict[int, float]],
        contracted: np.ndarray,
        source: int,
        skip: int,
        targets: dict[int, float],
        budget: float,
    ) -> dict[int, bool]:
        """Bounded Dijkstra avoiding ``skip``: which targets have a path
        no longer than their shortcut length?"""
        dist = {source: 0.0}
        heap = [(0.0, source)]
        settled = 0
        found: dict[int, bool] = {}
        remaining = set(targets)
        while heap and settled < self.settle_limit and remaining:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, np.inf):
                continue
            settled += 1
            if u in remaining and d <= targets[u]:
                found[u] = True
                remaining.discard(u)
            if d > budget:
                break
            for x, wx in adj[u].items():
                if x == skip or contracted[x]:
                    continue
                nd = d + wx
                if nd <= budget and nd < dist.get(x, np.inf):
                    dist[x] = nd
                    heapq.heappush(heap, (nd, x))
        return found

    # ------------------------------------------------------------------
    def query(self, s: int, t: int) -> float:
        """Exact shortest s-t distance via upward bidirectional Dijkstra."""
        if s == t:
            return 0.0
        up = self.upward
        indptr, indices, weights = up.indptr, up.indices, up.weights
        n = up.num_vertices
        best = np.inf
        dists: list[dict[int, float]] = [{s: 0.0}, {t: 0.0}]
        heaps = [[(0.0, s)], [(0.0, t)]]
        done = [set(), set()]
        while heaps[0] or heaps[1]:
            side = 0 if (heaps[0] and (not heaps[1] or heaps[0][0][0] <= heaps[1][0][0])) else 1
            d, u = heapq.heappop(heaps[side])
            if d > dists[side].get(u, np.inf):
                continue
            if d >= best:
                # Nothing on this side can improve the meet point.
                heaps[side] = []
                continue
            done[side].add(u)
            other = dists[1 - side].get(u)
            if other is not None and d + other < best:
                best = d + other
            for off in range(indptr[u], indptr[u + 1]):
                v = int(indices[off])
                nd = d + weights[off]
                if nd < dists[side].get(v, np.inf):
                    dists[side][v] = nd
                    heapq.heappush(heaps[side], (nd, v))
        return float(best)

    @property
    def index_edges(self) -> int:
        """Arcs in the upward search graph (original + shortcuts)."""
        return self.upward.num_edges
