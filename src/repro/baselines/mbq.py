"""Multi Bucket Queue (MBQ) baseline (MBQ-ET / MBQ-A*).

Reimplements the scheduling core of Multi Bucket Queues (Zhang, Posluns,
Jeffrey — SPAA'24) over our substrate.  MBQ is a relaxed concurrent
priority scheduler: workers repeatedly pop small batches from the lowest
nonempty bucket of one of several bucketed queues and process them
individually.  The properties that matter for the paper's comparison:

* **integer priorities only** — MBQ bitpacks (priority, payload) words,
  so the paper rounds floating-point distances to integers when feeding
  MBQ; we do the same (``priority_scale`` controls the rounding);
* **small pop batches** — scheduling is per-element rather than
  per-frontier, so the per-step batch is capped (``batch_size``); on the
  simulated machine this yields much deeper schedules, and in wall-clock
  terms more Python-level steps, mirroring MBQ's scheduling overhead
  relative to frontier-based stepping;
* unidirectional ET/A* only, no memoization — matching the MBQ PPSP
  implementations evaluated in the paper.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..heuristics.geometric import PointHeuristic
from ..kernels.scatter import get_kernel
from ..parallel.cost_model import WorkDepthMeter
from ..parallel.primitives import expand_ranges

__all__ = ["mbq_ppsp"]


def mbq_ppsp(
    graph,
    source: int,
    target: int,
    *,
    use_astar: bool = False,
    batch_size: int = 64,
    bucket_shift: int = 0,
    priority_scale: float = 1.0,
    meter: WorkDepthMeter | None = None,
    kernel=None,
) -> float:
    """MBQ-ET (``use_astar=False``) or MBQ-A* distance query.

    Distances are multiplied by ``priority_scale`` and rounded to int
    for scheduling (answers are still computed on the true floats);
    ``bucket_shift`` coarsens priorities as MBQ's bucket mapping does.
    ``kernel`` selects the scatter-min implementation
    (:mod:`repro.kernels`).
    """
    n = graph.num_vertices
    if not (0 <= source < n and 0 <= target < n):
        raise ValueError("query out of range")
    meter = meter if meter is not None else WorkDepthMeter()
    if source == target:
        return 0.0

    h = None
    if use_astar:
        if graph.coords is None:
            raise ValueError("MBQ-A* needs coordinates")
        h = PointHeuristic(graph.coords, target, graph.coord_system)

    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    kern = get_kernel(kernel)
    degs = graph.out_degrees()
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    mu = np.inf

    def int_priority(vertices: np.ndarray) -> np.ndarray:
        prio = dist[vertices]
        if h is not None:
            prio = prio + h(vertices)
        return (np.maximum(prio, 0.0) * priority_scale).astype(np.int64) >> bucket_shift

    # One bucketed queue simulated as a heap of (bucket, vertex) pairs;
    # stale entries are detected by re-deriving the bucket on pop.
    heap: list[tuple[int, int]] = [(int(int_priority(np.array([source]))[0]), source)]

    while heap:
        # Pop up to batch_size entries from the lowest bucket.
        lowest = heap[0][0]
        batch: list[int] = []
        while heap and heap[0][0] == lowest and len(batch) < batch_size:
            _, v = heapq.heappop(heap)
            batch.append(v)
        verts = np.array(batch, dtype=np.int64)
        step_work = float(len(verts))
        # Stale / pruned filtering at pop time.
        cur_bucket = int_priority(verts)
        if h is not None:
            step_work += len(verts)
        prio_f = dist[verts] + (h(verts) if h is not None else 0.0)
        live = (cur_bucket <= lowest) & (prio_f < mu)
        verts = verts[live]
        if len(verts) == 0:
            meter.record_step(step_work)
            continue
        starts = indptr[verts]
        counts = degs[verts]
        edge_idx = expand_ranges(starts, counts)
        step_work += float(len(edge_idx))
        if len(edge_idx):
            tgt = indices[edge_idx].astype(np.int64)
            nd = np.repeat(dist[verts], counts) + weights[edge_idx]
            improving = nd < dist[tgt]
            if improving.any():
                # Fused write + dedup, same kernel as the engine.
                tgt_u = kern.scatter_min(dist, tgt[improving], nd[improving])
                if dist[target] < mu:
                    mu = float(dist[target])
                prios = int_priority(tgt_u)
                if h is not None:
                    step_work += len(tgt_u)
                for p, v in zip(prios, tgt_u):
                    heapq.heappush(heap, (int(p), int(v)))
        meter.record_step(step_work)
    return float(mu)
