"""Sequential Dijkstra oracles.

These are textbook heap implementations used as ground truth in tests
and as the classic sequential comparators:

* :func:`dijkstra` — full SSSP (the correctness oracle for every other
  algorithm in the repo);
* :func:`dijkstra_ppsp` — sequential early termination: stop when the
  target is settled (Fig. 1a);
* :func:`bidirectional_dijkstra` — the classical sequential BiDS with
  the Theorem-3.2 stop rule (terminate when some vertex is settled from
  both sides), alternating by smaller tentative priority (Nicholson).
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["dijkstra", "dijkstra_ppsp", "bidirectional_dijkstra"]


def dijkstra(graph, source: int, *, target: int | None = None) -> np.ndarray:
    """Distances from ``source``; stops early if ``target`` settles."""
    n = graph.num_vertices
    dist = np.full(n, np.inf)
    dist[source] = 0.0
    done = np.zeros(n, dtype=bool)
    heap: list[tuple[float, int]] = [(0.0, source)]
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        if target is not None and u == target:
            break
        for off in range(indptr[u], indptr[u + 1]):
            v = indices[off]
            nd = d + weights[off]
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, int(v)))
    return dist


def dijkstra_ppsp(graph, source: int, target: int) -> float:
    """Sequential PPSP with early termination (settle-the-target rule)."""
    return float(dijkstra(graph, source, target=target)[target])


def bidirectional_dijkstra(graph, source: int, target: int) -> float:
    """Classical sequential bidirectional Dijkstra (Thm. 3.2 stop rule).

    Alternates between forward and backward searches by picking the side
    whose heap top is smaller; terminates when a vertex has been settled
    from both directions; the answer is the best concatenated path seen.
    """
    if source == target:
        return 0.0
    n = graph.num_vertices
    graphs = (graph, graph if not graph.directed else graph.reverse())
    dist = [np.full(n, np.inf), np.full(n, np.inf)]
    done = [np.zeros(n, dtype=bool), np.zeros(n, dtype=bool)]
    heaps: list[list[tuple[float, int]]] = [[(0.0, source)], [(0.0, target)]]
    dist[0][source] = 0.0
    dist[1][target] = 0.0
    mu = np.inf
    while heaps[0] and heaps[1]:
        side = 0 if heaps[0][0][0] <= heaps[1][0][0] else 1
        d, u = heapq.heappop(heaps[side])
        if done[side][u]:
            continue
        done[side][u] = True
        if done[1 - side][u]:
            # Settled from both sides: Thm. 3.2 allows stopping now.
            return float(min(mu, dist[0][u] + dist[1][u]))
        g = graphs[side]
        for off in range(g.indptr[u], g.indptr[u + 1]):
            v = int(g.indices[off])
            nd = d + g.weights[off]
            if nd < dist[side][v]:
                dist[side][v] = nd
                heapq.heappush(heaps[side], (nd, v))
                other = dist[1 - side][v]
                if np.isfinite(other) and nd + other < mu:
                    mu = nd + other
    return float(mu)
