"""Comparator implementations: sequential oracles, GraphIt- and MBQ-style."""

from .ch import ContractionHierarchy
from .dijkstra import bidirectional_dijkstra, dijkstra, dijkstra_ppsp
from .graphit import graphit_ppsp
from .mbq import mbq_ppsp
from .pll import PrunedLandmarkLabeling
from .pnp import pnp_ppsp

__all__ = [
    "dijkstra",
    "dijkstra_ppsp",
    "bidirectional_dijkstra",
    "graphit_ppsp",
    "mbq_ppsp",
    "pnp_ppsp",
    "PrunedLandmarkLabeling",
    "ContractionHierarchy",
]
