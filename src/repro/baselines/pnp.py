"""PnP-style baseline: predict a direction, then run unidirectional ET.

PnP (Xu, Vora, Gupta — ASPLOS'19) is, per the paper (Sec. 3.4/7), the
only prior parallel PPSP system that touches bidirectional search — but
only in a *prediction* phase: it probes from both endpoints, predicts
which direction will do less work, and then runs a standard
unidirectional search with early termination from that side.  Orionet's
contribution is precisely that it keeps BiDS active through the whole
query, so this baseline is the natural foil.

Our reimplementation probes both directions round-by-round on the
shared stepping engine until one side has expanded a threshold of edges,
picks the side whose frontier is growing more slowly (PnP's
less-computation predictor), and finishes with ET from that side.
"""

from __future__ import annotations

import numpy as np

from ..core.engine import run_policy
from ..core.policies import EarlyTermination
from ..core.stepping import SteppingStrategy
from ..parallel.cost_model import WorkDepthMeter
from ..parallel.primitives import expand_ranges

__all__ = ["pnp_ppsp"]


def pnp_ppsp(
    graph,
    source: int,
    target: int,
    *,
    strategy: SteppingStrategy | None = None,
    probe_edges: int = 256,
    probe_rounds: int = 4,
    meter: WorkDepthMeter | None = None,
) -> float:
    """PnP-style PPSP: probe both directions, finish unidirectionally.

    ``probe_edges``/``probe_rounds`` bound the prediction phase: each
    side runs BFS-like expansion until it has touched that many edges or
    rounds.  The side with the smaller expansion rate searches; on
    directed graphs the backward choice runs over the reverse graph and
    the roles of s and t swap.
    """
    n = graph.num_vertices
    if not (0 <= source < n and 0 <= target < n):
        raise ValueError("query out of range")
    meter = meter if meter is not None else WorkDepthMeter()
    if source == target:
        return 0.0

    forward_cost = _probe_cost(graph, source, probe_edges, probe_rounds, meter)
    backward_graph = graph if not graph.directed else graph.reverse()
    backward_cost = _probe_cost(backward_graph, target, probe_edges, probe_rounds, meter)

    if forward_cost <= backward_cost:
        res = run_policy(graph, EarlyTermination(source, target), strategy=strategy, meter=meter)
    else:
        res = run_policy(
            backward_graph, EarlyTermination(target, source), strategy=strategy, meter=meter
        )
    return float(res.answer)


def _probe_cost(graph, start: int, probe_edges: int, probe_rounds: int, meter) -> float:
    """Edges touched by a bounded BFS expansion from ``start``.

    PnP's predictor estimates which endpoint sits in the "cheaper"
    region; frontier edge counts over a few hops are its proxy.
    """
    indptr, indices = graph.indptr, graph.indices
    seen = np.zeros(graph.num_vertices, dtype=bool)
    seen[start] = True
    frontier = np.array([start], dtype=np.int64)
    touched = 0
    for _ in range(probe_rounds):
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        edge_idx = expand_ranges(starts, counts)
        touched += len(edge_idx)
        meter.record_step(max(len(edge_idx), 1))
        if touched >= probe_edges:
            break
        nbrs = indices[edge_idx].astype(np.int64)
        fresh = np.unique(nbrs[~seen[nbrs]])
        if len(fresh) == 0:
            break
        seen[fresh] = True
        frontier = fresh
    return float(touched)
