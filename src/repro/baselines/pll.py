"""Pruned Landmark Labeling (Akiba, Iwata, Yoshida — SIGMOD'13).

The paper's Sec. 7 contrasts Orionet's preprocessing-free methods with
index-based ones: "preprocessing in shortest-path algorithms is
double-edged — while queries can be significantly accelerated, the
preprocessing can also take much time, and sometimes much more space".
PLL is the canonical such index, so we implement it as the comparator
for that tradeoff (see ``experiments/ext_preprocessing.py``): after
building a 2-hop label index, an s-t query is a sorted-list merge —
microseconds — but preprocessing runs a pruned Dijkstra from *every*
vertex and the index can dwarf the graph.

Algorithm: process vertices in descending-degree order; from each root
``r`` run Dijkstra, but prune any vertex ``u`` whose current labels
already certify ``dist(r, u) <= d`` — otherwise append ``(r, d)`` to
``u``'s label.  Queries take the min of ``d_s[h] + d_t[h]`` over common
hubs ``h``.  Undirected graphs only (directed PLL needs two label sets).
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["PrunedLandmarkLabeling"]


class PrunedLandmarkLabeling:
    """A 2-hop distance index supporting exact O(label) queries.

    Parameters
    ----------
    graph : Graph
        Undirected, nonnegative-weighted.
    max_roots : int or None
        Optional cap on how many roots are processed (a partial index;
        queries then return upper bounds certified by ``exact=False``).
        Default: all vertices — exact index.
    """

    def __init__(self, graph, *, max_roots: int | None = None) -> None:
        if graph.directed:
            raise ValueError("PrunedLandmarkLabeling supports undirected graphs only")
        self.graph = graph
        n = graph.num_vertices
        order = np.argsort(-graph.degree())  # hubs first: smallest labels
        if max_roots is not None:
            order = order[:max_roots]
        self.exact = max_roots is None or max_roots >= n

        # Per-vertex labels as parallel lists (hub rank, distance), kept
        # sorted by hub rank for merge queries.
        label_hubs: list[list[int]] = [[] for _ in range(n)]
        label_dists: list[list[float]] = [[] for _ in range(n)]
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(len(order))

        indptr, indices, weights = graph.indptr, graph.indices, graph.weights
        dist = np.full(n, np.inf)

        for r_rank, root in enumerate(order):
            root = int(root)
            heap = [(0.0, root)]
            dist[root] = 0.0
            visited = [root]
            while heap:
                d, u = heapq.heappop(heap)
                if d > dist[u]:
                    continue
                # Prune: an existing 2-hop path through earlier hubs
                # already certifies d(root, u) <= d.
                if self._query_labels(
                    label_hubs[root], label_dists[root], label_hubs[u], label_dists[u]
                ) <= d:
                    continue
                label_hubs[u].append(r_rank)
                label_dists[u].append(d)
                for off in range(indptr[u], indptr[u + 1]):
                    v = int(indices[off])
                    nd = d + weights[off]
                    if nd < dist[v]:
                        if not np.isfinite(dist[v]):
                            visited.append(v)
                        dist[v] = nd
                        heapq.heappush(heap, (nd, v))
            for v in visited:
                dist[v] = np.inf
            visited.clear()

        self._hubs = [np.array(h, dtype=np.int64) for h in label_hubs]
        self._dists = [np.array(d) for d in label_dists]

    # ------------------------------------------------------------------
    @staticmethod
    def _query_labels(h1, d1, h2, d2) -> float:
        """Min label-path distance over common hubs (sorted-merge)."""
        i = j = 0
        best = np.inf
        n1, n2 = len(h1), len(h2)
        while i < n1 and j < n2:
            a, b = h1[i], h2[j]
            if a == b:
                s = d1[i] + d2[j]
                if s < best:
                    best = s
                i += 1
                j += 1
            elif a < b:
                i += 1
            else:
                j += 1
        return best

    def query(self, s: int, t: int) -> float:
        """Exact shortest s-t distance (inf when disconnected)."""
        if s == t:
            return 0.0
        return float(
            self._query_labels(self._hubs[s], self._dists[s], self._hubs[t], self._dists[t])
        )

    @property
    def index_size(self) -> int:
        """Total number of stored label entries (space cost)."""
        return int(sum(len(h) for h in self._hubs))

    def average_label_size(self) -> float:
        return self.index_size / max(self.graph.num_vertices, 1)
