"""Orionet reproduction: parallel point-to-point shortest paths and batch queries.

A Python reproduction of *"Parallel Point-to-Point Shortest Paths and
Batch Queries"* (SPAA 2025): the PPSP framework over stepping-algorithm
SSSP, with early termination, A*, bidirectional search, bidirectional
A*, and query-graph-based batch solvers — plus a simulated fork-join
machine for scalability analysis.

Quickstart::

    import repro
    g = repro.graphs.road_graph(100, 100, seed=1)
    ans = repro.ppsp(g, 0, g.num_vertices - 1, method="bidastar")
    print(ans.distance, len(ans.path()))
"""

from . import (
    analysis,
    baselines,
    core,
    graphs,
    heuristics,
    parallel,
    perf,
    robustness,
    serve,
    verify,
)
from .api import (
    BATCH_METHODS,
    PPSP_METHODS,
    PPSPAnswer,
    batch_ppsp,
    ppsp,
    validate_query,
    warm,
)
from .core import (
    AStar,
    BiDAStar,
    BiDS,
    DeltaStepping,
    EarlyTermination,
    MultiPPSP,
    QueryGraph,
    solve_batch,
    sssp,
)
from .graphs import Graph
from .perf import BufferArena, WarmAnswer, WarmEngine
from .robustness import (
    Budget,
    FaultInjector,
    InvariantAuditor,
    InvariantViolation,
    ResilientAnswer,
    SimClock,
    resilient_ppsp,
)
from .serve import (
    BreakerBoard,
    CircuitBreaker,
    PipelineResult,
    QueryService,
    ServePipeline,
    ServeQuery,
    ServiceFuture,
    ServiceResult,
    serve_batch,
)
from .verify import (
    Certificate,
    CertificateChecker,
    CheckReport,
    build_certificate,
)

__version__ = "1.9.0"

__all__ = [
    "ppsp",
    "batch_ppsp",
    "warm",
    "WarmEngine",
    "WarmAnswer",
    "BufferArena",
    "PPSPAnswer",
    "PPSP_METHODS",
    "BATCH_METHODS",
    "validate_query",
    "Graph",
    "QueryGraph",
    "solve_batch",
    "sssp",
    "EarlyTermination",
    "AStar",
    "BiDS",
    "BiDAStar",
    "MultiPPSP",
    "DeltaStepping",
    "Budget",
    "SimClock",
    "InvariantAuditor",
    "InvariantViolation",
    "FaultInjector",
    "resilient_ppsp",
    "ResilientAnswer",
    "serve_batch",
    "ServePipeline",
    "PipelineResult",
    "ServeQuery",
    "QueryService",
    "ServiceFuture",
    "ServiceResult",
    "CircuitBreaker",
    "BreakerBoard",
    "Certificate",
    "CertificateChecker",
    "CheckReport",
    "build_certificate",
    "graphs",
    "core",
    "heuristics",
    "parallel",
    "baselines",
    "analysis",
    "perf",
    "robustness",
    "serve",
    "verify",
    "__version__",
]
