"""Extension experiment — batch PPSP on directed graphs (Sec. 4.4).

The paper's evaluation symmetrizes its graphs; Sec. 4.4 sketches the
directed story: query points split into sources and targets (a
bipartite query graph), Multi-BiDS runs forward searches from sources
and backward searches from targets over the reverse graph, and the
optimal SSSP cover comes from bipartite matching.  This experiment
exercises exactly that machinery at suite-ish scale:

* directed analogs of the road suite (one-way grid streets) and a
  directed power-law graph;
* batches whose query points overlap in *both roles* (the case that
  forces the source/target copy split);
* all batch methods validated against one another, with König cover
  sizes compared to the naive all-sources strategy.

Run: ``python -m repro.experiments.ext_directed [--scale small]``
"""

from __future__ import annotations

import argparse

import numpy as np

from ..core.batch import solve_batch
from ..core.query_graph import QueryGraph, vertex_cover
from ..core.stepping import DeltaStepping
from ..graphs.connectivity import largest_component
from ..graphs.csr import from_edges
from ..graphs.generators import uniform_random_weights
from .harness import render_table, save_results, tune_delta

__all__ = ["directed_road", "directed_social", "collect", "main"]

_SIZES = {"tiny": 900, "small": 6_000, "medium": 20_000}


def directed_road(n_target: int, *, seed: int = 51):
    """One-way street grid: alternating row/column directions plus a
    sprinkling of two-way avenues (same construction as the example)."""
    from ..heuristics.geometric import euclidean_distance

    side = max(int(np.sqrt(n_target)), 4)
    rng = np.random.default_rng(seed)
    n = side * side
    vid = np.arange(n).reshape(side, side)
    coords = (
        np.stack(np.meshgrid(np.arange(side), np.arange(side), indexing="ij"), axis=-1)
        .reshape(n, 2)
        .astype(float)
        * 100.0
    )
    src, dst = [], []
    for r in range(side):
        for c in range(side - 1):
            a, b = int(vid[r, c]), int(vid[r, c + 1])
            fwd = r % 2 == 0
            src.append(a if fwd else b)
            dst.append(b if fwd else a)
            if rng.random() < 0.3:
                src.append(b if fwd else a)
                dst.append(a if fwd else b)
    for c in range(side):
        for r in range(side - 1):
            a, b = int(vid[r, c]), int(vid[r + 1, c])
            fwd = c % 2 == 0
            src.append(a if fwd else b)
            dst.append(b if fwd else a)
            if rng.random() < 0.3:
                src.append(b if fwd else a)
                dst.append(a if fwd else b)
    src, dst = np.array(src), np.array(dst)
    w = euclidean_distance(coords[src], coords[dst]) * rng.uniform(1.0, 1.2, len(src))
    return from_edges(
        src, dst, w, num_vertices=n, directed=True,
        coords=coords, coord_system="euclidean", name="dir-road",
    )


def directed_social(n: int, *, avg_degree: float = 10.0, seed: int = 52):
    """Directed power-law graph (arcs kept one-way, paper-style weights)."""
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    p = ranks ** (-1.0 / 1.3)
    p /= p.sum()
    m = int(n * avg_degree)
    src = rng.choice(n, size=m, p=p)
    dst = rng.choice(n, size=m, p=p)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    w = uniform_random_weights(len(src), rng)
    return from_edges(
        src, dst, w, num_vertices=n, directed=True, dedupe=True, name="dir-social"
    )


def _overlapping_batch(graph, k: int, seed: int) -> QueryGraph:
    """k queries whose endpoints reuse vertices in both roles."""
    rng = np.random.default_rng(seed)
    lcc = largest_component(graph)
    verts = [int(v) for v in rng.choice(lcc, size=k, replace=False)]
    pairs = [(verts[i], verts[(i + 1) % k]) for i in range(k)]  # directed cycle
    pairs += [(verts[0], verts[k // 2])]
    return QueryGraph(pairs, directed=True)


def collect(scale: str = "small", *, seed: int = 61) -> dict:
    out: dict[str, dict] = {}
    n = _SIZES[scale]
    for graph in (directed_road(n, seed=seed), directed_social(n, seed=seed + 1)):
        delta = tune_delta(graph)
        qg = _overlapping_batch(graph, 6, seed + 2)
        cover = vertex_cover(qg)
        results = {}
        answers: dict[str, dict] = {}
        for method in ("multi", "plain-bids", "sssp-vc", "sssp-plain"):
            res = solve_batch(
                graph, qg, method=method, strategy_factory=lambda: DeltaStepping(delta)
            )
            results[method] = {
                "work": res.meter.work,
                "simulated_96p": res.meter.simulated_time(96),
                "num_searches": res.num_searches,
            }
            answers[method] = res.distances
        ref = answers["multi"]
        for method, dists in answers.items():
            for key, val in dists.items():
                want = ref[key]
                if not (np.isinf(val) and np.isinf(want)) and not np.isclose(
                    val, want, rtol=1e-9, atol=1e-9
                ):
                    raise AssertionError(f"{graph.name}/{method}: {key} {val} != {want}")
        out[graph.name] = {
            "n": graph.num_vertices,
            "queries": qg.num_edges,
            "query_copies": qg.num_vertices,
            "koenig_cover": len(cover),
            "methods": results,
        }
    return out


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    args = parser.parse_args(argv)

    data = collect(args.scale)
    methods = ("multi", "plain-bids", "sssp-vc", "sssp-plain")
    cells: dict[tuple[str, str], object] = {}
    for gname, row in data.items():
        for m in methods:
            cells[(gname, m)] = row["methods"][m]["simulated_96p"]
        cells[(gname, "searches (VC)")] = str(row["methods"]["sssp-vc"]["num_searches"])
        cells[(gname, "searches (plain)")] = str(
            row["methods"]["sssp-plain"]["num_searches"]
        )
    print(render_table(
        "Directed batches: simulated 96p seconds per strategy",
        list(data.keys()),
        list(methods) + ["searches (VC)", "searches (plain)"],
        cells,
    ))
    save_results(f"ext_directed_{args.scale}", data)
    return data


if __name__ == "__main__":
    main()
