"""Table 4 — single-PPSP running times across the whole suite.

For each graph and each distance percentile (1st / 50th / 99th), times
our SSSP / ET / BiDS / A* / BiD-A* and the GraphIt- and MBQ-style
baselines on the same query pairs, and reports per-graph times plus the
paper's two geometric-mean columns ("Heur." = road+k-NN graphs, "All").

Run: ``python -m repro.experiments.table4 [--scale small] [--pairs 5]``
"""

from __future__ import annotations

import argparse

import numpy as np

from ..analysis.percentiles import sample_query_pairs
from .harness import (
    BASELINE_METHODS,
    HEURISTIC_METHODS,
    OUR_METHODS,
    geomean_or_none,
    render_table,
    run_single_query,
    save_results,
    tune_delta,
)
from .suite import SUITE, build_suite

__all__ = ["collect", "main", "PERCENTILES", "ALL_METHODS"]

PERCENTILES = (1.0, 50.0, 99.0)
ALL_METHODS = OUR_METHODS + BASELINE_METHODS


def collect(
    scale: str = "small",
    *,
    percentiles=PERCENTILES,
    num_pairs: int = 5,
    repeats: int = 1,
    methods=ALL_METHODS,
    seed: int = 42,
) -> dict:
    """times[percentile][method][graph] = geometric-mean seconds.

    Also validates every method's answer against our SSSP's on each pair
    (a built-in correctness audit of the whole table).
    """
    times: dict[float, dict[str, dict[str, float]]] = {
        p: {m: {} for m in methods} for p in percentiles
    }
    mismatches: list[str] = []
    for spec, g in build_suite(scale):
        delta = tune_delta(g)
        for p in percentiles:
            pairs = sample_query_pairs(g, p, num_pairs=num_pairs, seed=seed)
            per_method: dict[str, list[float]] = {m: [] for m in methods}
            answers: dict[tuple[int, int], float] = {}
            for s, t in pairs:
                for m in methods:
                    if m in HEURISTIC_METHODS and not g.has_coords():
                        continue
                    timing = run_single_query(g, m, s, t, delta=delta, repeats=repeats)
                    per_method[m].append(timing.seconds)
                    ref = answers.setdefault((s, t), timing.answer)
                    if not np.isclose(timing.answer, ref, rtol=1e-6, atol=1e-6):
                        mismatches.append(
                            f"{spec.name} p{p} {m} ({s},{t}): {timing.answer} != {ref}"
                        )
            for m in methods:
                if per_method[m]:
                    times[p][m][spec.name] = geomean_or_none(per_method[m])
    return {"times": times, "mismatches": mismatches}


_ROW_LABEL = {
    "sssp": "SSSP",
    "et": "Ours-ET",
    "bids": "Ours-BiDS",
    "astar": "Ours-A*",
    "bidastar": "Ours-BiD-A*",
    "gi-et": "GI-ET",
    "gi-astar": "GI-A*",
    "mbq-et": "MBQ-ET",
    "mbq-astar": "MBQ-A*",
}

_HEUR_GRAPHS = [s.name for s in SUITE if s.category in ("road", "knn")]
_ALL_GRAPHS = [s.name for s in SUITE]


def summarize(times: dict) -> dict:
    """Add the paper's MEAN columns (Heur. and All geometric means)."""
    out: dict = {}
    for p, by_method in times.items():
        out[p] = {}
        for m, by_graph in by_method.items():
            heur = [by_graph[g] for g in _HEUR_GRAPHS if g in by_graph]
            allg = [by_graph[g] for g in _ALL_GRAPHS if g in by_graph]
            out[p][m] = {
                "heur_mean": geomean_or_none(heur),
                "all_mean": geomean_or_none(allg) if len(allg) == len(_ALL_GRAPHS) else None,
            }
    return out


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    parser.add_argument("--pairs", type=int, default=5)
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--skip-baselines", action="store_true")
    args = parser.parse_args(argv)

    methods = OUR_METHODS if args.skip_baselines else ALL_METHODS
    data = collect(
        args.scale, num_pairs=args.pairs, repeats=args.repeats, methods=methods
    )
    times = data["times"]
    means = summarize(times)

    cols = _ALL_GRAPHS + ["Heur.", "ALL"]
    for p in times:
        cells: dict[tuple[str, str], object] = {}
        rows = [_ROW_LABEL[m] for m in methods]
        for m in methods:
            for gname, v in times[p][m].items():
                cells[(_ROW_LABEL[m], gname)] = v
            hm = means[p][m]["heur_mean"]
            am = means[p][m]["all_mean"]
            cells[(_ROW_LABEL[m], "Heur.")] = hm if hm else "-"
            cells[(_ROW_LABEL[m], "ALL")] = am if am else "-"
        print(render_table(f"Table 4, {int(p)}-th percentile (seconds)", rows, cols, cells))
        print()
    if data["mismatches"]:
        print("ANSWER MISMATCHES:")
        for line in data["mismatches"]:
            print(" ", line)
    save_results(f"table4_{args.scale}", {"times": times, "means": means,
                                          "mismatches": data["mismatches"]})
    return data


if __name__ == "__main__":
    main()
