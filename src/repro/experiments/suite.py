"""The 14-graph evaluation suite (paper Tab. 3), scaled for Python.

Each paper dataset is replaced by a synthetic analog from the same
category with the same qualitative properties (see DESIGN.md).  Sizes
are controlled by a ``scale`` knob:

* ``tiny``   — seconds-per-experiment, used by tests and pytest-benchmark;
* ``small``  — the default for ``python -m repro.experiments.*``;
* ``medium`` — closer shapes, minutes per experiment.

Graphs are cached in-process (and optionally on disk) because suite
construction — especially k-NN — is itself nontrivial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..graphs import (
    Graph,
    knn_graph,
    road_graph,
    social_graph,
    web_graph,
)
from ..graphs.knn import clustered_points, skewed_points, uniform_points

__all__ = ["GraphSpec", "SUITE", "build_graph", "build_suite", "SCALES", "graphs_with_coords"]

SCALES = {"tiny": 0.06, "small": 0.3, "medium": 1.0}


@dataclass(frozen=True)
class GraphSpec:
    """One suite entry: paper dataset name -> generator recipe."""

    name: str
    category: str  # social | web | road | knn
    builder: Callable[[float], Graph]
    paper_counterpart: str

    def build(self, scale: str = "small") -> Graph:
        factor = SCALES[scale]
        g = self.builder(factor)
        g.name = self.name
        return g


def _social(n: int, deg: float, exponent: float, seed: int):
    return lambda f: social_graph(max(int(n * f), 64), avg_degree=deg, seed=seed)


def _web(n: int, deg: float, seed: int):
    return lambda f: web_graph(max(int(n * f), 64), avg_degree=deg, seed=seed)


def _road(side: int, seed: int):
    def make(f: float) -> Graph:
        s = max(int(side * np.sqrt(f)), 8)
        return road_graph(s, s, seed=seed)

    return make


def _knn(n: int, kind: str, dim: int, seed: int):
    def make(f: float) -> Graph:
        count = max(int(n * f), 64)
        if kind == "uniform":
            pts = uniform_points(count, dim, seed=seed)
        elif kind == "clustered":
            pts = clustered_points(count, dim, seed=seed)
        else:
            pts = skewed_points(count, dim, seed=seed)
        return knn_graph(pts, k=5)

    return make


#: Ordered as in the paper's Tab. 3.
SUITE: list[GraphSpec] = [
    GraphSpec("OK", "social", _social(20_000, 30.0, 2.3, 101), "com-orkut"),
    GraphSpec("LJ", "social", _social(30_000, 14.0, 2.3, 102), "soc-LiveJournal1"),
    GraphSpec("TW", "social", _social(50_000, 36.0, 2.1, 103), "Twitter"),
    GraphSpec("FS", "social", _social(60_000, 24.0, 2.4, 104), "Friendster"),
    GraphSpec("IT", "web", _web(40_000, 22.0, 105), "it-2004"),
    GraphSpec("SD", "web", _web(60_000, 20.0, 106), "sd_arc"),
    GraphSpec("AF", "road", _road(130, 107), "Africa (OSM)"),
    GraphSpec("NA", "road", _road(200, 108), "North-America (OSM)"),
    GraphSpec("AS", "road", _road(210, 109), "Asia (OSM)"),
    GraphSpec("EU", "road", _road(250, 110), "Europe (OSM)"),
    GraphSpec("HH5", "knn", _knn(15_000, "uniform", 3, 111), "Household"),
    GraphSpec("CH5", "knn", _knn(20_000, "skewed", 2, 112), "CHEM"),
    GraphSpec("GL5", "knn", _knn(30_000, "clustered", 2, 113), "GeoLife"),
    GraphSpec("COS5", "knn", _knn(60_000, "uniform", 3, 114), "Cosmo50"),
]

_SPEC_BY_NAME = {s.name: s for s in SUITE}
_CACHE: dict[tuple[str, str], Graph] = {}


def build_graph(name: str, scale: str = "small") -> Graph:
    """Build (or fetch from cache) one suite graph by paper name."""
    key = (name, scale)
    if key not in _CACHE:
        _CACHE[key] = _SPEC_BY_NAME[name].build(scale)
    return _CACHE[key]


def build_suite(scale: str = "small", *, categories: tuple[str, ...] | None = None):
    """Yield ``(spec, graph)`` for the whole suite (or chosen categories)."""
    for spec in SUITE:
        if categories is not None and spec.category not in categories:
            continue
        yield spec, build_graph(spec.name, scale)


def graphs_with_coords(scale: str = "small"):
    """The road + k-NN subset where A* applies (paper's "Heur." columns)."""
    return build_suite(scale, categories=("road", "knn"))
