r"""Extension experiment — stepping-strategy comparison (Sec. 6.1 context).

Orionet "also supports ρ-stepping and Bellman-Ford, and can easily be
integrated with other SSSP algorithms"; the paper picks Δ\*-stepping
"because it has the best performance on large-diameter graphs".  This
experiment runs the same BiDS queries under all four GetDist plug-ins
(Δ\*-stepping, ρ-stepping, Bellman-Ford, Dijkstra order) and reports
wall time, rounds, and relaxation work per graph, making the choice the
paper asserts reproducible.

Expected shape: Bellman-Ford minimizes rounds but wastes relaxations on
premature distances (worst on large-diameter road graphs); Dijkstra
order minimizes relaxations but needs the most rounds; Δ\*/ρ sit on the
sweet spot, with Δ\* ahead where the diameter is large.

Run: ``python -m repro.experiments.ext_strategies [--scale small]``
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from ..analysis.percentiles import sample_query_pairs
from ..core.engine import run_policy
from ..core.policies import BiDS
from ..core.stepping import BellmanFord, DeltaStepping, DijkstraOrder, RhoStepping
from .harness import render_table, save_results, tune_delta
from .suite import build_suite

__all__ = ["collect", "main", "STRATEGIES"]

STRATEGIES = ("delta", "rho", "bellman-ford", "dijkstra")


def _make(name: str, delta: float):
    if name == "delta":
        return DeltaStepping(delta)
    if name == "rho":
        return RhoStepping(2048)
    if name == "bellman-ford":
        return BellmanFord()
    return DijkstraOrder()


def collect(
    scale: str = "small",
    *,
    percentile: float = 50.0,
    num_pairs: int = 3,
    seed: int = 29,
) -> dict:
    """stats[graph][strategy] = {seconds, steps, relaxations}."""
    out: dict[str, dict] = {}
    for spec, g in build_suite(scale):
        delta = tune_delta(g)
        pairs = sample_query_pairs(g, percentile, num_pairs=num_pairs, seed=seed)
        per: dict[str, dict[str, float]] = {
            s: {"seconds": 0.0, "steps": 0, "relaxations": 0} for s in STRATEGIES
        }
        for s_v, t_v in pairs:
            answers = {}
            for strat in STRATEGIES:
                t0 = time.perf_counter()
                res = run_policy(g, BiDS(s_v, t_v), strategy=_make(strat, delta))
                per[strat]["seconds"] += time.perf_counter() - t0
                per[strat]["steps"] += res.steps
                per[strat]["relaxations"] += res.relaxations
                answers[strat] = res.answer
            ref = answers["delta"]
            for strat, val in answers.items():
                if not np.isclose(val, ref, rtol=1e-9, atol=1e-9):
                    raise AssertionError(f"{spec.name}/{strat}: {val} != {ref}")
        for strat in STRATEGIES:
            for k in per[strat]:
                per[strat][k] /= num_pairs
        out[spec.name] = {"category": spec.category, "strategies": per}
    return out


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    parser.add_argument("--pairs", type=int, default=3)
    args = parser.parse_args(argv)

    data = collect(args.scale, num_pairs=args.pairs)
    for metric, fmt in (("seconds", "{:.4f}"), ("steps", "{:.0f}"), ("relaxations", "{:.0f}")):
        cells = {
            (gname, strat): row["strategies"][strat][metric]
            for gname, row in data.items()
            for strat in STRATEGIES
        }
        print(render_table(
            f"BiDS under each stepping strategy — mean {metric}/query",
            list(data.keys()),
            list(STRATEGIES),
            cells,
            fmt=fmt,
        ))
        print()
    save_results(f"ext_strategies_{args.scale}", data)
    return data


if __name__ == "__main__":
    main()
