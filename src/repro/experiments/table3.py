"""Table 3 — graph suite information.

Regenerates the paper's dataset table for our synthetic analogs:
vertex/edge counts, approximate hop diameter, largest-connected-component
percentage, and which heuristic (if any) applies.

Run: ``python -m repro.experiments.table3 [--scale small]``
"""

from __future__ import annotations

import argparse

from ..graphs.connectivity import approximate_diameter, largest_component
from .harness import render_table, save_results
from .suite import SUITE, build_suite

__all__ = ["collect", "main"]

_HEURISTIC = {"road": "Spherical", "knn": "Euclidean"}


def collect(scale: str = "small") -> dict[str, dict]:
    """Per-graph statistics, keyed by paper name."""
    out: dict[str, dict] = {}
    for spec, g in build_suite(scale):
        lcc = largest_component(g)
        out[spec.name] = {
            "category": spec.category,
            "n": g.num_vertices,
            "m": g.num_edges // (1 if g.directed else 2),
            "diameter": approximate_diameter(g),
            "lcc_percent": 100.0 * len(lcc) / g.num_vertices,
            "heuristic": _HEURISTIC.get(spec.category, "-"),
            "paper_counterpart": spec.paper_counterpart,
        }
    return out


def main(argv: list[str] | None = None) -> dict[str, dict]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    args = parser.parse_args(argv)

    stats = collect(args.scale)
    cols = ["n", "m", "D", "LCC %", "Heuristic", "Stands in for"]
    cells: dict[tuple[str, str], object] = {}
    for name, row in stats.items():
        cells[(name, "n")] = f"{row['n']:,}"
        cells[(name, "m")] = f"{row['m']:,}"
        cells[(name, "D")] = str(row["diameter"])
        cells[(name, "LCC %")] = f"{row['lcc_percent']:.1f}"
        cells[(name, "Heuristic")] = row["heuristic"]
        cells[(name, "Stands in for")] = row["paper_counterpart"]
    print(render_table(f"Table 3 (scale={args.scale}): graph information",
                       [s.name for s in SUITE], cols, cells))
    save_results(f"table3_{args.scale}", stats)
    return stats


if __name__ == "__main__":
    main()
