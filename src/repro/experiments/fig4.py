"""Figure 4 / Figure 8 — running time vs. distance percentile.

For each graph: pick a random source in the LCC, select targets at
doubling distance ranks (10th closest, 20th, 40th, ... farthest), and
time every algorithm per target.  Fig. 4 uses one representative graph
per category; ``--all`` produces the Fig. 8 version over the full suite.

Run: ``python -m repro.experiments.fig4 [--scale small] [--all]``
"""

from __future__ import annotations

import argparse

import numpy as np

from ..analysis.percentiles import doubling_rank_targets
from ..graphs.connectivity import largest_component
from .harness import (
    HEURISTIC_METHODS,
    OUR_METHODS,
    render_table,
    run_single_query,
    save_results,
    tune_delta,
)
from .suite import build_graph, build_suite

__all__ = ["collect", "main", "REPRESENTATIVES"]

#: One representative per category, as in the paper's Fig. 4.
REPRESENTATIVES = ("OK", "IT", "NA", "GL5")


def collect(
    graph,
    *,
    methods=OUR_METHODS,
    seed: int = 7,
    repeats: int = 1,
) -> dict:
    """series[method] = list of (percentile, seconds) for one graph."""
    rng = np.random.default_rng(seed)
    lcc = largest_component(graph)
    source = int(rng.choice(lcc))
    targets = doubling_rank_targets(graph, source)
    delta = tune_delta(graph)
    series: dict[str, list[tuple[float, float]]] = {m: [] for m in methods}
    for target, percentile in targets:
        for m in methods:
            if m in HEURISTIC_METHODS and not graph.has_coords():
                continue
            timing = run_single_query(graph, m, source, target, delta=delta, repeats=repeats)
            series[m].append((percentile, timing.seconds))
    return {"source": source, "series": {m: v for m, v in series.items() if v}}


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    parser.add_argument("--all", action="store_true", help="all graphs (Fig. 8)")
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument("--plot", action="store_true", help="ASCII charts")
    args = parser.parse_args(argv)

    if args.all:
        graphs = [(spec.name, g) for spec, g in build_suite(args.scale)]
    else:
        graphs = [(name, build_graph(name, args.scale)) for name in REPRESENTATIVES]

    results: dict[str, dict] = {}
    for name, g in graphs:
        data = collect(g, repeats=args.repeats)
        results[name] = data
        percentiles = [f"{p:.2f}%" for p, _ in next(iter(data["series"].values()))]
        cells = {
            (m, percentiles[i]): t
            for m, pts in data["series"].items()
            for i, (_, t) in enumerate(pts)
        }
        print(render_table(
            f"Fig. 4 ({name}): seconds vs distance percentile",
            list(data["series"].keys()),
            percentiles,
            cells,
        ))
        if args.plot:
            from ..analysis.plotting import ascii_line_chart

            print()
            print(ascii_line_chart(
                data["series"],
                title=f"Fig. 4 ({name}) — log time vs percentile",
                log_y=True,
                x_label="distance percentile",
                y_label="sec",
            ))
        print()
    save_results(f"fig4_{args.scale}{'_all' if args.all else ''}", results)
    return results


if __name__ == "__main__":
    main()
