"""Extension experiment — the SSMT crossover (Sec. 1 / Sec. 4.3 claim).

The paper: "the SSMT query with a small number of targets may still
benefit from running BiDS from all vertices, but when the target set T
becomes larger, one SSSP query from the source may give the best
performance ... even with five targets in an SSMT query, running SSSP
on the source may outperform other highly optimized solutions."

This experiment sweeps the number of SSMT targets and reports, per
graph, the simulated-machine time of Multi-BiDS vs one SSSP from the
source — locating the crossover target count the paper talks about.

Run: ``python -m repro.experiments.ext_ssmt [--scale small]``
"""

from __future__ import annotations

import argparse

import numpy as np

from ..core.batch import solve_batch
from ..core.query_graph import QueryGraph
from ..core.stepping import DeltaStepping
from ..graphs.connectivity import largest_component
from .harness import render_table, save_results, tune_delta
from .suite import build_suite

__all__ = ["collect", "main", "TARGET_COUNTS"]

TARGET_COUNTS = (1, 2, 3, 5, 8, 12)


def collect(
    scale: str = "small",
    *,
    target_counts=TARGET_COUNTS,
    processors: int = 96,
    seed: int = 37,
) -> dict:
    """ratio[graph][k] = T(multi) / T(one SSSP) at k targets (< 1: BiDS wins)."""
    out: dict[str, dict] = {}
    for spec, g in build_suite(scale):
        delta = tune_delta(g)
        rng = np.random.default_rng(seed)
        lcc = largest_component(g)
        picks = rng.choice(lcc, size=max(target_counts) + 1, replace=False)
        source = int(picks[0])
        ratios: dict[int, float] = {}
        crossover = None
        for k in target_counts:
            targets = [int(v) for v in picks[1 : k + 1]]
            qg = QueryGraph.star(source, targets)
            multi = solve_batch(
                g, qg, method="multi", strategy_factory=lambda: DeltaStepping(delta)
            )
            sssp = solve_batch(
                g, qg, method="sssp-plain", strategy_factory=lambda: DeltaStepping(delta)
            )
            for key, val in multi.distances.items():
                ref = sssp.distances[key]
                if not np.isclose(val, ref, rtol=1e-9, atol=1e-9):
                    raise AssertionError(f"{spec.name} k={k} {key}: {val} != {ref}")
            ratio = multi.meter.simulated_time(processors) / sssp.meter.simulated_time(
                processors
            )
            ratios[k] = ratio
            if crossover is None and ratio > 1.0:
                crossover = k
        out[spec.name] = {
            "category": spec.category,
            "ratios": ratios,
            "crossover_targets": crossover,
        }
    return out


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    args = parser.parse_args(argv)

    data = collect(args.scale)
    cols = [str(k) for k in TARGET_COUNTS] + ["crossover"]
    cells: dict[tuple[str, str], object] = {}
    for gname, row in data.items():
        for k, r in row["ratios"].items():
            cells[(gname, str(k))] = r
        cells[(gname, "crossover")] = (
            str(row["crossover_targets"]) if row["crossover_targets"] else ">12"
        )
    print(render_table(
        "SSMT: T(Multi-BiDS) / T(one SSSP) vs #targets (<1 means BiDS wins)",
        list(data.keys()),
        cols,
        cells,
        fmt="{:.2f}",
    ))
    save_results(f"ext_ssmt_{args.scale}", data)
    return data


if __name__ == "__main__":
    main()
