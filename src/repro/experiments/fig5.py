"""Figure 5 / Figure 9 — self-relative speedups on the simulated machine.

For each graph and algorithm, runs a 50th-percentile query once,
collects its per-step work profile, and evaluates the Brent-bound
simulated running time at 1..192 processors (the paper's hardware is
96 cores / 192 hyperthreads).  The paper's observation to reproduce:
*plainer algorithms scale better* — pruning removes work per step but
not steps, so SSSP > ET > BiDS in speedup.

Run: ``python -m repro.experiments.fig5 [--scale small] [--all]``
"""

from __future__ import annotations

import argparse

from ..analysis.percentiles import sample_query_pairs
from ..parallel.cost_model import speedup_curve
from .harness import (
    HEURISTIC_METHODS,
    OUR_METHODS,
    render_table,
    run_single_query,
    save_results,
    tune_delta,
)
from .suite import build_graph, build_suite
from .fig4 import REPRESENTATIVES

__all__ = ["collect", "main", "PROCESSOR_COUNTS"]

PROCESSOR_COUNTS = (1, 2, 4, 8, 16, 32, 48, 96, 192)


def collect(
    graph,
    *,
    methods=OUR_METHODS,
    percentile: float = 50.0,
    seed: int = 11,
    processor_counts=PROCESSOR_COUNTS,
) -> dict:
    """curves[method] = {processors: speedup} for one graph."""
    delta = tune_delta(graph)
    (s, t) = sample_query_pairs(graph, percentile, num_pairs=1, seed=seed)[0]
    curves: dict[str, dict[int, float]] = {}
    for m in methods:
        if m in HEURISTIC_METHODS and not graph.has_coords():
            continue
        timing = run_single_query(graph, m, s, t, delta=delta)
        curves[m] = speedup_curve(timing.meter, list(processor_counts))
    return {"query": (s, t), "curves": curves}


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    parser.add_argument("--all", action="store_true", help="all graphs (Fig. 9)")
    parser.add_argument("--plot", action="store_true", help="ASCII charts")
    args = parser.parse_args(argv)

    if args.all:
        graphs = [(spec.name, g) for spec, g in build_suite(args.scale)]
    else:
        graphs = [(name, build_graph(name, args.scale)) for name in REPRESENTATIVES]

    results: dict[str, dict] = {}
    for name, g in graphs:
        data = collect(g)
        results[name] = data
        cols = [str(p) for p in PROCESSOR_COUNTS]
        cells = {
            (m, str(p)): v for m, curve in data["curves"].items() for p, v in curve.items()
        }
        print(render_table(
            f"Fig. 5 ({name}): simulated self-relative speedup vs processors",
            list(data["curves"].keys()),
            cols,
            cells,
            fmt="{:.1f}",
        ))
        if args.plot:
            from ..analysis.plotting import ascii_line_chart

            series = {
                m: [(float(p), v) for p, v in curve.items()]
                for m, curve in data["curves"].items()
            }
            print()
            print(ascii_line_chart(
                series,
                title=f"Fig. 5 ({name}) — speedup vs processors",
                x_label="processors",
                y_label="x",
            ))
        print()
    save_results(f"fig5_{args.scale}{'_all' if args.all else ''}", results)
    return results


if __name__ == "__main__":
    main()
