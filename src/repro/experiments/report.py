"""Reproduction report generator.

Reads the JSON artifacts under ``results/`` and emits a markdown
summary of the headline numbers — the machine-generated counterpart of
EXPERIMENTS.md, so a fresh reproduction can diff its own outcome
against the committed narrative:

    python -m repro.experiments.run_all --scale small
    python -m repro.experiments.report --scale small > my_report.md
"""

from __future__ import annotations

import argparse
import json
import os

from ..analysis.stats import geometric_mean
from .harness import results_dir

__all__ = ["build_report", "main"]

_HEUR_GRAPHS = ("AF", "NA", "AS", "EU", "HH5", "CH5", "GL5", "COS5")


def _load(name: str) -> dict | None:
    path = os.path.join(results_dir(), f"{name}.json")
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def _ratio(times: dict, a: str, b: str, graphs) -> float | None:
    try:
        num = geometric_mean([times[a][g] for g in graphs if g in times[a]])
        den = geometric_mean([times[b][g] for g in graphs if g in times[b]])
    except (KeyError, ValueError):
        return None
    return num / den


def build_report(scale: str = "small") -> str:
    """Markdown report over whatever artifacts exist for ``scale``."""
    lines = [f"# Reproduction report (scale={scale})", ""]

    t4 = _load(f"table4_{scale}")
    if t4:
        lines.append("## Single PPSP (Tab. 4)")
        lines.append("")
        lines.append("| percentile | SSSP/BiD-A* (heur) | ET/BiDS (all) | MBQ-ET/BiDS | GI-ET/BiDS |")
        lines.append("|---|---|---|---|---|")
        for p, times in sorted(t4["times"].items(), key=lambda kv: float(kv[0])):
            allg = list(times.get("sssp", {}).keys())
            cells = [
                _ratio(times, "sssp", "bidastar", _HEUR_GRAPHS),
                _ratio(times, "et", "bids", allg),
                _ratio(times, "mbq-et", "bids", allg),
                _ratio(times, "gi-et", "bids", allg),
            ]
            row = " | ".join("-" if c is None else f"{c:.2f}x" for c in cells)
            lines.append(f"| {float(p):g}th | {row} |")
        if t4.get("mismatches"):
            lines.append("")
            lines.append(f"**WARNING**: {len(t4['mismatches'])} answer mismatches!")
        lines.append("")

    f7 = _load(f"fig7_{scale}")
    if f7:
        lines.append("## Batch PPSP (Fig. 7) — GEOMEAN normalized times")
        lines.append("")
        methods = None
        for pattern, by_method in f7["geomeans"].items():
            if methods is None:
                methods = list(by_method.keys())
                lines.append("| pattern | " + " | ".join(methods) + " |")
                lines.append("|" + "---|" * (len(methods) + 1))
            row = " | ".join(f"{by_method[m]:.2f}" for m in methods)
            lines.append(f"| {pattern} | {row} |")
        lines.append("")

    f6 = _load(f"fig6_{scale}")
    if f6:
        lines.append("## Memoization (Fig. 6) — relative to ET (higher better)")
        lines.append("")
        variants = None
        for cat, vals in f6["means"].items():
            if variants is None:
                variants = list(vals.keys())
                lines.append("| category | " + " | ".join(variants) + " |")
                lines.append("|" + "---|" * (len(variants) + 1))
            lines.append(f"| {cat} | " + " | ".join(f"{vals[v]:.2f}" for v in variants) + " |")
        lines.append("")

    ssmt = _load(f"ext_ssmt_{scale}")
    if ssmt:
        lines.append("## SSMT crossover (targets where one SSSP overtakes Multi-BiDS)")
        lines.append("")
        for gname, row in ssmt.items():
            cross = row.get("crossover_targets")
            lines.append(f"- {gname} ({row.get('category')}): "
                         f"{'>sweep' if cross is None else cross}")
        lines.append("")

    if len(lines) <= 2:
        lines.append(f"No artifacts found for scale={scale!r} in {results_dir()!r}.")
        lines.append("Run: python -m repro.experiments.run_all --scale " + scale)
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> str:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    args = parser.parse_args(argv)
    report = build_report(args.scale)
    print(report)
    return report


if __name__ == "__main__":
    main()
