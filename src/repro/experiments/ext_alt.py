"""Extension experiment — ALT landmarks on coordinate-free graphs.

The paper's A* rows are blank for social/web graphs (no coordinates).
This extension fills them with ALT landmark heuristics: after
preprocessing (k SSSPs), A* and BiD-A* run on any undirected graph.
The experiment reports, per social/web graph, the relaxation work of
ET / BiDS / ALT-A* / ALT-BiD-A* at the three distance percentiles, plus
the preprocessing cost, quantifying the preprocessing-vs-query tradeoff
the paper's Sec. 7 discusses.

Run: ``python -m repro.experiments.ext_alt [--scale small] [--landmarks 8]``
"""

from __future__ import annotations

import argparse
import time

from ..analysis.percentiles import sample_query_pairs
from ..core.engine import run_policy
from ..core.policies import AStar, BiDAStar, BiDS, EarlyTermination
from ..core.stepping import DeltaStepping
from ..heuristics.landmarks import LandmarkSet
from .harness import render_table, save_results, tune_delta
from .suite import build_suite

__all__ = ["collect", "main"]

ALGOS = ("et", "bids", "alt-astar", "alt-bidastar")


def collect(
    scale: str = "small",
    *,
    num_landmarks: int = 8,
    percentiles=(1.0, 50.0, 99.0),
    num_pairs: int = 3,
    seed: int = 17,
) -> dict:
    """work[graph][percentile][algo] = mean edge relaxations per query."""
    out: dict[str, dict] = {}
    for spec, g in build_suite(scale, categories=("social", "web")):
        delta = tune_delta(g)
        t0 = time.perf_counter()
        landmarks = LandmarkSet(g, k=num_landmarks)
        preprocess_seconds = time.perf_counter() - t0
        rows: dict[float, dict[str, float]] = {}
        for p in percentiles:
            pairs = sample_query_pairs(g, p, num_pairs=num_pairs, seed=seed)
            acc = {a: 0 for a in ALGOS}
            for s, t in pairs:
                policies = {
                    "et": EarlyTermination(s, t),
                    "bids": BiDS(s, t),
                    "alt-astar": AStar(s, t, heuristic=landmarks.heuristic_to(t)),
                    "alt-bidastar": BiDAStar(
                        s,
                        t,
                        heuristic_to_source=landmarks.heuristic_to(s),
                        heuristic_to_target=landmarks.heuristic_to(t),
                    ),
                }
                answers = {}
                for a, pol in policies.items():
                    res = run_policy(g, pol, strategy=DeltaStepping(delta))
                    acc[a] += res.relaxations
                    answers[a] = res.answer
                ref = answers["et"]
                for a, v in answers.items():
                    if abs(v - ref) > 1e-6 * max(abs(ref), 1.0):
                        raise AssertionError(f"{spec.name} {a}: {v} != {ref}")
            rows[p] = {a: acc[a] / num_pairs for a in ALGOS}
        out[spec.name] = {
            "work": rows,
            "preprocess_seconds": preprocess_seconds,
            "landmarks": num_landmarks,
        }
    return out


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    parser.add_argument("--landmarks", type=int, default=8)
    parser.add_argument("--pairs", type=int, default=3)
    args = parser.parse_args(argv)

    data = collect(args.scale, num_landmarks=args.landmarks, num_pairs=args.pairs)
    for p in (1.0, 50.0, 99.0):
        cells = {
            (gname, a): row["work"][p][a]
            for gname, row in data.items()
            for a in ALGOS
        }
        print(render_table(
            f"ALT extension, {int(p)}-th percentile (mean edge relaxations/query)",
            list(data.keys()),
            list(ALGOS),
            cells,
            fmt="{:.0f}",
        ))
        print()
    print("preprocessing seconds:",
          {g: round(r["preprocess_seconds"], 3) for g, r in data.items()})
    save_results(f"ext_alt_{args.scale}", data)
    return data


if __name__ == "__main__":
    main()
