"""Experiment modules: one per paper table/figure, plus extensions.

Paper artifacts: :mod:`table3`, :mod:`table4`, :mod:`fig4` (Fig. 4/8),
:mod:`fig5` (Fig. 5/9), :mod:`fig6` (Fig. 6/10), :mod:`fig7`.
Extensions: :mod:`ext_alt`, :mod:`ext_preprocessing`,
:mod:`ext_strategies`, :mod:`ext_ssmt`.  Run everything with
``python -m repro.experiments.run_all --scale small``.
"""

from . import harness, suite

__all__ = ["harness", "suite"]
