"""One-command reproduction driver.

``python -m repro.experiments.run_all --scale small`` regenerates every
paper artifact (Tab. 3, Tab. 4, Fig. 4–7) plus the extension
experiments, in dependency-friendly order, writing logs and JSON under
``results/``.  Individual artifacts remain runnable via their own
modules; this driver exists so a fresh clone can reproduce EXPERIMENTS.md
with a single invocation.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import os
import time

from . import fig1
from . import ext_alt, ext_directed, ext_preprocessing, ext_ssmt, ext_strategies, fig4, fig5, fig6, fig7, table3, table4
from .harness import results_dir

__all__ = ["main", "ARTIFACTS"]

#: name -> (module, extra argv); ordered cheap-to-expensive.
ARTIFACTS = [
    ("table3", table3, []),
    ("fig1", fig1, []),
    ("fig6", fig6, []),
    ("fig4", fig4, []),
    ("fig5", fig5, []),
    ("fig7", fig7, []),
    ("ext_strategies", ext_strategies, []),
    ("ext_ssmt", ext_ssmt, []),
    ("ext_directed", ext_directed, []),
    ("ext_alt", ext_alt, []),
    # Index preprocessing is Θ(n · Dijkstra) in Python: pinned to
    # tiny scale regardless of the driver scale (later --scale wins).
    ("ext_preprocessing", ext_preprocessing, ["--scale", "tiny"]),
    ("table4", table4, []),
]


def main(argv: list[str] | None = None) -> dict[str, float]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    parser.add_argument(
        "--only", nargs="*", default=None,
        help="subset of artifact names to run (default: all)",
    )
    args = parser.parse_args(argv)

    out_dir = results_dir()
    durations: dict[str, float] = {}
    for name, module, extra in ARTIFACTS:
        if args.only is not None and name not in args.only:
            continue
        log_path = os.path.join(out_dir, f"{name}_{args.scale}.log")
        print(f"[run_all] {name} (scale={args.scale}) -> {log_path}", flush=True)
        t0 = time.perf_counter()
        buffer = io.StringIO()
        module_args = ["--scale", args.scale] + extra
        with contextlib.redirect_stdout(buffer):
            module.main(module_args)
        elapsed = time.perf_counter() - t0
        with open(log_path, "w") as fh:
            fh.write(buffer.getvalue())
        durations[name] = elapsed
        print(f"[run_all] {name} done in {elapsed:.1f}s", flush=True)
    total = sum(durations.values())
    print(f"[run_all] complete: {len(durations)} artifacts in {total:.1f}s")
    return durations


if __name__ == "__main__":
    main()
