"""Shared experiment machinery: Δ tuning, timed runs, table rendering.

Everything the per-table/figure experiment modules have in common lives
here so each experiment reads like its description in the paper:
pick graphs, pick query pairs at controlled percentiles, time the
algorithms, aggregate with geometric means.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

import numpy as np

from ..analysis.stats import geometric_mean
from ..baselines.graphit import graphit_ppsp
from ..baselines.mbq import mbq_ppsp
from ..core.engine import run_policy
from ..core.policies import AStar, BiDAStar, BiDS, EarlyTermination, SsspPolicy
from ..core.stepping import DeltaStepping
from ..parallel.cost_model import WorkDepthMeter

__all__ = [
    "tune_delta",
    "timed",
    "run_single_query",
    "Timing",
    "OUR_METHODS",
    "BASELINE_METHODS",
    "HEURISTIC_METHODS",
    "render_table",
    "results_dir",
    "save_results",
]

OUR_METHODS = ("sssp", "et", "bids", "astar", "bidastar")
BASELINE_METHODS = ("gi-et", "gi-astar", "mbq-et", "mbq-astar")
#: methods that need coordinates (excluded on social/web graphs).
HEURISTIC_METHODS = {"astar", "bidastar", "gi-astar", "mbq-astar"}

_DELTA_CACHE: dict[str, float] = {}


def tune_delta(graph, *, source: int | None = None, doublings: int = 10) -> float:
    """Pick Δ by the paper's doubling procedure (Sec. 6.1).

    Starting from a small Δ, run SSSP and double Δ until the running
    time converges to its minimum.  The search itself lives in
    :func:`repro.kernels.calibrate.calibrate_delta` (cached by graph
    fingerprint and shared with :func:`repro.core.stepping.default_strategy`);
    this wrapper keeps the historical per-name cache for experiment
    scripts that rebuild identically-named graphs.
    """
    key = f"{graph.name}:{graph.num_vertices}:{graph.num_edges}"
    if key in _DELTA_CACHE:
        return _DELTA_CACHE[key]
    from ..kernels.calibrate import calibrate_delta

    best_delta = calibrate_delta(graph, source=source, doublings=doublings)
    _DELTA_CACHE[key] = best_delta
    return best_delta


@dataclass
class Timing:
    """One timed query: wall seconds, answer, and the work/depth meter."""

    seconds: float
    answer: float
    meter: WorkDepthMeter | None


def timed(fn, *, repeats: int = 1, warmup: int = 0) -> tuple[float, object]:
    """Best-effort paper timing: mean of ``repeats`` after ``warmup``."""
    for _ in range(warmup):
        fn()
    times = []
    out = None
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
    return float(np.mean(times)), out


def run_single_query(
    graph,
    method: str,
    s: int,
    t: int,
    *,
    delta: float | None = None,
    memoize: bool = True,
    repeats: int = 1,
    warmup: int = 0,
) -> Timing:
    """Time one PPSP query with any of ours or the baselines.

    Every engine-based method gets a fresh Δ*-stepping strategy with the
    graph-tuned Δ so comparisons isolate the algorithm, not the tuning.
    """
    if delta is None:
        delta = tune_delta(graph)

    if method in OUR_METHODS:
        def make_policy():
            if method == "sssp":
                return SsspPolicy(s)
            if method == "et":
                return EarlyTermination(s, t)
            if method == "bids":
                return BiDS(s, t)
            if method == "astar":
                return AStar(s, t, memoize=memoize)
            return BiDAStar(s, t, memoize=memoize)

        holder: dict[str, object] = {}

        def call():
            res = run_policy(graph, make_policy(), strategy=DeltaStepping(delta))
            holder["res"] = res
            return res

        seconds, _ = timed(call, repeats=repeats, warmup=warmup)
        res = holder["res"]
        answer = float(res.answer[t]) if method == "sssp" else float(res.answer)
        return Timing(seconds=seconds, answer=answer, meter=res.meter)

    if method in ("gi-et", "gi-astar"):
        holder = {}

        def call_gi():
            m = WorkDepthMeter()
            ans = graphit_ppsp(
                graph, s, t, delta=delta, use_astar=method == "gi-astar", meter=m
            )
            holder["meter"], holder["ans"] = m, ans
            return ans

        seconds, _ = timed(call_gi, repeats=repeats, warmup=warmup)
        return Timing(seconds=seconds, answer=float(holder["ans"]), meter=holder["meter"])

    if method in ("mbq-et", "mbq-astar"):
        holder = {}

        def call_mbq():
            m = WorkDepthMeter()
            ans = mbq_ppsp(graph, s, t, use_astar=method == "mbq-astar", meter=m)
            holder["meter"], holder["ans"] = m, ans
            return ans

        seconds, _ = timed(call_mbq, repeats=repeats, warmup=warmup)
        return Timing(seconds=seconds, answer=float(holder["ans"]), meter=holder["meter"])

    raise ValueError(f"unknown method {method!r}")


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def render_table(
    title: str,
    row_labels: list[str],
    col_labels: list[str],
    cells: dict[tuple[str, str], float | str],
    *,
    fmt: str = "{:.4f}",
) -> str:
    """Fixed-width text table in the style of the paper's tables."""
    width = max(8, *(len(c) + 2 for c in col_labels))
    label_w = max(12, *(len(r) + 2 for r in row_labels)) if row_labels else 12
    lines = [title, "=" * (label_w + width * len(col_labels))]
    lines.append(" " * label_w + "".join(c.rjust(width) for c in col_labels))
    for r in row_labels:
        row = [r.ljust(label_w)]
        for c in col_labels:
            v = cells.get((r, c), "-")
            if isinstance(v, float):
                v = fmt.format(v)
            row.append(str(v).rjust(width))
        lines.append("".join(row))
    return "\n".join(lines)


def results_dir() -> str:
    """Where experiment modules drop their JSON outputs."""
    here = os.environ.get("REPRO_RESULTS_DIR")
    if here is None:
        here = os.path.join(os.getcwd(), "results")
    os.makedirs(here, exist_ok=True)
    return here


def save_results(name: str, payload: dict) -> str:
    path = os.path.join(results_dir(), f"{name}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, default=float)
    return path


def geomean_or_none(values: list[float]) -> float | None:
    good = [v for v in values if v > 0 and np.isfinite(v)]
    return geometric_mean(good) if good else None
