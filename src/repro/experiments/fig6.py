"""Figure 6 / Figure 10 — the A* memoization ablation (paper Sec. 5).

Times A* and BiD-A* with and without heuristic memoization on the road
and k-NN graphs (50th-percentile queries, as in Tab. 4's middle block)
and reports performance *relative to ET* — the paper's normalization,
where ET = 1 and higher is better.  Expected shapes: without memoization
A*/BiD-A* can fall below ET; with it they exceed ET; the gain is larger
on road graphs whose spherical heuristic is costlier than the k-NN
Euclidean one.

Run: ``python -m repro.experiments.fig6 [--scale small]``
"""

from __future__ import annotations

import argparse

from ..analysis.percentiles import sample_query_pairs
from ..analysis.stats import geometric_mean
from .harness import render_table, run_single_query, save_results, tune_delta
from .suite import graphs_with_coords

__all__ = ["collect", "main", "VARIANTS"]

VARIANTS = ("astar", "astar+memo", "bidastar", "bidastar+memo")


def collect(
    scale: str = "small",
    *,
    percentile: float = 50.0,
    num_pairs: int = 3,
    repeats: int = 1,
    seed: int = 5,
) -> dict:
    """relative[graph][variant] = t_ET / t_variant (higher is better)."""
    relative: dict[str, dict[str, float]] = {}
    categories: dict[str, str] = {}
    for spec, g in graphs_with_coords(scale):
        delta = tune_delta(g)
        pairs = sample_query_pairs(g, percentile, num_pairs=num_pairs, seed=seed)
        sums: dict[str, float] = {v: 0.0 for v in ("et",) + VARIANTS}
        for s, t in pairs:
            sums["et"] += run_single_query(g, "et", s, t, delta=delta, repeats=repeats).seconds
            for base in ("astar", "bidastar"):
                for memo in (False, True):
                    key = base + ("+memo" if memo else "")
                    sums[key] += run_single_query(
                        g, base, s, t, delta=delta, memoize=memo, repeats=repeats
                    ).seconds
        relative[spec.name] = {v: sums["et"] / sums[v] for v in VARIANTS}
        categories[spec.name] = spec.category
    return {"relative": relative, "categories": categories}


def category_means(data: dict) -> dict[str, dict[str, float]]:
    """Geometric-mean relative performance per category (the Fig. 6 bars)."""
    out: dict[str, dict[str, float]] = {}
    for cat in ("road", "knn"):
        graphs = [g for g, c in data["categories"].items() if c == cat]
        out[cat] = {
            v: geometric_mean([data["relative"][g][v] for g in graphs]) for v in VARIANTS
        }
    return out


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    parser.add_argument("--pairs", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=1)
    args = parser.parse_args(argv)

    data = collect(args.scale, num_pairs=args.pairs, repeats=args.repeats)
    rows = list(data["relative"].keys()) + ["road mean", "knn mean"]
    means = category_means(data)
    cells: dict[tuple[str, str], float] = {}
    for gname, vals in data["relative"].items():
        for v, x in vals.items():
            cells[(gname, v)] = x
    for cat in ("road", "knn"):
        for v, x in means[cat].items():
            cells[(f"{cat} mean", v)] = x
    print(render_table(
        "Fig. 6: performance relative to ET (higher is better; ET = 1.0)",
        rows,
        list(VARIANTS),
        cells,
        fmt="{:.2f}",
    ))
    save_results(f"fig6_{args.scale}", {"relative": data["relative"], "means": means})
    return data


if __name__ == "__main__":
    main()
