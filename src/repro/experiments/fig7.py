"""Figure 7 — batch PPSP heatmap over query-graph patterns.

For every graph and each of the paper's eight query-graph patterns
(separate / chain / star / fork / diamond / bipartite / random /
clique, all over six query vertices), runs the five batch strategies —

* Multi-BiDS, Plain-BiDS (one at a time), Plain*-BiDS (simultaneous),
* SSSP from a vertex cover (VC), SSSP from all sources (Plain),

and reports each strategy's time normalized to the fastest on that
(graph, pattern) cell, exactly the paper's heatmap.  Times are the
simulated 96-processor machine times derived from measured work/depth:
the Plain-vs-Plain* distinction is purely about overlapping independent
queries on the parallel machine, which wall-clock on one Python core
cannot express (see DESIGN.md).

Run: ``python -m repro.experiments.fig7 [--scale small]``
"""

from __future__ import annotations

import argparse

import numpy as np

from ..analysis.stats import geometric_mean, normalize_to_best
from ..core.batch import solve_batch
from ..core.query_graph import PATTERNS
from ..core.stepping import DeltaStepping
from ..graphs.connectivity import largest_component
from .harness import render_table, save_results, tune_delta
from .suite import build_suite

__all__ = ["collect", "main", "METHOD_LABELS", "PROCESSORS"]

METHOD_LABELS = {
    "multi": "Multi",
    "plain-bids": "Plain",
    "plain-star-bids": "Plain*",
    "sssp-vc": "VC",
    "sssp-plain": "PlainSSSP",
}
PROCESSORS = 96


def collect(
    scale: str = "small",
    *,
    num_sources: int = 6,
    seed: int = 13,
    processors: int = PROCESSORS,
    patterns=tuple(PATTERNS),
) -> dict:
    """normalized[pattern][graph][method] = time / fastest-on-cell."""
    normalized: dict[str, dict[str, dict[str, float]]] = {p: {} for p in patterns}
    raw: dict[str, dict[str, dict[str, float]]] = {p: {} for p in patterns}
    for spec, g in build_suite(scale):
        delta = tune_delta(g)
        rng = np.random.default_rng(seed)
        lcc = largest_component(g)
        verts = rng.choice(lcc, size=num_sources, replace=False).tolist()
        for pattern in patterns:
            qg = PATTERNS[pattern](verts)
            times: dict[str, float] = {}
            answers: dict[str, dict] = {}
            for method in METHOD_LABELS:
                res = solve_batch(
                    g, qg, method=method, strategy_factory=lambda: DeltaStepping(delta)
                )
                times[METHOD_LABELS[method]] = res.meter.simulated_time(processors)
                answers[method] = res.distances
            # All strategies must agree (a built-in audit).
            ref = answers["multi"]
            for method, dists in answers.items():
                for key, val in dists.items():
                    want = ref.get(key, ref.get((key[1], key[0])))
                    if not np.isclose(val, want, rtol=1e-6, atol=1e-6):
                        raise AssertionError(
                            f"{spec.name}/{pattern}/{method}: {key} -> {val} != {want}"
                        )
            raw[pattern][spec.name] = times
            normalized[pattern][spec.name] = normalize_to_best(times)
    return {"normalized": normalized, "raw": raw, "processors": processors}


def geomean_rows(normalized: dict) -> dict[str, dict[str, float]]:
    """The paper's GEOMEAN row: per pattern, mean over graphs per method."""
    out: dict[str, dict[str, float]] = {}
    for pattern, by_graph in normalized.items():
        methods = next(iter(by_graph.values())).keys()
        out[pattern] = {
            m: geometric_mean([by_graph[g][m] for g in by_graph]) for m in methods
        }
    return out


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "medium"))
    parser.add_argument("--sources", type=int, default=6)
    parser.add_argument("--plot", action="store_true", help="ASCII heatmaps")
    args = parser.parse_args(argv)

    data = collect(args.scale, num_sources=args.sources)
    means = geomean_rows(data["normalized"])
    cols = list(METHOD_LABELS.values())
    for pattern, by_graph in data["normalized"].items():
        rows = list(by_graph.keys()) + ["GEOMEAN"]
        cells: dict[tuple[str, str], float] = {}
        for gname, vals in by_graph.items():
            for m, x in vals.items():
                cells[(gname, m)] = x
        for m, x in means[pattern].items():
            cells[("GEOMEAN", m)] = x
        if args.plot:
            from ..analysis.plotting import ascii_heatmap

            print(ascii_heatmap(
                rows,
                cols,
                cells,
                title=f"Fig. 7 ({pattern}): normalized time (dark = slow)",
                lo=1.0,
                hi=4.0,
            ))
        else:
            print(render_table(
                f"Fig. 7 ({pattern}): time normalized to fastest (lower is better)",
                rows,
                cols,
                cells,
                fmt="{:.2f}",
            ))
        print()
    save_results(f"fig7_{args.scale}", {"normalized": data["normalized"], "geomeans": means})
    return data


if __name__ == "__main__":
    main()
