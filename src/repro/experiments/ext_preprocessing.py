"""Extension experiment — preprocessing-free vs. index-based queries.

The paper's Sec. 7: "preprocessing in shortest-path algorithms is
double-edged — queries can be significantly accelerated, [but] the
preprocessing can also take much time, and sometimes much more space",
so preprocessing-free methods win "when fewer total queries are
performed, graphs are larger, and/or graphs change frequently".

This experiment quantifies that break-even on our suite: per graph it
measures PLL preprocessing time and index size, PLL per-query time, and
Orionet BiDS per-query time, then reports the query count at which the
index pays for itself:

    break_even = preprocess_time / (t_bids - t_pll)

Run: ``python -m repro.experiments.ext_preprocessing [--scale tiny]``
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from ..analysis.percentiles import sample_query_pairs
from ..baselines.ch import ContractionHierarchy
from ..baselines.pll import PrunedLandmarkLabeling
from ..core.engine import run_policy
from ..core.policies import BiDS
from ..core.stepping import DeltaStepping
from .harness import render_table, save_results, tune_delta
from .suite import build_suite

__all__ = ["collect", "main"]


#: one modest graph per category: index preprocessing is Θ(n·Dijkstra)
#: in Python, so the tradeoff is measured on representatives.
REPRESENTATIVES = ("OK", "IT", "AF", "HH5")


def collect(
    scale: str = "tiny",
    *,
    num_pairs: int = 10,
    seed: int = 23,
    include_ch: bool = True,
    graphs: tuple[str, ...] = REPRESENTATIVES,
) -> dict:
    """Per graph: preprocessing cost, query cost, and break-even counts.

    CH preprocessing on hub-heavy social/web graphs produces dense
    shortcut cores (its known weakness — and part of the tradeoff
    story); it is skipped there by default and measured on road/k-NN,
    its home turf.
    """
    out: dict[str, dict] = {}
    for spec, g in build_suite(scale):
        if graphs is not None and spec.name not in graphs:
            continue
        delta = tune_delta(g)
        t0 = time.perf_counter()
        pll = PrunedLandmarkLabeling(g)
        pll_prep = time.perf_counter() - t0

        ch = None
        ch_prep = None
        if include_ch and spec.category in ("road", "knn"):
            t0 = time.perf_counter()
            ch = ContractionHierarchy(g)
            ch_prep = time.perf_counter() - t0

        pairs = sample_query_pairs(g, 50.0, num_pairs=num_pairs, seed=seed)
        t_pll = t_bids = t_ch = 0.0
        for s, t in pairs:
            t0 = time.perf_counter()
            a = pll.query(s, t)
            t_pll += time.perf_counter() - t0
            t0 = time.perf_counter()
            res = run_policy(g, BiDS(s, t), strategy=DeltaStepping(delta))
            t_bids += time.perf_counter() - t0
            if not np.isclose(a, res.answer, rtol=1e-9, atol=1e-9):
                raise AssertionError(f"{spec.name}: PLL {a} != BiDS {res.answer}")
            if ch is not None:
                t0 = time.perf_counter()
                c = ch.query(s, t)
                t_ch += time.perf_counter() - t0
                if not np.isclose(c, res.answer, rtol=1e-9, atol=1e-9):
                    raise AssertionError(f"{spec.name}: CH {c} != BiDS {res.answer}")
        t_pll /= num_pairs
        t_bids /= num_pairs
        saving = t_bids - t_pll
        row = {
            "preprocess_seconds": pll_prep,
            "index_entries": pll.index_size,
            "index_per_vertex": pll.average_label_size(),
            "pll_query_seconds": t_pll,
            "bids_query_seconds": t_bids,
            "break_even_queries": (pll_prep / saving) if saving > 0 else float("inf"),
        }
        if ch is not None:
            t_ch /= num_pairs
            ch_saving = t_bids - t_ch
            row.update(
                ch_preprocess_seconds=ch_prep,
                ch_shortcuts=ch.shortcuts_added,
                ch_query_seconds=t_ch,
                ch_break_even_queries=(ch_prep / ch_saving) if ch_saving > 0 else float("inf"),
            )
        out[spec.name] = row
    return out


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny", choices=("tiny", "small", "medium"))
    parser.add_argument("--pairs", type=int, default=10)
    parser.add_argument("--graphs", nargs="*", default=list(REPRESENTATIVES),
                        help="suite graph names to measure")
    args = parser.parse_args(argv)

    data = collect(args.scale, num_pairs=args.pairs, graphs=tuple(args.graphs))
    cols = [
        "PLL prep (s)", "labels/v", "PLL q (s)", "CH prep (s)", "CH q (s)",
        "BiDS q (s)", "PLL b/e #q", "CH b/e #q",
    ]
    cells: dict[tuple[str, str], object] = {}
    for gname, row in data.items():
        cells[(gname, "PLL prep (s)")] = f"{row['preprocess_seconds']:.2f}"
        cells[(gname, "labels/v")] = f"{row['index_per_vertex']:.1f}"
        cells[(gname, "PLL q (s)")] = f"{row['pll_query_seconds']:.2e}"
        cells[(gname, "BiDS q (s)")] = f"{row['bids_query_seconds']:.2e}"
        be = row["break_even_queries"]
        cells[(gname, "PLL b/e #q")] = "∞" if np.isinf(be) else f"{be:.0f}"
        if "ch_query_seconds" in row:
            cells[(gname, "CH prep (s)")] = f"{row['ch_preprocess_seconds']:.2f}"
            cells[(gname, "CH q (s)")] = f"{row['ch_query_seconds']:.2e}"
            cbe = row["ch_break_even_queries"]
            cells[(gname, "CH b/e #q")] = "∞" if np.isinf(cbe) else f"{cbe:.0f}"
    print(render_table(
        "Preprocessing tradeoff: PLL / CH indexes vs preprocessing-free BiDS",
        list(data.keys()),
        cols,
        cells,
    ))
    save_results(f"ext_preprocessing_{args.scale}", data)
    return data


if __name__ == "__main__":
    main()
