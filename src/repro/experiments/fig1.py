"""Figure 1 — search-space shapes of the four PPSP algorithms.

The paper's opening figure illustrates *where* each algorithm searches:
ET floods a ball around the source until the target settles; BiDS grows
two half-radius balls; A* sweeps an ellipse toward the target; BiD-A*
squeezes both searches toward the bisector.  This module reproduces the
figure measurably: run each algorithm on a road grid, mark every vertex
whose tentative distance became finite, and render the touched set as
an ASCII map over the vertex coordinates (plus the touched-count table,
which is the figure's quantitative content).

Run: ``python -m repro.experiments.fig1 [--size 40]``
"""

from __future__ import annotations

import argparse

import numpy as np

from ..core.engine import run_policy
from ..core.policies import AStar, BiDAStar, BiDS, EarlyTermination, SsspPolicy
from ..graphs.road import road_graph
from .harness import render_table, save_results, tune_delta

__all__ = ["touched_sets", "render_map", "main", "ALGORITHMS"]

ALGORITHMS = ("sssp", "et", "bids", "astar", "bidastar")


def touched_sets(graph, s: int, t: int, *, delta: float | None = None) -> dict[str, np.ndarray]:
    """Boolean touched-vertex mask per algorithm for one s-t query."""
    from ..core.stepping import DeltaStepping

    if delta is None:
        delta = tune_delta(graph)
    policies = {
        "sssp": SsspPolicy(s),
        "et": EarlyTermination(s, t),
        "bids": BiDS(s, t),
        "astar": AStar(s, t),
        "bidastar": BiDAStar(s, t),
    }
    out: dict[str, np.ndarray] = {}
    answers = {}
    for name, policy in policies.items():
        res = run_policy(graph, policy, strategy=DeltaStepping(delta))
        touched = np.isfinite(res.dist).any(axis=0)
        out[name] = touched
        answers[name] = res.answer[t] if name == "sssp" else res.answer
    ref = answers["sssp"]
    for name, val in answers.items():
        if not np.isclose(val, ref, rtol=1e-9, atol=1e-9):
            raise AssertionError(f"{name}: {val} != {ref}")
    return out


def render_map(
    graph, touched: np.ndarray, s: int, t: int, *, width: int = 60, height: int = 24
) -> str:
    """Project touched vertices onto a character grid by coordinates."""
    coords = graph.coords
    lo = coords.min(axis=0)
    hi = coords.max(axis=0)
    span = np.maximum(hi - lo, 1e-12)
    cols = np.clip(((coords[:, 0] - lo[0]) / span[0] * (width - 1)).astype(int), 0, width - 1)
    rows = np.clip(((coords[:, 1] - lo[1]) / span[1] * (height - 1)).astype(int), 0, height - 1)
    grid = [[" "] * width for _ in range(height)]
    for v in np.flatnonzero(touched):
        grid[height - 1 - rows[v]][cols[v]] = "."
    for v, mark in ((s, "S"), (t, "T")):
        grid[height - 1 - rows[v]][cols[v]] = mark
    return "\n".join("".join(r) for r in grid)


def main(argv: list[str] | None = None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=40, help="road grid side length")
    parser.add_argument("--seed", type=int, default=4)
    parser.add_argument("--maps", action="store_true", help="print the ASCII maps")
    # Accept --scale for run_all compatibility; grid size is the real knob.
    parser.add_argument("--scale", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    graph = road_graph(args.size, args.size, seed=args.seed)
    n = graph.num_vertices
    # A mid-distance pair across the map, like the paper's illustration.
    s = args.size // 4 * args.size + args.size // 4
    t = (3 * args.size // 4) * args.size + 3 * args.size // 4
    touched = touched_sets(graph, s, t)

    counts = {name: int(mask.sum()) for name, mask in touched.items()}
    cells = {
        (name, "touched"): f"{counts[name]:,}" for name in ALGORITHMS
    }
    for name in ALGORITHMS:
        cells[(name, "% of graph")] = 100.0 * counts[name] / n
    print(render_table(
        f"Fig. 1: vertices touched answering one query on a {args.size}x{args.size} road grid",
        list(ALGORITHMS),
        ["touched", "% of graph"],
        cells,
        fmt="{:.1f}",
    ))
    if args.maps:
        for name in ALGORITHMS:
            print(f"\n[{name}] search space ('.' = touched):")
            print(render_map(graph, touched[name], s, t))
    save_results("fig1", {"counts": counts, "n": n, "query": (s, t)})
    return {"touched": touched, "counts": counts}


if __name__ == "__main__":
    main()
