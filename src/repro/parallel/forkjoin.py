"""A deterministic binary fork-join scheduler simulation.

The paper's computational model (Sec. 2) is binary fork-join: a task may
fork two children and continues when both join.  This module runs such
task DAGs under a greedy ``P``-processor schedule with a virtual clock,
which lets tests validate the cost model against first principles
(greedy schedules satisfy ``T_P <= W/P + D``, Brent/Graham).

It is intentionally tiny — the production algorithms use the vectorized
engine — but it makes the simulated-machine substitution auditable: the
same work/depth numbers the engine reports can be replayed here.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

__all__ = ["Task", "leaf", "fork", "ForkJoinSimulator", "parallel_for_task"]


@dataclass
class Task:
    """A node of a fork-join DAG.

    ``cost`` is the sequential work of the node's own computation; its
    ``children`` (zero or two — binary forking) start after that work and
    run in parallel.  Joins are free: a node is complete when its subtree
    is.
    """

    cost: float = 1.0
    children: tuple["Task", ...] = ()

    def work(self) -> float:
        total = 0.0
        stack = [self]
        while stack:
            t = stack.pop()
            total += t.cost
            stack.extend(t.children)
        return total

    def span(self) -> float:
        if not self.children:
            return self.cost
        return self.cost + max(c.span() for c in self.children)


def leaf(cost: float = 1.0) -> Task:
    return Task(cost=cost)


def fork(left: Task, right: Task, *, cost: float = 0.0) -> Task:
    """Binary fork: run ``left`` and ``right`` in parallel, then join."""
    return Task(cost=cost, children=(left, right))


def parallel_for_task(n: int, unit_cost: float = 1.0, *, fork_cost: float = 0.0) -> Task:
    """The balanced binary fork tree a parallel-for over ``n`` items builds."""
    if n <= 0:
        return leaf(0.0)
    if n == 1:
        return leaf(unit_cost)
    half = n // 2
    return fork(
        parallel_for_task(half, unit_cost, fork_cost=fork_cost),
        parallel_for_task(n - half, unit_cost, fork_cost=fork_cost),
        cost=fork_cost,
    )


class ForkJoinSimulator:
    """Greedy list scheduler for fork-join DAGs on ``P`` virtual processors."""

    def __init__(self, processors: int) -> None:
        if processors < 1:
            raise ValueError("need at least one processor")
        self.processors = processors

    def run(self, root: Task) -> float:
        """Makespan of a greedy schedule of ``root``'s DAG.

        A node becomes ready when its parent's own work finishes; each
        ready node is grabbed by the earliest-free processor.  Joins cost
        nothing, so the makespan is the latest node completion.  Greedy
        scheduling is what work-stealing runtimes (ParlayLib) approximate.
        """
        # Ready events ordered by time; processors as a heap of free times.
        events: list[tuple[float, int]] = [(0.0, 0)]
        node_of = {0: root}
        free_at = [0.0] * self.processors
        heapq.heapify(free_at)
        next_id = 1
        makespan = 0.0
        while events:
            ready_time, nid = heapq.heappop(events)
            task = node_of.pop(nid)
            proc_free = heapq.heappop(free_at)
            begin = max(ready_time, proc_free)
            end = begin + task.cost
            heapq.heappush(free_at, end)
            makespan = max(makespan, end)
            for child in task.children:
                node_of[next_id] = child
                heapq.heappush(events, (end, next_id))
                next_id += 1
        return makespan
