"""Process-pool batch backend: real workers over a shared-memory graph.

The rest of :mod:`repro.parallel` *simulates* the paper's machine; this
module runs a batch on actual worker processes.  The decomposition is
the one the batch solvers already use (PR lineage: MBQ-style inter-query
parallelism):

* ``multi``            — one work unit per query-graph connected
  component (the serial solver runs the same components one by one);
* ``plain-bids`` / ``plain-star-bids`` — one unit per query edge;
* ``sssp-plain`` / ``sssp-vc``        — one unit per covering SSSP
  source, carrying the queries that source answers.

Units are packed into one shard per worker by the cost model's a-priori
work estimates (:func:`~repro.parallel.cost_model.balance_shards`), so
the simulated machine's load-balancing story is checkable against real
wall-clock.  Workers attach the graph zero-copy via
:meth:`~repro.graphs.csr.Graph.from_shm` (fingerprint-gated) and return
plain per-unit payloads; the parent reassembles them in the exact order
— and with the exact meter-merge structure — the serial backend uses,
which is what makes the merged :class:`~repro.core.batch.BatchResult`
**bit-identical** to ``backend="serial"``: same distances, same paths,
same certificates, same work/depth meter.

Worker death (SIGKILL, OOM) surfaces as :class:`WorkerCrashError`; the
serve pipeline treats that as a shard failure, so its breakers and
checkpoint/resume machinery recover exactly as for any other fault.

Inherently single-process features — ``budget``, ``arena``,
``strategy_factory``, ``max_sources``, auditors/tracing — are rejected
up front rather than silently diverging from serial semantics.
"""

from __future__ import annotations

import logging
import os
import signal
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures import wait as _futures_wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context

from ..core.batch import BatchResult, _plain_sssp_sources, _solve_multi_component
from ..core.engine import run_policy
from ..core.paths import PathError, walk_path
from ..core.policies import BiDS, SsspPolicy
from ..core.query_graph import QueryGraph
from ..graphs.csr import Graph
from ..graphs.shm import SharedGraph, export_graph
from .cost_model import (
    WorkDepthMeter,
    balance_shards,
    estimate_bids_work,
    estimate_endpoint_work,
    estimate_multi_work,
    estimate_sssp_work,
)

__all__ = ["ProcessPool", "WorkerCrashError", "solve_batch_process"]

logger = logging.getLogger("repro.pool")

#: engine kwargs that are safe to ship to workers: pure per-run knobs
#: with no cross-run or parent-side state.
_SHIPPABLE_ENGINE_KWARGS = frozenset(
    {"frontier_mode", "pull_relax", "max_steps", "track_processed", "kernel"}
)

#: FaultInjector knobs that act inside an engine run.  An injector's
#: seeded RNG lives in the parent; shipping a copy per worker would
#: fire different faults than the serial run, so these are rejected
#: (``kill_worker_at`` is pool-level and stays parent-side).
_ENGINE_FAULT_ATTRS = (
    "corrupt_dist_at",
    "corrupt_mu_at",
    "drop_frontier_at",
    "raise_at",
    "stall_at",
    "flip_dist_at",
)


def _normalize_hedge(hedge):
    """``True`` -> default policy, ``False`` -> off, else pass through."""
    if hedge is None or hedge is False:
        return None
    if hedge is True:
        from ..serve.hedging import HedgePolicy

        return HedgePolicy()
    return hedge


class WorkerCrashError(RuntimeError):
    """A pool worker died mid-shard (SIGKILL, OOM, segfault).

    The batch produced no partial answers — shards are all-or-nothing —
    so retrying the batch (what the serve pipeline's fallback chain
    does) is always safe.
    """


class ProcessPool:
    """A reusable pool of worker processes with shared-graph caching.

    Graph exports are cached per fingerprint, so serving many batches
    over the same graph pays the O(n + m) shared-memory copy once.
    :meth:`close` (or the context-manager exit) shuts the workers down
    and unlinks every exported segment — nothing may outlive the pool.

    The pool is built to stay **persistent** across batches: workers
    attach each shared graph once and keep the mapping for their
    lifetime, so the steady-state per-batch cost is shard pickling
    only.  :meth:`open` spawns (and liveness-checks) the workers
    eagerly, :meth:`ping` is the idle health check, and a worker death
    is repaired transparently — the poisoned executor is discarded, the
    next dispatch respawns fresh workers (counted in :attr:`respawns`),
    and the failed batch surfaces as :class:`WorkerCrashError` so the
    serve pipeline's breaker/retry path decides what to re-run.

    ``mp_context`` defaults to ``"fork"`` where available (workers
    inherit the parent's imports; startup is milliseconds); pass
    ``"spawn"`` on platforms without fork.

    Straggler defense (see :mod:`repro.serve.hedging`): with
    ``shard_deadline`` and/or a :class:`~repro.serve.hedging.
    HedgePolicy` configured — at construction, or per call on
    :meth:`run_shards` — shards run under a supervisor that times out
    stuck shards (:class:`~repro.serve.hedging.ShardTimeout`) and
    launches first-result-wins backups of stragglers on a small
    separate *hedge lane* executor, so a backup can proceed even when
    every primary worker slot is wedged.  A shard timeout, or a
    straggling primary still stuck when the batch ends, quarantines
    the primary worker set: processes are killed and the next dispatch
    respawns fresh ones (counted in :attr:`quarantines` /
    :attr:`respawns`).
    """

    def __init__(
        self,
        workers: int | None = None,
        *,
        mp_context=None,
        observer=None,
        shard_deadline: float | None = None,
        hedge=None,
        retry_budget=None,
        clock=None,
        hedge_workers: int | None = None,
        hedge_seed: int | None = 0,
    ) -> None:
        self.workers = max(1, int(workers) if workers is not None else os.cpu_count() or 1)
        if mp_context is None:
            try:
                mp_context = get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX
                mp_context = get_context("spawn")
        elif isinstance(mp_context, str):
            mp_context = get_context(mp_context)
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        self._hedge_executor: ProcessPoolExecutor | None = None
        self._shared: dict[str, SharedGraph] = {}
        self._closed = False
        self._spawns = 0
        #: executor rebuilds after a worker crash (0 for a healthy pool).
        self.respawns = 0
        #: suspect-worker quarantines (deadline timeouts / stuck stragglers).
        self.quarantines = 0
        self.observer = observer
        self.shard_deadline = None if shard_deadline is None else float(shard_deadline)
        self.hedge = _normalize_hedge(hedge)
        self.retry_budget = retry_budget
        self._clock = clock
        self.hedge_workers = max(
            1, int(hedge_workers) if hedge_workers is not None else min(2, self.workers)
        )
        self._hedge_seed = hedge_seed
        self._estimator = None  # lazy LatencyEstimator (hedging import)

    # ------------------------------------------------------------------
    def share(self, graph) -> dict:
        """Export ``graph`` (cached by fingerprint); return the descriptor."""
        if self._closed:
            raise RuntimeError("pool is closed")
        fp = graph.fingerprint()
        handle = self._shared.get(fp)
        if handle is None:
            handle = export_graph(graph)
            self._shared[fp] = handle
        return handle.descriptor

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._mp_context
            )
            self._spawns += 1
            self.respawns = self._spawns - 1
        return self._executor

    def _discard_executor(self) -> None:
        """Drop a broken executor; the next batch builds a fresh one."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def _ensure_hedge_executor(self) -> ProcessPoolExecutor:
        """The hedge lane: a small separate executor for backup shards.

        Separate on purpose — when every primary slot is wedged behind
        a stuck worker, a hedge submitted to the same executor would
        queue behind the very straggler it is meant to beat.
        """
        if self._hedge_executor is None:
            self._hedge_executor = ProcessPoolExecutor(
                max_workers=self.hedge_workers, mp_context=self._mp_context
            )
        return self._hedge_executor

    def _discard_hedge_executor(self) -> None:
        if self._hedge_executor is not None:
            self._hedge_executor.shutdown(wait=False, cancel_futures=True)
            self._hedge_executor = None

    def _quarantine(self, reason: str, *, observer=None) -> None:
        """Kill the (suspect) primary worker set; next dispatch respawns.

        ``shutdown(wait=False)`` alone would leave a wedged worker
        sleeping in its slot forever, so the processes are SIGKILLed
        explicitly — the same repair a human operator would apply to a
        hung worker, made automatic and counted.
        """
        executor = self._executor
        if executor is not None:
            procs = list(getattr(executor, "_processes", {}).values())
            executor.shutdown(wait=False, cancel_futures=True)
            for proc in procs:
                try:
                    proc.kill()
                except Exception:  # pragma: no cover - already dead
                    pass
            self._executor = None
        self.quarantines += 1
        logger.warning("quarantined pool workers (reason=%s); respawning on next dispatch", reason)
        if observer is not None:
            observer.on_worker_suspect(reason)

    # ------------------------------------------------------------------
    # Persistent-service lifetime
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def open(self) -> "ProcessPool":
        """Eagerly spawn the workers and verify they answer (idempotent).

        Without this, workers fork lazily on the first batch; a serving
        process calls ``open()`` up front so the spin-up cost is paid
        before traffic arrives, and a misconfigured pool fails at start
        time rather than mid-request.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        self._ensure_executor()
        if not self.ping():
            # One respawn already happened inside ping(); a second
            # failed probe means workers cannot start at all here.
            if not self.ping():
                raise WorkerCrashError("pool workers died during open()")
        return self

    def ping(self, timeout: float = 60.0) -> bool:
        """Idle health check: one no-op round trip per worker slot.

        Returns ``True`` when every probe answered.  A dead worker
        poisons the executor exactly as a mid-shard crash would; the
        executor is discarded and rebuilt (transparent respawn, counted
        in :attr:`respawns`) and ``False`` is returned so the caller
        can observe the repair.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        executor = self._ensure_executor()
        futures = [executor.submit(_pool_ping, i) for i in range(self.workers)]
        try:
            for future in futures:
                future.result(timeout=timeout)
        except (BrokenProcessPool, _FuturesTimeout, TimeoutError, OSError) as exc:
            # Never swallow the failure class into a bare False: the
            # *reason* a probe failed (worker crash vs timeout vs a
            # pipe-level OSError) is the first thing an operator needs,
            # so it is logged and counted per exception class.
            reason = type(exc).__name__
            logger.warning(
                "pool ping failed (%s: %s); discarding executor and respawning workers",
                reason, exc,
            )
            if self.observer is not None:
                self.observer.on_pool_ping_failure(reason)
            self._discard_executor()
            self._ensure_executor()
            return False
        return True

    def run_shards(
        self,
        tasks: list[dict],
        *,
        observer=None,
        deadline: float | None = None,
        hedge=None,
        retry_budget=None,
    ) -> list[dict]:
        """Execute shard tasks on the workers; results in shard order.

        A worker death poisons the executor (every pending shard with
        it), so the executor is discarded and :class:`WorkerCrashError`
        raised — the caller retries the whole batch or fails the shard
        upward.  Any ordinary exception from a worker propagates as-is,
        exactly as the serial backend would raise it.

        With ``deadline`` (per-shard wall seconds) and/or ``hedge`` (a
        :class:`~repro.serve.hedging.HedgePolicy`, or ``True`` for the
        default) — here or as pool-construction defaults — shards run
        under :func:`~repro.serve.hedging.supervise_shards`: a shard
        that produces nothing within its deadline raises
        :class:`~repro.serve.hedging.ShardTimeout` (after quarantining
        the suspect workers) instead of blocking forever, and
        stragglers are hedged on the backup lane, first result winning
        bit-identically.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        if not tasks:
            return []
        observer = observer if observer is not None else self.observer
        deadline = deadline if deadline is not None else self.shard_deadline
        policy = _normalize_hedge(hedge) if hedge is not None else self.hedge
        retry_budget = retry_budget if retry_budget is not None else self.retry_budget
        if deadline is not None or (policy is not None and policy.enabled):
            return self._run_shards_supervised(
                tasks, observer=observer, deadline=deadline,
                policy=policy, retry_budget=retry_budget,
            )
        executor = self._ensure_executor()
        start = time.perf_counter()
        futures = [executor.submit(_pool_worker, task) for task in tasks]
        results: list[dict] = []
        for future in futures:
            try:
                results.append(future.result())
            except BrokenProcessPool:
                elapsed = time.perf_counter() - start
                self._discard_executor()
                if observer is not None:
                    observer.on_pool_crash()
                    observer.on_pool_shard("crashed", elapsed)
                raise WorkerCrashError(
                    "a pool worker died mid-shard; the batch produced no answers"
                ) from None
            if observer is not None:
                observer.on_pool_shard("ok", time.perf_counter() - start)
        return results

    def _run_shards_supervised(
        self, tasks, *, observer, deadline, policy, retry_budget
    ) -> list[dict]:
        from ..serve.hedging import LatencyEstimator, ShardTimeout, supervise_shards

        if self._estimator is None:
            self._estimator = LatencyEstimator(seed=self._hedge_seed)
        transport = _ExecutorTransport(self)
        start = time.perf_counter()
        try:
            results, report = supervise_shards(
                transport,
                tasks,
                clock=self._clock,
                deadline=deadline,
                policy=policy,
                estimator=self._estimator,
                retry_budget=retry_budget,
                observer=observer,
            )
        except ShardTimeout:
            elapsed = time.perf_counter() - start
            if observer is not None:
                observer.on_pool_shard("timeout", elapsed)
            self._quarantine("deadline", observer=observer)
            raise
        except BrokenProcessPool:
            elapsed = time.perf_counter() - start
            self._discard_executor()
            self._discard_hedge_executor()
            if observer is not None:
                observer.on_pool_crash()
                observer.on_pool_shard("crashed", elapsed)
            raise WorkerCrashError(
                "a pool worker died mid-shard; the batch produced no answers"
            ) from None
        if observer is not None:
            elapsed = time.perf_counter() - start
            for _ in results:
                observer.on_pool_shard("ok", elapsed)
        # A primary that lost its hedge race *and* is still running now
        # is genuinely stuck (a merely queued loser was cancelled, a
        # merely slow one has finished by the end of the batch).
        if any(not handle.done() for _idx, handle in report.stragglers):
            self._quarantine("straggler", observer=observer)
        return results

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down workers and unlink every exported segment (idempotent).

        Segment unlinking is unconditional: even when the executor is
        poisoned mid-batch and its shutdown raises, the ``finally``
        block destroys every exported segment before the error
        propagates — a serving host must never accumulate orphaned
        ``/dev/shm`` segments because a worker died at an awkward
        moment.
        """
        if self._closed:
            return
        self._closed = True
        try:
            if self._executor is not None:
                try:
                    self._executor.shutdown(wait=True, cancel_futures=True)
                finally:
                    self._executor = None
        finally:
            try:
                if self._hedge_executor is not None:
                    try:
                        self._hedge_executor.shutdown(wait=True, cancel_futures=True)
                    finally:
                        self._hedge_executor = None
            finally:
                shared, self._shared = self._shared, {}
                for handle in shared.values():
                    handle.unlink()

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class _ExecutorTransport:
    """Adapt the pool's executors to the supervise_shards protocol.

    Primaries go to the main executor; hedge copies go to the
    dedicated hedge lane with worker-fault task keys already stripped
    by the supervisor (the fault models a sick worker, not sick work).
    """

    #: real executors poll in short slices so deadline checks stay live.
    poll_cap = 0.05

    def __init__(self, pool: "ProcessPool") -> None:
        self._pool = pool

    def submit(self, task: dict, lane: str = "primary"):
        if lane == "hedge":
            executor = self._pool._ensure_hedge_executor()
        else:
            executor = self._pool._ensure_executor()
        return executor.submit(_pool_worker, task)

    def wait(self, handles, timeout):
        done, _not_done = _futures_wait(
            handles, timeout=timeout, return_when=FIRST_COMPLETED
        )
        return done

    def result(self, handle):
        return handle.result(timeout=0)

    def cancel(self, handle) -> bool:
        return handle.cancel()


# ----------------------------------------------------------------------
# Worker side.  Module-level so spawn contexts can import it; fork
# contexts inherit it.  One attached graph per (segment, fingerprint),
# cached for the worker's lifetime.
# ----------------------------------------------------------------------
_ATTACHED: dict[tuple[str, str], object] = {}


def _pool_ping(i: int) -> int:
    """Health-check no-op: proves the worker is alive and answering."""
    return os.getpid()


def _attached_graph(descriptor: dict):
    key = (descriptor["shm_name"], descriptor["fingerprint"])
    graph = _ATTACHED.get(key)
    if graph is None:
        graph = Graph.from_shm(descriptor)
        _ATTACHED[key] = graph
    return graph


def _pool_worker(task: dict) -> dict:
    graph = _attached_graph(task["graph"])
    units = task["units"]
    # Injected worker death: SIGKILL halfway through the shard, after
    # real work has happened — no cleanup, no exception, like the OOM
    # killer.  The parent sees BrokenProcessPool.
    kill_at = len(units) // 2 if task.get("kill") else None
    # Injected worker stall: a *real* sleep halfway through the shard,
    # modelling a wedged-but-alive worker (swap storm, hung syscall).
    # Unlike the engine-level simulated stall this blocks actual wall
    # time, which is exactly what shard deadlines and hedging defend
    # against; the worker eventually wakes and returns correct bytes.
    stall_s = float(task.get("stall") or 0.0)
    stall_at = len(units) // 2 if stall_s > 0 else None
    out = []
    for pos, unit in enumerate(units):
        if stall_at is not None and pos == stall_at:
            time.sleep(stall_s)
        if kill_at is not None and pos == kill_at:
            os.kill(os.getpid(), signal.SIGKILL)
        out.append(_run_unit(graph, task, unit))
    if kill_at is not None and kill_at >= len(units):  # pragma: no cover
        os.kill(os.getpid(), signal.SIGKILL)
    return {"shard": task["shard"], "units": out}


def _run_unit(graph, task: dict, unit: dict) -> dict:
    method = task["method"]
    strategy = task["strategy"]
    ek = dict(task["engine_kwargs"])
    certify = task["certify"]
    if certify:
        ek["track_processed"] = True
    if method == "multi":
        return _run_multi_unit(graph, task, unit, strategy, ek, certify)
    if method in ("plain-bids", "plain-star-bids"):
        return _run_bids_unit(graph, unit, strategy, ek, certify)
    return _run_sssp_unit(graph, task, unit, strategy, ek, certify)


def _run_multi_unit(graph, task, unit, strategy, ek, certify) -> dict:
    sub = QueryGraph(unit["pairs"], directed=task["directed"])
    res = _solve_multi_component(graph, sub, strategy, ek, certify)
    paths: dict[tuple[int, int], list[int] | None] = {}
    for key in res.distances:
        try:
            paths[key] = res.path(*key)
        except (PathError, ValueError, IndexError, KeyError):
            paths[key] = None
    return {
        "index": unit["index"],
        "distances": res.distances,
        "meter": res.meter,
        "num_searches": res.num_searches,
        "exact": res.exact,
        "steps": res.details["steps"],
        "relaxations": res.details["relaxations"],
        "certs": res.certificates,
        "paths": paths,
    }


def _run_bids_unit(graph, unit, strategy, ek, certify) -> dict:
    s, t = unit["s"], unit["t"]
    res = run_policy(graph, BiDS(s, t), strategy=strategy, **ek)
    cert = None
    if certify:
        from ..verify import certificate_for_run  # lazy: verify imports obs

        cert = certificate_for_run(
            graph, s, t, "bids", float(res.answer), not res.exhausted, res
        )
    return {
        "index": unit["index"],
        "distance": res.answer,
        "meter": res.meter,
        "exact": not res.exhausted,
        "cert": cert,
    }


def _run_sssp_unit(graph, task, unit, strategy, ek, certify) -> dict:
    from ..core.batch import _sssp_certificate

    qi = unit["qi"]
    reverse = unit["reverse"]
    g = graph.reverse() if reverse else graph
    res = run_policy(g, SsspPolicy(unit["v"]), strategy=strategy, **ek)
    row = res.distances_from(0)
    exact = not res.exhausted
    rows = {qi: row}
    prows = {}
    if certify and res.processed_dist is not None:
        prows[qi] = res.processed_dist[0]
    covered = task["covered"]
    answers: dict[tuple[int, int], float] = {}
    certs: dict | None = {} if certify else None
    paths: dict[tuple[int, int], list[int] | None] = {}
    for pair in unit["pairs"]:
        (s, t), i, j = pair["key"], pair["i"], pair["j"]
        # The same elif chain the serial combiner walks: prefer the
        # source endpoint's row when it is covered.
        if i in covered:
            answers[(s, t)] = float(row[t])
        else:
            answers[(s, t)] = float(row[s])
        if certs is not None:
            certs[(s, t)] = _sssp_certificate(
                graph, None, task["method"], s, t, i, j, answers[(s, t)],
                rows, prows, covered, {qi: exact}, {qi: reverse},
            )
        try:
            if i in covered:
                paths[(s, t)] = walk_path(graph, row, s, t)
            else:
                g_row = graph.reverse() if (graph.directed and reverse) else graph
                paths[(s, t)] = walk_path(g_row, row, t, s)[::-1]
        except (PathError, ValueError, IndexError, KeyError):
            paths[(s, t)] = None
    return {
        "index": unit["index"],
        "meter": res.meter,
        "exact": exact,
        "answers": answers,
        "certs": certs,
        "paths": paths,
    }


# ----------------------------------------------------------------------
# Parent side: plan units, pack shards, dispatch, reassemble.
# ----------------------------------------------------------------------
def solve_batch_process(
    graph,
    qg: QueryGraph,
    *,
    method: str,
    strategy=None,
    strategy_factory=None,
    max_sources=None,
    budget=None,
    arena=None,
    observer=None,
    certify: bool = False,
    workers: int | None = None,
    pool: ProcessPool | None = None,
    shard_deadline: float | None = None,
    hedge=None,
    retry_budget=None,
    **engine_kwargs,
) -> BatchResult:
    """Answer a batch on worker processes, bit-identical to serial.

    Called through ``solve_batch(..., backend="process")``; ``qg`` is
    already validated.  Pass an existing :class:`ProcessPool` to reuse
    workers and the shared graph across batches; otherwise an ephemeral
    pool of ``workers`` processes is created and torn down (segments
    unlinked) around this one batch, exception paths included.
    """
    for arg, label in (
        (budget, "budget"),
        (arena, "arena"),
        (strategy_factory, "strategy_factory"),
        (max_sources, "max_sources"),
    ):
        if arg is not None:
            raise ValueError(
                f"{label} is not supported by backend='process'; "
                "it is inherently single-process — use backend='serial'"
            )
    injector = engine_kwargs.pop("fault_injector", None)
    if injector is not None and _has_engine_faults(injector):
        raise ValueError(
            "backend='process' cannot replay engine-level fault injection "
            "(the injector's seeded RNG lives in the parent); only the "
            "pool-level kill_worker_at / stall_worker_at faults are "
            "supported with the process backend"
        )
    unsupported = set(engine_kwargs) - _SHIPPABLE_ENGINE_KWARGS
    if unsupported:
        raise ValueError(
            f"engine kwargs {sorted(unsupported)} are not supported by "
            f"backend='process'; shippable: {sorted(_SHIPPABLE_ENGINE_KWARGS)}"
        )
    if not isinstance(engine_kwargs.get("kernel"), (str, type(None))):
        raise ValueError(
            "backend='process' ships the kernel selection by name; pass "
            "kernel as a string impl (e.g. 'sort_reduceat'), not a Kernel "
            "instance — workers build their own"
        )

    own_pool = pool is None
    if own_pool:
        pool = ProcessPool(workers)
    try:
        units, costs, extras = _plan_units(graph, qg, method)
        shards = balance_shards(costs, pool.workers)
        descriptor = pool.share(graph)
        tasks = []
        for shard_idx, unit_ids in enumerate(shards):
            task = {
                "shard": shard_idx,
                "graph": descriptor,
                "method": method,
                "directed": qg.directed,
                "strategy": strategy,
                "engine_kwargs": engine_kwargs,
                "certify": certify,
                "units": [units[u] for u in unit_ids],
            }
            task.update(extras)
            if injector is not None:
                if injector.take_worker_kill(shard_idx):
                    task["kill"] = True
                stall = injector.take_worker_stall(shard_idx)
                if stall:
                    task["stall"] = stall
            tasks.append(task)
        if observer is not None:
            observer.on_pool_batch(method, pool.workers, len(tasks))
        shard_results = pool.run_shards(
            tasks,
            observer=observer,
            deadline=shard_deadline,
            hedge=hedge,
            retry_budget=retry_budget,
        )
        by_unit: dict[int, dict] = {}
        for shard in shard_results:
            for unit_res in shard["units"]:
                by_unit[unit_res["index"]] = unit_res
        ordered = [by_unit[i] for i in range(len(units))]
        res = _reassemble(graph, qg, method, ordered, extras, certify)
    finally:
        if own_pool:
            pool.close()
    if observer is not None:
        observer.on_batch(method, res)
    return res


def _has_engine_faults(injector) -> bool:
    if any(getattr(injector, attr, None) is not None for attr in _ENGINE_FAULT_ATTRS):
        return True
    return bool(
        getattr(injector, "perturb_heuristic", False)
        or getattr(injector, "flip_cache_payload", False)
        or getattr(injector, "flip_checkpoint", False)
    )


def _plan_units(graph, qg: QueryGraph, method: str):
    """Decompose the batch into work units + cost estimates + task extras."""
    n, m = graph.num_vertices, graph.num_edges
    verts = qg.vertices
    if method == "multi":
        comps = qg.components()
        units = [
            {"index": k, "pairs": sub.original_pairs} for k, sub in enumerate(comps)
        ]
        costs = [
            estimate_multi_work(sub.num_vertices, n, m)
            + estimate_endpoint_work(graph, sub.vertices)
            for sub in comps
        ]
        return units, costs, {}
    if method in ("plain-bids", "plain-star-bids"):
        units = []
        for pos, (i, j) in enumerate(qg.edges):
            units.append({"index": pos, "s": int(verts[i]), "t": int(verts[j])})
        base = estimate_bids_work(n, m)
        costs = [
            base + estimate_endpoint_work(graph, [u["s"], u["t"]]) for u in units
        ]
        return units, costs, {}
    # SSSP methods: one unit per covering source, carrying its queries.
    if method == "sssp-plain":
        source_indices = _plain_sssp_sources(qg)
    else:
        source_indices = qg.vertex_cover()
    covered = set(int(q) for q in source_indices)
    pairs_by_source: dict[int, list[dict]] = {q: [] for q in covered}
    self_pairs: list[tuple[tuple[int, int], int, int]] = []
    for i, j in qg.edges:
        s, t = int(verts[i]), int(verts[j])
        if s == t:
            self_pairs.append(((s, t), i, j))
        elif i in covered:
            pairs_by_source[i].append({"key": (s, t), "i": i, "j": j})
        elif j in covered:
            pairs_by_source[j].append({"key": (s, t), "i": i, "j": j})
        else:
            raise ValueError(
                f"query ({s}, {t}) not covered by SSSP sources; "
                f"method {method!r} needs a covering source set"
            )
    units = []
    for pos, qi in enumerate(source_indices):
        qi = int(qi)
        units.append(
            {
                "index": pos,
                "qi": qi,
                "v": int(verts[qi]),
                "reverse": bool(
                    graph.directed
                    and qg.direction is not None
                    and qg.direction[qi] < 0
                ),
                "pairs": pairs_by_source[qi],
            }
        )
    base = estimate_sssp_work(n, m)
    costs = [base + estimate_endpoint_work(graph, [u["v"]]) for u in units]
    return units, costs, {"covered": covered, "self_pairs": self_pairs}


def _reassemble(
    graph, qg: QueryGraph, method: str, ordered: list[dict], extras: dict, certify: bool
) -> BatchResult:
    """Merge per-unit payloads exactly the way the serial backend does."""
    if method == "multi":
        return _reassemble_multi(qg, ordered, certify)
    if method in ("plain-bids", "plain-star-bids"):
        return _reassemble_bids(qg, method, ordered, certify)
    return _reassemble_sssp(graph, qg, method, ordered, extras, certify)


def _reassemble_multi(qg: QueryGraph, ordered: list[dict], certify: bool) -> BatchResult:
    distances: dict[tuple[int, int], float] = {}
    paths: dict[tuple[int, int], list[int] | None] = {}
    certs: dict | None = {} if certify else None
    for unit in ordered:
        distances.update(unit["distances"])
        paths.update(unit["paths"])
        if certs is not None and unit["certs"]:
            certs.update(unit["certs"])
    if len(ordered) == 1:
        # Single component: the serial backend returns the engine run's
        # meter as-is, with no merge step.
        meter = ordered[0]["meter"]
        details = {
            "steps": ordered[0]["steps"],
            "relaxations": ordered[0]["relaxations"],
        }
    else:
        meter = WorkDepthMeter()
        meter.merge_parallel([unit["meter"] for unit in ordered])
        details = {
            "components": len(ordered),
            "steps": sum(unit["steps"] for unit in ordered),
            "relaxations": sum(unit["relaxations"] for unit in ordered),
        }
    return BatchResult(
        distances=distances,
        meter=meter,
        method="multi",
        num_searches=sum(unit["num_searches"] for unit in ordered),
        exact=all(unit["exact"] for unit in ordered),
        details=details,
        certificates=certs,
        _path_state={"kind": "precomputed", "paths": paths},
    )


def _reassemble_bids(
    qg: QueryGraph, method: str, ordered: list[dict], certify: bool
) -> BatchResult:
    verts = qg.vertices
    distances: dict[tuple[int, int], float] = {}
    certs: dict | None = {} if certify else None
    for pos, (i, j) in enumerate(qg.edges):
        key = (int(verts[i]), int(verts[j]))
        distances[key] = ordered[pos]["distance"]
        if certs is not None:
            certs[key] = ordered[pos]["cert"]
    combined = WorkDepthMeter()
    meters = [unit["meter"] for unit in ordered]
    if method == "plain-star-bids":
        combined.merge_parallel(meters)
    else:
        for meter in meters:
            combined.merge(meter)
    return BatchResult(
        distances=distances,
        meter=combined,
        method=method,
        num_searches=2 * qg.num_edges,
        exact=all(unit["exact"] for unit in ordered),
        certificates=certs,
        # The serial plain modes discard per-query state; paths raise
        # NotImplementedError there, so they must raise here too.
        _path_state=None,
    )


def _reassemble_sssp(
    graph, qg: QueryGraph, method: str, ordered: list[dict], extras: dict, certify: bool
) -> BatchResult:
    distances: dict[tuple[int, int], float] = {}
    paths: dict[tuple[int, int], list[int] | None] = {}
    certs: dict | None = {} if certify else None
    combined = WorkDepthMeter()
    for unit in ordered:
        combined.merge(unit["meter"])
        distances.update(unit["answers"])
        paths.update(unit["paths"])
        if certs is not None and unit["certs"]:
            certs.update(unit["certs"])
    for key, _i, _j in extras["self_pairs"]:
        # Self-queries are their own answer; the serial combiner never
        # consults a row for them, and path() short-circuits to [s].
        distances[key] = 0.0
        if certs is not None:
            from ..verify import build_certificate  # lazy: verify imports obs

            s, t = key
            certs[key] = build_certificate(graph, s, t, method, 0.0, True)
    return BatchResult(
        distances=distances,
        meter=combined,
        method=method,
        num_searches=len(ordered),
        exact=all(unit["exact"] for unit in ordered),
        certificates=certs,
        _path_state={"kind": "precomputed", "paths": paths},
    )
