"""Simulated parallel machine: cost model, fork-join simulator, primitives."""

from .cost_model import WorkDepthMeter, simulated_time, speedup_curve
from .forkjoin import ForkJoinSimulator, Task, fork, leaf, parallel_for_task
from .primitives import dedup, exclusive_scan, expand_ranges, pack, write_min

__all__ = [
    "WorkDepthMeter",
    "simulated_time",
    "speedup_curve",
    "ForkJoinSimulator",
    "Task",
    "fork",
    "leaf",
    "parallel_for_task",
    "write_min",
    "pack",
    "dedup",
    "exclusive_scan",
    "expand_ranges",
]
