"""Parallel execution: cost model, fork-join simulator, process pool.

The cost model and fork-join simulator *simulate* the paper's machine;
:mod:`repro.parallel.pool` (imported lazily — it pulls in the batch
solvers, which import this package) runs batches on real worker
processes over a shared-memory graph.
"""

from .cost_model import (
    WorkDepthMeter,
    balance_shards,
    estimate_bids_work,
    estimate_multi_work,
    estimate_sssp_work,
    simulated_time,
    speedup_curve,
)
from .forkjoin import ForkJoinSimulator, Task, fork, leaf, parallel_for_task
from .primitives import dedup, exclusive_scan, expand_ranges, pack, write_min

__all__ = [
    "WorkDepthMeter",
    "simulated_time",
    "speedup_curve",
    "estimate_sssp_work",
    "estimate_bids_work",
    "estimate_multi_work",
    "balance_shards",
    "ForkJoinSimulator",
    "Task",
    "fork",
    "leaf",
    "parallel_for_task",
    "write_min",
    "pack",
    "dedup",
    "exclusive_scan",
    "expand_ranges",
    "ProcessPool",
    "WorkerCrashError",
    "solve_batch_process",
]

_POOL_EXPORTS = {"ProcessPool", "WorkerCrashError", "solve_batch_process"}


def __getattr__(name):
    # Lazy: pool -> core.batch -> parallel.cost_model -> this package.
    if name in _POOL_EXPORTS:
        from . import pool

        return getattr(pool, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
