"""Work/depth accounting and the simulated parallel machine.

The paper evaluates on a 96-core fork-join machine; CPython cannot run
shared-memory data-parallel loops, so scalability (Fig. 5/9) is
reproduced through the standard work/depth cost model of the binary
fork-join model the paper assumes (Sec. 2):

* every frontier step of a stepping algorithm is one parallel batch;
* a step doing ``w`` units of relaxation work has span
  ``O(log w)`` (parallel-for + write_min tree),
* Brent's scheduling bound gives the ``P``-processor time
  ``T_P = sum_i (w_i / P + c * d_i)``.

This exposes exactly the effect the paper measures: algorithms that
prune more (BiDS, BiD-A*) have less work per step but the same number of
rounds, hence a worse work/span ratio and lower self-relative speedup —
"the simpler the algorithms are, the better scalability they have".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "WorkDepthMeter",
    "simulated_time",
    "speedup_curve",
    "estimate_sssp_work",
    "estimate_bids_work",
    "estimate_multi_work",
    "estimate_endpoint_work",
    "balance_shards",
]


@dataclass
class WorkDepthMeter:
    """Accumulates per-step work and depth of one algorithm execution.

    ``work`` counts unit operations (edge relaxations, frontier pushes,
    heuristic evaluations); ``depth`` counts the critical path in the
    binary fork-join model.  ``step_work`` keeps the per-step breakdown so
    Brent's bound can be applied step by step (steps are barriers).
    """

    work: float = 0.0
    depth: float = 0.0
    steps: int = 0
    step_work: list = field(default_factory=list)

    def record_step(self, step_work: float, *, span: float | None = None) -> None:
        """Log one stepping round doing ``step_work`` unit operations.

        ``span`` defaults to ``1 + log2(step_work)``: a parallel-for over
        the batch forks a binary tree of that height.
        """
        step_work = max(float(step_work), 1.0)
        if span is None:
            span = 1.0 + math.log2(step_work)
        self.work += step_work
        self.depth += span
        self.steps += 1
        self.step_work.append(step_work)

    def merge(self, other: "WorkDepthMeter") -> None:
        """Fold another execution into this one (sequential composition)."""
        self.work += other.work
        self.depth += other.depth
        self.steps += other.steps
        self.step_work.extend(other.step_work)

    def merge_parallel(self, others: list["WorkDepthMeter"]) -> None:
        """Fold executions that run concurrently (work adds, depth maxes).

        Used by the Plain* batch mode: independent queries run side by
        side, so their steps overlap.  Per-step structure is interleaved
        by zipping the step lists.
        """
        if not others:
            return
        self.work += sum(o.work for o in others)
        self.depth += max(o.depth for o in others)
        self.steps += max(o.steps for o in others)
        longest = max(len(o.step_work) for o in others)
        for i in range(longest):
            combined = sum(o.step_work[i] for o in others if i < len(o.step_work))
            self.step_work.append(combined)

    def simulated_time(self, processors: int, *, sync_cost: float = 1.0) -> float:
        """Brent-bound running time on ``processors`` cores.

        Each step is a barrier: it takes ``ceil(w_i / P)`` work slots plus
        ``sync_cost * span_i`` for the fork/join tree and barrier.
        """
        return simulated_time(self.step_work, processors, sync_cost=sync_cost)

    def speedup(self, processors: int, *, sync_cost: float = 1.0) -> float:
        t1 = self.simulated_time(1, sync_cost=sync_cost)
        tp = self.simulated_time(processors, sync_cost=sync_cost)
        return t1 / tp if tp > 0 else float("inf")


def simulated_time(step_work: list[float], processors: int, *, sync_cost: float = 1.0) -> float:
    """Brent's bound applied per barrier-separated step."""
    if processors < 1:
        raise ValueError("need at least one processor")
    total = 0.0
    for w in step_work:
        span = 1.0 + math.log2(max(w, 1.0))
        total += w / processors + sync_cost * span
    return total


def speedup_curve(
    meter: WorkDepthMeter, processor_counts: list[int], *, sync_cost: float = 1.0
) -> dict[int, float]:
    """Self-relative speedup at each processor count (Fig. 5/9 series)."""
    t1 = meter.simulated_time(1, sync_cost=sync_cost)
    return {
        p: t1 / meter.simulated_time(p, sync_cost=sync_cost) for p in processor_counts
    }


# ----------------------------------------------------------------------
# A-priori work estimates: the same unit-operation currency the meter
# records, predicted *before* running.  The process-pool backend packs
# work units into shards by these estimates, so the pool's load balance
# is the cost model's prediction made checkable against wall-clock.
# ----------------------------------------------------------------------
def estimate_sssp_work(num_vertices: int, num_edges: int) -> float:
    """Predicted unit work of one full SSSP: ``m + n log n`` relax/settle."""
    n = max(int(num_vertices), 1)
    return float(num_edges) + n * math.log2(n + 1)


def estimate_bids_work(num_vertices: int, num_edges: int) -> float:
    """Predicted unit work of one bidirectional s-t search.

    BiDS settles roughly two half-radius balls; on the uniform-ish
    graphs of the benchmark that is about half of one full SSSP (the
    paper's Fig. 4 pruning ratio), which is all the shard packer needs —
    relative, not absolute, accuracy.
    """
    return estimate_sssp_work(num_vertices, num_edges) / 2.0


def estimate_multi_work(component_vertices: int, num_vertices: int, num_edges: int) -> float:
    """Predicted unit work of one Multi-BiDS component run.

    The engine searches from every query-graph vertex of the component
    concurrently, each pruned like one half of a bidirectional search.
    """
    return max(int(component_vertices), 1) * estimate_bids_work(num_vertices, num_edges)


def estimate_endpoint_work(graph, vertices) -> float:
    """Degree-aware tilt for a unit rooted at ``vertices``.

    The flat ``(n, m)`` estimates above give every unit of a method the
    same cost, so shard packing degenerates to round-robin.  The sum of
    the root vertices' out-degrees — read from the graph's cached
    :meth:`~repro.graphs.csr.Graph.out_degrees` array, O(|vertices|)
    per call with no per-call ``indptr`` gathers — is the first
    relaxation waves' edge work: a cheap, deterministic discriminator
    between hub-rooted and leaf-rooted searches.
    """
    idx = np.asarray(vertices, dtype=np.int64)
    if len(idx) == 0:
        return 0.0
    return float(graph.out_degrees()[idx].sum())


def balance_shards(costs: list[float], num_shards: int) -> list[list[int]]:
    """Pack unit indices into ``num_shards`` groups of balanced cost.

    Deterministic longest-processing-time: units sorted by descending
    cost (index as tie-break) land on the currently lightest shard
    (lowest index on ties) — the classic 4/3-approximate makespan
    heuristic, stable across runs so pool scheduling is reproducible.
    Each shard's units are returned in ascending unit order, and empty
    shards are dropped.
    """
    num_shards = max(1, int(num_shards))
    loads = [0.0] * num_shards
    shards: list[list[int]] = [[] for _ in range(num_shards)]
    for idx in sorted(range(len(costs)), key=lambda i: (-costs[i], i)):
        best = min(range(num_shards), key=lambda s: (loads[s], s))
        loads[best] += costs[idx]
        shards[best].append(idx)
    return [sorted(s) for s in shards if s]
