"""Data-parallel primitives in the vectorized-batch execution style.

Each primitive is the numpy realization of the parallel operation the
paper's C++ code performs with ParlayLib, together with its fork-join
work/span so callers can charge a :class:`~repro.parallel.cost_model.
WorkDepthMeter` honestly:

=====================  ======  ============
primitive              work    span
=====================  ======  ============
``write_min``          O(k)    O(log k)
``pack`` (filter)      O(k)    O(log k)
``dedup``              O(k)    O(log k)
``exclusive_scan``     O(k)    O(log k)
=====================  ======  ============
"""

from __future__ import annotations

import numpy as np

__all__ = ["write_min", "pack", "dedup", "exclusive_scan", "expand_ranges"]


def write_min(values: np.ndarray, idx: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Batched atomic ``write_min``: lower ``values[idx]`` to ``candidates``.

    Returns the boolean success mask per candidate — ``True`` where the
    candidate is strictly below the value *present before this batch*
    (i.e. the CAS would have succeeded at least once).  Mirrors the
    paper's write_min(p, v) primitive applied by a whole parallel-for.
    """
    idx = np.asarray(idx)
    candidates = np.asarray(candidates)
    before = values[idx]
    np.minimum.at(values, idx, candidates)
    return candidates < before


def pack(array: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Parallel filter (ParlayLib ``pack``)."""
    return array[mask]


def dedup(array: np.ndarray) -> np.ndarray:
    """Remove duplicates (semisort + pack in the parallel setting)."""
    return np.unique(array)


def exclusive_scan(array: np.ndarray) -> tuple[np.ndarray, float]:
    """Exclusive prefix sum; returns (scan, total)."""
    out = np.zeros(len(array), dtype=np.int64)
    if len(array):
        np.cumsum(array[:-1], out=out[1:])
        total = float(out[-1] + array[-1])
    else:
        total = 0.0
    return out, total


def expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s+c)`` for each (s, c) pair, vectorized.

    The edge-gather primitive: given CSR offsets of a frontier, produce
    the flat index array of all incident edges.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    nz = counts > 0
    starts, counts = starts[nz], counts[nz]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Build per-position deltas whose prefix sum walks every range: +1
    # inside a range, and a jump to the next range's start at boundaries.
    deltas = np.ones(total, dtype=np.int64)
    pos = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=pos[1:])
    prev_end = np.concatenate([[0], starts[:-1] + counts[:-1] - 1])
    deltas[pos] = starts - prev_end
    return np.cumsum(deltas)
