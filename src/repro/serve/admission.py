"""Admission control: priorities, deadlines, and explicit load shedding.

A production batch endpoint cannot accept unbounded work: past some
queue depth every query gets slower and every deadline is missed — the
congestion-collapse regime the stragglers of the stepping-algorithm
literature fall into.  The serve pipeline instead *admits* a bounded,
priority-ordered prefix of the submitted queries and **sheds** the rest
with an explicit ``shed`` outcome, so low-priority queries fail fast and
everything admitted keeps its latency.

Shedding is deterministic: ordering depends only on (priority,
submission order), never on time or load measurements, so an interrupted
job resumed from a checkpoint sheds exactly the same queries.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ServeQuery",
    "AdmissionController",
    "OK",
    "INEXACT",
    "SHED",
    "TIMEOUT",
    "FAILED",
    "REPAIRED",
    "OUTCOMES",
]

#: terminal per-query outcomes recorded by the pipeline.
OK = "ok"              # exact answer
INEXACT = "inexact"    # budget/deadline-limited: the answer is an upper bound
SHED = "shed"          # refused by admission control (never executed)
TIMEOUT = "timeout"    # deadline expired before execution began
FAILED = "failed"      # every rung errored; no answer at all
REPAIRED = "repaired"  # verification refuted the answer; exact recompute healed it
OUTCOMES = (OK, INEXACT, SHED, TIMEOUT, FAILED, REPAIRED)


@dataclass
class ServeQuery:
    """One admitted unit of work: a query plus its service parameters.

    ``priority`` orders execution and shedding (higher first, ties by
    submission order).  ``deadline`` is an *absolute* instant on the
    pipeline's clock; queries whose deadline passes before they start
    get a ``timeout`` outcome, and queries running into their deadline
    degrade to the budgeted upper bound (``exact=False``) instead.
    """

    source: int
    target: int
    priority: int = 0
    deadline: float | None = None

    def __post_init__(self) -> None:
        self.source = int(self.source)
        self.target = int(self.target)
        self.priority = int(self.priority)
        if self.deadline is not None:
            self.deadline = float(self.deadline)

    @property
    def key(self) -> tuple[int, int]:
        return (self.source, self.target)


class AdmissionController:
    """Bounded priority admission over one submitted batch.

    ``max_queue`` is the service capacity in queries; ``None`` admits
    everything.  :meth:`admit` partitions the submissions into the
    admitted prefix (in execution order: priority descending, then
    submission order) and the shed remainder (the lowest-priority,
    latest-submitted queries — the ones a loaded service can refuse at
    least cost).
    """

    def __init__(self, max_queue: int | None = None) -> None:
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.max_queue = max_queue
        self.admitted = 0
        self.shed = 0

    def admit(self, queries: list[ServeQuery]) -> tuple[list[ServeQuery], list[ServeQuery]]:
        order = sorted(range(len(queries)), key=lambda i: (-queries[i].priority, i))
        cut = len(order) if self.max_queue is None else min(self.max_queue, len(order))
        admitted = [queries[i] for i in order[:cut]]
        shed = [queries[i] for i in order[cut:]]
        self.admitted += len(admitted)
        self.shed += len(shed)
        return admitted, shed
