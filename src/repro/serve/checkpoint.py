"""Durable checkpoints: crash a batch job, resume it, lose nothing.

A checkpoint is two files written atomically (temp file + ``os.replace``)
after every completed shard:

* ``<path>`` — a JSON **manifest**: format kind/version, the batch
  fingerprint (graph, method, shard size, query digest), the set of
  completed shard indices, and per-query outcome/exactness flags keyed
  ``"s->t"``;
* ``<path stem>.npz`` — the **sidecar**: parallel int64/float64/bool
  arrays (``s``, ``t``, ``dist``, ``exact``) holding every answered
  query's distance at full precision.  Distances live here, not in the
  JSON, so a resumed run reproduces them *bit-identically* — no decimal
  round-trip.

The sidecar is written first and the manifest second; the manifest
records the sidecar's SHA-256, so on resume the pair is known to be
internally consistent.  A crash between the two writes leaves the old
manifest's checksum disagreeing with the new sidecar — the load then
raises :class:`CheckpointCorrupt` and the pipeline *quarantines* the
checkpoint (recomputes from scratch) rather than resuming from bytes it
cannot vouch for.  The same exception covers unreadable npz payloads
(torn writes, bit rot) and mismatched array lengths.

On resume the manifest's fingerprint must match the new run's
configuration exactly; a mismatch (different graph content or name,
query set, method, or shard size) raises a ``ValueError`` naming the
field instead of silently mixing answers from two different jobs.  The
graph is identified by :meth:`repro.graphs.Graph.fingerprint` — a CSR
content hash — so even a same-shape regenerated graph is refused.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

__all__ = [
    "CheckpointCorrupt",
    "CheckpointStore",
    "batch_fingerprint",
    "CHECKPOINT_KIND",
    "CHECKPOINT_VERSION",
]

CHECKPOINT_KIND = "repro-serve-checkpoint"
CHECKPOINT_VERSION = 1


class CheckpointCorrupt(RuntimeError):
    """A checkpoint whose bytes cannot be trusted (checksum mismatch,
    unreadable sidecar, torn arrays).  Callers quarantine: ignore the
    checkpoint and recompute, never resume from it."""


def batch_fingerprint(graph, queries, method: str, checkpoint_every: int) -> dict:
    """Identity of one batch job: what a checkpoint may be resumed into.

    Deadlines are deliberately excluded — a resumed run recomputes them
    from its own clock — but the (source, target, priority) sequence is
    digested in submission order, so any change to the query set or its
    ordering (which would shift shard boundaries) is caught.
    """
    h = hashlib.sha256()
    for q in queries:
        h.update(f"{q.source},{q.target},{q.priority};".encode())
    return {
        "graph": {
            "name": graph.name,
            "n": int(graph.num_vertices),
            "m": int(graph.num_edges),
            "directed": bool(graph.directed),
            "weight_sum": round(float(graph.weights.sum()), 6),
            "fingerprint": graph.fingerprint(),
        },
        "method": str(method),
        "checkpoint_every": int(checkpoint_every),
        "num_queries": len(queries),
        "queries_sha256": h.hexdigest()[:16],
    }


def _sha256_file(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 16), b""):
            h.update(chunk)
    return h.hexdigest()


class CheckpointStore:
    """Atomic reader/writer of one checkpoint (manifest + npz sidecar)."""

    def __init__(self, path) -> None:
        self.path = str(path)
        stem, _ = os.path.splitext(self.path)
        self.sidecar = stem + ".npz"
        if self.sidecar == self.path:
            raise ValueError(
                f"checkpoint path {self.path!r} must not itself end in .npz "
                "(that name is reserved for the distance sidecar)"
            )

    def exists(self) -> bool:
        return os.path.exists(self.path) and os.path.exists(self.sidecar)

    # ------------------------------------------------------------------
    def save(self, manifest: dict, *, s, t, dist, exact) -> None:
        """Write one checkpoint durably (sidecar first, manifest last)."""
        payload = dict(manifest)
        payload["kind"] = CHECKPOINT_KIND
        payload["version"] = CHECKPOINT_VERSION
        payload["sidecar"] = os.path.basename(self.sidecar)

        tmp = self.sidecar + ".tmp"
        with open(tmp, "wb") as fh:
            np.savez(
                fh,
                s=np.asarray(s, dtype=np.int64),
                t=np.asarray(t, dtype=np.int64),
                dist=np.asarray(dist, dtype=np.float64),
                exact=np.asarray(exact, dtype=bool),
            )
        # Digest the exact bytes just written; load() re-hashes the file
        # so any later corruption of the sidecar is detected on resume.
        payload["sidecar_sha256"] = _sha256_file(tmp)
        os.replace(tmp, self.sidecar)

        tmp = self.path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.path)

    # ------------------------------------------------------------------
    def load(self) -> tuple[dict, dict] | None:
        """The checkpoint as ``(manifest, arrays)``; None when absent."""
        if not self.exists():
            return None
        with open(self.path) as fh:
            manifest = json.load(fh)
        if manifest.get("kind") != CHECKPOINT_KIND:
            raise ValueError(
                f"{self.path!r} is not a serve checkpoint "
                f"(kind={manifest.get('kind')!r})"
            )
        if manifest.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint {self.path!r} has version {manifest.get('version')!r}; "
                f"this build reads version {CHECKPOINT_VERSION}"
            )
        expected = manifest.get("sidecar_sha256")
        if expected is not None:
            # Absent in pre-PR-6 checkpoints (same format version);
            # those load unchecked for compatibility.
            actual = _sha256_file(self.sidecar)
            if actual != expected:
                raise CheckpointCorrupt(
                    f"checkpoint sidecar {self.sidecar!r} fails its checksum "
                    f"(manifest says {expected[:12]}…, file hashes {actual[:12]}…); "
                    "refusing to resume from corrupt bytes"
                )
        try:
            with np.load(self.sidecar) as data:
                arrays = {k: data[k] for k in ("s", "t", "dist", "exact")}
        except Exception as exc:  # np.load raises zipfile/OS/Value errors
            raise CheckpointCorrupt(
                f"checkpoint sidecar {self.sidecar!r} is unreadable: {exc}"
            ) from exc
        n = len(arrays["s"])
        if any(len(arrays[k]) != n for k in ("t", "dist", "exact")):
            raise CheckpointCorrupt(
                f"checkpoint sidecar {self.sidecar!r} is corrupt: "
                "parallel arrays disagree on length"
            )
        return manifest, arrays

    def verify_fingerprint(self, manifest: dict, fingerprint: dict) -> None:
        """Raise a field-naming ``ValueError`` unless the job matches."""
        stored = manifest.get("fingerprint", {})
        # Graph *content* mismatch gets its own message: same-named,
        # same-shaped graphs with different bytes are the dangerous case
        # (a regenerated input), and "field graph differed" hides it.
        old_g, new_g = stored.get("graph") or {}, fingerprint.get("graph") or {}
        old_fp, new_fp = old_g.get("fingerprint"), new_g.get("fingerprint")
        if old_fp is not None and new_fp is not None and old_fp != new_fp:
            raise ValueError(
                f"checkpoint {self.path!r} was written against a different "
                f"graph: content fingerprint was {old_fp}, the loaded graph "
                f"is {new_fp}; resuming would mix answers across graphs"
            )
        for field in ("graph", "method", "checkpoint_every", "num_queries", "queries_sha256"):
            if stored.get(field) != fingerprint.get(field):
                raise ValueError(
                    f"checkpoint {self.path!r} does not match this job: "
                    f"{field} was {stored.get(field)!r}, now {fingerprint.get(field)!r}"
                )

    def clear(self) -> None:
        """Delete both files (a finished job's checkpoint is garbage)."""
        for p in (self.path, self.sidecar):
            try:
                os.remove(p)
            except FileNotFoundError:
                pass
