"""Per-method circuit breakers: isolate a failing algorithm rung.

A :class:`CircuitBreaker` guards one execution method (``bidastar``,
``multi``, ...) with the classic three-state machine::

                 K consecutive failures
        CLOSED ─────────────────────────▶ OPEN
          ▲                                │
          │ probe succeeds                 │ cooldown elapses
          │                                ▼
          └───────────────────────── HALF-OPEN
                     probe fails ──▶ back to OPEN

* **closed** — traffic flows; consecutive failures are counted and any
  success resets the count.
* **open** — :meth:`allow` refuses traffic, so callers route straight to
  the next rung of their fallback chain instead of paying the failure
  latency again (the batch pipeline does exactly this).
* **half-open** — after ``cooldown`` seconds the next :meth:`allow`
  admits a single probe; success closes the breaker, failure reopens it
  and restarts the cooldown.

Time comes from an injectable clock (see :mod:`repro.robustness.clock`),
so trips and recoveries are deterministic under chaos seeds.  A
:class:`BreakerBoard` lazily manages one breaker per method and mirrors
every transition into the observability layer (``repro_breaker_state``
gauge, ``repro_breaker_transitions_total`` counter).
"""

from __future__ import annotations

from ..robustness.clock import as_clock

__all__ = ["CircuitBreaker", "BreakerBoard", "CLOSED", "HALF_OPEN", "OPEN", "STATE_VALUES"]

CLOSED = "closed"
HALF_OPEN = "half-open"
OPEN = "open"

#: numeric encoding used on the ``repro_breaker_state`` gauge.
STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """The state machine guarding one method.

    Parameters
    ----------
    name : str
        The guarded method; used on metrics and in transition records.
    failure_threshold : int
        Consecutive failures (including retries) that trip the breaker.
    cooldown : float
        Seconds an open breaker refuses traffic before admitting a
        half-open probe.
    clock : callable or SimClock or None
        Time source for the cooldown; ``None`` means real time.
    on_transition : callable or None
        ``on_transition(name, new_state)`` fired on every state change
        (the :class:`BreakerBoard` wires this to the observer).
    """

    def __init__(
        self,
        name: str,
        *,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        clock=None,
        on_transition=None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be nonnegative, got {cooldown}")
        self.name = str(name)
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self._now = as_clock(clock)
        self.on_transition = on_transition
        self.state = CLOSED
        self.failures = 0  # consecutive, since the last success
        self.opened_at: float | None = None
        #: chronological (time, new_state) transitions since creation.
        self.transitions: list[tuple[float, str]] = []

    # ------------------------------------------------------------------
    def _set(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        self.transitions.append((self._now(), state))
        if self.on_transition is not None:
            self.on_transition(self.name, state)

    def allow(self) -> bool:
        """May traffic flow through this method right now?

        An open breaker flips to half-open once the cooldown has
        elapsed, admitting the call that asked as its probe.
        """
        if self.state == OPEN:
            if self._now() - self.opened_at >= self.cooldown:
                self._set(HALF_OPEN)
            else:
                return False
        return True

    def record_success(self) -> None:
        """An admitted call succeeded: reset failures, close if probing."""
        self.failures = 0
        if self.state != CLOSED:
            self._set(CLOSED)

    def record_failure(self) -> None:
        """An admitted call failed: count it; trip or re-open as needed."""
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.failure_threshold:
            self.opened_at = self._now()
            self._set(OPEN)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker({self.name!r}, state={self.state!r}, "
            f"failures={self.failures}/{self.failure_threshold})"
        )


class BreakerBoard:
    """One breaker per method, created on first use, shared settings.

    The board is what the serve pipeline and
    :func:`~repro.robustness.resilient.resilient_ppsp` consult:
    ``allow(method)`` gates each rung, ``record_success`` /
    ``record_failure`` feed outcomes back.  Every transition (plus the
    initial closed state) is reported to ``observer.on_breaker`` when an
    observer is attached.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        clock=None,
        observer=None,
    ) -> None:
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self._clock = clock
        self.observer = observer
        self._breakers: dict[str, CircuitBreaker] = {}

    # ------------------------------------------------------------------
    def breaker(self, method: str) -> CircuitBreaker:
        """The breaker guarding ``method`` (created closed on first use)."""
        b = self._breakers.get(method)
        if b is None:
            b = CircuitBreaker(
                method,
                failure_threshold=self.failure_threshold,
                cooldown=self.cooldown,
                clock=self._clock,
                on_transition=self._on_transition,
            )
            self._breakers[method] = b
            if self.observer is not None:
                self.observer.on_breaker(method, CLOSED, transition=False)
        return b

    def _on_transition(self, method: str, state: str) -> None:
        if self.observer is not None:
            self.observer.on_breaker(method, state)

    # -- the caller-facing protocol ------------------------------------
    def allow(self, method: str) -> bool:
        return self.breaker(method).allow()

    def record_success(self, method: str) -> None:
        self.breaker(method).record_success()

    def record_failure(self, method: str) -> None:
        self.breaker(method).record_failure()

    def state(self, method: str) -> str:
        return self.breaker(method).state

    def states(self) -> dict[str, str]:
        """Current state of every breaker the board has created."""
        return {m: b.state for m, b in sorted(self._breakers.items())}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BreakerBoard({self.states()!r})"
