"""The fault-tolerant batch pipeline: ``serve_batch`` and its machinery.

:class:`ServePipeline` wraps the Sec.-4 batch solvers (and the
single-query resilient chain) with the protections a long-running,
many-query service needs:

1. **Checkpoint/resume** — the admitted queries are processed in shards
   of ``checkpoint_every``; after each shard a durable checkpoint
   (:mod:`~repro.serve.checkpoint`) records every answer so far.  A
   killed job re-run with ``resume=True`` skips completed shards and
   re-executes only unanswered queries; because shard boundaries depend
   only on the submitted batch, the resumed result is bit-identical to
   an uninterrupted run.
2. **Deadlines** — per-query deadlines (absolute, or a default
   ``deadline_ms`` from admission) propagate into the engine as a
   wall-time :class:`~repro.robustness.Budget`, so a query running into
   its deadline returns the search's current upper bound with
   ``exact=False`` instead of missing it; a deadline that expires while
   the query is still queued yields an explicit ``timeout`` outcome.
3. **Circuit breakers** — a :class:`~repro.serve.breaker.BreakerBoard`
   guards the batch method and every resilient-chain rung.  A method
   that keeps failing trips open and traffic routes to the next rung
   without paying the failure again; half-open probes restore it once
   it recovers.
4. **Load shedding** — admission control
   (:mod:`~repro.serve.admission`) bounds the queue and sheds the
   lowest-priority queries with an explicit ``shed`` outcome rather
   than degrading every answer.
5. **Answer verification** (``verify=True``) — every executed answer is
   checked before it is recorded.  Certified answers go through the
   :class:`~repro.verify.CertificateChecker`; certificate-less exact
   claims (and every "unreachable" claim) are confirmed against an
   authoritative Dijkstra run.  A claim that fails its check is never
   returned: the pipeline recomputes it exactly, re-checks the new
   certificate, and records the query with the ``repaired`` outcome
   (or ``failed`` when even the recompute cannot be certified).
   Corrupt checkpoints (:class:`~repro.serve.CheckpointCorrupt`) are
   *quarantined* on resume — the run recomputes from scratch rather
   than trusting bytes that fail their checksum.

The pipeline is strictly opt-in: nothing in the core engine or the
batch solvers changes when it is not used, preserving the zero-overhead
default path the bench gate pins.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field

from ..api import validate_query
from ..core.batch import BATCH_METHODS, BatchResult, solve_batch
from ..parallel.cost_model import WorkDepthMeter
from ..robustness.budget import Budget
from ..robustness.clock import as_clock
from ..robustness.resilient import DEFAULT_CHAIN, resilient_ppsp
from .admission import (
    FAILED,
    INEXACT,
    OK,
    REPAIRED,
    SHED,
    TIMEOUT,
    AdmissionController,
    ServeQuery,
)
from .breaker import BreakerBoard
from .checkpoint import CheckpointCorrupt, CheckpointStore, batch_fingerprint

__all__ = ["ServePipeline", "PipelineResult", "serve_batch", "SERVE_METHODS"]

#: the batch strategies plus per-query resilient-chain execution.
SERVE_METHODS = BATCH_METHODS + ("resilient",)


@dataclass
class PipelineResult:
    """Everything one pipeline run produced, per query and in aggregate.

    ``distances`` holds a value for every *executed* query (``inf`` for
    unreachable or timed-out ones); shed queries appear only in
    ``shed``/``outcomes``.  ``exact[key]`` is False when that query's
    answer is a budget/deadline-limited upper bound.
    """

    method: str
    distances: dict[tuple[int, int], float]
    exact: dict[tuple[int, int], bool]
    outcomes: dict[tuple[int, int], str]
    #: per-query :class:`~repro.verify.Certificate` (or ``None``),
    #: populated when the pipeline runs with ``certify``/``verify``;
    #: resumed-from-checkpoint queries carry no certificate.
    certificates: dict = field(default_factory=dict)
    #: per-query shortest vertex path (or ``None`` when the method
    #: does not retain path state), populated under ``collect_paths``.
    paths: dict = field(default_factory=dict)
    shed: list[tuple[int, int]] = field(default_factory=list)
    timeouts: list[tuple[int, int]] = field(default_factory=list)
    checkpoints_written: int = 0
    resumed_queries: int = 0
    breaker_states: dict[str, str] = field(default_factory=dict)
    meter: WorkDepthMeter = field(default_factory=WorkDepthMeter)
    details: dict = field(default_factory=dict)

    def counts(self) -> dict[str, int]:
        """Queries per outcome (including shed), for logs and the CLI."""
        out: dict[str, int] = {}
        for status in self.outcomes.values():
            out[status] = out.get(status, 0) + 1
        return dict(sorted(out.items()))

    def distance(self, s: int, t: int) -> float:
        """Per-pair lookup with the same semantics as ``BatchResult``."""
        return self.to_batch_result().distance(s, t)

    def to_batch_result(self) -> BatchResult:
        """The run as a :class:`~repro.core.batch.BatchResult` façade."""
        return BatchResult(
            distances=dict(self.distances),
            meter=self.meter,
            method=f"serve:{self.method}",
            num_searches=int(self.details.get("num_searches", 0)),
            exact=all(self.exact.values()) if self.exact else True,
            details=dict(self.details),
            shed=set(self.shed),
        )


class ServePipeline:
    """A resilient executor for one batch workload on one graph.

    Parameters
    ----------
    graph : Graph
        The input graph (validated per query at admission).
    method : str
        One of :data:`SERVE_METHODS`: a Sec.-4 batch strategy executed
        per shard, or ``"resilient"`` to run every query individually
        through the breaker-guarded fallback chain.
    checkpoint_path : str or None
        Manifest path for durable checkpoints (sidecar ``.npz`` derived
        from it); ``None`` disables checkpointing.
    checkpoint_every : int
        Queries per shard — the checkpoint granularity *and* the resume
        re-execution unit.
    deadline_ms : float or None
        Default per-query deadline, assigned at admission relative to
        the pipeline clock; explicit ``ServeQuery.deadline`` values win.
    max_queue : int or None
        Admission capacity; excess queries are shed lowest-priority
        first.
    budget : Budget or None
        Base per-shard execution budget, combined with deadline-derived
        wall-time limits (each shard meters it fresh).
    breakers : BreakerBoard or None
        Share a board across pipelines; by default a private board is
        built from ``breaker_threshold``/``breaker_cooldown``.
    resilient_methods : tuple of str
        Rung order for chain execution and shard fallback.
    retries : int
        Transient-failure retries per rung (see ``resilient_ppsp``).
    clock : callable or SimClock or None
        Time source for deadlines and breaker cooldowns; ``None`` means
        real time.  Chaos tests pass a
        :class:`~repro.robustness.SimClock` shared with the injector.
    fault_injector : FaultInjector or None
        Threaded into every engine run (chaos testing).
    observer : repro.obs.Observer or None
        Receives serve counters (outcomes, shed, deadline misses,
        checkpoints), breaker gauge transitions, and a span per shard.
    checkpoint_hook : callable or None
        ``checkpoint_hook(manifest)`` after each durable write — the
        crash/resume tests raise from here to simulate a kill exactly
        at a checkpoint boundary.
    strategy_factory : callable or None
        Forwarded to :func:`~repro.core.batch.solve_batch`.
    backend : str
        ``"serial"`` (default) or ``"process"``: run each shard's batch
        on the :mod:`repro.parallel.pool` worker backend.  Answers are
        bit-identical either way.  A worker death surfaces as a shard
        failure — the breaker trips and the shard's queries route
        through the per-query resilient chain, exactly like any other
        shard fault, so checkpoint/resume semantics are unchanged.
        Shards that carry a budget or live deadlines run serially (the
        budget meter is inherently single-process).
    workers : int or None
        Pool size for ``backend="process"`` (default: CPU count).
    pool : repro.parallel.pool.ProcessPool or None
        Reuse an existing pool (and its shared graph export) across
        runs; by default each ``run()`` builds and tears down its own.
    verify : bool
        Turn on the answer-verification stage: certificates are
        requested from every solver, checked per answer, and failing
        answers are repaired by an exact recompute (outcome
        ``repaired``) instead of being returned.
    checker : CertificateChecker or None
        Override the checker used by the verification stage (e.g. a
        different tolerance); a default one is built when ``verify``
        is set.
    certify : bool
        Request certificates from every solver and record them in
        ``PipelineResult.certificates`` *without* the verification
        stage — what the query service uses to hand certificates back
        per future.  Implied by ``verify``.
    collect_paths : bool
        Record each executed query's shortest vertex path in
        ``PipelineResult.paths`` (``None`` for methods that discard
        path state, e.g. the plain BiDS modes, and for timeouts).
    """

    def __init__(
        self,
        graph,
        *,
        method: str = "multi",
        checkpoint_path=None,
        checkpoint_every: int = 16,
        deadline_ms: float | None = None,
        max_queue: int | None = None,
        budget: Budget | None = None,
        breakers: BreakerBoard | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        resilient_methods: tuple[str, ...] = DEFAULT_CHAIN,
        retries: int = 1,
        clock=None,
        fault_injector=None,
        observer=None,
        checkpoint_hook=None,
        strategy_factory=None,
        verify: bool = False,
        checker=None,
        certify: bool = False,
        collect_paths: bool = False,
        backend: str = "serial",
        workers: int | None = None,
        pool=None,
        shard_deadline: float | None = None,
        hedge=None,
        retry_budget=None,
    ) -> None:
        if method not in SERVE_METHODS:
            raise ValueError(f"unknown serve method {method!r}; options: {SERVE_METHODS}")
        if backend not in ("serial", "process"):
            raise ValueError(f"unknown backend {backend!r}; options: serial, process")
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if deadline_ms is not None and deadline_ms < 0:
            raise ValueError(f"deadline_ms must be nonnegative, got {deadline_ms}")
        if shard_deadline is not None and shard_deadline <= 0:
            raise ValueError(f"shard_deadline must be > 0, got {shard_deadline}")
        self.graph = graph
        self.method = method
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = int(checkpoint_every)
        self.deadline_ms = deadline_ms
        self.max_queue = max_queue
        self.budget = budget
        self.retries = int(retries)
        self.resilient_methods = tuple(resilient_methods)
        self._now = as_clock(clock)
        self.observer = observer
        self.fault_injector = fault_injector
        self.checkpoint_hook = checkpoint_hook
        self.strategy_factory = strategy_factory
        self.backend = backend
        self.workers = workers
        self.pool = pool
        self._pool = None
        # Straggler defense (process backend): per-shard deadline,
        # hedge policy (True -> defaults), and the retry token bucket
        # shared between hedges and resilient-chain retries.
        self.shard_deadline = shard_deadline
        if hedge is True:
            from .hedging import HedgePolicy

            hedge = HedgePolicy()
        self.hedge = hedge or None
        self.retry_budget = retry_budget
        self.verify = bool(verify)
        self.certify = bool(certify) or self.verify
        self.collect_paths = bool(collect_paths)
        if self.verify and checker is None:
            from ..verify import CertificateChecker

            checker = CertificateChecker()
        self._checker = checker
        self._vcounts: dict[str, int] = {}
        self.breakers = breakers if breakers is not None else BreakerBoard(
            failure_threshold=breaker_threshold,
            cooldown=breaker_cooldown,
            clock=clock,
            observer=observer,
        )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _normalize(self, queries) -> list[ServeQuery]:
        """Submissions -> validated, deduplicated ``ServeQuery`` list.

        Accepts ``ServeQuery`` objects, ``(s, t)`` pairs, and
        ``(s, t, priority)`` triples.  Exact-duplicate keys collapse
        (keeping the highest priority and earliest deadline) so shard
        accounting maps one-to-one onto answer keys.
        """
        out: list[ServeQuery] = []
        by_key: dict[tuple[int, int], ServeQuery] = {}
        default_deadline = (
            None if self.deadline_ms is None else self._now() + self.deadline_ms / 1000.0
        )
        for q in queries:
            if not isinstance(q, ServeQuery):
                q = ServeQuery(*q)
            validate_query(self.graph, q.source, q.target)
            if q.deadline is None:
                q.deadline = default_deadline
            prev = by_key.get(q.key)
            if prev is not None:
                prev.priority = max(prev.priority, q.priority)
                if q.deadline is not None:
                    prev.deadline = (
                        q.deadline if prev.deadline is None
                        else min(prev.deadline, q.deadline)
                    )
                continue
            by_key[q.key] = q
            out.append(q)
        return out

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, queries, *, resume: bool = False) -> PipelineResult:
        """Answer the batch; see the class docstring for the guarantees."""
        obs = self.observer
        submitted = self._normalize(queries)
        result = PipelineResult(
            method=self.method, distances={}, exact={}, outcomes={},
        )
        self._meter = result.meter
        self._num_searches = 0
        self._vcounts = {
            "checked": 0, "valid": 0, "invalid": 0, "unproven": 0,
            "confirmed": 0, "repaired": 0, "failed": 0,
        }
        if not submitted:
            result.details["empty"] = True
            return result

        admitted, shed = AdmissionController(self.max_queue).admit(submitted)
        for q in shed:
            result.outcomes[q.key] = SHED
            result.shed.append(q.key)
            if obs is not None:
                obs.on_serve_query(SHED)

        shards = [
            admitted[i : i + self.checkpoint_every]
            for i in range(0, len(admitted), self.checkpoint_every)
        ]
        fingerprint = batch_fingerprint(
            self.graph, admitted, self.method, self.checkpoint_every
        )

        store = None
        completed: set[int] = set()
        if self.checkpoint_path is not None:
            store = CheckpointStore(self.checkpoint_path)
            if resume:
                completed = self._restore(store, fingerprint, shards, result)
        elif resume:
            raise ValueError("resume=True needs a checkpoint_path to resume from")

        self._pool = self.pool
        own_pool = self.backend == "process" and self._pool is None
        if own_pool:
            from ..parallel.pool import ProcessPool

            self._pool = ProcessPool(self.workers)
        try:
            for si, shard in enumerate(shards):
                if si in completed:
                    continue
                if obs is not None:
                    with obs.span("serve-shard"):
                        shard_results = self._process_shard(shard)
                else:
                    shard_results = self._process_shard(shard)
                for key, (dist, exact, status, cert, path) in shard_results.items():
                    result.distances[key] = dist
                    result.exact[key] = exact
                    result.outcomes[key] = status
                    if self.certify:
                        result.certificates[key] = cert
                    if self.collect_paths:
                        result.paths[key] = path
                    if status == TIMEOUT:
                        result.timeouts.append(key)
                    if obs is not None:
                        obs.on_serve_query(status)
                completed.add(si)
                if store is not None:
                    self._checkpoint(store, fingerprint, shards, completed, result)
                    result.checkpoints_written += 1
        finally:
            # Segments must not outlive the run, even when a checkpoint
            # hook (the crash-simulation path) raises mid-batch.
            if own_pool:
                self._pool.close()
            self._pool = None

        result.breaker_states = self.breakers.states()
        result.details["num_shards"] = len(shards)
        result.details["num_searches"] = self._num_searches
        if self.verify:
            result.details["verification"] = dict(self._vcounts)
        return result

    # ------------------------------------------------------------------
    def _restore(
        self,
        store: CheckpointStore,
        fingerprint: dict,
        shards: list[list[ServeQuery]],
        result: PipelineResult,
    ) -> set[int]:
        """Fold a prior checkpoint into ``result``; completed shard ids.

        Resumed answers are *not* re-verified: the manifest's sidecar
        checksum already vouches for the stored distances, and they were
        verified (when ``verify``) before the checkpoint was written.  A
        checkpoint whose bytes fail that checksum is quarantined — every
        shard recomputes — never resumed.
        """
        try:
            loaded = store.load()
        except CheckpointCorrupt as exc:
            result.details["checkpoint_quarantined"] = str(exc)
            if self.observer is not None:
                self.observer.on_checkpoint("quarantined")
                self.observer.on_quarantine("checkpoint")
            return set()
        if loaded is None:
            return set()
        manifest, arrays = loaded
        store.verify_fingerprint(manifest, fingerprint)
        answered = {
            (int(s), int(t)): (float(d), bool(e))
            for s, t, d, e in zip(arrays["s"], arrays["t"], arrays["dist"], arrays["exact"])
        }
        outcomes = manifest.get("outcomes", {})
        completed = set(int(i) for i in manifest.get("completed_shards", ()))
        for si in completed:
            for q in shards[si]:
                dist, exact = answered[q.key]
                status = outcomes.get(f"{q.source}->{q.target}", OK)
                result.distances[q.key] = dist
                result.exact[q.key] = exact
                result.outcomes[q.key] = status
                # Checkpoints persist answers only: resumed queries
                # carry no certificate or path.
                if self.certify:
                    result.certificates[q.key] = None
                if self.collect_paths:
                    result.paths[q.key] = None
                if status == TIMEOUT:
                    result.timeouts.append(q.key)
                result.resumed_queries += 1
        if self.observer is not None:
            self.observer.on_checkpoint("resume")
        return completed

    def _checkpoint(
        self,
        store: CheckpointStore,
        fingerprint: dict,
        shards: list[list[ServeQuery]],
        completed: set[int],
        result: PipelineResult,
    ) -> None:
        """Write one durable checkpoint covering every completed shard."""
        keys = [
            q.key for si in sorted(completed) for q in shards[si]
        ]
        manifest = {
            "fingerprint": fingerprint,
            "method": self.method,
            "checkpoint_every": self.checkpoint_every,
            "num_shards": len(shards),
            "completed_shards": sorted(completed),
            "outcomes": {
                f"{s}->{t}": result.outcomes[(s, t)] for s, t in keys
            },
        }
        store.save(
            manifest,
            s=[k[0] for k in keys],
            t=[k[1] for k in keys],
            dist=[result.distances[k] for k in keys],
            exact=[result.exact[k] for k in keys],
        )
        if self.fault_injector is not None:
            # Chaos hook: models silent corruption of the durable bytes
            # *after* the write (bad disk); the checksum catches it on
            # resume and the pipeline quarantines the checkpoint.
            hook = getattr(self.fault_injector, "on_checkpoint_written", None)
            if hook is not None:
                hook(store)
        if self.observer is not None:
            self.observer.on_checkpoint("write")
        if self.checkpoint_hook is not None:
            # Fires *after* the durable write: a hook that raises models
            # a crash at exactly a checkpoint boundary.
            self.checkpoint_hook(manifest)

    # ------------------------------------------------------------------
    def _process_shard(self, shard: list[ServeQuery]) -> dict:
        """Execute one shard and verify its answers (when ``verify``)."""
        raw = self._run_shard(shard)
        if not self.verify:
            return raw
        return {
            k: self._verify_answer(k, d, e, st, cert, path)
            for k, (d, e, st, cert, path) in raw.items()
        }

    def _run_shard(self, shard: list[ServeQuery]) -> dict:
        """Execute one shard -> ``{key: (dist, exact, status, cert, path)}``."""
        now = self._now()
        results: dict[tuple[int, int], tuple[float, bool, str, object, object]] = {}
        live: list[ServeQuery] = []
        for q in shard:
            if q.deadline is not None and q.deadline <= now:
                results[q.key] = (float("inf"), False, TIMEOUT, None, None)
                if self.observer is not None:
                    self.observer.on_deadline_miss()
            else:
                live.append(q)
        if not live:
            return results
        if self.method == "resilient":
            for q in live:
                results[q.key] = self._run_query_chain(q)
        else:
            results.update(self._run_shard_batch(live))
        return results

    def _shard_budget(self, live: list[ServeQuery]) -> Budget | None:
        """Base budget limits merged with the shard's earliest deadline."""
        deadlines = [q.deadline for q in live if q.deadline is not None]
        wall = None
        if deadlines:
            wall = max(min(deadlines) - self._now(), 0.0)
        base = self.budget
        if base is None and wall is None:
            return None
        if base is None:
            return Budget(wall_time=wall, clock=self._now)
        walls = [w for w in (base.wall_time, wall) if w is not None]
        return Budget(
            max_steps=base.max_steps,
            max_relaxations=base.max_relaxations,
            wall_time=min(walls) if walls else None,
            clock=base.clock if base.clock is not None else self._now,
        )

    def _run_shard_batch(self, live: list[ServeQuery]) -> dict:
        """One shard through the configured batch method, breaker-gated.

        The batch method's breaker counts *exceptions* (a budget trip is
        graceful degradation, not a failure).  While it is open — or
        when the shard's run raises — every query of the shard routes
        through the per-query resilient chain instead, whose rungs carry
        their own breakers.
        """
        results: dict[tuple[int, int], tuple[float, bool, str, object, object]] = {}
        board = self.breakers
        if board.allow(self.method):
            budget = self._shard_budget(live)
            backend_kwargs = {}
            if (
                self.backend == "process"
                and budget is None
                and self.strategy_factory is None
            ):
                # Budgeted/deadline shards and stateful strategy
                # factories are single-process by nature; those shards
                # run serially, everything else goes to the pool.
                backend_kwargs = {"backend": "process", "pool": self._pool}
                if self.shard_deadline is not None:
                    backend_kwargs["shard_deadline"] = self.shard_deadline
                if self.hedge is not None:
                    backend_kwargs["hedge"] = self.hedge
                if self.retry_budget is not None:
                    backend_kwargs["retry_budget"] = self.retry_budget
            try:
                res = solve_batch(
                    self.graph,
                    [q.key for q in live],
                    method=self.method,
                    budget=budget,
                    strategy_factory=self.strategy_factory,
                    fault_injector=self.fault_injector,
                    observer=self.observer,
                    certify=self.certify,
                    **backend_kwargs,
                )
            except Exception:  # noqa: BLE001 — shard failure must be contained
                board.record_failure(self.method)
            else:
                board.record_success(self.method)
                self._meter.merge(res.meter)
                self._num_searches += res.num_searches
                status = OK if res.exact else INEXACT
                certs = res.certificates or {}
                for q in live:
                    s, t = q.key
                    cert = certs.get((s, t)) or certs.get((t, s))
                    path = self._batch_path(res, s, t)
                    results[q.key] = (res.distance(s, t), res.exact, status, cert, path)
                return results
        for q in live:
            results[q.key] = self._run_query_chain(q)
        return results

    def _batch_path(self, res, s: int, t: int):
        """One query's path from a batch result, ``None`` when unavailable.

        Plain BiDS modes discard per-query search state (their serial
        ``path()`` raises ``NotImplementedError``), and unreachable or
        budget-truncated queries have no walkable tree — both simply
        yield ``None`` rather than failing the shard.
        """
        if not self.collect_paths:
            return None
        from ..core.paths import PathError

        try:
            return res.path(s, t)
        except (NotImplementedError, PathError, ValueError, KeyError, IndexError):
            return None

    def _run_query_chain(self, q: ServeQuery) -> tuple[float, bool, str, object, object]:
        """One query through the breaker-guarded resilient chain."""
        deadline_wall = None
        if q.deadline is not None:
            deadline_wall = max(q.deadline - self._now(), 0.0)
        base = self.budget
        if base is None and deadline_wall is None:
            budget = None
        elif base is None:
            budget = Budget(wall_time=deadline_wall, clock=self._now)
        else:
            walls = [w for w in (base.wall_time, deadline_wall) if w is not None]
            budget = Budget(
                max_steps=base.max_steps,
                max_relaxations=base.max_relaxations,
                wall_time=min(walls) if walls else None,
                clock=base.clock if base.clock is not None else self._now,
            )
        try:
            ans = resilient_ppsp(
                self.graph,
                q.source,
                q.target,
                methods=self.resilient_methods,
                budget=budget,
                retries=self.retries,
                retry_budget=self.retry_budget,
                breakers=self.breakers,
                fault_injector=self.fault_injector,
                observer=self.observer,
                certify=self.certify,
            )
        except Exception:  # noqa: BLE001 — one query must not kill the batch
            return (float("inf"), False, FAILED, None, None)
        cert = None
        path = None
        if ans.answer is not None:
            self._meter.merge(ans.answer.run.meter)
            cert = ans.answer.certificate
            if self.collect_paths and ans.reachable:
                from ..core.paths import PathError

                try:
                    path = ans.answer.path()
                except (NotImplementedError, PathError, ValueError,
                        KeyError, IndexError, AttributeError):
                    path = None
        return (
            float(ans.distance),
            bool(ans.exact),
            OK if ans.exact else INEXACT,
            cert,
            path,
        )

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def _verify_answer(
        self, key: tuple[int, int], dist: float, exact: bool, status: str, cert,
        path=None,
    ) -> tuple[float, bool, str, object, object]:
        """Check one answer before it is recorded; repair it if refuted.

        Three regimes:

        * **certified finite claims** — the checker validates the
          certificate in O(path + spot checks); an exact claim must come
          out ``proven == "exact"``, an inexact (budget-degraded) claim
          passes with an upper-bound proof;
        * **"unreachable" exact claims** (``inf``) — a certificate can
          never positively prove non-existence, so these are confirmed
          against an authoritative Dijkstra run;
        * **certificate-less finite exact claims** (e.g. the resilient
          chain's reference rung) — also confirmed authoritatively.

        Timed-out/failed queries carry no answer and are skipped; an
        inexact claim without a certificate is counted ``unproven`` but
        served (``inf`` is always a sound upper bound, and the engine
        path always certifies — this arises only for exotic rungs).
        """
        obs = self.observer
        counts = self._vcounts
        if status in (TIMEOUT, FAILED):
            return dist, exact, status, cert, path
        counts["checked"] += 1
        if exact and not math.isfinite(dist):
            # Unreachable claim: confirm with ground truth, never a cert.
            row = self._authoritative_row(*key)
            if not math.isfinite(float(row[key[1]])):
                counts["confirmed"] += 1
                if obs is not None:
                    obs.on_verify("confirmed")
                return dist, exact, status, cert, path
            counts["invalid"] += 1
            if obs is not None:
                obs.on_verify("invalid")
            return self._repair(key, row=row)
        if cert is None:
            if not exact:
                counts["unproven"] += 1
                if obs is not None:
                    obs.on_verify("unproven")
                return dist, exact, status, cert, path
            row = self._authoritative_row(*key)
            truth = float(row[key[1]])
            tol = 1e-6 * max(1.0, abs(truth)) if math.isfinite(truth) else 0.0
            if math.isfinite(truth) and abs(truth - dist) <= tol:
                counts["confirmed"] += 1
                if obs is not None:
                    obs.on_verify("confirmed")
                return dist, exact, status, cert, path
            counts["invalid"] += 1
            if obs is not None:
                obs.on_verify("invalid")
            return self._repair(key, row=row)
        report = self._checker.check(self.graph, cert, expected_distance=dist)
        ok = report.valid and (not exact or report.proven == "exact")
        if ok:
            counts["valid"] += 1
            if obs is not None:
                obs.on_verify("valid", checks=report.checks)
            return dist, exact, status, cert, path
        counts["invalid"] += 1
        if obs is not None:
            obs.on_verify("invalid", checks=report.checks)
        return self._repair(key)

    def _authoritative_row(self, source: int, target: int):
        """Ground-truth distances from ``source`` (target-pruned Dijkstra).

        The baseline early-stops once ``target`` settles; every vertex
        on a shortest ``source``→``target`` path settles first, so the
        row supports both the distance read and ``walk_path``.
        """
        from ..baselines.dijkstra import dijkstra

        return dijkstra(self.graph, int(source), target=int(target))

    def _repair(
        self, key: tuple[int, int], row=None
    ) -> tuple[float, bool, str, object, object]:
        """Exact recompute for a refuted answer, then re-check.

        The repaired answer is itself certified (witness path from the
        Dijkstra row) and re-checked before being trusted; if even that
        fails — graph corrupted beyond repair — the query is surfaced as
        ``failed`` rather than served wrong.
        """
        from ..verify import build_certificate

        obs = self.observer
        s, t = key
        if row is None:
            row = self._authoritative_row(s, t)
        d = float(row[t])
        cert = build_certificate(
            self.graph, s, t, "dijkstra", d, True, dist_forward=row
        )
        report = self._checker.check(self.graph, cert, expected_distance=d)
        healed = report.valid and (report.proven == "exact" or not math.isfinite(d))
        if healed:
            self._vcounts["repaired"] += 1
            if obs is not None:
                obs.on_repair("repaired")
            path = None
            if self.collect_paths and math.isfinite(d):
                from ..core.paths import PathError, walk_path

                try:
                    path = walk_path(self.graph, row, s, t)
                except (PathError, ValueError, KeyError, IndexError):
                    path = None
            return d, True, REPAIRED, cert, path
        self._vcounts["failed"] += 1
        if obs is not None:
            obs.on_repair("failed")
        return float("inf"), False, FAILED, None, None


def serve_batch(graph, queries, *, resume: bool = False, **kwargs) -> PipelineResult:
    """One-shot convenience wrapper: build a pipeline and run it.

    Keyword arguments are :class:`ServePipeline` parameters; ``resume``
    continues from the checkpoint at ``checkpoint_path`` when one
    exists.
    """
    return ServePipeline(graph, **kwargs).run(queries, resume=resume)
