"""The serve layer: a fault-tolerant batch execution pipeline.

What :mod:`repro.robustness` does for one query, this package does for
a *batch job*: checkpoint/resume so a crash loses no answered query,
per-query deadlines with graceful ``exact=False`` degradation,
per-method circuit breakers with half-open recovery, explicit
load shedding under queue pressure, and (``verify=True``) an answer
verification stage that checks every result's certificate and repairs
refuted answers with an exact recompute before they are returned.  See
``docs/robustness.md`` for the full story (checkpoint file format,
breaker state machine, certificate semantics) and ``repro serve-batch``
for the CLI entry point.

>>> from repro.serve import serve_batch
>>> res = serve_batch(graph, pairs, method="multi",
...                   checkpoint_path="job.ckpt.json", checkpoint_every=32)
>>> res.counts()          # {'ok': 120}
>>> # kill -9 mid-run, then:
>>> res = serve_batch(graph, pairs, method="multi", resume=True,
...                   checkpoint_path="job.ckpt.json", checkpoint_every=32)

For a *stream* of queries rather than a pre-assembled batch, the
:class:`~repro.serve.service.QueryService` micro-batcher coalesces
individual submissions into right-sized batches over a persistent warm
worker pool and resolves each one as a future — see ``repro serve`` and
the service section of ``docs/robustness.md``.

Straggler-proofing (PR 9) lives in two sibling modules:
:mod:`repro.serve.hedging` supplies per-shard deadlines and hedged
re-execution for the process backend (a stalled worker can no longer
hang a batch — it is timed out and quarantined, or outraced by a
bit-identical backup), and :mod:`repro.serve.overload` supplies the
retry token bucket, decorrelated-jitter backoff, and the CoDel+AIMD
adaptive admission control the query service runs under.
"""

from .admission import (
    FAILED,
    INEXACT,
    OK,
    OUTCOMES,
    REPAIRED,
    SHED,
    TIMEOUT,
    AdmissionController,
    ServeQuery,
)
from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard, CircuitBreaker
from .checkpoint import CheckpointCorrupt, CheckpointStore, batch_fingerprint
from .hedging import (
    HedgePolicy,
    LatencyEstimator,
    ShardTimeout,
    SimShardTransport,
    SuperviseReport,
    supervise_shards,
)
from .overload import (
    AIMDLimiter,
    CoDelShedder,
    OverloadController,
    RetryBudget,
    next_backoff,
)
from .pipeline import SERVE_METHODS, PipelineResult, ServePipeline, serve_batch
from .service import (
    FLUSH_REASONS,
    QueryService,
    ServiceClosed,
    ServiceFuture,
    ServiceResult,
)

__all__ = [
    "serve_batch",
    "ServePipeline",
    "PipelineResult",
    "SERVE_METHODS",
    "QueryService",
    "ServiceFuture",
    "ServiceResult",
    "ServiceClosed",
    "FLUSH_REASONS",
    "ServeQuery",
    "AdmissionController",
    "CheckpointStore",
    "CheckpointCorrupt",
    "batch_fingerprint",
    "CircuitBreaker",
    "BreakerBoard",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "OK",
    "INEXACT",
    "SHED",
    "TIMEOUT",
    "FAILED",
    "REPAIRED",
    "OUTCOMES",
    "ShardTimeout",
    "HedgePolicy",
    "LatencyEstimator",
    "SuperviseReport",
    "SimShardTransport",
    "supervise_shards",
    "RetryBudget",
    "AIMDLimiter",
    "CoDelShedder",
    "OverloadController",
    "next_backoff",
]
