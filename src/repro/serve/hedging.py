"""Straggler defense: per-shard deadlines and hedged re-execution.

The process backend (:mod:`repro.parallel.pool`) is all-or-nothing: a
batch completes when its slowest shard does.  A *dead* worker is
detected (``BrokenProcessPool`` -> ``WorkerCrashError``), but a merely
*stuck* one — swap storm, runaway GC, a hung syscall — blocks every
future of the batch forever.  This module supplies the supervisor the
pool runs shards under when a deadline or hedging is configured:

* **Per-shard deadlines** — a shard that produces nothing within
  ``deadline`` seconds raises :class:`ShardTimeout` instead of
  hanging; the pool quarantines the suspect worker set (kill +
  respawn) and the serve pipeline recovers through its existing
  breaker / per-query-chain path.
* **Hedged re-execution** — after ``hedge_after = factor x median``
  of recently observed shard latencies (the seeded
  :class:`LatencyEstimator`), a backup copy of the straggling shard
  is launched on the hedge lane; the first result wins and the loser
  is cancelled.  Shards are deterministic (same task -> same bytes),
  so whichever copy wins, the batch answer is bit-identical to
  serial — that determinism is what makes first-result-wins safe
  here, where it would be a consistency bug for non-deterministic
  work.
* **Retry-budget gating** — each hedge draws a token from the shared
  :class:`~repro.serve.overload.RetryBudget`; when the bucket is dry
  the hedge is skipped (counted), so a straggler storm cannot double
  traffic during overload.

:func:`supervise_shards` is transport-agnostic: the pool adapts
``concurrent.futures`` behind the small transport protocol (submit /
wait / result / cancel), and :class:`SimShardTransport` provides a
simulated transport over :class:`~repro.robustness.clock.SimClock`
so every timeout/hedge decision is deterministic in tests — no
sleeping, no races.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median as _median

import numpy as np

from ..robustness.clock import as_clock

__all__ = [
    "ShardTimeout",
    "HedgePolicy",
    "LatencyEstimator",
    "SuperviseReport",
    "SimShardTransport",
    "supervise_shards",
]

#: Task keys that model a *sick worker*, not sick work; hedge copies
#: must not re-inject them or the backup stalls/dies identically.
FAULT_TASK_KEYS = ("kill", "stall")


class ShardTimeout(RuntimeError):
    """A shard produced no result within its deadline.

    Carries the shard index and the configured deadline; raised by
    :func:`supervise_shards` after cancelling everything outstanding,
    so no futures are left behind.  The pool converts this into a
    worker quarantine; the serve pipeline treats it like any other
    backend failure (breaker + per-query fallback chain).
    """

    def __init__(self, shard: int, deadline_s: float) -> None:
        super().__init__(
            f"shard {shard} produced no result within {deadline_s:.3f}s deadline"
        )
        self.shard = int(shard)
        self.deadline_s = float(deadline_s)


@dataclass(frozen=True)
class HedgePolicy:
    """When to launch a backup copy of a straggling shard.

    Parameters
    ----------
    enabled:
        Master switch; a disabled policy never hedges (deadlines still
        apply if configured).
    factor:
        Hedge delay multiplier over the observed median shard latency
        (``hedge_after = factor x median``).  3.0 means "three times
        slower than typical" — late enough that healthy jitter never
        hedges, early enough to beat any sane deadline.
    min_delay_s / max_delay_s:
        Clamp on the computed delay, so a string of microscopic shards
        cannot make hedging fire instantly and a huge median cannot
        push the hedge past the deadline.
    initial_delay_s:
        Cold-start delay used before any latency has been observed.
    jitter:
        Fractional uniform jitter (``delay x (1 + jitter x U[0,1))``)
        decorrelating hedge launches across shards, so a batch of
        simultaneous stragglers does not hedge as one thundering herd.
    """

    enabled: bool = True
    factor: float = 3.0
    min_delay_s: float = 0.05
    max_delay_s: float = 30.0
    initial_delay_s: float = 0.25
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"factor must be > 0, got {self.factor}")
        if self.min_delay_s < 0 or self.max_delay_s < self.min_delay_s:
            raise ValueError(
                f"need 0 <= min_delay_s <= max_delay_s, got "
                f"[{self.min_delay_s}, {self.max_delay_s}]"
            )
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")


class LatencyEstimator:
    """Seeded running estimate of shard latency for hedge scheduling.

    Keeps the last ``window`` observed shard latencies (pool-lifetime,
    so a persistent serving pool carries history across batches) and
    turns their median into a hedge delay via a :class:`HedgePolicy`.
    The jitter draw comes from a seeded generator, making every delay
    — and therefore every hedge decision under ``SimClock`` —
    reproducible.
    """

    def __init__(self, *, window: int = 64, seed: int | None = 0) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.window = int(window)
        self._samples: list[float] = []
        self._rng = np.random.default_rng(seed)

    def observe(self, latency_s: float) -> None:
        self._samples.append(float(latency_s))
        if len(self._samples) > self.window:
            del self._samples[: len(self._samples) - self.window]

    def median(self) -> float | None:
        if not self._samples:
            return None
        return float(_median(self._samples))

    def __len__(self) -> int:
        return len(self._samples)

    def hedge_delay(self, policy: HedgePolicy) -> float:
        """The delay before hedging the next shard, clamped + jittered."""
        med = self.median()
        delay = policy.initial_delay_s if med is None else policy.factor * med
        if policy.jitter > 0:
            delay *= 1.0 + policy.jitter * float(self._rng.uniform(0.0, 1.0))
        return min(policy.max_delay_s, max(policy.min_delay_s, delay))


@dataclass
class SuperviseReport:
    """What one supervised shard run did, for metrics and quarantine.

    ``stragglers`` lists ``(shard_index, handle)`` for primary
    attempts that lost their race and could not be cancelled (they
    were already running); the pool checks them after the batch — one
    still unfinished means a genuinely stuck worker, which is
    quarantined, while a merely-slow one that finished by then is
    left alone.
    """

    hedges: int = 0
    hedge_wins: int = 0
    primary_wins_hedged: int = 0
    hedges_denied: int = 0
    stragglers: list = field(default_factory=list)


class SimShardTransport:
    """Deterministic in-process transport over a :class:`SimClock`.

    ``latency(task, lane)`` decides how long each submitted attempt
    takes in simulated seconds; ``run(task, lane)`` produces its
    result when it completes (default: the task itself).  ``wait``
    *advances the clock* to the earlier of the timeout horizon and the
    next completion — the simulated analogue of blocking — which is
    what lets :func:`supervise_shards` unit tests and the stats
    workload exercise timeouts, hedge races, and budget denials
    without one real sleep.
    """

    #: no poll cap: simulated waits jump straight to the next event.
    poll_cap = None

    def __init__(self, clock, latency, *, run=None) -> None:
        self.clock = clock
        self.latency = latency
        self.run = run if run is not None else (lambda task, lane: task)
        self._next = 0
        self._done_at: dict[int, float] = {}
        self._meta: dict[int, tuple] = {}
        self.cancelled: list[int] = []

    def submit(self, task, lane: str = "primary"):
        handle = self._next
        self._next += 1
        self._done_at[handle] = self.clock() + float(self.latency(task, lane))
        self._meta[handle] = (task, lane)
        return handle

    def wait(self, handles, timeout):
        now = self.clock()
        ready = {h for h in handles if self._done_at[h] <= now}
        if ready:
            return ready
        horizon = min(self._done_at[h] for h in handles)
        if timeout is not None:
            horizon = min(horizon, now + timeout)
        self.clock.advance(max(0.0, horizon - self.clock()))
        now = self.clock()
        return {h for h in handles if self._done_at[h] <= now}

    def result(self, handle):
        task, lane = self._meta[handle]
        out = self.run(task, lane)
        if isinstance(out, Exception):
            raise out
        return out

    def cancel(self, handle) -> bool:
        self.cancelled.append(handle)
        self._done_at[handle] = float("inf")
        return True


class _ShardState:
    __slots__ = ("index", "task", "primary", "hedge", "started",
                 "hedge_due", "deadline_at", "hedge_denied")

    def __init__(self, index, task, primary, started, hedge_due, deadline_at):
        self.index = index
        self.task = task
        self.primary = primary
        self.hedge = None
        self.started = started
        self.hedge_due = hedge_due
        self.deadline_at = deadline_at
        self.hedge_denied = False


def _hedge_copy(task):
    """A backup task with worker-fault keys stripped (see FAULT_TASK_KEYS)."""
    if isinstance(task, dict):
        return {k: v for k, v in task.items() if k not in FAULT_TASK_KEYS}
    return task


def supervise_shards(
    transport,
    tasks,
    *,
    clock=None,
    deadline=None,
    policy: HedgePolicy | None = None,
    estimator: LatencyEstimator | None = None,
    retry_budget=None,
    observer=None,
    poll_s: float | None = None,
):
    """Run ``tasks`` under per-shard deadlines and hedged backups.

    Returns ``(results, report)`` with ``results[i]`` the first-won
    result of ``tasks[i]``.  Raises :class:`ShardTimeout` — after
    cancelling everything outstanding — if any shard produces nothing
    within ``deadline`` seconds of its dispatch.  Exceptions raised by
    a winning attempt propagate unchanged (the pool maps
    ``BrokenProcessPool`` to ``WorkerCrashError`` as before).

    Parameters
    ----------
    transport:
        submit(task, lane)/wait(handles, timeout)/result(handle)/
        cancel(handle); the pool's executor adapter or a
        :class:`SimShardTransport`.
    deadline:
        Per-shard wall seconds on ``clock``; ``None`` disables.
    policy / estimator:
        Hedge schedule; a ``None`` or disabled policy never hedges.
    retry_budget:
        Optional :class:`~repro.serve.overload.RetryBudget`; each
        hedge costs one token, a denial skips the hedge for good
        (counted in the report and on the observer).
    poll_s:
        Wait-slice cap; defaults to ``transport.poll_cap`` (0.05 for
        real executors, uncapped for simulated transports).
    """
    now = as_clock(clock)
    policy = policy if policy is not None else HedgePolicy(enabled=False)
    estimator = estimator if estimator is not None else LatencyEstimator()
    if poll_s is None:
        poll_s = getattr(transport, "poll_cap", 0.05)
    report = SuperviseReport()
    deadline = None if deadline is None else float(deadline)
    if deadline is not None and deadline <= 0:
        raise ValueError(f"deadline must be > 0, got {deadline}")

    states = []
    for index, task in enumerate(tasks):
        started = now()
        handle = transport.submit(task, lane="primary")
        states.append(_ShardState(
            index=index,
            task=task,
            primary=handle,
            started=started,
            hedge_due=(started + estimator.hedge_delay(policy))
            if policy.enabled else None,
            deadline_at=None if deadline is None else started + deadline,
        ))

    pending = {st.index: st for st in states}
    owners = {st.primary: st for st in states}
    results = [None] * len(states)

    def _cancel_outstanding():
        for st in pending.values():
            for handle in (st.primary, st.hedge):
                if handle is not None:
                    try:
                        transport.cancel(handle)
                    except Exception:  # pragma: no cover - defensive
                        pass

    try:
        while pending:
            t = now()
            next_due = None
            for st in list(pending.values()):
                if st.deadline_at is not None and t >= st.deadline_at:
                    if observer is not None:
                        observer.on_shard_timeout()
                    raise ShardTimeout(st.index, deadline)
                if (
                    policy.enabled
                    and st.hedge is None
                    and not st.hedge_denied
                    and st.hedge_due is not None
                    and t >= st.hedge_due
                ):
                    if retry_budget is not None and not retry_budget.try_acquire(
                        kind="hedge"
                    ):
                        st.hedge_denied = True
                        report.hedges_denied += 1
                        if observer is not None:
                            observer.on_hedge_denied()
                    else:
                        st.hedge = transport.submit(_hedge_copy(st.task), lane="hedge")
                        owners[st.hedge] = st
                        report.hedges += 1
                        if observer is not None:
                            observer.on_hedge_launch(t - st.started)
                due_events = [st.deadline_at]
                if st.hedge is None and not st.hedge_denied:
                    due_events.append(st.hedge_due)
                for due in due_events:
                    if due is not None and (next_due is None or due < next_due):
                        next_due = due

            timeout = None if next_due is None else max(0.0, next_due - t)
            if poll_s is not None:
                timeout = poll_s if timeout is None else min(timeout, poll_s)
            handles = [
                h
                for st in pending.values()
                for h in (st.primary, st.hedge)
                if h is not None
            ]
            done = transport.wait(handles, timeout)
            t = now()
            for handle in done:
                st = owners[handle]
                if st.index not in pending:
                    continue  # both copies finished in the same wait slice
                winner = "primary" if handle is st.primary else "hedge"
                value = transport.result(handle)
                results[st.index] = value
                estimator.observe(t - st.started)
                del pending[st.index]
                loser = st.hedge if winner == "primary" else st.primary
                if loser is not None:
                    cancelled = False
                    try:
                        cancelled = bool(transport.cancel(loser))
                    except Exception:  # pragma: no cover - defensive
                        pass
                    if winner == "hedge" and not cancelled:
                        report.stragglers.append((st.index, loser))
                if st.hedge is not None:
                    if winner == "hedge":
                        report.hedge_wins += 1
                    else:
                        report.primary_wins_hedged += 1
                    if observer is not None:
                        observer.on_hedge_result(winner)
    except BaseException:
        _cancel_outstanding()
        raise
    return results, report
