"""Overload control: retry budgets, jittered backoff, AIMD, CoDel.

Serving survives stragglers by *retrying* work (hedges, fallback-chain
rung retries) and survives floods by *refusing* work (degrading to
budgeted answers, shedding at the door).  Both mechanisms amplify load
if left unbounded: a retry storm doubles traffic exactly when the
system can least afford it, and a fixed exponential backoff
synchronizes clients into waves.  This module holds the four small
controllers that keep them bounded, shared by
:mod:`repro.serve.hedging`, :func:`repro.robustness.resilient.
resilient_ppsp`, and :class:`repro.serve.service.QueryService`:

* :func:`next_backoff` — decorrelated-jitter backoff (the AWS
  "decorrelated jitter" recipe): each delay is drawn uniformly from
  ``[base, 3 x previous]``, capped, so repeated retries spread out
  instead of marching in lockstep.  Seedable, hence deterministic in
  tests.
* :class:`RetryBudget` — a token bucket shared by *all* retry-like
  work (hedged shard backups, resilient rung retries).  When the
  bucket is dry, retries are denied and callers degrade instead of
  amplifying; denials are counted per kind.
* :class:`AIMDLimiter` — additive-increase / multiplicative-decrease
  limit on in-flight batch concurrency, the TCP congestion-control
  shape: grow slowly while batches succeed, halve on overload signals
  (timeouts / failures).
* :class:`CoDelShedder` — queue-delay controller in the spirit of
  CoDel: a queue is healthy while *some* recent batch saw sojourn
  below target, overloaded once sojourn stays above target for a full
  interval.  Sojourn (time queued) is the signal, not queue length —
  a long-but-draining queue is fine, a short-but-stuck one is not.

:class:`OverloadController` composes the last two plus a degradation
ladder — exact -> inexact (deadline-derived budget) -> shed — and is
what :class:`~repro.serve.service.QueryService` consults, replacing
the old static ``4 x max_batch`` pressure rule.

Every controller takes an injectable clock (see
:mod:`repro.robustness.clock`) so tests drive decisions with
:class:`~repro.robustness.clock.SimClock` instead of sleeping.
"""

from __future__ import annotations

import threading

import numpy as np

from ..robustness.clock import as_clock

__all__ = [
    "next_backoff",
    "RetryBudget",
    "AIMDLimiter",
    "CoDelShedder",
    "OverloadController",
]


def next_backoff(previous: float, *, base: float, cap: float, rng) -> float:
    """One decorrelated-jitter backoff step.

    ``sleep = min(cap, uniform(base, 3 x previous))`` — each delay
    depends on the previous one, so consecutive retries decorrelate
    instead of doubling in lockstep.  ``previous`` is the last delay
    slept (pass ``base`` before the first retry).

    Parameters
    ----------
    rng : numpy.random.Generator
        The caller's seeded generator; determinism in tests comes from
        seeding this.
    """
    base = float(base)
    if base <= 0:
        return 0.0
    hi = max(base, 3.0 * float(previous))
    return min(float(cap), float(rng.uniform(base, hi)))


class RetryBudget:
    """A token bucket bounding all retry-like work.

    Hedged shard backups and resilient-chain rung retries draw from
    *one* bucket, so a straggler storm cannot also fund a retry storm.
    Tokens refill continuously at ``refill_per_s`` up to ``capacity``;
    a denied acquisition is counted (per ``kind``) and reported to the
    observer, and the caller is expected to degrade — skip the hedge,
    fall through to the next rung — rather than wait.

    Thread-safe: the service dispatcher thread and submitting threads
    may share one budget.
    """

    def __init__(
        self,
        capacity: float = 16.0,
        refill_per_s: float = 2.0,
        *,
        clock=None,
        observer=None,
    ) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        if refill_per_s < 0:
            raise ValueError(f"refill_per_s must be >= 0, got {refill_per_s}")
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self.observer = observer
        self._now = as_clock(clock)
        self._tokens = self.capacity
        self._stamp = self._now()
        self._lock = threading.Lock()
        self.granted = 0
        self.denied: dict[str, int] = {}

    def _refill_locked(self) -> None:
        now = self._now()
        elapsed = now - self._stamp
        self._stamp = now
        if elapsed > 0 and self.refill_per_s > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.refill_per_s)

    def available(self) -> float:
        """Tokens currently in the bucket (after refill)."""
        with self._lock:
            self._refill_locked()
            return self._tokens

    def try_acquire(self, tokens: float = 1.0, *, kind: str = "retry") -> bool:
        """Take ``tokens`` if available; deny (and count) otherwise."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= tokens:
                self._tokens -= tokens
                self.granted += 1
                return True
            self.denied[kind] = self.denied.get(kind, 0) + 1
        if self.observer is not None:
            self.observer.on_retry_denied(kind)
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RetryBudget(available={self.available():.2f}/{self.capacity}, "
            f"granted={self.granted}, denied={self.denied})"
        )


class AIMDLimiter:
    """Additive-increase / multiplicative-decrease concurrency limit.

    The unit is *batches in flight* (the service multiplies by
    ``max_batch`` to get a query-count pressure threshold).  Healthy
    batches nudge the limit up by ``increase``; an overload signal —
    any timeout or failure in a batch — halves it (``decrease``
    factor).  ``max_limit`` defaults to the initial value, so a
    healthy system never exceeds the configured static pressure and
    legacy behaviour is preserved bit-for-bit.
    """

    def __init__(
        self,
        initial: float = 4.0,
        *,
        min_limit: float = 1.0,
        max_limit: float | None = None,
        increase: float = 0.5,
        decrease: float = 0.5,
    ) -> None:
        if initial < min_limit:
            raise ValueError(f"initial {initial} below min_limit {min_limit}")
        if not 0 < decrease < 1:
            raise ValueError(f"decrease must be in (0, 1), got {decrease}")
        self.min_limit = float(min_limit)
        self.max_limit = float(initial if max_limit is None else max_limit)
        self.increase = float(increase)
        self.decrease = float(decrease)
        self._limit = float(initial)
        self.overloads = 0

    @property
    def limit(self) -> float:
        return self._limit

    def on_success(self) -> None:
        self._limit = min(self.max_limit, self._limit + self.increase)

    def on_overload(self) -> None:
        self._limit = max(self.min_limit, self._limit * self.decrease)
        self.overloads += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AIMDLimiter(limit={self._limit:.2f}, overloads={self.overloads})"


class CoDelShedder:
    """Persistent-queue-delay detector (CoDel's controlling idea).

    Feed it the worst sojourn (queued time) of each flushed batch; it
    reports *overloaded* only once sojourn has stayed at or above
    ``target_s`` for a full ``interval_s`` — transient bursts that
    drain within an interval never trip it.  One below-target
    observation resets the state.
    """

    def __init__(self, target_s: float = 0.1, interval_s: float = 1.0, *, clock=None) -> None:
        if target_s <= 0:
            raise ValueError(f"target_s must be > 0, got {target_s}")
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.target_s = float(target_s)
        self.interval_s = float(interval_s)
        self._now = as_clock(clock)
        self._above_since: float | None = None
        self.overloaded = False

    def observe(self, sojourn_s: float) -> bool:
        """Record one batch's worst sojourn; return the overload state."""
        now = self._now()
        if sojourn_s < self.target_s:
            self._above_since = None
            self.overloaded = False
        else:
            if self._above_since is None:
                self._above_since = now
            self.overloaded = (now - self._above_since) >= self.interval_s
        return self.overloaded

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CoDelShedder(target={self.target_s}, overloaded={self.overloaded})"


class OverloadController:
    """The service's adaptive admission policy: CoDel + AIMD + ladder.

    Decisions, in escalation order (the degradation ladder):

    ``exact``
        The default: batches run unmodified.
    ``inexact``
        When the CoDel detector reports persistent overload *and*
        ``degrade_budget_ms`` is configured, flushed queries gain a
        deadline ``flush + degrade_budget_ms`` — the pipeline's
        existing deadline machinery turns that into a wall-time
        budget, so answers degrade to certified upper bounds instead
        of queueing further.  Leave ``degrade_budget_ms`` unset to
        keep the ladder exact -> shed.
    ``shed``
        At submission time: a brand-new query is refused outright when
        the *oldest* queued query has waited longer than
        ``shed_multiple x target`` — the queue is no longer draining,
        so adding to it only manufactures timeouts.

    The AIMD limiter adapts the pressure threshold (queries queued
    before an early flush) between ``max_batch`` and the configured
    static pressure; batches containing timeouts/failures halve it,
    healthy batches recover it additively.
    """

    def __init__(
        self,
        *,
        clock=None,
        target_ms: float = 100.0,
        interval_ms: float = 1000.0,
        shed_multiple: float = 8.0,
        degrade_budget_ms: float | None = None,
        aimd: AIMDLimiter | None = None,
        observer=None,
    ) -> None:
        if shed_multiple <= 0:
            raise ValueError(f"shed_multiple must be > 0, got {shed_multiple}")
        if degrade_budget_ms is not None and degrade_budget_ms <= 0:
            raise ValueError(f"degrade_budget_ms must be > 0, got {degrade_budget_ms}")
        self.codel = CoDelShedder(target_ms / 1e3, interval_ms / 1e3, clock=clock)
        self.aimd = aimd if aimd is not None else AIMDLimiter()
        self.shed_sojourn_s = float(shed_multiple) * self.codel.target_s
        self.degrade_budget_s = None if degrade_budget_ms is None else degrade_budget_ms / 1e3
        self.observer = observer
        self.counts = {"exact": 0, "inexact": 0, "shed": 0}

    def should_shed(self, *, oldest_sojourn_s: float) -> bool:
        """Door decision for one new submission (queue not draining?)."""
        if oldest_sojourn_s <= self.shed_sojourn_s:
            return False
        self.counts["shed"] += 1
        if self.observer is not None:
            self.observer.on_overload_decision("shed")
            self.observer.on_overload_shed()
        return True

    def flush_mode(self, max_sojourn_s: float) -> str:
        """Ladder decision for one flushed batch: ``exact``/``inexact``."""
        overloaded = self.codel.observe(max_sojourn_s)
        mode = "inexact" if (overloaded and self.degrade_budget_s is not None) else "exact"
        self.counts[mode] += 1
        if self.observer is not None:
            self.observer.on_overload_decision(mode)
        return mode

    def on_batch_done(self, outcome_counts: dict) -> None:
        """Feed a finished batch's outcome tally to the AIMD limiter."""
        bad = outcome_counts.get("timeout", 0) + outcome_counts.get("failed", 0)
        if bad:
            self.aimd.on_overload()
        else:
            self.aimd.on_success()
        if self.observer is not None:
            self.observer.on_aimd_limit(self.aimd.limit)

    def pressure_limit(self, max_batch: int) -> int:
        """The adaptive pressure threshold, in queued queries."""
        return max(int(max_batch), int(self.aimd.limit * max_batch))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OverloadController(counts={self.counts}, aimd={self.aimd!r})"


# Re-exported for seeding convenience in callers that accept int seeds.
def default_rng(rng) -> np.random.Generator:
    """Normalize ``None | int | Generator`` to a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)
