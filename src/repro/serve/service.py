"""Online micro-batching: a streaming front door for the serve pipeline.

Everything below :class:`QueryService` answers *pre-assembled* batches;
this module serves a **stream**.  Clients submit individual queries (or
small bursts) and get a :class:`ServiceFuture` back immediately; an
adaptive micro-batcher coalesces the submission queue into right-sized
batches and executes each one through the existing
:class:`~repro.serve.pipeline.ServePipeline` — so admission/shedding,
per-query deadlines, circuit breakers, certificates, and checkpointing
all apply unchanged, and every future resolves with the pipeline's
closed outcome vocabulary (``ok | inexact | shed | timeout | failed |
repaired``).

A batch is flushed when the first of three triggers fires:

* **size** — the queue holds ``max_batch`` distinct queries (the batch
  the amortization analysis of Sec. 4 wants);
* **wait** — the oldest queued query has waited ``max_wait_ms`` on the
  service clock (an injectable :class:`~repro.robustness.SimClock` in
  tests, real time in production), bounding tail latency on a trickle;
* **pressure** — the backlog exceeds the *adaptive* pressure limit (a
  burst), so the batcher stops waiting and drains in ``max_batch``
  chunks.  The limit is an AIMD concurrency control
  (:class:`~repro.serve.overload.OverloadController`): it starts at the
  configured ``pressure`` (default ``4 x max_batch``, which is also its
  ceiling — a healthy service behaves exactly like the old static
  rule), halves when a batch comes back with timeouts or failures, and
  recovers additively while batches stay healthy.

On top of the flush triggers sits a degradation ladder — **exact ->
inexact -> shed**: when queue sojourn stays above the CoDel-style
target for a full interval and ``degrade_budget_ms`` is configured,
flushed queries gain a wall-clock budget and degrade to certified
upper bounds instead of queueing further; and when the oldest queued
query has waited past ``shed_multiple x target`` (the queue has
stopped draining), brand-new submissions are shed at the door with an
immediately-resolved ``shed`` future.

Duplicate ``(s, t)`` submissions inside one window coalesce into a
single execution and fan back out to every waiting future — an
adversarial same-pair flood costs one search, not N.

Underneath, ``backend="process"`` runs on a **persistent**
:class:`~repro.parallel.pool.ProcessPool`: workers are spawned once
(:meth:`~repro.parallel.pool.ProcessPool.open`), attach the
shared-memory CSR graph once, and are reused across every coalesced
batch, so the steady-state per-batch cost is shard pickling only.
Crashed workers surface through the existing
:class:`~repro.parallel.pool.WorkerCrashError`/breaker path and are
respawned transparently (counted, and exported via the
``repro_service_worker_respawns_total`` metric).

Two execution modes share all of that machinery:

* **inline** (default) — flush triggers are evaluated on the submitting
  thread (`submit`/`tick`/`drain`), so tests drive arrival schedules
  and the clock deterministically;
* **threaded** (:meth:`QueryService.start`) — a dispatcher thread owns
  the flush loop, which is what ``repro serve`` runs.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from ..api import validate_query
from ..robustness.clock import as_clock
from .admission import FAILED, SHED, ServeQuery
from .overload import AIMDLimiter, OverloadController
from .pipeline import ServePipeline

__all__ = [
    "QueryService",
    "ServiceFuture",
    "ServiceResult",
    "ServiceClosed",
    "FLUSH_REASONS",
]

#: every trigger that can flush a coalesced batch.
FLUSH_REASONS = ("size", "pressure", "wait", "drain", "shutdown", "manual")


class ServiceClosed(RuntimeError):
    """The service no longer accepts submissions (close() was called)."""


@dataclass(frozen=True)
class ServiceResult:
    """One query's terminal answer, as resolved onto its future(s).

    ``outcome`` uses the pipeline's closed vocabulary; ``certificate``
    and ``path`` are populated only when the service was built with
    ``certify=True`` / ``collect_paths=True`` (and the method retains
    path state).  ``batch_index`` says which coalesced batch executed
    the query; ``waited_s`` is its time on the submission queue.
    """

    source: int
    target: int
    distance: float
    exact: bool
    outcome: str
    certificate: object = None
    path: object = None
    batch_index: int = -1
    waited_s: float = 0.0

    @property
    def key(self) -> tuple[int, int]:
        return (self.source, self.target)


class ServiceFuture:
    """A per-submission handle; resolves when the coalesced batch ran.

    Thread-safe: ``result()`` blocks (optionally with a timeout) until
    the dispatcher — or an inline flush — resolves it.  Futures never
    stay stuck: every admitted, shed, timed-out, or failed query
    resolves with an explicit outcome, and ``close()`` flushes whatever
    is still queued.
    """

    __slots__ = ("key", "_event", "_result", "_error")

    def __init__(self, key: tuple[int, int]) -> None:
        self.key = key
        self._event = threading.Event()
        self._result: ServiceResult | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> ServiceResult:
        """The resolved :class:`ServiceResult` (blocks until available)."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"query {self.key} is still queued or executing")
        if self._error is not None:
            raise self._error
        return self._result

    def _resolve(self, result: ServiceResult) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done() else "pending"
        return f"ServiceFuture(key={self.key}, {state})"


@dataclass
class _Pending:
    """One distinct queued query plus every future waiting on it."""

    query: ServeQuery
    futures: list[ServiceFuture]
    submitted: float


@dataclass(frozen=True)
class BatchRecord:
    """What one flush executed — the differential suite replays these."""

    index: int
    keys: tuple
    reason: str
    size: int
    waited_s: float


class QueryService:
    """An always-on micro-batching query endpoint over one graph.

    Parameters mirror :class:`~repro.serve.pipeline.ServePipeline`
    (``method``, ``verify``, ``deadline_ms``, ``max_queue``, ``clock``,
    ``observer``, ``backend``, ``workers``, ``pool``, ...) plus the
    batcher knobs:

    max_batch : int
        Coalesced batch size; also the default ``checkpoint_every`` (one
        pipeline shard per flush).
    max_wait_ms : float
        Longest a queued query waits before a partial batch flushes.
    pressure : int or None
        Backlog size that triggers immediate draining (default
        ``4 * max_batch``); must be >= ``max_batch``.  This is the
        *ceiling* of the AIMD limiter — overloaded batches pull the
        live limit down toward ``max_batch``, healthy ones restore it.
    overload : OverloadController, False, or None
        ``None`` (default) builds an :class:`~repro.serve.overload.
        OverloadController` from the ``codel_target_ms`` /
        ``codel_interval_ms`` / ``shed_multiple`` /
        ``degrade_budget_ms`` knobs; pass ``False`` to disable
        adaptive control (static pressure only) or a controller to
        share one across services.
    certify, collect_paths : bool
        Attach each answer's certificate / shortest path to its
        :class:`ServiceResult`.

    >>> with QueryService(g, max_batch=32, workers=4) as svc:
    ...     svc.start()                      # dispatcher thread
    ...     futs = [svc.submit(s, t) for s, t in stream]
    ...     answers = [f.result() for f in futs]
    """

    def __init__(
        self,
        graph,
        *,
        method: str = "multi",
        max_batch: int = 32,
        max_wait_ms: float = 5.0,
        pressure: int | None = None,
        backend: str = "serial",
        workers: int | None = None,
        pool=None,
        clock=None,
        observer=None,
        certify: bool = False,
        collect_paths: bool = False,
        checkpoint_every: int | None = None,
        overload=None,
        codel_target_ms: float = 100.0,
        codel_interval_ms: float = 1000.0,
        shed_multiple: float = 8.0,
        degrade_budget_ms: float | None = None,
        **pipeline_kwargs,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be nonnegative, got {max_wait_ms}")
        self.graph = graph
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1000.0
        self.pressure = 4 * self.max_batch if pressure is None else int(pressure)
        if self.pressure < self.max_batch:
            raise ValueError(
                f"pressure ({self.pressure}) must be >= max_batch ({self.max_batch})"
            )
        self._clock = as_clock(clock)
        self._real_clock = clock is None
        self.observer = observer
        self.backend = backend
        if overload is False:
            self._overload = None
        elif overload is not None:
            self._overload = overload
            if self._overload.observer is None:
                self._overload.observer = observer
        else:
            self._overload = OverloadController(
                clock=clock,
                target_ms=codel_target_ms,
                interval_ms=codel_interval_ms,
                shed_multiple=shed_multiple,
                degrade_budget_ms=degrade_budget_ms,
                aimd=AIMDLimiter(initial=self.pressure / self.max_batch),
                observer=observer,
            )

        self._own_pool = False
        self._pool = pool
        if backend == "process" and pool is None:
            from ..parallel.pool import ProcessPool

            self._pool = ProcessPool(workers, observer=observer)
            self._own_pool = True

        self._pipeline = ServePipeline(
            graph,
            method=method,
            clock=clock,
            observer=observer,
            certify=certify,
            collect_paths=collect_paths,
            backend=backend,
            workers=workers,
            pool=self._pool,
            # One pipeline shard per coalesced batch unless the caller
            # wants finer checkpoint granularity.
            checkpoint_every=self.max_batch if checkpoint_every is None
            else checkpoint_every,
            **pipeline_kwargs,
        )

        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._exec_lock = threading.Lock()
        self._pending: dict[tuple[int, int], _Pending] = {}
        self._closed = False
        self._stop = False
        self._thread: threading.Thread | None = None

        #: executed-batch log (newest last); the differential suite
        #: replays these compositions against the serial backend.
        self.batches: deque[BatchRecord] = deque(maxlen=4096)
        self._next_batch_index = 0
        self._counts = {
            "submitted": 0, "executed": 0, "deduped": 0, "errors": 0,
            "shed": 0, "degraded": 0,
        }
        self._flush_reasons = {reason: 0 for reason in FLUSH_REASONS}
        self._seen_respawns = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def pipeline(self) -> ServePipeline:
        """The underlying pipeline (breakers persist across batches)."""
        return self._pipeline

    @property
    def pool(self):
        """The persistent worker pool (``None`` for the serial backend)."""
        return self._pool

    @property
    def overload(self):
        """The adaptive overload controller (``None`` when disabled)."""
        return self._overload

    def start(self) -> "QueryService":
        """Warm the pool and launch the dispatcher thread (idempotent)."""
        if self._closed:
            raise ServiceClosed("service is closed")
        self.warm()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-query-service", daemon=True
            )
            self._thread.start()
        return self

    def warm(self) -> "QueryService":
        """Spawn pool workers and export the graph before traffic arrives."""
        if self._pool is not None and not self._pool.closed:
            self._pool.open()
            self._pool.share(self.graph)
            self._note_respawns()
        return self

    def ping(self) -> bool:
        """Idle health check of the worker pool (``True`` when healthy).

        A dead worker is respawned transparently; the repair shows up in
        ``stats()["respawns"]`` and the service metric, and this returns
        ``False`` so callers can log the event.
        """
        if self._pool is None or self._pool.closed:
            return True
        ok = self._pool.ping()
        self._note_respawns()
        return ok

    def close(self) -> None:
        """Stop accepting work, flush the queue, release the pool.

        Every still-pending future resolves (the final partial batch
        executes with the ``shutdown`` reason; an empty queue flushes
        nothing), so no client blocks forever across a shutdown.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._stop = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        try:
            while self._flush_chunk("shutdown"):
                pass
        finally:
            if self._own_pool and self._pool is not None:
                self._pool.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self, source: int, target: int, *, priority: int = 0,
        deadline: float | None = None,
    ) -> ServiceFuture:
        """Queue one query; returns its future immediately.

        Invalid endpoints raise here (synchronously), so a future, once
        issued, always resolves.  A duplicate ``(s, t)`` already queued
        in this window coalesces: one execution, every future resolved
        with the same answer (highest priority and earliest deadline
        win, exactly like pipeline admission).
        """
        validate_query(self.graph, source, target)
        key = (int(source), int(target))
        future = ServiceFuture(key)
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is closed")
            entry = self._pending.get(key)
            if entry is not None:
                entry.futures.append(future)
                entry.query.priority = max(entry.query.priority, int(priority))
                if deadline is not None:
                    entry.query.deadline = (
                        float(deadline) if entry.query.deadline is None
                        else min(entry.query.deadline, float(deadline))
                    )
                self._counts["deduped"] += 1
                if self.observer is not None:
                    self.observer.on_service_dedup()
            else:
                if self._overload is not None and self._pending:
                    # Door shedding: a *new* query is refused outright
                    # when the oldest queued one has waited past the
                    # shed threshold — the queue has stopped draining,
                    # and queueing more only manufactures timeouts.
                    # Duplicates of queued queries always coalesce
                    # (they cost nothing extra).
                    oldest = next(iter(self._pending.values()))
                    if self._overload.should_shed(
                        oldest_sojourn_s=self._clock() - oldest.submitted
                    ):
                        self._counts["submitted"] += 1
                        self._counts["shed"] += 1
                        future._resolve(ServiceResult(
                            source=key[0], target=key[1],
                            distance=float("inf"), exact=False,
                            outcome=SHED, batch_index=-1, waited_s=0.0,
                        ))
                        return future
                self._pending[key] = _Pending(
                    query=ServeQuery(key[0], key[1], priority=priority,
                                     deadline=deadline),
                    futures=[future],
                    submitted=self._clock(),
                )
            self._counts["submitted"] += 1
            if self.observer is not None:
                self.observer.on_service_queue(len(self._pending))
            self._cond.notify_all()
        if self._thread is None:
            self._drain_full_batches()
        return future

    def submit_many(self, queries) -> list[ServiceFuture]:
        """Queue a client burst; one future per submission (duplicates
        included — they fan out from the coalesced execution)."""
        futures = []
        for q in queries:
            if isinstance(q, ServeQuery):
                futures.append(self.submit(q.source, q.target,
                                           priority=q.priority,
                                           deadline=q.deadline))
            else:
                futures.append(self.submit(*q))
        return futures

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def tick(self) -> int:
        """Apply the max-wait rule now (inline mode); batches flushed.

        Tests advance a :class:`~repro.robustness.SimClock` and call
        this to fire time-based flushes deterministically; the threaded
        dispatcher does the equivalent on real time.
        """
        flushed = 0
        while True:
            with self._lock:
                entry = next(iter(self._pending.values()), None)
                if entry is None:
                    break
                if self._clock() - entry.submitted < self.max_wait:
                    break
            if not self._flush_chunk("wait"):
                break
            flushed += 1
        return flushed

    def flush(self) -> int:
        """Force one partial flush (``manual``); queries executed."""
        return self._flush_chunk("manual")

    def drain(self) -> int:
        """Execute everything queued, now; total queries executed."""
        total = 0
        while True:
            n = self._flush_chunk("drain")
            if not n:
                break
            total += n
        return total

    def _pressure_limit(self) -> int:
        """The live pressure threshold (AIMD-adapted, static ceiling)."""
        if self._overload is None:
            return self.pressure
        return min(self.pressure, self._overload.pressure_limit(self.max_batch))

    def _drain_full_batches(self) -> None:
        """Inline-mode size/pressure triggers after a submission."""
        while True:
            with self._lock:
                depth = len(self._pending)
                if depth < self.max_batch:
                    return
                reason = "pressure" if depth >= self._pressure_limit() else "size"
            if not self._flush_chunk(reason):
                return

    def _flush_chunk(self, reason: str) -> int:
        """Pop up to ``max_batch`` entries and execute them; count run."""
        with self._lock:
            if not self._pending:
                return 0
            take = list(self._pending.keys())[: self.max_batch]
            entries = [self._pending.pop(k) for k in take]
            if self.observer is not None:
                self.observer.on_service_queue(len(self._pending))
        self._execute(entries, reason)
        return len(entries)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, entries: list[_Pending], reason: str) -> None:
        """One coalesced batch through the pipeline; resolve futures.

        Batches execute one at a time (``_exec_lock``): the parallelism
        lives inside the pool, and serialized batches are what make the
        coalesced stream bit-identical to serial execution of the same
        compositions.
        """
        with self._exec_lock:
            flushed_at = self._clock()
            waited = max(flushed_at - e.submitted for e in entries)
            index = self._next_batch_index
            self._next_batch_index += 1
            if self.observer is not None:
                self.observer.on_service_flush(reason, len(entries), waited)
            if self._overload is not None:
                # Degradation ladder, middle rung: under persistent
                # queue delay (CoDel) with degrade_budget_ms set, the
                # batch runs under a wall budget — certified upper
                # bounds now beat exact answers later.
                if self._overload.flush_mode(waited) == "inexact":
                    degrade_deadline = flushed_at + self._overload.degrade_budget_s
                    for e in entries:
                        q = e.query
                        q.deadline = (
                            degrade_deadline if q.deadline is None
                            else min(q.deadline, degrade_deadline)
                        )
                    self._counts["degraded"] += len(entries)
            try:
                res = self._pipeline.run([e.query for e in entries])
            except Exception as exc:  # noqa: BLE001 — futures must resolve
                self._counts["errors"] += 1
                if self._overload is not None:
                    self._overload.on_batch_done({"failed": len(entries)})
                for e in entries:
                    s, t = e.query.key
                    for f in e.futures:
                        f._resolve(ServiceResult(
                            source=s, target=t, distance=float("inf"),
                            exact=False, outcome=FAILED,
                            batch_index=index,
                            waited_s=flushed_at - e.submitted,
                        ))
                self._record_batch(entries, reason, index, waited)
                raise exc
            for e in entries:
                key = e.query.key
                result = ServiceResult(
                    source=key[0],
                    target=key[1],
                    distance=res.distances.get(key, float("inf")),
                    exact=res.exact.get(key, False),
                    outcome=res.outcomes.get(key, FAILED),
                    certificate=res.certificates.get(key),
                    path=res.paths.get(key),
                    batch_index=index,
                    waited_s=flushed_at - e.submitted,
                )
                for f in e.futures:
                    f._resolve(result)
            self._counts["executed"] += len(entries)
            if self._overload is not None:
                tally: dict[str, int] = {}
                for e in entries:
                    out = res.outcomes.get(e.query.key, FAILED)
                    tally[out] = tally.get(out, 0) + 1
                self._overload.on_batch_done(tally)
            self._record_batch(entries, reason, index, waited)
            self._note_respawns()

    def _record_batch(self, entries, reason, index, waited) -> None:
        self._flush_reasons[reason] += 1
        self.batches.append(BatchRecord(
            index=index,
            keys=tuple(e.query.key for e in entries),
            reason=reason,
            size=len(entries),
            waited_s=waited,
        ))

    def _note_respawns(self) -> None:
        """Fold pool respawns since the last look into stats/metrics."""
        if self._pool is None:
            return
        delta = self._pool.respawns - self._seen_respawns
        if delta > 0:
            self._seen_respawns = self._pool.respawns
            if self.observer is not None:
                self.observer.on_service_respawn(delta)

    # ------------------------------------------------------------------
    # Dispatcher thread
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        """Threaded flush loop: size/pressure immediately, wait on expiry."""
        poll = 0.002  # simulated-clock fallback: re-check after a short nap
        while True:
            reason = None
            with self._cond:
                while not self._pending and not self._stop:
                    self._cond.wait(None if self._real_clock else poll)
                    if self._stop:
                        break
                if self._stop:
                    return
                depth = len(self._pending)
                entry = next(iter(self._pending.values()), None)
                if depth >= self._pressure_limit():
                    reason = "pressure"
                elif depth >= self.max_batch:
                    reason = "size"
                elif entry is not None:
                    waited = self._clock() - entry.submitted
                    if waited >= self.max_wait:
                        reason = "wait"
                    else:
                        remaining = self.max_wait - waited
                        self._cond.wait(remaining if self._real_clock else poll)
                        continue
            if reason is not None:
                self._flush_chunk(reason)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def queue_depth(self) -> int:
        with self._lock:
            return len(self._pending)

    def stats(self) -> dict:
        """Service counters for logs, tests, and the CLI summary."""
        with self._lock:
            out = {
                **dict(self._counts),
                "pending": len(self._pending),
                "batches": self._next_batch_index,
                "flush_reasons": dict(self._flush_reasons),
                "respawns": 0 if self._pool is None else self._pool.respawns,
                "breakers": self._pipeline.breakers.states(),
            }
            if self._overload is not None:
                out["overload"] = {
                    "pressure_limit": self._pressure_limit(),
                    "aimd_limit": self._overload.aimd.limit,
                    "decisions": dict(self._overload.counts),
                }
            return out
