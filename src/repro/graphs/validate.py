"""Graph invariant checking: the contract every algorithm relies on.

``validate_graph`` inspects a :class:`~repro.graphs.csr.Graph` and
returns a list of human-readable problems (empty = sound).  The checks
are exactly the preconditions the engine and baselines assume, so the
validator is the right first call when debugging a graph loaded from an
external file.
"""

from __future__ import annotations

import numpy as np

from .csr import Graph

__all__ = ["validate_graph", "assert_valid"]


def _describe_edge(graph: Graph, e: int) -> str:
    """Human-readable location of stored arc ``e``: 'edge #e (u -> v, w=x)'."""
    u = int(np.searchsorted(graph.indptr, e, side="right") - 1)
    v = int(graph.indices[e]) if e < len(graph.indices) else -1
    w = float(graph.weights[e]) if e < len(graph.weights) else float("nan")
    return f"edge #{e} ({u} -> {v}, w={w})"


def validate_graph(graph: Graph, *, require_symmetric: bool | None = None) -> list[str]:
    """All detected contract violations, worst first.

    ``require_symmetric`` defaults to ``not graph.directed``: undirected
    graphs must store both arcs of every edge with equal weights.
    """
    problems: list[str] = []
    n = graph.num_vertices
    indptr, indices, weights = graph.indptr, graph.indices, graph.weights

    if len(indptr) == 0:
        problems.append("indptr is empty")
        return problems  # everything else derives from indptr
    if indptr[0] != 0:
        problems.append("indptr[0] != 0")
    if np.any(np.diff(indptr) < 0):
        problems.append("indptr is not nondecreasing")
    if indptr[-1] != len(indices):
        problems.append(f"indptr[-1]={indptr[-1]} != len(indices)={len(indices)}")
    if len(indices) != len(weights):
        problems.append("indices and weights lengths differ")

    if len(indices):
        if indices.min() < 0 or indices.max() >= n:
            problems.append("edge endpoint out of [0, n)")
        if not np.isfinite(weights).all():
            problems.append(
                "non-finite edge weight (first at " + _describe_edge(
                    graph, int(np.flatnonzero(~np.isfinite(weights))[0])
                ) + ")"
            )
        elif weights.min() < 0:
            problems.append(
                "negative edge weight (shortest paths assume nonnegative; first at "
                + _describe_edge(graph, int(np.flatnonzero(weights < 0)[0])) + ")"
            )

    if graph.coords is not None:
        if graph.coords.shape[0] != n:
            problems.append("coords row count != n")
        if not np.isfinite(graph.coords).all():
            problems.append("non-finite coordinate")
        if graph.coord_system not in ("euclidean", "spherical"):
            problems.append(f"unknown coord_system {graph.coord_system!r}")
        elif graph.coord_system == "spherical":
            lon, lat = graph.coords[:, 0], graph.coords[:, 1]
            if (np.abs(lat) > 90.0).any() or (np.abs(lon) > 360.0).any():
                problems.append("spherical coords outside lon/lat ranges")

    check_sym = require_symmetric if require_symmetric is not None else not graph.directed
    if check_sym and not problems and len(indices):
        src, dst, w = graph.edges()
        fwd = {}
        for u, v, x in zip(src.tolist(), dst.tolist(), w.tolist()):
            key = (u, v)
            fwd[key] = min(x, fwd.get(key, np.inf))
        for (u, v), x in fwd.items():
            back = fwd.get((v, u))
            if back is None:
                problems.append(f"missing reverse arc for ({u}, {v})")
                break
            if not np.isclose(back, x, rtol=1e-9, atol=1e-12):
                problems.append(f"asymmetric weights on edge ({u}, {v}): {x} vs {back}")
                break

    return problems


def assert_valid(graph: Graph, **kwargs) -> None:
    """Raise ``ValueError`` listing every violation (for tests/loaders)."""
    problems = validate_graph(graph, **kwargs)
    if problems:
        raise ValueError("invalid graph:\n  " + "\n  ".join(problems))
