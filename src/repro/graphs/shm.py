"""Zero-copy shared-memory export of CSR graphs.

A :class:`~repro.graphs.csr.Graph` is three (optionally four) numpy
arrays; exporting them into one POSIX shared-memory segment lets any
number of worker processes attach the same bytes without pickling,
copying, or re-validating the graph per task — the substrate of the
process-pool batch backend (:mod:`repro.parallel.pool`).

The contract mirrors the checkpoint/certificate layers: the exporting
process owns the segment's lifetime (``SharedGraph.unlink`` — context
manager form guarantees it on exception paths), and every attach
verifies the graph :meth:`~repro.graphs.csr.Graph.fingerprint` against
the descriptor before trusting the bytes, so a recycled segment name or
a torn write surfaces as :class:`ShmFingerprintError` instead of wrong
distances.

Attachments are read-only views: workers share one physical copy and
cannot corrupt it for their siblings (numpy raises on write).  On
CPython < 3.13 the resource tracker registers *attaches* as if they
were creations; :func:`attach_graph` unregisters again, but only in a
process that runs its *own* tracker (an unrelated attacher, whose
tracker would otherwise unlink the owner's segment at exit).
Multiprocessing children — pool workers, fork or spawn — inherit the
owner's tracker, where the duplicate registration is a no-op and an
unregister would strip the owner's entry instead.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedGraph", "ShmFingerprintError", "export_graph", "attach_graph"]

_ALIGN = 8


class ShmFingerprintError(ValueError):
    """The attached bytes do not hash to the descriptor's fingerprint."""


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass
class SharedGraph:
    """Owner handle of one exported graph segment.

    ``descriptor`` is a plain picklable dict: everything a worker needs
    to attach (segment name, dtypes, offsets, shapes, directedness) plus
    the expected fingerprint.  The creating process must eventually call
    :meth:`unlink` (idempotent; the context-manager form does it on the
    way out, exceptions included) or the segment outlives the job.
    """

    descriptor: dict
    shm: shared_memory.SharedMemory
    #: True once :meth:`unlink` destroyed the segment — the invariant
    #: pool/service teardown asserts (no handle may stay linked).
    unlinked: bool = False

    @property
    def name(self) -> str:
        return self.descriptor["shm_name"]

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        try:
            self.shm.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass

    def unlink(self) -> None:
        """Destroy the segment (idempotent; safe after a partial close)."""
        self.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass
        self.unlinked = True

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.unlink()


def export_graph(graph, *, name: str | None = None) -> SharedGraph:
    """Copy ``graph``'s CSR arrays into one shared-memory segment.

    O(n + m) one-time copy; every subsequent :func:`attach_graph` is
    zero-copy.  ``name`` overrides the auto-generated segment name
    (tests); collisions raise ``FileExistsError`` from the OS.
    """
    arrays = {
        "indptr": graph.indptr,
        "indices": graph.indices,
        "weights": graph.weights,
    }
    if graph.coords is not None:
        arrays["coords"] = graph.coords
    layout: dict[str, dict] = {}
    offset = 0
    for key, arr in arrays.items():
        offset = _aligned(offset)
        layout[key] = {
            "offset": offset,
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
        }
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1), name=name)
    try:
        for key, arr in arrays.items():
            spec = layout[key]
            view = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=spec["offset"]
            )
            view[...] = arr
        descriptor = {
            "kind": "repro-shm-graph",
            "shm_name": shm.name,
            "owner_pid": os.getpid(),
            "fingerprint": graph.fingerprint(),
            "directed": bool(graph.directed),
            "coord_system": graph.coord_system,
            "name": graph.name,
            "layout": layout,
        }
    except BaseException:
        # Never leak a half-written segment: destroy it before re-raising.
        shm.close()
        shm.unlink()
        raise
    return SharedGraph(descriptor=descriptor, shm=shm)


def attach_graph(descriptor: dict, *, check: bool = True):
    """Attach a worker-side :class:`Graph` view of an exported segment.

    The returned graph's arrays are read-only views of the shared bytes
    (one physical copy per host, any number of attached processes).  With
    ``check=True`` (the default) the CSR arrays are re-hashed and compared
    to the descriptor's fingerprint — an O(m) integrity gate paid once
    per attach, exactly the checkpoint-resume trust model.

    The graph keeps the mapping alive via an attribute; letting the graph
    go out of scope drops the attachment.
    """
    from .csr import Graph  # local: csr imports nothing from here

    if descriptor.get("kind") != "repro-shm-graph":
        raise ValueError(f"not a shared-graph descriptor: {descriptor.get('kind')!r}")
    shm = shared_memory.SharedMemory(name=descriptor["shm_name"])
    # CPython < 3.13 registers attaches with the resource tracker as if
    # this process created the segment.  In the owner itself or in a
    # multiprocessing child the tracker is shared with the owner, so
    # the duplicate registration is harmless and must stay (the owner's
    # unlink balances it).  An unrelated process runs its own tracker,
    # which would *unlink the owner's segment* at exit — undo there.
    if descriptor.get("owner_pid") != os.getpid():
        try:
            from multiprocessing import parent_process, resource_tracker

            if parent_process() is None:
                resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
        except Exception:  # pragma: no cover - tracker internals vary
            pass
    views = {}
    for key, spec in descriptor["layout"].items():
        arr = np.ndarray(
            tuple(spec["shape"]),
            dtype=np.dtype(spec["dtype"]),
            buffer=shm.buf,
            offset=spec["offset"],
        )
        arr.flags.writeable = False
        views[key] = arr
    graph = Graph(
        indptr=views["indptr"],
        indices=views["indices"],
        weights=views["weights"],
        directed=descriptor["directed"],
        coords=views.get("coords"),
        coord_system=descriptor.get("coord_system"),
        name=descriptor.get("name", "graph"),
        validate=False,
    )
    # Keep the mapping alive as long as the graph's views are.
    graph._shm = shm
    if check:
        got = graph.fingerprint()
        want = descriptor["fingerprint"]
        if got != want:
            shm.close()
            raise ShmFingerprintError(
                f"shared graph {descriptor['shm_name']!r} hashes to {got}, "
                f"descriptor says {want}; refusing to attach"
            )
    return graph
