"""Compressed sparse row (CSR) graph substrate.

All of Orionet's algorithms operate on a flat, cache-friendly CSR layout:
``indptr`` (``n+1`` offsets), ``indices`` (``m`` neighbor ids) and
``weights`` (``m`` nonnegative edge weights), mirroring the layout used by
the paper's C++ implementation.  Graphs may carry per-vertex coordinates
(``coords``) used by geometric heuristics (A*, BiD-A*).

For directed graphs, the reverse adjacency (in-edges) needed by backward
searches is built lazily via :meth:`Graph.reverse`.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Graph", "build_graph", "from_edges", "symmetrize_edges"]

# dtype conventions shared across the library: 64-bit offsets tolerate
# billion-edge graphs, 32-bit vertex ids keep the hot arrays small.
INDPTR_DTYPE = np.int64
VERTEX_DTYPE = np.int32
WEIGHT_DTYPE = np.float64


@dataclass
class Graph:
    """A weighted graph in CSR form.

    Attributes
    ----------
    indptr : int64[n+1]
        Adjacency offsets: neighbors of ``v`` live in
        ``indices[indptr[v]:indptr[v+1]]``.
    indices : int32[m]
        Neighbor vertex ids.
    weights : float64[m]
        Nonnegative edge weights, aligned with ``indices``.
    directed : bool
        Whether edges are one-way.  Undirected graphs store both arcs.
    coords : float64[n, d] or None
        Optional vertex coordinates for geometric heuristics.
    coord_system : str or None
        ``"euclidean"`` or ``"spherical"`` (lon/lat degrees); ``None``
        when the graph has no geometry.
    name : str
        Human-readable label used in experiment reports.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    directed: bool = False
    coords: np.ndarray | None = None
    coord_system: str | None = None
    name: str = "graph"
    _reverse: "Graph | None" = field(default=None, repr=False, compare=False)
    _fingerprint: str | None = field(default=None, repr=False, compare=False)
    _edge_src: np.ndarray | None = field(default=None, repr=False, compare=False)
    _csr_lists: tuple | None = field(default=None, repr=False, compare=False)
    _out_degrees: np.ndarray | None = field(default=None, repr=False, compare=False)
    _weight_stats: tuple | None = field(default=None, repr=False, compare=False)
    #: pass ``validate=False`` to skip construction checks — only for
    #: diagnostic loads (``repro info``/``validate_graph`` on corrupt files).
    validate: InitVar[bool] = True

    def __post_init__(self, validate: bool = True) -> None:
        self.indptr = np.ascontiguousarray(self.indptr, dtype=INDPTR_DTYPE)
        self.indices = np.ascontiguousarray(self.indices, dtype=VERTEX_DTYPE)
        self.weights = np.ascontiguousarray(self.weights, dtype=WEIGHT_DTYPE)
        if self.coords is not None:
            self.coords = np.ascontiguousarray(self.coords, dtype=WEIGHT_DTYPE)
        if not validate:
            return
        if self.indptr.ndim != 1 or self.indptr[0] != 0:
            raise ValueError("indptr must be 1-D and start at 0")
        if self.indptr[-1] != len(self.indices):
            raise ValueError("indptr[-1] must equal len(indices)")
        if len(self.indices) != len(self.weights):
            raise ValueError("indices and weights must align")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be nondecreasing")
        if len(self.weights):
            # NaN poisons min() comparisons (NaN < 0 is False), so it must
            # be tested explicitly or corrupt weights slip through here
            # and surface as wrong distances later.
            bad = np.flatnonzero(np.isnan(self.weights) | (self.weights < 0))
            if len(bad):
                e = int(bad[0])
                u = int(np.searchsorted(self.indptr, e, side="right") - 1)
                v = int(self.indices[e])
                w = self.weights[e]
                kind = "NaN" if np.isnan(w) else "negative"
                raise ValueError(
                    f"edge weights must be nonnegative and not NaN: "
                    f"edge #{e} ({u} -> {v}) has {kind} weight {w}"
                )
        if len(self.indices):
            lo, hi = int(self.indices.min()), int(self.indices.max())
            if lo < 0 or hi >= self.num_vertices:
                raise ValueError("edge endpoint out of range")
        if self.coords is not None and self.coords.shape[0] != self.num_vertices:
            raise ValueError("coords must have one row per vertex")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of stored arcs (undirected edges count twice)."""
        return len(self.indices)

    def degree(self, v: int | np.ndarray | None = None) -> np.ndarray | int:
        """Out-degree of ``v``, or the full degree array when ``v`` is None.

        Backed by the :meth:`out_degrees` cache; the ``v is None`` form
        returns the cached array itself — do not mutate.
        """
        degs = self.out_degrees()
        if v is None:
            return degs
        return degs[v]

    def out_degrees(self) -> np.ndarray:
        """The full out-degree array ``diff(indptr)`` (cached).

        The engine's relaxation gather and the pool's shard cost
        estimators read per-vertex degrees every step/plan; caching
        removes the twice-per-step ``indptr[v+1] - indptr[v]`` gathers.
        A view of the cache: do not mutate.  Same frozen-graph contract
        as :meth:`fingerprint`.  A directed graph's transpose caches its
        own in-degree array (``graph.reverse().out_degrees()``).
        """
        if self._out_degrees is None:
            self._out_degrees = np.diff(self.indptr)
        return self._out_degrees

    def weight_stats(self) -> tuple[float, float]:
        """``(mean, std)`` of the edge weights (cached; ``(0, 0)`` if empty).

        Two O(m) reductions paid once per graph: ``default_strategy``
        derives its Δ guess from the mean and uses the dispersion to
        decide whether the static guess is trustworthy.
        """
        if self._weight_stats is None:
            if len(self.weights) == 0:
                self._weight_stats = (0.0, 0.0)
            else:
                self._weight_stats = (
                    float(self.weights.mean()),
                    float(self.weights.std()),
                )
        return self._weight_stats

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbor ids of vertex ``v`` (a view, do not mutate)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Weights aligned with :meth:`neighbors`."""
        return self.weights[self.indptr[v]:self.indptr[v + 1]]

    def edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (sources, targets, weights) arrays of all stored arcs."""
        return self.edge_sources().copy(), self.indices.copy(), self.weights.copy()

    def edge_sources(self) -> np.ndarray:
        """Source vertex per stored arc, aligned with ``indices`` (cached).

        The CSR expansion ``repeat(arange(n), degree)`` — O(m) once, then
        reused by every edge-parallel sweep (e.g. path reconstruction).
        A view of the cache: do not mutate.  Same frozen-graph contract
        as :meth:`fingerprint`.
        """
        if self._edge_src is None:
            self._edge_src = np.repeat(
                np.arange(self.num_vertices, dtype=VERTEX_DTYPE), self.out_degrees()
            )
        return self._edge_src

    def csr_lists(self) -> tuple[list[int], list[int], list[float]]:
        """``(indptr, indices, weights)`` as plain Python lists (cached).

        The scalar walks (path reconstruction, per-hop certificate
        checks) touch a handful of edges per vertex, where numpy scalar
        indexing plus ``int()``/``float()`` boxing costs several times
        the comparison itself; list indexing returns native objects.
        O(m) to build once, then shared by every walk.  Views of the
        cache: do not mutate.  Same frozen-graph contract as
        :meth:`fingerprint`.
        """
        if self._csr_lists is None:
            self._csr_lists = (
                self.indptr.tolist(),
                self.indices.tolist(),
                self.weights.tolist(),
            )
        return self._csr_lists

    def has_coords(self) -> bool:
        return self.coords is not None

    def fingerprint(self) -> str:
        """Cheap content hash of the CSR arrays (cached).

        A SHA-256 digest (first 16 hex chars) over topology, weights and
        directedness — deliberately *not* over ``name``/``coords``, so
        two loads of the same graph agree regardless of labeling.  Used
        by checkpoint manifests and answer certificates to refuse
        resuming/validating against a different graph.  The cache
        assumes the graph is frozen; mutating arrays in place stales it
        (the same contract as :meth:`repro.perf.WarmEngine.invalidate`).
        """
        if self._fingerprint is None:
            import hashlib

            h = hashlib.sha256()
            h.update(b"csr-v1;")
            h.update(str(self.num_vertices).encode())
            h.update(b";d;" if self.directed else b";u;")
            h.update(self.indptr.tobytes())
            h.update(self.indices.tobytes())
            h.update(self.weights.tobytes())
            self._fingerprint = h.hexdigest()[:16]
        return self._fingerprint

    # ------------------------------------------------------------------
    # Shared-memory export (process-pool backend substrate)
    # ------------------------------------------------------------------
    def to_shm(self, *, name: str | None = None):
        """Export the CSR arrays into one shared-memory segment.

        Returns a :class:`repro.graphs.shm.SharedGraph` owner handle whose
        picklable ``descriptor`` lets worker processes attach the same
        bytes zero-copy via :meth:`from_shm`.  The caller owns the
        segment: call ``unlink()`` (or use the handle as a context
        manager) when the last worker is done.
        """
        from .shm import export_graph

        return export_graph(self, name=name)

    @staticmethod
    def from_shm(descriptor: dict, *, check: bool = True) -> "Graph":
        """Attach a read-only :class:`Graph` view of a :meth:`to_shm` export.

        With ``check=True`` the attached bytes are re-hashed and compared
        against the descriptor's :meth:`fingerprint`; a mismatch raises
        :class:`repro.graphs.shm.ShmFingerprintError` rather than
        returning a graph that would yield wrong distances.
        """
        from .shm import attach_graph

        return attach_graph(descriptor, check=check)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "Graph":
        """The transpose graph (in-edges as out-edges).

        For undirected graphs this is the graph itself.  Cached, since
        backward searches in BiDS on directed inputs need it every query.
        """
        if not self.directed:
            return self
        if self._reverse is None:
            src, dst, w = self.edges()
            self._reverse = from_edges(
                dst,
                src,
                w,
                num_vertices=self.num_vertices,
                directed=True,
                coords=self.coords,
                coord_system=self.coord_system,
                name=f"{self.name}^T",
            )
            self._reverse._reverse = self
        return self._reverse

    def with_weights(self, weights: np.ndarray) -> "Graph":
        """Copy of this graph with a new weight array (same topology)."""
        return Graph(
            indptr=self.indptr,
            indices=self.indices,
            weights=np.asarray(weights, dtype=WEIGHT_DTYPE),
            directed=self.directed,
            coords=self.coords,
            coord_system=self.coord_system,
            name=self.name,
        )

    def subgraph(self, vertices: np.ndarray) -> tuple["Graph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns the subgraph (with vertices renumbered ``0..len-1``) and the
        old-id array such that ``old_ids[new] == old``.
        """
        vertices = np.unique(np.asarray(vertices, dtype=np.int64))
        remap = np.full(self.num_vertices, -1, dtype=np.int64)
        remap[vertices] = np.arange(len(vertices))
        src, dst, w = self.edges()
        keep = (remap[src] >= 0) & (remap[dst] >= 0)
        # Stored arcs are already doubled for undirected graphs, so build
        # as directed and restore the flag afterwards.
        sub = from_edges(
            remap[src[keep]],
            remap[dst[keep]],
            w[keep],
            num_vertices=len(vertices),
            directed=True,
            coords=None if self.coords is None else self.coords[vertices],
            coord_system=self.coord_system,
            name=f"{self.name}[sub]",
        )
        sub.directed = self.directed
        return sub, vertices

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "digraph" if self.directed else "graph"
        return (
            f"Graph(name={self.name!r}, {kind}, n={self.num_vertices}, "
            f"m={self.num_edges}, coords={self.coord_system})"
        )


def from_edges(
    src: Iterable[int],
    dst: Iterable[int],
    weights: Iterable[float],
    *,
    num_vertices: int | None = None,
    directed: bool = False,
    coords: np.ndarray | None = None,
    coord_system: str | None = None,
    name: str = "graph",
    dedupe: bool = False,
) -> Graph:
    """Build a CSR :class:`Graph` from parallel edge arrays.

    Undirected inputs (``directed=False``) are symmetrized: each edge is
    stored as two arcs.  Pass ``dedupe=True`` to collapse parallel edges,
    keeping the minimum weight (the only one shortest paths can use).
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    w = np.asarray(weights, dtype=WEIGHT_DTYPE)
    if not (len(src) == len(dst) == len(w)):
        raise ValueError("src, dst, weights must have equal length")
    if num_vertices is None:
        num_vertices = int(max(src.max(initial=-1), dst.max(initial=-1)) + 1)

    if not directed:
        src, dst, w = symmetrize_edges(src, dst, w)

    if dedupe and len(src):
        key = src * num_vertices + dst
        order = np.lexsort((w, key))
        key, src, dst, w = key[order], src[order], dst[order], w[order]
        first = np.ones(len(key), dtype=bool)
        first[1:] = key[1:] != key[:-1]
        src, dst, w = src[first], dst[first], w[first]

    order = np.argsort(src, kind="stable")
    src, dst, w = src[order], dst[order], w[order]
    indptr = np.zeros(num_vertices + 1, dtype=INDPTR_DTYPE)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return Graph(
        indptr=indptr,
        indices=dst,
        weights=w,
        directed=directed,
        coords=coords,
        coord_system=coord_system,
        name=name,
    )


def symmetrize_edges(
    src: np.ndarray, dst: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Duplicate each arc in the reverse direction (skipping self-loops)."""
    not_loop = src != dst
    return (
        np.concatenate([src, dst[not_loop]]),
        np.concatenate([dst, src[not_loop]]),
        np.concatenate([w, w[not_loop]]),
    )


def build_graph(
    edge_list: Sequence[tuple[int, int, float]],
    *,
    num_vertices: int | None = None,
    directed: bool = False,
    coords: np.ndarray | None = None,
    coord_system: str | None = None,
    name: str = "graph",
) -> Graph:
    """Convenience builder from a Python list of ``(u, v, w)`` triples."""
    if len(edge_list) == 0:
        n = num_vertices or 0
        return Graph(
            indptr=np.zeros(n + 1, dtype=INDPTR_DTYPE),
            indices=np.empty(0, dtype=VERTEX_DTYPE),
            weights=np.empty(0, dtype=WEIGHT_DTYPE),
            directed=directed,
            coords=coords,
            coord_system=coord_system,
            name=name,
        )
    arr = np.asarray(edge_list, dtype=np.float64)
    return from_edges(
        arr[:, 0].astype(np.int64),
        arr[:, 1].astype(np.int64),
        arr[:, 2],
        num_vertices=num_vertices,
        directed=directed,
        coords=coords,
        coord_system=coord_system,
        name=name,
    )
