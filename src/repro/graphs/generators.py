"""Synthetic graph generators standing in for the paper's datasets.

The paper evaluates on four graph categories (Tab. 3): social networks,
web graphs, road networks, and k-NN graphs.  Those datasets are
million-to-billion scale downloads; here each category is reproduced by a
scaled-down generator that preserves the properties the evaluation turns
on — degree skew and small diameter for social/web, large diameter plus
coordinates for road/k-NN (see DESIGN.md, substitutions table).

Social and web graphs get uniform random integer weights in
``[1, 2^18]``, exactly the paper's weighting scheme for weight-less
inputs.
"""

from __future__ import annotations

import numpy as np

from .csr import Graph, from_edges

__all__ = [
    "chung_lu_graph",
    "social_graph",
    "web_graph",
    "uniform_random_weights",
    "WEIGHT_RANGE",
]

# The paper: "we generate the weights uniformly at random in [1, 2^18]".
WEIGHT_RANGE = (1.0, float(2**18))


def chung_lu_graph(
    n: int,
    avg_degree: float,
    *,
    exponent: float = 2.5,
    seed: int = 0,
    name: str = "chung-lu",
) -> Graph:
    """Power-law random graph via the Chung–Lu model.

    Vertex ``i`` receives expected-degree weight ``(i+1)^(-1/(exponent-1))``
    (a power law with tail exponent ``exponent``); edges are sampled by
    picking endpoints proportionally to those weights.  Parallel edges and
    self-loops are discarded, so realized average degree lands slightly
    under ``avg_degree``.
    """
    if n < 2:
        raise ValueError("need at least two vertices")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-1.0 / (exponent - 1.0))
    p = w / w.sum()
    target_edges = int(n * avg_degree / 2)
    # Oversample to compensate for dropped loops/duplicates.
    m_sample = int(target_edges * 1.3) + 8
    src = rng.choice(n, size=m_sample, p=p)
    dst = rng.choice(n, size=m_sample, p=p)
    keep = src != dst
    src, dst = src[keep], dst[keep]
    # Canonicalize undirected pairs then dedupe.
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    key = lo.astype(np.int64) * n + hi
    _, first = np.unique(key, return_index=True)
    lo, hi = lo[first], hi[first]
    if len(lo) > target_edges:
        pick = rng.permutation(len(lo))[:target_edges]
        lo, hi = lo[pick], hi[pick]
    weights = uniform_random_weights(len(lo), rng)
    return from_edges(lo, hi, weights, num_vertices=n, directed=False, name=name)


def social_graph(n: int, *, avg_degree: float = 16.0, seed: int = 0, name: str = "social") -> Graph:
    """Social-network analog: dense power-law graph, small diameter.

    Mirrors the paper's OK/LJ/TW/FS category (heavy-tailed degrees, hop
    diameter ~10–40, no coordinates).
    """
    return chung_lu_graph(n, avg_degree, exponent=2.3, seed=seed, name=name)


def web_graph(n: int, *, avg_degree: float = 12.0, seed: int = 0, name: str = "web") -> Graph:
    """Web-graph analog: more skewed power law than social graphs.

    Mirrors IT/SD: a few extreme hubs, slightly larger diameter.  The paper
    symmetrizes its (directed) web crawls, so we generate undirected.
    """
    return chung_lu_graph(n, avg_degree, exponent=2.1, seed=seed, name=name)


def uniform_random_weights(
    m: int, rng: np.random.Generator, weight_range: tuple[float, float] = WEIGHT_RANGE
) -> np.ndarray:
    """Integer-valued uniform weights in ``weight_range`` (paper's scheme)."""
    lo, hi = weight_range
    return rng.integers(int(lo), int(hi) + 1, size=m).astype(np.float64)
