"""From-scratch exact k-nearest-neighbor search via uniform grid binning.

:mod:`repro.graphs.knn` uses scipy's KD-tree; this module provides an
independent, dependency-free backend implementing the classic
uniform-grid method: hash points into cells sized so a cell holds ~k
points, then for each query expand rings of cells until the k-th
candidate distance is *certified* (no unexplored cell can contain a
closer point).  Exactness is cross-validated against the KD-tree
backend in the tests, which also makes either implementation a check on
the other.

Intended for the low-dimensional point sets the paper's k-NN graphs come
from (2–3 dims); grid methods degrade above that.
"""

from __future__ import annotations

import numpy as np

from .csr import Graph, from_edges

__all__ = ["GridIndex", "knn_graph_grid"]


class GridIndex:
    """Uniform-grid spatial index over a point set."""

    def __init__(self, points: np.ndarray, *, target_per_cell: float = 4.0) -> None:
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError("points must be a 2-D array")
        n, dim = points.shape
        if dim > 4:
            raise ValueError("grid index supports up to 4 dimensions")
        self.points = points
        self.dim = dim
        lo = points.min(axis=0)
        hi = points.max(axis=0)
        span = np.maximum(hi - lo, 1e-12)
        # Cells per axis so that an average cell holds ~target_per_cell.
        cells_total = max(int(n / target_per_cell), 1)
        per_axis = max(int(round(cells_total ** (1.0 / dim))), 1)
        self.shape = np.full(dim, per_axis, dtype=np.int64)
        self.cell_size = span / self.shape
        self.origin = lo

        coords = self.cell_of(points)
        flat = self._flatten(coords)
        order = np.argsort(flat, kind="stable")
        self._order = order
        self._flat_sorted = flat[order]
        # cell id -> slice into order via searchsorted.
        self._unique_cells, self._starts = np.unique(self._flat_sorted, return_index=True)
        self._ends = np.append(self._starts[1:], len(flat))

    # ------------------------------------------------------------------
    def cell_of(self, pts: np.ndarray) -> np.ndarray:
        """Integer cell coordinates for each point (clamped to grid)."""
        raw = np.floor((pts - self.origin) / self.cell_size).astype(np.int64)
        return np.clip(raw, 0, self.shape - 1)

    def _flatten(self, coords: np.ndarray) -> np.ndarray:
        flat = coords[..., 0]
        for axis in range(1, self.dim):
            flat = flat * self.shape[axis] + coords[..., axis]
        return flat

    def points_in_cells(self, flat_ids: np.ndarray) -> np.ndarray:
        """Indices of all points living in the given flat cell ids."""
        pos = np.searchsorted(self._unique_cells, flat_ids)
        chunks = []
        for p, cid in zip(pos, flat_ids):
            if p < len(self._unique_cells) and self._unique_cells[p] == cid:
                chunks.append(self._order[self._starts[p]:self._ends[p]])
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    def ring_cells(self, center: np.ndarray, radius: int) -> np.ndarray:
        """Flat ids of cells at Chebyshev distance exactly ``radius``."""
        rng = np.arange(-radius, radius + 1)
        grids = np.meshgrid(*([rng] * self.dim), indexing="ij")
        offsets = np.stack([g.ravel() for g in grids], axis=-1)
        if radius > 0:
            on_ring = np.abs(offsets).max(axis=1) == radius
            offsets = offsets[on_ring]
        cells = center + offsets
        ok = ((cells >= 0) & (cells < self.shape)).all(axis=1)
        cells = cells[ok]
        if len(cells) == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(self._flatten(cells))

    def query(self, idx: int, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The k nearest *other* points to point ``idx`` (exact).

        Returns (neighbor indices, distances), sorted by distance.
        Rings expand until the k-th best distance is no larger than the
        closest possible point in any unexplored ring.
        """
        p = self.points[idx]
        center = self.cell_of(p[None, :])[0]
        max_radius = int(self.shape.max())
        found_idx = np.empty(0, dtype=np.int64)
        found_d = np.empty(0)
        min_cell = float(self.cell_size.min())
        for radius in range(max_radius + 1):
            cells = self.ring_cells(center, radius)
            if len(cells):
                cand = self.points_in_cells(cells)
                cand = cand[cand != idx]
                if len(cand):
                    d = np.sqrt(((self.points[cand] - p) ** 2).sum(axis=1))
                    found_idx = np.concatenate([found_idx, cand])
                    found_d = np.concatenate([found_d, d])
            if len(found_d) >= k:
                kth = np.partition(found_d, k - 1)[k - 1]
                # Any point in ring radius+1 is at least radius*min_cell
                # away (the certified lower bound).
                if kth <= radius * min_cell:
                    break
        order = np.argsort(found_d, kind="stable")[:k]
        return found_idx[order], found_d[order]


def knn_graph_grid(points: np.ndarray, k: int = 5, *, name: str = "knn") -> Graph:
    """Exact k-NN graph via the grid index (same contract as
    :func:`repro.graphs.knn.knn_graph`)."""
    points = np.ascontiguousarray(points, dtype=np.float64)
    n = len(points)
    if n <= k:
        raise ValueError("need more points than k")
    index = GridIndex(points)
    src = np.repeat(np.arange(n), k)
    dst = np.empty(n * k, dtype=np.int64)
    w = np.empty(n * k)
    for i in range(n):
        nbrs, dists = index.query(i, k)
        dst[i * k:(i + 1) * k] = nbrs
        w[i * k:(i + 1) * k] = dists
    return from_edges(
        src, dst, w, num_vertices=n, directed=False, dedupe=True,
        coords=points, coord_system="euclidean", name=name,
    )
