"""Graph substrate: CSR graphs, generators, connectivity, and I/O."""

from .csr import Graph, build_graph, from_edges, symmetrize_edges
from .connectivity import (
    approximate_diameter,
    component_sizes,
    connected_components,
    largest_component,
)
from .generators import chung_lu_graph, social_graph, uniform_random_weights, web_graph
from .knn import clustered_points, knn_graph, skewed_points, uniform_points
from .road import road_graph
from .shm import SharedGraph, ShmFingerprintError
from .spatial import GridIndex, knn_graph_grid
from .validate import assert_valid, validate_graph
from . import io

__all__ = [
    "Graph",
    "build_graph",
    "from_edges",
    "symmetrize_edges",
    "connected_components",
    "component_sizes",
    "largest_component",
    "approximate_diameter",
    "chung_lu_graph",
    "social_graph",
    "web_graph",
    "uniform_random_weights",
    "knn_graph",
    "uniform_points",
    "clustered_points",
    "skewed_points",
    "road_graph",
    "GridIndex",
    "knn_graph_grid",
    "SharedGraph",
    "ShmFingerprintError",
    "validate_graph",
    "assert_valid",
    "io",
]
