"""Graph serialization: simple edge-list and DIMACS ``.gr`` formats.

Real deployments of the paper's system read DIMACS shortest-path
challenge files and binary edge lists; we support a text subset of both
plus an ``.npz`` fast path so experiment suites can cache generated
graphs between runs.
"""

from __future__ import annotations

import os

import numpy as np

from .csr import Graph, from_edges

__all__ = ["save_npz", "load_npz", "write_dimacs", "read_dimacs", "write_edge_list", "read_edge_list"]


def save_npz(path: str | os.PathLike, graph: Graph) -> None:
    """Store a graph (topology, weights, coords) as a compressed .npz."""
    payload = dict(
        indptr=graph.indptr,
        indices=graph.indices,
        weights=graph.weights,
        directed=np.array(graph.directed),
        name=np.array(graph.name),
    )
    if graph.coords is not None:
        payload["coords"] = graph.coords
        payload["coord_system"] = np.array(graph.coord_system or "")
    np.savez_compressed(path, **payload)


def load_npz(path: str | os.PathLike, *, validate: bool = True) -> Graph:
    """Inverse of :func:`save_npz`.

    ``validate=False`` skips construction checks so corrupt files can
    still be loaded for diagnosis (``repro info``/``validate_graph``).
    """
    data = np.load(path, allow_pickle=False)
    coords = data["coords"] if "coords" in data else None
    coord_system = str(data["coord_system"]) if "coord_system" in data else None
    return Graph(
        indptr=data["indptr"],
        indices=data["indices"],
        weights=data["weights"],
        directed=bool(data["directed"]),
        coords=coords,
        coord_system=coord_system or None,
        name=str(data["name"]),
        validate=validate,
    )


def write_dimacs(path: str | os.PathLike, graph: Graph) -> None:
    """Write DIMACS shortest-path format (``p sp n m`` header, 1-indexed).

    Undirected graphs emit both stored arcs, matching how DIMACS road
    files list each road twice.
    """
    src, dst, w = graph.edges()
    with open(path, "w") as fh:
        fh.write(f"c graph {graph.name}\n")
        fh.write(f"p sp {graph.num_vertices} {graph.num_edges}\n")
        for u, v, x in zip(src, dst, w):
            fh.write(f"a {u + 1} {v + 1} {x:.6f}\n")


def read_dimacs(path: str | os.PathLike, *, directed: bool = True, name: str | None = None) -> Graph:
    """Read DIMACS ``.gr``: arcs are taken as-is (set directed=False to symmetrize)."""
    srcs: list[int] = []
    dsts: list[int] = []
    ws: list[float] = []
    n = 0
    with open(path) as fh:
        for line in fh:
            if line.startswith("p"):
                parts = line.split()
                n = int(parts[2])
            elif line.startswith("a"):
                _, u, v, w = line.split()
                srcs.append(int(u) - 1)
                dsts.append(int(v) - 1)
                ws.append(float(w))
    return from_edges(
        np.array(srcs, dtype=np.int64),
        np.array(dsts, dtype=np.int64),
        np.array(ws),
        num_vertices=n or None,
        directed=directed,
        name=name or os.path.basename(str(path)),
    )


def write_edge_list(path: str | os.PathLike, graph: Graph) -> None:
    """Plain whitespace ``u v w`` lines, 0-indexed."""
    src, dst, w = graph.edges()
    np.savetxt(path, np.column_stack([src, dst, w]), fmt=("%d", "%d", "%.9g"))


def read_edge_list(
    path: str | os.PathLike, *, directed: bool = True, name: str | None = None
) -> Graph:
    """Inverse of :func:`write_edge_list`."""
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)  # empty-file warning
        data = np.loadtxt(path, ndmin=2)
    if data.size == 0:
        return from_edges([], [], [], num_vertices=0, directed=directed)
    return from_edges(
        data[:, 0].astype(np.int64),
        data[:, 1].astype(np.int64),
        data[:, 2],
        directed=directed,
        name=name or os.path.basename(str(path)),
    )
