"""k-nearest-neighbor graph construction (GeoGraph analog).

The paper's k-NN graphs (HH5/CH5/GL5/COS5) connect every point of a
low-dimensional dataset to its k nearest neighbors (k=5) with Euclidean
edge weights, which makes the Euclidean heuristic exact on edges and
consistent everywhere.  We reproduce the pipeline on synthetic point
clouds: uniform boxes, Gaussian cluster mixtures (GeoLife-like GPS
traces), and skewed clouds (CHEM-like, producing skewed weights — the
paper notes CH5's skewed weights hurt scalability).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from .csr import Graph, from_edges

__all__ = ["knn_graph", "uniform_points", "clustered_points", "skewed_points"]


def knn_graph(points: np.ndarray, k: int = 5, *, name: str = "knn") -> Graph:
    """Undirected k-NN graph of ``points`` with Euclidean weights.

    Each point is connected to its ``k`` nearest neighbors; the union of
    directed k-NN arcs is symmetrized (so degrees are >= k only on
    average).  Exactly GeoGraph's construction at k=5.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    n = len(points)
    if n <= k:
        raise ValueError("need more points than k")
    tree = cKDTree(points)
    dist, idx = tree.query(points, k=k + 1)  # first hit is the point itself
    src = np.repeat(np.arange(n), k)
    dst = idx[:, 1:].ravel()
    w = dist[:, 1:].ravel()
    # Coincident points produce zero-weight edges; keep them (nonnegative
    # weights are fine for every algorithm here).
    return from_edges(
        src,
        dst,
        w,
        num_vertices=n,
        directed=False,
        dedupe=True,
        coords=points,
        coord_system="euclidean",
        name=name,
    )


def uniform_points(n: int, dim: int = 2, *, seed: int = 0, scale: float = 1000.0) -> np.ndarray:
    """Uniform points in a ``[0, scale]^dim`` box (Household/Cosmo-like)."""
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, scale, size=(n, dim))


def clustered_points(
    n: int,
    dim: int = 2,
    *,
    clusters: int = 24,
    seed: int = 0,
    scale: float = 1000.0,
    spread: float = 18.0,
) -> np.ndarray:
    """Gaussian-mixture points: dense clusters joined by sparse bridges.

    Models GPS-trace datasets (GeoLife): most points cluster in cities,
    which yields a k-NN graph with long thin connections and a large
    diameter.
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, scale, size=(clusters, dim))
    assign = rng.integers(0, clusters, size=n)
    pts = centers[assign] + rng.normal(0.0, spread, size=(n, dim))
    return pts


def skewed_points(n: int, dim: int = 2, *, seed: int = 0, scale: float = 1000.0) -> np.ndarray:
    """Heavy-tailed point cloud giving skewed k-NN edge weights (CHEM-like)."""
    rng = np.random.default_rng(seed)
    # Lognormal radii push a minority of points far out.
    radii = rng.lognormal(mean=0.0, sigma=1.6, size=n)
    dirs = rng.normal(size=(n, dim))
    dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    return scale * 0.02 * radii[:, None] * dirs + scale / 2.0
