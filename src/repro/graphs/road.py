"""Synthetic road-network generator with spherical coordinates.

Stands in for the paper's OpenStreetMap road graphs (AF/NA/AS/EU):
large-diameter, nearly-planar graphs whose vertices carry lon/lat
coordinates and whose edge weights are road lengths.  We lay vertices on
a jittered grid over a lon/lat box, connect grid neighbors (with random
deletions to create detours), and set each weight to the great-circle
distance times a detour factor ``>= 1`` — which keeps the spherical
heuristic admissible and consistent, as with real road lengths.
"""

from __future__ import annotations

import numpy as np

from .csr import Graph, from_edges
from ..heuristics.geometric import spherical_distance

__all__ = ["road_graph"]


def road_graph(
    rows: int,
    cols: int,
    *,
    seed: int = 0,
    lon_range: tuple[float, float] = (-20.0, 20.0),
    lat_range: tuple[float, float] = (-15.0, 15.0),
    drop_fraction: float = 0.08,
    diagonal_fraction: float = 0.05,
    max_detour: float = 1.3,
    name: str = "road",
) -> Graph:
    """Build a ``rows x cols`` jittered-grid road network.

    Parameters
    ----------
    drop_fraction : float
        Fraction of grid edges removed (creates detours / irregularity).
        Removal is rejected when it would disconnect too much: we simply
        keep the graph's LCC dominant by bounding the fraction.
    diagonal_fraction : float
        Fraction of cells that get a diagonal "shortcut" road.
    max_detour : float
        Edge weight = spherical distance * U(1, max_detour); the factor
        models roads being longer than the crow flies.
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid must be at least 2x2")
    if not (0.0 <= drop_fraction < 0.5):
        raise ValueError("drop_fraction must be in [0, 0.5)")
    if max_detour < 1.0:
        raise ValueError("max_detour must be >= 1 for heuristic admissibility")
    rng = np.random.default_rng(seed)
    n = rows * cols

    lon_step = (lon_range[1] - lon_range[0]) / max(cols - 1, 1)
    lat_step = (lat_range[1] - lat_range[0]) / max(rows - 1, 1)
    rr, cc = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    lon = lon_range[0] + cc.ravel() * lon_step
    lat = lat_range[0] + rr.ravel() * lat_step
    # Jitter within a fraction of the cell so edges never invert order.
    lon = lon + rng.uniform(-0.3, 0.3, size=n) * lon_step
    lat = lat + rng.uniform(-0.3, 0.3, size=n) * lat_step
    coords = np.column_stack([lon, lat])

    vid = np.arange(n).reshape(rows, cols)
    right_src = vid[:, :-1].ravel()
    right_dst = vid[:, 1:].ravel()
    down_src = vid[:-1, :].ravel()
    down_dst = vid[1:, :].ravel()
    src = np.concatenate([right_src, down_src])
    dst = np.concatenate([right_dst, down_dst])

    keep = rng.random(len(src)) >= drop_fraction
    src, dst = src[keep], dst[keep]

    if diagonal_fraction > 0:
        diag_src = vid[:-1, :-1].ravel()
        diag_dst = vid[1:, 1:].ravel()
        pick = rng.random(len(diag_src)) < diagonal_fraction
        src = np.concatenate([src, diag_src[pick]])
        dst = np.concatenate([dst, diag_dst[pick]])

    base = spherical_distance(coords[src], coords[dst])
    detour = rng.uniform(1.0, max_detour, size=len(src))
    weights = base * detour
    return from_edges(
        src,
        dst,
        weights,
        num_vertices=n,
        directed=False,
        coords=coords,
        coord_system="spherical",
        name=name,
    )
