"""Connected components and diameter estimation.

The paper always picks query endpoints inside the largest connected
component (LCC) and reports per-graph diameters (Tab. 3).  Components are
computed with a vectorized label-propagation / pointer-jumping sweep —
the standard parallel connectivity pattern — rather than a per-vertex
Python DFS.
"""

from __future__ import annotations

import numpy as np

from .csr import Graph

__all__ = [
    "connected_components",
    "largest_component",
    "approximate_diameter",
    "component_sizes",
]


def connected_components(graph: Graph) -> np.ndarray:
    """Label vertices by connected component (weakly, for digraphs).

    Returns an int64 array ``label`` with ``label[v]`` the smallest vertex
    id in ``v``'s component.  Runs hook + pointer-jumping rounds over the
    full edge list, all vectorized.
    """
    n = graph.num_vertices
    label = np.arange(n, dtype=np.int64)
    if graph.num_edges == 0:
        return label
    src, dst, _ = graph.edges()
    # Treat directed arcs as undirected for weak connectivity.
    while True:
        # Hook: every edge pulls both endpoints to the smaller label.
        lo = np.minimum(label[src], label[dst])
        before = label.copy()
        np.minimum.at(label, src, lo)
        np.minimum.at(label, dst, lo)
        # Pointer jumping until labels are roots.
        while True:
            nxt = label[label]
            if np.array_equal(nxt, label):
                break
            label = nxt
        if np.array_equal(label, before):
            return label


def component_sizes(labels: np.ndarray) -> dict[int, int]:
    """Map component root -> component size."""
    roots, counts = np.unique(labels, return_counts=True)
    return {int(r): int(c) for r, c in zip(roots, counts)}


def largest_component(graph: Graph) -> np.ndarray:
    """Vertex ids of the largest (weakly) connected component."""
    labels = connected_components(graph)
    roots, counts = np.unique(labels, return_counts=True)
    big = roots[np.argmax(counts)]
    return np.flatnonzero(labels == big)


def approximate_diameter(graph: Graph, *, sweeps: int = 4, seed: int = 0) -> int:
    """Lower-bound the unweighted diameter by repeated double sweeps.

    BFS from a random vertex, then from the farthest vertex found, a few
    times; the standard heuristic used when exact diameters are too
    expensive (the paper's Tab. 3 "D" column is hop diameter).
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    rng = np.random.default_rng(seed)
    lcc = largest_component(graph)
    start = int(rng.choice(lcc))
    best = 0
    for _ in range(sweeps):
        dist = _bfs_levels(graph, start)
        reach = dist >= 0
        far = int(dist[reach].max()) if reach.any() else 0
        best = max(best, far)
        far_vertices = np.flatnonzero(dist == far)
        start = int(rng.choice(far_vertices))
    return best


def _bfs_levels(graph: Graph, source: int) -> np.ndarray:
    """Hop distance from ``source``; ``-1`` marks unreachable vertices."""
    n = graph.num_vertices
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    indptr, indices = graph.indptr, graph.indices
    while len(frontier):
        level += 1
        counts = indptr[frontier + 1] - indptr[frontier]
        total = int(counts.sum())
        if total == 0:
            break
        starts = indptr[frontier]
        offsets = np.repeat(starts, counts) + _ranges(counts)
        nbrs = indices[offsets]
        fresh = np.unique(nbrs[dist[nbrs] < 0])
        if len(fresh) == 0:
            break
        dist[fresh] = level
        frontier = fresh
    return dist


def _ranges(counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(c)`` for each c in counts, vectorized."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    out[0] = 0
    ends = np.cumsum(counts)[:-1]
    out[ends] = 1 - counts[:-1]
    return np.cumsum(out)
