"""Deterministic fault injection for chaos-testing the PPSP stack.

A :class:`FaultInjector` plugs into the engine at fixed hook points and
corrupts a run in controlled, seedable ways:

* ``corrupt_dist_at``   — raise tentative distances (breaks write_min
  monotonicity; the auditor's ``dist-increase`` check must fire);
* ``corrupt_mu_at``     — shrink the policy's μ below any witnessed path
  (breaks Thm. 3.3 soundness; ``mu-unwitnessed`` must fire);
* ``drop_frontier_at``  — silently discard frontier elements (lost work;
  ``frontier-drop`` must fire);
* ``perturb_heuristic`` — wrap A*/BiD-A* heuristics with positive noise
  (inadmissible; ``heuristic-endpoint``/``heuristic-inconsistent`` must
  fire);
* ``raise_at``          — raise an :class:`InjectedFault` (transient or
  permanent), which the :func:`~repro.robustness.resilient.resilient_ppsp`
  fallback chain must absorb;
* ``stall_at``          — inject per-step latency in *simulated* time:
  from the given step on, every step advances the injector's
  :class:`~repro.robustness.clock.SimClock` by ``stall_seconds`` instead
  of sleeping, so wall-time budgets, per-query deadlines, and circuit
  breakers are testable deterministically (a straggler in fast-forward).

Bit-flip classes (PR 6) model *silent data corruption* — the memory or
storage fault that motivates answer certificates.  Each flips one high
mantissa/exponent bit of a finite float64 (bits 44–62, never the sign),
so the damage is material in either direction (value shrinks, explodes,
or becomes inf/nan) but stays a legal float:

* ``flip_dist_at``          — flip bits of tentative distances inside a
  run (``on_step_start``), producing silently wrong final answers;
* ``flip_cache_payload``    — corrupt a :class:`~repro.perf.WarmEngine`
  cached answer as it is served (``corrupt_warm_answer``);
* ``flip_checkpoint``       — flip one byte of a just-written serve
  checkpoint sidecar (``on_checkpoint_written``), corrupting durable
  state a resume would otherwise trust.

``kill_worker_at`` (PR 7) targets the process-pool backend instead of
the engine: the worker running the given shard index SIGKILLs itself
mid-shard, modeling an OOM-killed or segfaulted worker process that the
pool must surface as a shard failure.  ``stall_worker_at`` (PR 9) is
its wedged-but-alive sibling: the worker sleeps ``stall_worker_seconds``
of real wall time mid-shard — invisible to ``BrokenProcessPool``
detection, recoverable only by shard deadlines / hedged re-execution
(:mod:`repro.serve.hedging`).

Every decision flows from one seeded RNG plus hash-based per-vertex
noise, so a chaos run is exactly reproducible from its seed.  Injection
stops after ``max_fires`` faults, which is how "transient" failures are
modeled: fire once, then behave.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FaultInjector", "InjectedFault"]

# Knuth multiplicative hash constant: cheap deterministic per-vertex noise.
_HASH = 2654435761


class InjectedFault(RuntimeError):
    """An artificial failure raised by :class:`FaultInjector`.

    ``transient=True`` marks failures that a retry may survive (the
    injector disarms after ``max_fires``); the fallback chain retries
    those with backoff and skips straight to the next rung otherwise.
    """

    def __init__(self, message: str, *, transient: bool = True) -> None:
        super().__init__(message)
        self.transient = transient


class _PerturbedHeuristic:
    """Wrap a heuristic with deterministic positive per-vertex noise.

    The noise depends only on the vertex id, so repeated evaluations
    agree (the corruption is in the *values*, not flakiness) — exactly
    the failure mode of a unit-mismatched or stale landmark table.
    """

    def __init__(self, inner, scale: float) -> None:
        self.inner = inner
        self.scale = float(scale)

    @property
    def evaluated(self) -> int:
        return self.inner.evaluated

    @property
    def calls(self) -> int:
        return self.inner.calls

    def __call__(self, vertices: np.ndarray) -> np.ndarray:
        vertices = np.asarray(vertices)
        noise = ((vertices.astype(np.uint64) * _HASH) % 1024).astype(np.float64) / 1024.0
        return self.inner(vertices) + self.scale * noise


class FaultInjector:
    """Seedable corruption source wired into the engine's step loop.

    All ``*_at`` parameters are engine step indices (0-based); ``None``
    disables that fault class.  ``max_fires`` bounds the total number of
    injected faults across the injector's lifetime — shared across runs,
    so a fallback chain's retry sees a clean re-execution once the
    injector is spent.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        corrupt_dist_at: int | None = None,
        corrupt_dist_count: int = 1,
        corrupt_scale: float = 10.0,
        corrupt_mu_at: int | None = None,
        mu_factor: float = 0.25,
        drop_frontier_at: int | None = None,
        drop_fraction: float = 0.5,
        perturb_heuristic: bool = False,
        perturb_scale: float = 100.0,
        raise_at: int | None = None,
        transient: bool = True,
        stall_at: int | None = None,
        stall_seconds: float = 0.05,
        flip_dist_at: int | None = None,
        flip_dist_count: int = 1,
        flip_cache_payload: bool = False,
        flip_checkpoint: bool = False,
        kill_worker_at: int | None = None,
        stall_worker_at: int | None = None,
        stall_worker_seconds: float = 1.0,
        clock=None,
        max_fires: int = 1,
    ) -> None:
        self.rng = np.random.default_rng(seed)
        self.corrupt_dist_at = corrupt_dist_at
        self.corrupt_dist_count = int(corrupt_dist_count)
        self.corrupt_scale = float(corrupt_scale)
        self.corrupt_mu_at = corrupt_mu_at
        self.mu_factor = float(mu_factor)
        self.drop_frontier_at = drop_frontier_at
        self.drop_fraction = float(drop_fraction)
        self.perturb_heuristic = perturb_heuristic
        self.perturb_scale = float(perturb_scale)
        self.raise_at = raise_at
        self.transient = transient
        self.stall_at = stall_at
        self.stall_seconds = float(stall_seconds)
        self.flip_dist_at = flip_dist_at
        self.flip_dist_count = int(flip_dist_count)
        self.flip_cache_payload = bool(flip_cache_payload)
        self.flip_checkpoint = bool(flip_checkpoint)
        self.kill_worker_at = kill_worker_at
        self.stall_worker_at = stall_worker_at
        self.stall_worker_seconds = float(stall_worker_seconds)
        #: the SimClock (anything with ``advance``) that stall faults
        #: push forward; stalls are inert without one.
        self.clock = clock
        self.max_fires = int(max_fires)
        #: chronological record of (step, fault-kind) injections.
        self.fired: list[tuple[int, str]] = []

    # ------------------------------------------------------------------
    def _armed(self) -> bool:
        return len(self.fired) < self.max_fires

    def _record(self, step: int, kind: str) -> None:
        self.fired.append((step, kind))

    def _flip_bits(self, value: float) -> float:
        """XOR one high mantissa/exponent bit of a finite float64.

        Bits 44–62 keep the corruption material (relative error >= ~1e-4
        up to inf/nan) while leaving the sign alone — a negative
        distance would be caught by trivial range checks, which is not
        the failure mode certificates exist for.
        """
        if not np.isfinite(value):
            return float(value)
        bit = int(self.rng.integers(44, 63))
        raw = np.float64(value).view(np.uint64)
        return float((raw ^ np.uint64(1 << bit)).view(np.float64))

    # -- engine hooks ---------------------------------------------------
    def on_bind(self, policy, graph) -> None:
        """Called once per run after ``policy.bind``; may corrupt state."""
        if not (self.perturb_heuristic and self._armed()):
            return
        wrapped = False
        if getattr(policy, "heuristic", None) is not None:
            policy.heuristic = _PerturbedHeuristic(policy.heuristic, self.perturb_scale)
            wrapped = True
        for attr in ("h_s", "h_t"):
            if getattr(policy, attr, None) is not None:
                setattr(policy, attr, _PerturbedHeuristic(getattr(policy, attr), self.perturb_scale))
                wrapped = True
        if wrapped:
            self._record(-1, "perturb-heuristic")

    def on_step_start(self, step: int, dist: np.ndarray, frontier, policy) -> None:
        """Called at the top of each engine step (before extraction)."""
        if (
            self.stall_at is not None
            and step >= self.stall_at
            and self.clock is not None
            and self._armed()
        ):
            # One stall per step from stall_at on; max_fires bounds the
            # straggler's total injected latency.
            self.clock.advance(self.stall_seconds)
            self._record(step, "stall")
        if self.raise_at == step and self._armed():
            self._record(step, "raise")
            raise InjectedFault(
                f"injected {'transient' if self.transient else 'permanent'} "
                f"fault at step {step}",
                transient=self.transient,
            )
        if self.corrupt_dist_at == step and self._armed():
            finite = np.flatnonzero(np.isfinite(dist))
            if len(finite):
                k = min(self.corrupt_dist_count, len(finite))
                victims = self.rng.choice(finite, size=k, replace=False)
                dist[victims] = dist[victims] * self.corrupt_scale + 1.0
                self._record(step, "corrupt-dist")
        if self.flip_dist_at is not None and step >= self.flip_dist_at and self._armed():
            # Bit-flip corruption keeps trying from its step on: early
            # steps may have no strictly positive finite entries yet.
            finite = np.flatnonzero(np.isfinite(dist) & (dist > 0))
            if len(finite):
                k = min(self.flip_dist_count, len(finite))
                victims = self.rng.choice(finite, size=k, replace=False)
                for e in victims:
                    dist[e] = self._flip_bits(dist[e])
                self._record(step, "flip-dist")
        if self.corrupt_mu_at == step and self._armed():
            mu = getattr(policy, "mu", None)
            if mu is not None and np.isfinite(mu) and np.ndim(mu) == 0 and mu > 0:
                policy.mu = float(mu) * self.mu_factor
                self._record(step, "corrupt-mu")

    def on_step_end(self, step: int, dist: np.ndarray, frontier, policy) -> None:
        """Called after the step's frontier update (before the audit)."""
        if self.drop_frontier_at == step and self._armed():
            ids = frontier.ids()
            if len(ids):
                k = max(1, int(len(ids) * self.drop_fraction))
                victims = self.rng.choice(len(ids), size=k, replace=False)
                keep = np.delete(ids, victims)
                frontier.replace(keep, assume_sorted=True)
                self._record(step, "drop-frontier")

    # -- process-pool hooks ---------------------------------------------
    def take_worker_kill(self, shard_index: int) -> bool:
        """Should the worker executing shard ``shard_index`` be SIGKILLed?

        Consulted by :mod:`repro.parallel.pool` before dispatching each
        shard; a ``True`` return makes the worker process kill itself
        (``SIGKILL`` — no cleanup, no exception) partway through the
        shard, modeling an OOM-killed or crashed worker.  Fires at most
        once per ``max_fires``, like every other fault class.
        """
        if self.kill_worker_at == shard_index and self._armed():
            self._record(shard_index, "kill-worker")
            return True
        return False

    def take_worker_stall(self, shard_index: int) -> float | None:
        """Seconds the worker executing ``shard_index`` should sleep, or None.

        The pool-level sibling of ``kill_worker_at``, but the worker
        stays *alive*: it sleeps ``stall_worker_seconds`` of real wall
        time halfway through its shard — a wedged worker the executor
        cannot detect (no ``BrokenProcessPool``), which is the failure
        mode shard deadlines and hedged re-execution exist for.  Fires
        at most once per ``max_fires``.
        """
        if self.stall_worker_at == shard_index and self._armed():
            self._record(shard_index, "stall-worker")
            return self.stall_worker_seconds
        return None

    # -- storage hooks --------------------------------------------------
    def corrupt_warm_answer(self, answer):
        """Maybe bit-flip a cached answer as it is served.

        Called by :class:`~repro.perf.WarmEngine` on every cache hit
        (when wired); returns the answer to actually serve.  The flip
        models in-cache payload corruption — the served copy and the
        stored entry both carry the bad distance, so detection must
        evict, not just recompute.
        """
        if not (self.flip_cache_payload and self._armed()):
            return answer
        if not np.isfinite(answer.distance) or answer.distance <= 0:
            return answer
        from dataclasses import replace

        self._record(-1, "flip-cache")
        return replace(answer, distance=self._flip_bits(answer.distance))

    def on_checkpoint_written(self, store) -> None:
        """Maybe flip one byte of a just-written checkpoint sidecar.

        Called by :class:`~repro.serve.ServePipeline` after each
        checkpoint save; corrupts the durable .npz bytes in place, the
        way a bad disk or torn write would.  The store's checksum (and
        failing that, np.load itself) must catch it on resume.
        """
        if not (self.flip_checkpoint and self._armed()):
            return
        try:
            with open(store.sidecar, "rb") as fh:
                blob = bytearray(fh.read())
        except OSError:
            return
        if not blob:
            return
        pos = int(self.rng.integers(len(blob)))
        blob[pos] ^= 0xFF
        with open(store.sidecar, "wb") as fh:
            fh.write(bytes(blob))
        self._record(-1, "flip-checkpoint")
